/**
 * @file
 * The Computation Reuse Buffer (CRB) and its memoization controller —
 * the hardware half of the CCR approach (paper §3).
 *
 * The CRB is a set-associative structure indexed by the compiler-
 * assigned region identifier. Each computation entry holds a tag, a
 * valid bit, and an array of computation instances (CIs); each CI
 * holds an input register bank, an output register bank, a memory
 * valid flag, and LRU state. A `reuse` instruction queries the entry:
 * if some CI's input bank matches the live register values (and its
 * memory state has not been invalidated), the CI's output bank is
 * written to the register file and the region is skipped. Otherwise
 * the controller enters memoization mode and records a new CI while
 * the region executes: registers used before being defined go to the
 * input bank, live-out-marked definitions to the output bank, loads
 * set the memory flag, and a region-end (region-exit) control
 * instruction commits (aborts) the recording.
 */

#ifndef CCR_UARCH_CRB_HH
#define CCR_UARCH_CRB_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "reuse/scheme.hh"
#include "support/stats.hh"

namespace ccr::uarch
{

/** CRB geometry. Paper §5.1 evaluates 32/64/128 entries x 4/8/16 CIs
 *  with 8-entry register banks, direct-mapped. */
struct CrbParams
{
    int entries = 128;
    int instances = 8;
    int assoc = 1;

    /** Register-bank capacity per CI (inputs and outputs each). */
    int bankSize = 8;

    /**
     * Fraction of computation entries capable of holding
     * memory-dependent CIs (paper §5.2 suggests "only a portion of the
     * computation entries with memory reuse capabilities"; 1.0 =
     * uniform base design).
     */
    double memCapableFraction = 1.0;

    /**
     * Nonuniform-capacity extension (paper §6 future work): when > 0,
     * entries at index >= entries * nonuniformSplit keep only
     * nonuniformSmallInstances CIs.
     */
    double nonuniformSplit = 0.0;
    int nonuniformSmallInstances = 2;
};

/** One (register, value) slot of a CI bank. */
struct BankEntry
{
    ir::Reg reg = ir::kNoReg;
    ir::Value value = 0;
    bool valid = false;
};

/** A computation instance: one recorded execution of a region. */
struct CompInstance
{
    bool valid = false;
    bool accessesMemory = false;
    bool memValid = true;
    std::uint64_t lruStamp = 0;
    int numInputs = 0;
    int numOutputs = 0;
    std::array<BankEntry, 16> inputs{};
    std::array<BankEntry, 16> outputs{};
};

/** A computation entry: tag + CI array. */
struct CompEntry
{
    bool valid = false;
    ir::RegionId tag = ir::kNoRegion;
    std::vector<CompInstance> instances;

    /**
     * Cached summary set: the distinct input registers across all
     * valid CIs, in CI-order-then-input-order of first occurrence
     * (paper §3.3). Rebuilt lazily on the next query after a CI is
     * recorded or the entry is re-tagged (summaryFresh false);
     * memory invalidation does NOT dirty it — the summary spans
     * valid CIs regardless of their memValid state.
     */
    std::vector<ir::Reg> summary;
    bool summaryFresh = false;
};

/** The CRB, implemented as one reuse::ReuseScheme. */
class Crb : public reuse::ReuseScheme
{
  public:
    explicit Crb(CrbParams params = {});

    // -- emu::ReuseHandler --------------------------------------------
    emu::ReuseOutcome onReuse(ir::RegionId region,
                              emu::Machine &machine) override;
    void observe(const emu::ExecInfo &info) override;
    void onInvalidate(ir::RegionId region, emu::Addr store_addr,
                      unsigned store_size) override;
    bool memoActive() const override { return memo_.active; }

    // -- reuse::ReuseScheme -------------------------------------------
    const char *name() const override { return "crb"; }

    /** The CRB validates registers at query time (summary-set read),
     *  never memory (memValid is maintained by `invalidate`), and a
     *  miss redirects fetch into the region body. */
    reuse::SchemeTraits traits() const override
    {
        return reuse::SchemeTraits{/*chargesValidation=*/true,
                                   /*validatesMemoryAtQuery=*/false,
                                   /*chargesMissFlush=*/true,
                                   /*usesInvalidate=*/true};
    }

    void reset() override;

    /**
     * Record occupancy telemetry into the registry: a histogram of
     * valid CIs per entry ("crb.occupancy.validCis"), input/output
     * bank utilization of valid CIs ("crb.occupancy.ciInputsUsed" /
     * "...OutputsUsed"), and the valid-entry fraction gauge. Call at a
     * sampling point (typically end of run); each call accumulates
     * one sample per entry/CI.
     */
    void snapshotOccupancy() override;

    const CrbParams &params() const { return params_; }

  private:
    /** Memoization-mode controller state. */
    struct MemoState
    {
        bool active = false;
        ir::RegionId region = ir::kNoRegion;
        std::size_t entryIndex = 0;
        std::size_t instanceIndex = 0;
        CompInstance scratch;
        std::unordered_set<ir::Reg> defined;

        /** Function-level recording: >0 while inside the memoized
         *  call; the matching return commits the CI. */
        int callDepth = 0;
        bool functionLevel = false;
        ir::Reg fnRetDst = ir::kNoReg;
    };

    CrbParams params_;
    std::size_t numSets_;
    std::vector<CompEntry> entries_; // sets * assoc
    std::uint64_t stamp_ = 0;
    MemoState memo_;

    // Hot-path counters cached out of the registry (references stay
    // valid across reset()).
    Counter &cQueries_;
    Counter &cHits_;
    Counter &cMisses_;
    Counter &cInvalidates_;
    Counter &cMemoStarts_;
    Counter &cMemoCommits_;
    Counter &cMemoAborts_;
    Counter &cMemoDroppedNotMemCapable_;
    Counter &cMemoLostEntry_;
    Counter &cConflictEvictions_;

    int instancesFor(std::size_t entry_index) const;
    bool memCapable(std::size_t entry_index) const;

    /** Locate (possibly allocating/replacing) the entry for a region.
     *  Returns the index into entries_. */
    std::size_t entryFor(ir::RegionId region);

    void commitMemo();
    void abortMemo(const char *reason);
    void rebuildSummary(CompEntry &entry) const;
};

/**
 * Factory for the CRB behind the scheme interface. Outside
 * src/uarch/crb.* the CRB is accessed only as a reuse::ReuseScheme;
 * this is the one construction point (reuse::makeScheme calls it).
 */
std::unique_ptr<reuse::ReuseScheme> makeCrbScheme(CrbParams params = {});

} // namespace ccr::uarch

#endif // CCR_UARCH_CRB_HH
