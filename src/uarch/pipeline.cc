#include "uarch/pipeline.hh"

#include <algorithm>
#include <string>

#include "support/logging.hh"

namespace ccr::uarch
{

Pipeline::Pipeline(PipelineParams params)
    : params_(params), icache_(params.icache, "icache"),
      dcache_(params.dcache, "dcache"), bpred_(params.bpred)
{}

int
Pipeline::fuLimit(ir::FuClass cls) const
{
    switch (cls) {
      case ir::FuClass::IntAlu: return params_.intAlus;
      case ir::FuClass::Mem: return params_.memPorts;
      case ir::FuClass::FpAlu: return params_.fpAlus;
      case ir::FuClass::Branch: return params_.branchUnits;
      default: return params_.issueWidth;
    }
}

void
Pipeline::advanceTo(std::uint64_t target)
{
    if (target > cycle_) {
        cycle_ = target;
        issuedThisCycle_ = 0;
        fuUsed_[0] = fuUsed_[1] = fuUsed_[2] = fuUsed_[3] = 0;
    }
}

std::uint64_t
Pipeline::issueOne(const emu::ExecInfo &info, emu::StepKind kind,
                   const emu::Machine &machine)
{
    const ir::Inst &inst = *info.inst;
    auto &regs = regReady_.back();

    // -- Fetch: one I-cache access per new line ------------------------
    const emu::Addr line = info.pc / params_.icache.lineBytes;
    if (line != lastFetchLine_) {
        lastFetchLine_ = line;
        const int lat = icache_.access(info.pc);
        if (lat > 0) {
            fetchReady_ =
                std::max(fetchReady_, cycle_) + static_cast<std::uint64_t>(lat);
            fetchStallReason_ = FetchStall::Icache;
        }
    }

    // Stall attribution: decompose this instruction's issue delay from
    // the current cycle frontier into fetch bubble (by cause), operand
    // wait, reuse-validation interlock, and structural (width/FU)
    // conflicts. Bookkeeping only — never feeds back into timing.
    if (fetchReady_ > cycle_) {
        const std::uint64_t bubble = fetchReady_ - cycle_;
        switch (fetchStallReason_) {
          case FetchStall::Icache: stallFetchIcache_ += bubble; break;
          case FetchStall::Mispredict:
            stallFetchMispredict_ += bubble;
            break;
          case FetchStall::ReuseFlush:
            stallFetchReuseFlush_ += bubble;
            break;
          case FetchStall::BtbBubble:
            stallFetchBtbBubble_ += bubble;
            break;
          case FetchStall::None: break;
        }
    }

    // -- Operand readiness ---------------------------------------------
    std::uint64_t earliest = std::max(fetchReady_, cycle_);
    const std::uint64_t afterFetch = earliest;
    const int nsrc = inst.numRegSources();
    for (int s = 0; s < nsrc; ++s)
        earliest = std::max(earliest, regs[inst.regSource(s)]);
    if (inst.op == ir::Opcode::Call) {
        for (int a = 0; a < inst.numArgs; ++a)
            earliest = std::max(earliest, regs[inst.args[a]]);
    }
    stallOperands_ += earliest - afterFetch;
    const std::uint64_t afterOperands = earliest;
    bool speculated_hit = false;
    if (inst.op == ir::Opcode::Reuse && scheme_ != nullptr) {
        if (params_.speculativeValidation) {
            // Value speculation (paper §6): a confident hit prediction
            // lets dependents consume the recorded outputs before
            // validation finishes, removing the input interlock.
            const auto it = reuseConfidence_.find(inst.regionId);
            speculated_hit =
                it != reuseConfidence_.end() && it->second >= 2;
        }
        if (!speculated_hit && traits_.chargesValidation) {
            // Validation interlocks with in-flight producers of the
            // summary-set registers (paper §3.3).
            const auto &outcome = tap_.last;
            const int n = outcome.numInputsRead();
            for (int i = 0; i < n; ++i) {
                earliest = std::max(
                    earliest,
                    regs[outcome.inputRegs[static_cast<std::size_t>(i)]]);
            }
        }
    }
    stallReuseValidate_ += earliest - afterOperands;

    // -- Find the issue slot (in-order, width + FU limits) -------------
    const auto cls = ir::fuClass(inst.op);
    const int cls_idx = static_cast<int>(cls);
    advanceTo(earliest);
    while (true) {
        const bool fu_ok =
            cls == ir::FuClass::None || fuUsed_[cls_idx] < fuLimit(cls);
        if (issuedThisCycle_ < params_.issueWidth && fu_ok)
            break;
        if (!fu_ok)
            ++stallFuBusy_;
        else
            ++stallIssueWidth_;
        advanceTo(cycle_ + 1);
    }
    const std::uint64_t c = cycle_;
    ++issuedThisCycle_;
    if (cls != ir::FuClass::None)
        ++fuUsed_[cls_idx];

    // -- Execute / complete --------------------------------------------
    std::uint64_t done = c + static_cast<std::uint64_t>(
                                 ir::opLatency(inst.op));

    switch (inst.op) {
      case ir::Opcode::Load: {
        const int lat = dcache_.access(info.memAddr);
        if (lat > 0)
            done += static_cast<std::uint64_t>(lat);
        break;
      }
      case ir::Opcode::Store: {
        // Stores retire through a store buffer; track cache state
        // (and thereby the miss tally) but do not stall the pipeline.
        dcache_.access(info.memAddr);
        break;
      }
      case ir::Opcode::Br: {
        const std::uint64_t resolve = c + 1;
        const bool correct =
            bpred_.predictAndUpdate(info.pc, info.taken, info.nextPc);
        if (!correct) {
            fetchReady_ = resolve
                          + static_cast<std::uint64_t>(
                              params_.bpred.mispredictPenalty);
            fetchStallReason_ = FetchStall::Mispredict;
            ++tallyBranchMispredicts_;
        }
        break;
      }
      case ir::Opcode::Jump:
      case ir::Opcode::Call:
      case ir::Opcode::Ret: {
        // Unconditional transfers: a BTB miss costs a short fetch
        // bubble.
        const bool known = bpred_.lookupUnconditional(info.pc,
                                                      info.nextPc);
        if (!known) {
            fetchReady_ = c + 2;
            fetchStallReason_ = FetchStall::BtbBubble;
        }
        break;
      }
      case ir::Opcode::Reuse: {
        // Train the hit-confidence counter.
        if (params_.speculativeValidation) {
            auto &conf = reuseConfidence_[inst.regionId];
            if (kind == emu::StepKind::ReuseHit)
                conf = static_cast<std::uint8_t>(std::min(3, conf + 1));
            else
                conf = static_cast<std::uint8_t>(
                    conf > 0 ? conf - 1 : 0);
        }
        // Schemes that validate memory at query time (the traits flag)
        // re-probe each recorded load address through a data-cache
        // port; the slowest probe delays the query's resolution —
        // whether that resolution is a hit or the discovery of a miss.
        std::uint64_t probe_delay = 0;
        if (scheme_ != nullptr && traits_.validatesMemoryAtQuery) {
            const auto &outcome = tap_.last;
            const std::size_t nprobes = outcome.memProbes.size();
            for (std::size_t i = 0; i < nprobes; ++i) {
                const int lat = dcache_.access(outcome.memProbes[i]);
                probe_delay = std::max(
                    probe_delay, static_cast<std::uint64_t>(lat));
            }
        }
        if (kind == emu::StepKind::ReuseHit) {
            ++tallyReuseHits_;
            const auto &outcome =
                scheme_ ? tap_.last : emu::ReuseOutcome{};
            // A correctly speculated hit hides the validation latency.
            const std::uint64_t validate =
                (speculated_hit
                     ? c
                     : c + static_cast<std::uint64_t>(
                           params_.reuseValidateLatency))
                + probe_delay;
            // Live-out updates retire several per cycle; they are the
            // only dataflow the skipped region leaves behind.
            const int outs = outcome.numOutputsWritten();
            for (int i = 0; i < outs; ++i) {
                const std::uint64_t ready =
                    validate + 1
                    + static_cast<std::uint64_t>(
                        i / params_.reuseOutputWritesPerCycle);
                regs[outcome.outputRegs[static_cast<std::size_t>(i)]] =
                    ready;
                done = std::max(done, ready);
            }
            done = std::max(done, validate);
        } else {
            ++tallyReuseMisses_;
            if (traits_.chargesMissFlush) {
                // Miss: flush and redirect fetch into the region body.
                fetchReady_ = c + probe_delay
                              + static_cast<std::uint64_t>(
                                  params_.reuseFailPenalty);
                fetchStallReason_ = FetchStall::ReuseFlush;
            }
        }
        break;
      }
      default:
        break;
    }

    if (inst.hasDst() && inst.op != ir::Opcode::Call)
        regs[inst.dst] = done;

    // -- Frame mirroring -----------------------------------------------
    if (inst.op == ir::Opcode::Call) {
        const auto &callee = machine.module().function(inst.callee);
        std::vector<std::uint64_t> fresh(
            static_cast<std::size_t>(callee.numRegs()), c + 1);
        for (int a = 0; a < inst.numArgs
                        && a < callee.numParams(); ++a) {
            fresh[static_cast<std::size_t>(a)] =
                std::max(c + 1, regs[inst.args[a]]);
        }
        callRetDst_.push_back(inst.dst);
        regReady_.push_back(std::move(fresh));
    } else if (inst.op == ir::Opcode::Ret) {
        const std::uint64_t val_ready =
            inst.src1 == ir::kNoReg ? c + 1
                                    : std::max(c + 1, regs[inst.src1]);
        regReady_.pop_back();
        const ir::Reg dst =
            callRetDst_.empty() ? ir::kNoReg : callRetDst_.back();
        if (!callRetDst_.empty())
            callRetDst_.pop_back();
        if (!regReady_.empty() && dst != ir::kNoReg)
            regReady_.back()[dst] = val_ready;
        if (regReady_.empty())
            regReady_.emplace_back(1, std::uint64_t{0});
    }

    lastRetire_ = std::max(lastRetire_, done);
    return c;
}

TimingResult
Pipeline::run(emu::Machine &machine, std::uint64_t max_insts)
{
    TimingResult result;

    cycle_ = 0;
    fetchReady_ = 0;
    issuedThisCycle_ = 0;
    fuUsed_[0] = fuUsed_[1] = fuUsed_[2] = fuUsed_[3] = 0;
    lastFetchLine_ = ~0ULL;
    lastRetire_ = 0;
    icache_.reset();
    dcache_.reset();
    bpred_.reset();
    regReady_.clear();
    callRetDst_.clear();
    reuseConfidence_.clear();
    metrics_.reset();
    fetchStallReason_ = FetchStall::None;
    stallFetchIcache_ = stallFetchMispredict_ = 0;
    stallFetchReuseFlush_ = stallFetchBtbBubble_ = 0;
    stallOperands_ = stallReuseValidate_ = 0;
    stallIssueWidth_ = stallFuBusy_ = 0;
    tallyBranchMispredicts_ = 0;
    tallyReuseHits_ = tallyReuseMisses_ = 0;
    {
        const auto &entry =
            machine.module().function(machine.module().entryFunction());
        regReady_.emplace_back(
            static_cast<std::size_t>(entry.numRegs()), 0);
    }

    machine.setReuseHandler(scheme_ != nullptr ? &tap_ : nullptr);

    emu::ExecInfo info;
    std::uint64_t executed = 0;
    while (!machine.halted() && executed < max_insts) {
        const emu::StepKind kind = machine.step(info);
        if (kind == emu::StepKind::Halted)
            break;
        issueOne(info, kind, machine);
        ++executed;
        if (trace_ && traceIntervalInsts_ != 0
            && executed % traceIntervalInsts_ == 0) {
            trace_->emit(obs::TraceEventKind::Interval, 0, executed,
                         cycle_);
        }
    }

    machine.setReuseHandler(nullptr);

    result.insts = executed;
    result.cycles = std::max(cycle_, lastRetire_) + 1;

    // Fold the run's accounting into the registry — the source of
    // truth feeding the SimReport surface.
    metrics_.counter("pipe.cycles") += result.cycles;
    metrics_.counter("pipe.insts") += result.insts;
    metrics_.counter("pipe.branchMispredicts") +=
        tallyBranchMispredicts_;
    metrics_.counter("pipe.stall.fetch.icache") += stallFetchIcache_;
    metrics_.counter("pipe.stall.fetch.mispredict") +=
        stallFetchMispredict_;
    // Reuse stalls are scheme-namespaced: the validation interlock and
    // the miss flush are properties of the attached scheme, not of the
    // pipeline ("none" when no scheme is attached).
    const std::string scheme_name =
        scheme_ != nullptr ? scheme_->name() : "none";
    metrics_.counter("pipe.stall.fetch.reuse." + scheme_name
                     + ".flush") += stallFetchReuseFlush_;
    metrics_.counter("pipe.stall.fetch.btbBubble") +=
        stallFetchBtbBubble_;
    metrics_.counter("pipe.stall.operands") += stallOperands_;
    metrics_.counter("pipe.stall.reuse." + scheme_name + ".validate") +=
        stallReuseValidate_;
    metrics_.counter("pipe.stall.issueWidth") += stallIssueWidth_;
    metrics_.counter("pipe.stall.fuBusy") += stallFuBusy_;
    metrics_.counter("reuse.hits") += tallyReuseHits_;
    metrics_.counter("reuse.misses") += tallyReuseMisses_;
    icache_.exportMetrics(metrics_);
    dcache_.exportMetrics(metrics_);
    bpred_.exportMetrics(metrics_);

    return result;
}

} // namespace ccr::uarch
