/**
 * @file
 * Cycle-level timing model of the paper's base machine (§5.1): 6-issue
 * in-order, 4 integer ALUs / 2 memory ports / 2 FP ALUs / 1 branch
 * unit, PA-7100 latencies, 32 KB direct-mapped split I/D caches
 * (32-byte lines, 12-cycle miss), a 4K-entry BTB with 2-bit counters
 * and an 8-cycle misprediction penalty. Reuse failure costs the same
 * 8-cycle flush; reuse hits pay a validation latency interlocked with
 * in-flight producers of the summary-set registers, then retire the
 * live-out writes several per cycle.
 *
 * The model is an in-order issue scoreboard driven by the committed
 * instruction stream from the emulator (emulation-driven timing, as in
 * IMPACT): each instruction issues at the earliest cycle satisfying
 * fetch availability, operand readiness, program order, issue width,
 * and functional-unit capacity.
 */

#ifndef CCR_UARCH_PIPELINE_HH
#define CCR_UARCH_PIPELINE_HH

#include <unordered_map>
#include <vector>

#include "emu/machine.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/trace.hh"
#include "reuse/scheme.hh"
#include "uarch/branch_pred.hh"
#include "uarch/cache.hh"

namespace ccr::uarch
{

/** Machine configuration (defaults = paper §5.1). */
struct PipelineParams
{
    int issueWidth = 6;
    int intAlus = 4;
    int memPorts = 2;
    int fpAlus = 2;
    int branchUnits = 1;

    CacheParams icache{32 * 1024, 32, 1, 12};
    CacheParams dcache{32 * 1024, 32, 1, 12};
    BranchPredParams bpred{4096, 8};

    /** Flush penalty when a reuse query misses ("a delay similar to
     *  the branch misprediction penalty"). */
    int reuseFailPenalty = 8;

    /** Cycles to validate CIs once the summary-set registers are
     *  ready. */
    int reuseValidateLatency = 1;

    /** Live-out register writes retired per cycle on a hit. */
    int reuseOutputWritesPerCycle = 6;

    /**
     * Value speculation on reuse validation (paper §6 future work):
     * when a per-region confidence predictor expects a hit, dependents
     * consume the recorded outputs immediately and validation
     * completes in the background; a wrong guess costs the normal
     * flush. Off by default (the paper's evaluated configuration).
     */
    bool speculativeValidation = false;
};

/**
 * Headline results of one timed run: the cycle/instruction totals a
 * caller almost always wants without reaching into the registry.
 * Everything else (cache misses, predictor tallies, reuse counts,
 * stall attribution) lives in Pipeline::metrics() — see the key list
 * on metrics() — and flows from there into the SimReport surface.
 */
struct TimingResult
{
    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;

    /** Delegates to the obs derived-metric conventions (0 when no
     *  cycles elapsed). */
    double ipc() const { return obs::ipc(insts, cycles); }
};

/** The timing model. Construct, optionally attach a reuse scheme,
 *  run. */
class Pipeline
{
  public:
    explicit Pipeline(PipelineParams params = {});

    /**
     * Attach a reuse scheme: it is installed (behind an
     * outcome-recording tap) as the machine's reuse handler for the
     * duration of run(), and its SchemeTraits select which timing
     * charges apply. May be nullptr (base machine).
     */
    void setScheme(reuse::ReuseScheme *scheme)
    {
        scheme_ = scheme;
        traits_ = scheme ? scheme->traits() : reuse::SchemeTraits{};
        tap_.inner = scheme;
    }

    /**
     * Run @p machine to completion (or @p max_insts) under this
     * timing model. The machine should be freshly restarted.
     */
    TimingResult run(emu::Machine &machine,
                     std::uint64_t max_insts = UINT64_MAX);

    Cache &icache() { return icache_; }
    Cache &dcache() { return dcache_; }
    BranchPredictor &bpred() { return bpred_; }

    /**
     * Metric registry of the most recent run(): cycle/instruction
     * totals ("pipe.cycles", "pipe.insts"), cache and predictor
     * tallies ("icache.*", "dcache.*", "bpred.*"), conditional-branch
     * mispredicts ("pipe.branchMispredicts" — unlike
     * "bpred.mispredicts" this excludes BTB misses on unconditional
     * transfers), reuse counts ("reuse.hits"/"reuse.misses"), and
     * cycles-by-stall-reason attribution ("pipe.stall.*"; the reuse
     * stalls are scheme-namespaced:
     * "pipe.stall.reuse.<scheme>.validate" and
     * "pipe.stall.fetch.reuse.<scheme>.flush"). Reset at the start of
     * every run.
     */
    const obs::MetricRegistry &metrics() const { return metrics_; }
    obs::MetricRegistry &metrics() { return metrics_; }

    /** Attach an event-trace sink emitting an Interval event (insts,
     *  cycles) every @p interval_insts committed instructions; null
     *  sink or 0 interval disables. */
    void
    setTelemetry(obs::TraceSink *sink, std::uint64_t interval_insts)
    {
        trace_ = sink;
        traceIntervalInsts_ = interval_insts;
    }

    const PipelineParams &params() const { return params_; }

  private:
    /**
     * Forwarding reuse handler that records the outcome of the most
     * recent query so the timing model can read it when the
     * corresponding Reuse instruction issues (the by-return-value
     * replacement for the old Crb::lastOutcome() handshake).
     */
    class OutcomeTap final : public emu::ReuseHandler
    {
      public:
        emu::ReuseOutcome onReuse(ir::RegionId region,
                                  emu::Machine &machine) override
        {
            last = inner->onReuse(region, machine);
            return last;
        }
        void observe(const emu::ExecInfo &info) override
        {
            inner->observe(info);
        }
        void onInvalidate(ir::RegionId region, emu::Addr store_addr,
                          unsigned store_size) override
        {
            inner->onInvalidate(region, store_addr, store_size);
        }
        bool memoActive() const override { return inner->memoActive(); }

        emu::ReuseHandler *inner = nullptr;
        emu::ReuseOutcome last;
    };

    PipelineParams params_;
    Cache icache_;
    Cache dcache_;
    BranchPredictor bpred_;
    reuse::ReuseScheme *scheme_ = nullptr;
    reuse::SchemeTraits traits_;
    OutcomeTap tap_;

    obs::MetricRegistry metrics_;
    obs::TraceSink *trace_ = nullptr;
    std::uint64_t traceIntervalInsts_ = 0;

    /** Why the fetch frontier (fetchReady_) was last pushed forward —
     *  attributes fetch-bubble cycles to their cause. */
    enum class FetchStall
    {
        None = 0,
        Icache,
        Mispredict,
        ReuseFlush,
        BtbBubble
    };
    FetchStall fetchStallReason_ = FetchStall::None;

    // Cycles-by-stall-reason accumulators (plain members on the hot
    // path; folded into metrics_ at end of run).
    std::uint64_t stallFetchIcache_ = 0;
    std::uint64_t stallFetchMispredict_ = 0;
    std::uint64_t stallFetchReuseFlush_ = 0;
    std::uint64_t stallFetchBtbBubble_ = 0;
    std::uint64_t stallOperands_ = 0;
    std::uint64_t stallReuseValidate_ = 0;
    std::uint64_t stallIssueWidth_ = 0;
    std::uint64_t stallFuBusy_ = 0;

    // Event tallies (same hot-path treatment as the stall
    // accumulators; folded into metrics_ at end of run). Conditional
    // Br mispredicts only — BTB misses on unconditional transfers are
    // counted by the predictor itself under "bpred.mispredicts".
    std::uint64_t tallyBranchMispredicts_ = 0;
    std::uint64_t tallyReuseHits_ = 0;
    std::uint64_t tallyReuseMisses_ = 0;

    // -- per-run scoreboard state -------------------------------------
    std::uint64_t cycle_ = 0;       ///< current issue cycle frontier
    std::uint64_t fetchReady_ = 0;  ///< earliest issue due to fetch
    int issuedThisCycle_ = 0;
    int fuUsed_[4] = {0, 0, 0, 0};  ///< per FuClass (IntAlu..Branch)
    emu::Addr lastFetchLine_ = ~0ULL;

    /** Per-frame register ready times. */
    std::vector<std::vector<std::uint64_t>> regReady_;

    /** Call-site destination registers, for return-value wiring. */
    std::vector<ir::Reg> callRetDst_;

    /** 2-bit hit-confidence counters per region (value speculation). */
    std::unordered_map<ir::RegionId, std::uint8_t> reuseConfidence_;

    std::uint64_t lastRetire_ = 0;

    void advanceTo(std::uint64_t target);
    int fuLimit(ir::FuClass cls) const;
    std::uint64_t issueOne(const emu::ExecInfo &info,
                           emu::StepKind kind,
                           const emu::Machine &machine);
};

} // namespace ccr::uarch

#endif // CCR_UARCH_PIPELINE_HH
