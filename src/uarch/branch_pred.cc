#include "uarch/branch_pred.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace ccr::uarch
{

BranchPredictor::BranchPredictor(BranchPredParams params)
    : params_(params)
{
    ccr_assert(isPowerOf2(params_.btbEntries), "BTB size not pow2");
    entries_.assign(params_.btbEntries, Entry{});
}

BranchPredictor::Entry &
BranchPredictor::entryFor(emu::Addr pc)
{
    // Instructions are 4 bytes; drop the low bits before indexing.
    return entries_[(pc >> 2) & (params_.btbEntries - 1)];
}

bool
BranchPredictor::predictAndUpdate(emu::Addr pc, bool taken,
                                  emu::Addr target)
{
    ++lookups_;
    Entry &e = entryFor(pc);
    const std::uint64_t tag = pc >> 2;

    bool predicted_taken = false;
    emu::Addr predicted_target = 0;
    if (e.valid && e.tag == tag) {
        predicted_taken = e.counter >= 2;
        predicted_target = e.target;
    }

    const bool correct =
        predicted_taken == taken && (!taken || predicted_target == target);

    // Update direction counter and target.
    if (!e.valid || e.tag != tag) {
        e.valid = true;
        e.tag = tag;
        e.counter = taken ? 2 : 1;
        e.target = target;
    } else {
        if (taken) {
            if (e.counter < 3)
                ++e.counter;
            e.target = target;
        } else if (e.counter > 0) {
            --e.counter;
        }
    }

    if (!correct)
        ++mispredicts_;
    return correct;
}

bool
BranchPredictor::lookupUnconditional(emu::Addr pc, emu::Addr target)
{
    ++lookups_;
    Entry &e = entryFor(pc);
    const std::uint64_t tag = pc >> 2;
    const bool correct = e.valid && e.tag == tag && e.target == target;
    e.valid = true;
    e.tag = tag;
    e.target = target;
    e.counter = 3;
    if (!correct)
        ++mispredicts_;
    return correct;
}

void
BranchPredictor::reset()
{
    for (auto &e : entries_)
        e = Entry{};
    lookups_ = mispredicts_ = 0;
}

void
BranchPredictor::exportMetrics(obs::MetricRegistry &registry) const
{
    registry.counter("bpred.lookups") += lookups_;
    registry.counter("bpred.mispredicts") += mispredicts_;
}

} // namespace ccr::uarch
