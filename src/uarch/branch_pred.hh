/**
 * @file
 * Branch predictor: 4K-entry BTB with 2-bit saturating counters and an
 * 8-cycle misprediction penalty (paper §5.1).
 */

#ifndef CCR_UARCH_BRANCH_PRED_HH
#define CCR_UARCH_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

#include "emu/memory.hh"
#include "obs/metrics.hh"

namespace ccr::uarch
{

struct BranchPredParams
{
    std::size_t btbEntries = 4096;
    int mispredictPenalty = 8;
};

/** Direction predictor + BTB. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(BranchPredParams params = {});

    /**
     * Predict and update for one conditional branch at @p pc with
     * actual direction @p taken and actual target @p target.
     * @return true when the prediction was correct (direction and, for
     * taken branches, BTB target).
     */
    bool predictAndUpdate(emu::Addr pc, bool taken, emu::Addr target);

    /** Unconditional transfer (jump/call/return): correct when the BTB
     *  knows the target. */
    bool lookupUnconditional(emu::Addr pc, emu::Addr target);

    void reset();

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Fold this predictor's tallies into @p registry under "bpred". */
    void exportMetrics(obs::MetricRegistry &registry) const;

    const BranchPredParams &params() const { return params_; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        emu::Addr target = 0;
        std::uint8_t counter = 1; // weakly not-taken
    };

    BranchPredParams params_;
    std::vector<Entry> entries_;
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;

    Entry &entryFor(emu::Addr pc);
};

} // namespace ccr::uarch

#endif // CCR_UARCH_BRANCH_PRED_HH
