#include "uarch/cache.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace ccr::uarch
{

Cache::Cache(CacheParams params, std::string name)
    : params_(params), name_(std::move(name))
{
    ccr_assert(isPowerOf2(params_.lineBytes), "line size not pow2");
    const std::uint64_t num_lines =
        params_.sizeBytes / params_.lineBytes;
    ccr_assert(params_.assoc >= 1 && num_lines % params_.assoc == 0,
               "bad cache geometry");
    numSets_ = num_lines / params_.assoc;
    ccr_assert(isPowerOf2(numSets_), "set count not pow2");
    lines_.assign(num_lines, Line{});
}

std::size_t
Cache::setIndex(emu::Addr addr) const
{
    return (addr / params_.lineBytes) & (numSets_ - 1);
}

std::uint64_t
Cache::tagOf(emu::Addr addr) const
{
    return (addr / params_.lineBytes) / numSets_;
}

int
Cache::access(emu::Addr addr)
{
    const std::size_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++stamp_;
            ++hits_;
            return 0;
        }
        if (victim == nullptr || !line.valid
            || (victim->valid && line.lruStamp < victim->lruStamp)) {
            victim = &line;
        }
    }
    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lruStamp = ++stamp_;
    return params_.missPenalty;
}

bool
Cache::probe(emu::Addr addr) const
{
    const std::size_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        const Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = Line{};
    stamp_ = hits_ = misses_ = 0;
}

void
Cache::exportMetrics(obs::MetricRegistry &registry) const
{
    registry.counter(name_ + ".hits") += hits_;
    registry.counter(name_ + ".misses") += misses_;
}

} // namespace ccr::uarch
