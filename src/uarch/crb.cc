#include "uarch/crb.hh"

#include "obs/report.hh"
#include "support/logging.hh"

namespace ccr::uarch
{

Crb::Crb(CrbParams params)
    : params_(params),
      cQueries_(metrics_.counter("crb.queries")),
      cHits_(metrics_.counter("crb.hits")),
      cMisses_(metrics_.counter("crb.misses")),
      cInvalidates_(metrics_.counter("crb.invalidates")),
      cMemoStarts_(metrics_.counter("crb.memoStarts")),
      cMemoCommits_(metrics_.counter("crb.memoCommits")),
      cMemoAborts_(metrics_.counter("crb.memoAborts")),
      cMemoDroppedNotMemCapable_(
          metrics_.counter("crb.memoDroppedNotMemCapable")),
      cMemoLostEntry_(metrics_.counter("crb.memoLostEntry")),
      cConflictEvictions_(metrics_.counter("crb.conflictEvictions"))
{
    ccr_assert(params_.entries >= 1 && params_.assoc >= 1
                   && params_.entries % params_.assoc == 0,
               "bad CRB geometry");
    ccr_assert(params_.bankSize >= 1 && params_.bankSize <= 16,
               "bank size out of range");
    numSets_ = static_cast<std::size_t>(params_.entries / params_.assoc);
    entries_.resize(static_cast<std::size_t>(params_.entries));
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        entries_[i].instances.resize(
            static_cast<std::size_t>(instancesFor(i)));
    }
}

int
Crb::instancesFor(std::size_t entry_index) const
{
    if (params_.nonuniformSplit > 0.0) {
        const auto cut = static_cast<std::size_t>(
            params_.nonuniformSplit
            * static_cast<double>(params_.entries));
        if (entry_index >= cut)
            return params_.nonuniformSmallInstances;
    }
    return params_.instances;
}

bool
Crb::memCapable(std::size_t entry_index) const
{
    const auto cut = static_cast<std::size_t>(
        params_.memCapableFraction
        * static_cast<double>(params_.entries));
    return entry_index < cut;
}

std::size_t
Crb::entryFor(ir::RegionId region)
{
    const std::size_t set = region % numSets_;
    const std::size_t base = set * static_cast<std::size_t>(params_.assoc);

    std::size_t victim = base;
    std::uint64_t victim_stamp = UINT64_MAX;
    for (int w = 0; w < params_.assoc; ++w) {
        CompEntry &e = entries_[base + static_cast<std::size_t>(w)];
        if (e.valid && e.tag == region)
            return base + static_cast<std::size_t>(w);
        // Track the LRU way (invalid ways are free).
        std::uint64_t newest = 0;
        for (const auto &ci : e.instances)
            newest = std::max(newest, ci.lruStamp);
        if (!e.valid) {
            victim = base + static_cast<std::size_t>(w);
            victim_stamp = 0;
        } else if (newest < victim_stamp) {
            victim = base + static_cast<std::size_t>(w);
            victim_stamp = newest;
        }
    }

    // Allocate / replace.
    CompEntry &e = entries_[victim];
    if (e.valid && e.tag != region) {
        ++cConflictEvictions_;
        if (trace_)
            trace_->emit(obs::TraceEventKind::Evict, e.tag, region);
    }
    e.valid = true;
    e.tag = region;
    for (auto &ci : e.instances)
        ci = CompInstance{};
    // All CIs are gone, so the (empty) summary is exact.
    e.summary.clear();
    e.summaryFresh = true;
    return victim;
}

void
Crb::rebuildSummary(CompEntry &entry) const
{
    entry.summary.clear();
    for (const auto &ci : entry.instances) {
        if (!ci.valid)
            continue;
        for (int i = 0; i < ci.numInputs; ++i) {
            const ir::Reg r = ci.inputs[static_cast<std::size_t>(i)].reg;
            bool dup = false;
            for (const auto s : entry.summary) {
                if (s == r) {
                    dup = true;
                    break;
                }
            }
            if (!dup)
                entry.summary.push_back(r);
        }
    }
    entry.summaryFresh = true;
}

emu::ReuseOutcome
Crb::onReuse(ir::RegionId region, emu::Machine &machine)
{
    if (memo_.active) {
        // Reaching another reuse point while recording means the
        // region was left without a marked end (should not happen with
        // well-formed compilation); drop the recording.
        abortMemo("nested reuse");
    }

    ++cQueries_;
    ++queriesByRegion_[region];
    emu::ReuseOutcome outcome;

    const std::size_t idx = entryFor(region);
    CompEntry &entry = entries_[idx];

    // The summary set — the distinct input registers across all valid
    // CIs (the architectural state that must be read to validate,
    // paper §3.3) — is cached on the entry and rebuilt only after a
    // CI was recorded or the entry re-tagged.
    if (!entry.summaryFresh)
        rebuildSummary(entry);
    for (const auto r : entry.summary)
        outcome.inputRegs.push_back(r);

    // Validate the CIs against live register state.
    for (auto &ci : entry.instances) {
        if (!ci.valid)
            continue;
        if (ci.accessesMemory && !ci.memValid)
            continue;
        bool match = true;
        for (int i = 0; i < ci.numInputs; ++i) {
            const BankEntry &be = ci.inputs[static_cast<std::size_t>(i)];
            if (machine.readReg(be.reg) != be.value) {
                match = false;
                break;
            }
        }
        if (!match)
            continue;

        // Hit: commit the recorded outputs to architectural state.
        for (int i = 0; i < ci.numOutputs; ++i) {
            const BankEntry &be =
                ci.outputs[static_cast<std::size_t>(i)];
            machine.writeReg(be.reg, be.value);
            outcome.outputRegs.push_back(be.reg);
        }
        outcome.hit = true;
        ci.lruStamp = ++stamp_;
        ++cHits_;
        ++hitsByRegion_[region];
        if (trace_) {
            trace_->emit(obs::TraceEventKind::ReuseHit, region,
                         static_cast<std::uint64_t>(
                             outcome.numInputsRead()),
                         static_cast<std::uint64_t>(ci.numOutputs));
        }
        return outcome;
    }

    // Miss: select the LRU instance and begin memoization mode.
    ++cMisses_;
    if (trace_) {
        trace_->emit(obs::TraceEventKind::ReuseMiss, region,
                     static_cast<std::uint64_t>(
                         outcome.numInputsRead()));
    }
    std::size_t lru = 0;
    std::uint64_t lru_stamp = UINT64_MAX;
    for (std::size_t i = 0; i < entry.instances.size(); ++i) {
        const auto &ci = entry.instances[i];
        const std::uint64_t s = ci.valid ? ci.lruStamp : 0;
        if (s < lru_stamp) {
            lru_stamp = s;
            lru = i;
        }
    }

    memo_.active = true;
    memo_.region = region;
    memo_.entryIndex = idx;
    memo_.instanceIndex = lru;
    memo_.scratch = CompInstance{};
    memo_.defined.clear();
    ++cMemoStarts_;

    return outcome;
}

void
Crb::observe(const emu::ExecInfo &info)
{
    if (!memo_.active)
        return;

    const ir::Inst &inst = *info.inst;
    CompInstance &ci = memo_.scratch;

    // Inside a memoized call (function-level region): only memory and
    // call-depth bookkeeping — callee-frame registers are not
    // architecturally visible to the region's inputs or outputs.
    if (memo_.callDepth > 0) {
        if (inst.isLoad())
            ci.accessesMemory = true;
        if (inst.op == ir::Opcode::Call) {
            ++memo_.callDepth;
        } else if (inst.op == ir::Opcode::Ret) {
            if (--memo_.callDepth == 0) {
                // The memoized call returned: its result is the
                // region's only live-out.
                if (memo_.fnRetDst != ir::kNoReg) {
                    auto &be = ci.outputs[0];
                    be.reg = memo_.fnRetDst;
                    be.value = info.result;
                    be.valid = true;
                    ci.numOutputs = 1;
                }
                commitMemo();
            }
        }
        return;
    }

    // A region-end-marked call begins a function-level recording: the
    // arguments are the inputs, the return value the output.
    if (inst.op == ir::Opcode::Call) {
        if (!inst.ext.regionEnd) {
            abortMemo("call inside region");
            return;
        }
        for (int i = 0; i < inst.numArgs; ++i) {
            const ir::Reg r = inst.args[i];
            if (memo_.defined.count(r))
                continue;
            bool present = false;
            for (int k = 0; k < ci.numInputs; ++k) {
                if (ci.inputs[static_cast<std::size_t>(k)].reg == r) {
                    present = true;
                    break;
                }
            }
            if (present)
                continue;
            if (ci.numInputs >= params_.bankSize) {
                abortMemo("input bank overflow");
                return;
            }
            auto &slot =
                ci.inputs[static_cast<std::size_t>(ci.numInputs++)];
            slot.reg = r;
            slot.value = info.argVals[static_cast<std::size_t>(i)];
            slot.valid = true;
        }
        memo_.functionLevel = true;
        memo_.fnRetDst = inst.dst;
        memo_.callDepth = 1;
        return;
    }

    // Use-before-def registers join the input bank with the value they
    // held at first read.
    const int nsrc = info.numSrcRegs;
    for (int s = 0; s < nsrc; ++s) {
        const ir::Reg r = inst.regSource(s);
        if (memo_.defined.count(r))
            continue;
        bool present = false;
        for (int i = 0; i < ci.numInputs; ++i) {
            if (ci.inputs[static_cast<std::size_t>(i)].reg == r) {
                present = true;
                break;
            }
        }
        if (present)
            continue;
        if (ci.numInputs >= params_.bankSize) {
            abortMemo("input bank overflow");
            return;
        }
        auto &slot = ci.inputs[static_cast<std::size_t>(ci.numInputs++)];
        slot.reg = r;
        slot.value = info.srcVals[static_cast<std::size_t>(s)];
        slot.valid = true;
    }

    if (inst.isLoad())
        ci.accessesMemory = true;

    if (inst.hasDst()) {
        memo_.defined.insert(inst.dst);
        if (inst.ext.liveOut) {
            // Record (or update) the output bank slot for this register
            // with the latest defined value.
            int slot = -1;
            for (int i = 0; i < ci.numOutputs; ++i) {
                if (ci.outputs[static_cast<std::size_t>(i)].reg
                    == inst.dst) {
                    slot = i;
                    break;
                }
            }
            if (slot < 0) {
                if (ci.numOutputs >= params_.bankSize) {
                    abortMemo("output bank overflow");
                    return;
                }
                slot = ci.numOutputs++;
            }
            auto &be = ci.outputs[static_cast<std::size_t>(slot)];
            be.reg = inst.dst;
            be.value = info.result;
            be.valid = true;
        }
    }

    if (inst.isControlInst()) {
        if (inst.ext.regionEnd)
            commitMemo();
        else if (inst.ext.regionExit)
            abortMemo("region exit");
    }
}

void
Crb::commitMemo()
{
    CompEntry &entry = entries_[memo_.entryIndex];
    // The entry may have been re-tagged by a conflicting region while
    // this recording was in flight (possible only with reentrant use;
    // kept as a guard).
    if (entry.valid && entry.tag == memo_.region) {
        const bool mem_ok =
            !memo_.scratch.accessesMemory
            || memCapable(memo_.entryIndex);
        if (mem_ok) {
            // Overflowing either bank aborts the recording before it
            // reaches this point (observe() checks against bankSize),
            // so a committed CI always carries its complete input
            // set — a partial one would later false-hit whenever the
            // recorded subset matched.
            ccr_assert(memo_.scratch.numInputs <= params_.bankSize
                           && memo_.scratch.numOutputs
                                  <= params_.bankSize,
                       "memoized CI overflows its register banks");
            memo_.scratch.valid = true;
            memo_.scratch.memValid = true;
            memo_.scratch.lruStamp = ++stamp_;
            entry.instances[memo_.instanceIndex] = memo_.scratch;
            entry.summaryFresh = false;
            ++cMemoCommits_;
            if (trace_) {
                trace_->emit(obs::TraceEventKind::MemoCommit,
                             memo_.region);
            }
        } else {
            ++cMemoDroppedNotMemCapable_;
        }
    } else {
        ++cMemoLostEntry_;
    }
    memo_ = MemoState{};
}

void
Crb::abortMemo(const char *reason)
{
    (void)reason;
    ++cMemoAborts_;
    if (trace_)
        trace_->emit(obs::TraceEventKind::MemoAbort, memo_.region);
    memo_ = MemoState{};
}

void
Crb::onInvalidate(ir::RegionId region, emu::Addr store_addr,
                  unsigned store_size)
{
    ++cInvalidates_;

    // Range filter: when the triggering store is known and misses
    // every byte range the region claims to read, the cached CIs are
    // still coherent — keep them (and any in-flight recording, whose
    // loads the store equally cannot have affected).
    if (claimsDisjoint(region, store_addr, store_size)) {
        // Lazily created so the metric key only exists on schemes and
        // workloads where the filter actually fires (report-key
        // stability for pre-range golden figures).
        ++metrics_.counter("crb.invalidatesIgnored");
        return;
    }

    if (trace_)
        trace_->emit(obs::TraceEventKind::Invalidate, region);
    const std::size_t set = region % numSets_;
    const std::size_t base =
        set * static_cast<std::size_t>(params_.assoc);
    for (int w = 0; w < params_.assoc; ++w) {
        CompEntry &e = entries_[base + static_cast<std::size_t>(w)];
        if (!e.valid || e.tag != region)
            continue;
        for (auto &ci : e.instances) {
            if (ci.valid && ci.accessesMemory)
                ci.memValid = false;
        }
#ifndef NDEBUG
        // The summary cache is deliberately not dirtied here (it spans
        // valid CIs regardless of memValid), which makes this the one
        // mutation path with no freshness handshake. Differentially
        // check the cache against a from-scratch rebuild so any future
        // change that lets invalidation alter CI validity (rather than
        // just memValid) cannot silently serve a stale summary.
        if (e.summaryFresh) {
            CompEntry scratch;
            scratch.instances = e.instances;
            rebuildSummary(scratch);
            ccr_assert(scratch.summary == e.summary,
                       "CRB summary cache stale after invalidate");
        }
#endif
    }
    // An in-flight recording of the same region keeps running: its
    // loads happened before this invalidate only if the store preceded
    // them; the conservative choice is to drop the recording.
    if (memo_.active && memo_.region == region)
        abortMemo("invalidated during memo");
}

void
Crb::reset()
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        entries_[i] = CompEntry{};
        entries_[i].instances.resize(
            static_cast<std::size_t>(instancesFor(i)));
    }
    stamp_ = 0;
    memo_ = MemoState{};
    hitsByRegion_.clear();
    queriesByRegion_.clear();
    metrics_.reset();
}

void
Crb::snapshotOccupancy()
{
    Histogram &valid_cis = metrics_.histogram(
        "crb.occupancy.validCis", 0, params_.instances + 1,
        static_cast<std::size_t>(params_.instances) + 1);
    Histogram &in_used = metrics_.histogram(
        "crb.occupancy.ciInputsUsed", 0, params_.bankSize + 1,
        static_cast<std::size_t>(params_.bankSize) + 1);
    Histogram &out_used = metrics_.histogram(
        "crb.occupancy.ciOutputsUsed", 0, params_.bankSize + 1,
        static_cast<std::size_t>(params_.bankSize) + 1);

    std::uint64_t valid_entries = 0;
    for (const auto &entry : entries_) {
        int cis = 0;
        if (entry.valid) {
            ++valid_entries;
            for (const auto &ci : entry.instances) {
                if (!ci.valid)
                    continue;
                ++cis;
                in_used.record(ci.numInputs);
                out_used.record(ci.numOutputs);
            }
        }
        valid_cis.record(cis);
    }
    metrics_.gauge("crb.occupancy.validEntryFraction")
        .set(obs::ratio(static_cast<double>(valid_entries),
                        static_cast<double>(entries_.size())));
}

std::unique_ptr<reuse::ReuseScheme>
makeCrbScheme(CrbParams params)
{
    return std::make_unique<Crb>(params);
}

} // namespace ccr::uarch
