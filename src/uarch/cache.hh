/**
 * @file
 * Simple set-associative cache timing model (tag state only — the
 * emulator holds the data). Defaults model the paper's 32 KB
 * direct-mapped split caches with 32-byte lines and a 12-cycle miss
 * penalty (§5.1).
 */

#ifndef CCR_UARCH_CACHE_HH
#define CCR_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

#include "emu/memory.hh"
#include "obs/metrics.hh"
#include "support/stats.hh"

namespace ccr::uarch
{

/** Cache geometry and timing. */
struct CacheParams
{
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t lineBytes = 32;
    std::uint32_t assoc = 1;
    int missPenalty = 12;
};

/** Tag-array cache model with LRU replacement. */
class Cache
{
  public:
    explicit Cache(CacheParams params = {}, std::string name = "cache");

    /** Access @p addr; returns the added latency (0 on hit,
     *  missPenalty on miss) and updates tag state. */
    int access(emu::Addr addr);

    /** True when the line holding @p addr is present (no side
     *  effects). */
    bool probe(emu::Addr addr) const;

    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Fold this cache's tallies into @p registry under the cache's
     *  name ("icache.hits", ...). Called at end of a timed run; the
     *  access() hot path stays plain-member increments. */
    void exportMetrics(obs::MetricRegistry &registry) const;

    const CacheParams &params() const { return params_; }

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lruStamp = 0;
    };

    CacheParams params_;
    std::string name_;
    std::size_t numSets_;
    std::vector<Line> lines_; // sets * assoc
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    std::size_t setIndex(emu::Addr addr) const;
    std::uint64_t tagOf(emu::Addr addr) const;
};

} // namespace ccr::uarch

#endif // CCR_UARCH_CACHE_HH
