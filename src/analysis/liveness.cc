#include "analysis/liveness.hh"

#include "support/bits.hh"

namespace ccr::analysis
{

bool
RegSet::unionWith(const RegSet &other)
{
    bool changed = false;
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const auto before = words_[i];
        words_[i] |= other.words_[i];
        changed |= words_[i] != before;
    }
    return changed;
}

void
RegSet::subtract(const RegSet &other)
{
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < n; ++i)
        words_[i] &= ~other.words_[i];
}

std::size_t
RegSet::count() const
{
    std::size_t n = 0;
    for (const auto w : words_)
        n += static_cast<std::size_t>(popCount(w));
    return n;
}

std::vector<ir::Reg>
RegSet::toVector() const
{
    std::vector<ir::Reg> result;
    for (std::size_t w = 0; w < words_.size(); ++w) {
        std::uint64_t bitsLeft = words_[w];
        while (bitsLeft) {
            const int b = std::countr_zero(bitsLeft);
            result.push_back(static_cast<ir::Reg>(w * 64 + b));
            bitsLeft &= bitsLeft - 1;
        }
    }
    return result;
}

void
Liveness::addUses(const ir::Inst &inst, RegSet &set)
{
    const int nsrc = inst.numRegSources();
    for (int i = 0; i < nsrc; ++i)
        set.set(inst.regSource(i));
    if (inst.op == ir::Opcode::Call) {
        for (int i = 0; i < inst.numArgs; ++i)
            set.set(inst.args[i]);
    }
}

Liveness::Liveness(const Cfg &cfg)
{
    const auto &func = cfg.function();
    const std::size_t nblocks = func.numBlocks();
    const auto nregs = static_cast<std::size_t>(func.numRegs());

    // Per-block gen (upward-exposed uses) and kill (defs).
    std::vector<RegSet> gen(nblocks, RegSet(nregs));
    std::vector<RegSet> kill(nblocks, RegSet(nregs));
    liveIn_.assign(nblocks, RegSet(nregs));
    liveOut_.assign(nblocks, RegSet(nregs));

    for (const auto &bb : func.blocks()) {
        RegSet defined(nregs);
        for (const auto &inst : bb.insts()) {
            RegSet uses(nregs);
            addUses(inst, uses);
            uses.subtract(defined);
            gen[bb.id()].unionWith(uses);
            if (inst.hasDst()) {
                defined.set(inst.dst);
                kill[bb.id()].set(inst.dst);
            }
        }
    }

    // Backward iteration to fixpoint, visiting in reverse RPO.
    bool changed = true;
    while (changed) {
        changed = false;
        const auto &rpo = cfg.rpo();
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            const ir::BlockId b = *it;
            RegSet out(nregs);
            for (const auto s : cfg.succs(b))
                out.unionWith(liveIn_[s]);
            if (!(out == liveOut_[b])) {
                liveOut_[b] = out;
                changed = true;
            }
            RegSet in = liveOut_[b];
            in.subtract(kill[b]);
            in.unionWith(gen[b]);
            if (!(in == liveIn_[b])) {
                liveIn_[b] = std::move(in);
                changed = true;
            }
        }
    }
}

} // namespace ccr::analysis
