/**
 * @file
 * Per-block register liveness (backward dataflow). The CCR compiler uses
 * it to find a region's live-out set — the registers whose values the
 * CRB must record in the output bank (paper §3.2).
 */

#ifndef CCR_ANALYSIS_LIVENESS_HH
#define CCR_ANALYSIS_LIVENESS_HH

#include <vector>

#include "analysis/cfg.hh"

namespace ccr::analysis
{

/** A dense bitset over a function's virtual registers. */
class RegSet
{
  public:
    RegSet() = default;
    explicit RegSet(std::size_t num_regs)
        : words_((num_regs + 63) / 64, 0)
    {}

    void set(ir::Reg r) { words_[r >> 6] |= 1ULL << (r & 63); }
    void clear(ir::Reg r) { words_[r >> 6] &= ~(1ULL << (r & 63)); }
    bool test(ir::Reg r) const
    {
        return (words_[r >> 6] >> (r & 63)) & 1;
    }

    /** this |= other; returns true when this changed. */
    bool unionWith(const RegSet &other);

    /** this &= ~other. */
    void subtract(const RegSet &other);

    std::size_t count() const;
    std::vector<ir::Reg> toVector() const;

    bool operator==(const RegSet &) const = default;

  private:
    std::vector<std::uint64_t> words_;
};

/** Live-in/live-out register sets per basic block. */
class Liveness
{
  public:
    explicit Liveness(const Cfg &cfg);

    const RegSet &liveIn(ir::BlockId b) const { return liveIn_[b]; }
    const RegSet &liveOut(ir::BlockId b) const { return liveOut_[b]; }

    /** Registers read by @p inst (including call arguments). */
    static void addUses(const ir::Inst &inst, RegSet &set);

  private:
    std::vector<RegSet> liveIn_;
    std::vector<RegSet> liveOut_;
};

} // namespace ccr::analysis

#endif // CCR_ANALYSIS_LIVENESS_HH
