#include "analysis/cfg.hh"

#include <algorithm>

namespace ccr::analysis
{

Cfg::Cfg(const ir::Function &func) : func_(func)
{
    const std::size_t n = func.numBlocks();
    succs_.resize(n);
    preds_.resize(n);
    rpoIndex_.assign(n, kUnreachable);

    for (const auto &bb : func.blocks()) {
        succs_[bb.id()] = bb.successors();
        for (const auto s : succs_[bb.id()])
            preds_[s].push_back(bb.id());
    }

    // Iterative post-order DFS from the entry.
    std::vector<ir::BlockId> post;
    std::vector<std::uint8_t> state(n, 0); // 0 unseen, 1 open, 2 done
    std::vector<std::pair<ir::BlockId, std::size_t>> stack;
    stack.emplace_back(func.entry(), 0);
    state[func.entry()] = 1;
    while (!stack.empty()) {
        auto &[bb, next] = stack.back();
        if (next < succs_[bb].size()) {
            const ir::BlockId s = succs_[bb][next++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            state[bb] = 2;
            post.push_back(bb);
            stack.pop_back();
        }
    }

    rpo_.assign(post.rbegin(), post.rend());
    for (std::size_t i = 0; i < rpo_.size(); ++i)
        rpoIndex_[rpo_[i]] = i;
}

} // namespace ccr::analysis
