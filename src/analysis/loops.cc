#include "analysis/loops.hh"

#include <algorithm>
#include <map>
#include <set>

namespace ccr::analysis
{

bool
Loop::contains(ir::BlockId b) const
{
    return std::find(blocks.begin(), blocks.end(), b) != blocks.end();
}

LoopInfo::LoopInfo(const Cfg &cfg, const Dominators &dom)
{
    // A back edge t -> h exists when h dominates t. The natural loop of
    // (t, h) is h plus all blocks that reach t without passing h.
    // Multiple back edges to one header merge into one loop.
    std::map<ir::BlockId, std::set<ir::BlockId>> bodies;

    for (const auto t : cfg.rpo()) {
        for (const auto h : cfg.succs(t)) {
            if (!dom.dominates(h, t))
                continue;
            auto &body = bodies[h];
            body.insert(h);
            std::vector<ir::BlockId> work;
            if (body.insert(t).second)
                work.push_back(t);
            while (!work.empty()) {
                const ir::BlockId b = work.back();
                work.pop_back();
                if (b == h)
                    continue;
                for (const auto p : cfg.preds(b)) {
                    if (cfg.reachable(p) && body.insert(p).second)
                        work.push_back(p);
                }
            }
        }
    }

    for (const auto &[header, body] : bodies) {
        Loop loop;
        loop.header = header;
        loop.blocks.assign(body.begin(), body.end());
        for (const auto b : loop.blocks) {
            for (const auto s : cfg.succs(b)) {
                if (!body.count(s)) {
                    loop.exitingBlocks.push_back(b);
                    break;
                }
            }
        }
        loops_.push_back(std::move(loop));
    }

    // Nesting: loop A contains loop B when A's body is a strict superset
    // of B's body (headers differ) or bodies equal is impossible since
    // headers are map keys.
    for (std::size_t i = 0; i < loops_.size(); ++i) {
        for (std::size_t j = 0; j < loops_.size(); ++j) {
            if (i == j)
                continue;
            const auto &outer = loops_[i];
            const auto &inner = loops_[j];
            if (inner.blocks.size() < outer.blocks.size()
                && outer.contains(inner.header)) {
                const bool subset = std::all_of(
                    inner.blocks.begin(), inner.blocks.end(),
                    [&](ir::BlockId b) { return outer.contains(b); });
                if (subset) {
                    loops_[i].innermost = false;
                    loops_[j].depth =
                        std::max(loops_[j].depth, loops_[i].depth + 1);
                }
            }
        }
    }

    loopIndex_.assign(cfg.numBlocks(), -1);
    for (std::size_t i = 0; i < loops_.size(); ++i) {
        for (const auto b : loops_[i].blocks) {
            const int cur = loopIndex_[b];
            if (cur < 0
                || loops_[i].blocks.size()
                       < loops_[static_cast<std::size_t>(cur)]
                             .blocks.size()) {
                loopIndex_[b] = static_cast<int>(i);
            }
        }
    }
}

std::vector<const Loop *>
LoopInfo::innermostLoops() const
{
    std::vector<const Loop *> result;
    for (const auto &loop : loops_) {
        if (loop.innermost)
            result.push_back(&loop);
    }
    return result;
}

const Loop *
LoopInfo::loopFor(ir::BlockId b) const
{
    if (b >= loopIndex_.size() || loopIndex_[b] < 0)
        return nullptr;
    return &loops_[static_cast<std::size_t>(loopIndex_[b])];
}

} // namespace ccr::analysis
