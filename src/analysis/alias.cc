#include "analysis/alias.hh"

#include "support/logging.hh"

namespace ccr::analysis
{

bool
PtSet::mergeFrom(const PtSet &other)
{
    bool changed = false;
    for (const auto g : other.globals)
        changed |= globals.insert(g).second;
    if (other.heap && !heap) {
        heap = true;
        changed = true;
    }
    if (other.unknown && !unknown) {
        unknown = true;
        changed = true;
    }
    return changed;
}

bool
PtSet::intersects(const PtSet &other) const
{
    // Unknown intersects everything non-empty; heap intersects heap and
    // unknown.
    if (empty() || other.empty())
        return false;
    if (unknown || other.unknown)
        return true;
    if (heap && other.heap)
        return true;
    for (const auto g : globals) {
        if (other.globals.count(g))
            return true;
    }
    return false;
}

AliasAnalysis::AliasAnalysis(const ir::Module &mod) : mod_(mod)
{
    const std::size_t nfuncs = mod.numFunctions();
    regPts_.resize(nfuncs);
    funcRet_.resize(nfuncs);
    funcWrites_.resize(nfuncs);
    funcReads_.resize(nfuncs);
    funcPure_.assign(nfuncs, false);
    for (std::size_t f = 0; f < nfuncs; ++f) {
        regPts_[f].resize(static_cast<std::size_t>(
            mod.function(static_cast<ir::FuncId>(f)).numRegs()));
    }

    // Whole-module fixpoint: function transfer until nothing changes.
    bool changed = true;
    int rounds = 0;
    while (changed) {
        changed = false;
        for (std::size_t f = 0; f < nfuncs; ++f) {
            changed |= transferFunction(
                mod.function(static_cast<ir::FuncId>(f)));
        }
        ccr_assert(++rounds < 1000, "points-to did not converge");
    }
    summarizePurity();
}

void
AliasAnalysis::summarizePurity()
{
    const std::size_t nfuncs = mod_.numFunctions();

    // Per-function local facts.
    std::vector<bool> local_pure(nfuncs, true);
    for (std::size_t f = 0; f < nfuncs; ++f) {
        const auto fid = static_cast<ir::FuncId>(f);
        const auto &func = mod_.function(fid);
        for (const auto &bb : func.blocks()) {
            for (const auto &inst : bb.insts()) {
                switch (inst.op) {
                  case ir::Opcode::Store:
                  case ir::Opcode::Alloc:
                  case ir::Opcode::Halt:
                  case ir::Opcode::Reuse:
                  case ir::Opcode::Invalidate:
                    local_pure[f] = false;
                    break;
                  case ir::Opcode::Load:
                    if (!loadDeterminable(fid, inst))
                        local_pure[f] = false;
                    else
                        funcReads_[f].mergeFrom(memAccess(fid, inst));
                    break;
                  default:
                    break;
                }
            }
        }
    }

    // Propagate callee facts to callers to fixpoint.
    funcPure_ = local_pure;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t f = 0; f < nfuncs; ++f) {
            const auto &func = mod_.function(static_cast<ir::FuncId>(f));
            for (const auto &bb : func.blocks()) {
                for (const auto &inst : bb.insts()) {
                    if (inst.op != ir::Opcode::Call)
                        continue;
                    if (!funcPure_[inst.callee] && funcPure_[f]) {
                        funcPure_[f] = false;
                        changed = true;
                    }
                    changed |= funcReads_[f].mergeFrom(
                        funcReads_[inst.callee]);
                }
            }
        }
    }
}

bool
AliasAnalysis::transferFunction(const ir::Function &func)
{
    const auto fid = func.id();
    auto &pts = regPts_[fid];
    bool changed = false;

    auto mergeReg = [&](ir::Reg dst, const PtSet &src) {
        if (dst != ir::kNoReg && dst < pts.size())
            changed |= pts[dst].mergeFrom(src);
    };

    for (const auto &bb : func.blocks()) {
        for (const auto &inst : bb.insts()) {
            switch (inst.op) {
              case ir::Opcode::MovGA: {
                PtSet s;
                s.globals.insert(inst.globalId);
                mergeReg(inst.dst, s);
                break;
              }
              case ir::Opcode::Mov:
                mergeReg(inst.dst, pts[inst.src1]);
                break;
              case ir::Opcode::Alloc: {
                PtSet s;
                s.heap = true;
                mergeReg(inst.dst, s);
                break;
              }
              case ir::Opcode::Add:
              case ir::Opcode::Sub:
                // Pointer arithmetic: the result may point wherever
                // either operand points.
                mergeReg(inst.dst, pts[inst.src1]);
                if (!inst.srcImm)
                    mergeReg(inst.dst, pts[inst.src2]);
                break;
              case ir::Opcode::Load:
                // Pointers loaded from memory are anonymous: the
                // analysis does not model heap/global contents
                // (paper: anonymous structures are future work), so a
                // dereference of a loaded value yields an empty set and
                // the consuming load is simply not determinable.
                break;
              case ir::Opcode::Store: {
                // Record the write target in the function summary.
                const PtSet &target = pts[inst.src1];
                if (target.empty()) {
                    // Store through a non-analyzable base: may write
                    // anything.
                    PtSet any;
                    any.unknown = true;
                    changed |= funcWrites_[fid].mergeFrom(any);
                } else {
                    changed |= funcWrites_[fid].mergeFrom(target);
                }
                break;
              }
              case ir::Opcode::Call: {
                const auto callee = inst.callee;
                const ir::Function &cf = mod_.function(callee);
                // Arguments flow into callee parameter registers.
                for (int i = 0; i < inst.numArgs; ++i) {
                    if (i < cf.numParams()) {
                        changed |= regPts_[callee][static_cast<std::size_t>(i)]
                                       .mergeFrom(pts[inst.args[i]]);
                    }
                }
                // Return value flows back to dst.
                if (inst.dst != ir::kNoReg)
                    mergeReg(inst.dst, funcRet_[callee]);
                // Callee writes become our writes.
                changed |= funcWrites_[fid].mergeFrom(funcWrites_[callee]);
                break;
              }
              case ir::Opcode::Ret:
                if (inst.src1 != ir::kNoReg)
                    changed |= funcRet_[fid].mergeFrom(pts[inst.src1]);
                break;
              default:
                break;
            }
        }
    }
    return changed;
}

const PtSet &
AliasAnalysis::regPoints(ir::FuncId f, ir::Reg reg) const
{
    return regPts_[f][reg];
}

const PtSet &
AliasAnalysis::memAccess(ir::FuncId f, const ir::Inst &inst) const
{
    ccr_assert(inst.isLoad() || inst.isStore(),
               "memAccess on non-memory instruction");
    return regPts_[f][inst.src1];
}

bool
AliasAnalysis::loadDeterminable(ir::FuncId f, const ir::Inst &load) const
{
    ccr_assert(load.isLoad(), "not a load");
    return memAccess(f, load).onlyNamedGlobals();
}

void
AliasAnalysis::annotateDeterminableLoads(ir::Module &mod) const
{
    ccr_assert(&mod == &mod_, "annotating a different module");
    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        auto &func = mod.function(static_cast<ir::FuncId>(f));
        for (auto &bb : func.blocks()) {
            for (auto &inst : bb.insts()) {
                if (inst.isLoad()) {
                    inst.ext.determinable = loadDeterminable(
                        static_cast<ir::FuncId>(f), inst);
                }
            }
        }
    }
}

} // namespace ccr::analysis
