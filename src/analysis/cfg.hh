/**
 * @file
 * Control-flow-graph utilities: predecessor lists, reverse post-order,
 * and reachability over a Function's blocks.
 */

#ifndef CCR_ANALYSIS_CFG_HH
#define CCR_ANALYSIS_CFG_HH

#include <vector>

#include "ir/function.hh"

namespace ccr::analysis
{

/** Precomputed CFG adjacency for one function. */
class Cfg
{
  public:
    explicit Cfg(const ir::Function &func);

    const ir::Function &function() const { return func_; }

    const std::vector<ir::BlockId> &succs(ir::BlockId b) const
    {
        return succs_[b];
    }

    const std::vector<ir::BlockId> &preds(ir::BlockId b) const
    {
        return preds_[b];
    }

    /** Blocks in reverse post-order from the entry (unreachable blocks
     *  are absent). */
    const std::vector<ir::BlockId> &rpo() const { return rpo_; }

    /** Position of @p b in the RPO sequence; SIZE_MAX if unreachable. */
    std::size_t rpoIndex(ir::BlockId b) const { return rpoIndex_[b]; }

    bool reachable(ir::BlockId b) const
    {
        return rpoIndex_[b] != kUnreachable;
    }

    std::size_t numBlocks() const { return succs_.size(); }

    static constexpr std::size_t kUnreachable = SIZE_MAX;

  private:
    const ir::Function &func_;
    std::vector<std::vector<ir::BlockId>> succs_;
    std::vector<std::vector<ir::BlockId>> preds_;
    std::vector<ir::BlockId> rpo_;
    std::vector<std::size_t> rpoIndex_;
};

} // namespace ccr::analysis

#endif // CCR_ANALYSIS_CFG_HH
