/**
 * @file
 * Flow-insensitive, context-insensitive points-to analysis over module
 * globals, in the spirit of the interprocedural analysis the paper
 * relies on (§2.2, §4.1, citing Emami et al.).
 *
 * Each register is mapped to the set of memory structures it may point
 * into: named globals, the (single, blended) heap, or unknown. Loads
 * whose base can only reference named globals are annotated
 * *determinable*; anonymous (heap/unknown) structures are excluded,
 * matching the paper's stated limitation.
 */

#ifndef CCR_ANALYSIS_ALIAS_HH
#define CCR_ANALYSIS_ALIAS_HH

#include <set>
#include <vector>

#include "ir/module.hh"

namespace ccr::analysis
{

/** A points-to set: named globals plus heap/unknown escape bits. */
struct PtSet
{
    std::set<ir::GlobalId> globals;
    bool heap = false;
    bool unknown = false;

    bool empty() const { return globals.empty() && !heap && !unknown; }

    /** Merge @p other in; returns true when this changed. */
    bool mergeFrom(const PtSet &other);

    /** True when the set names only compile-time-known globals. */
    bool
    onlyNamedGlobals() const
    {
        return !globals.empty() && !heap && !unknown;
    }

    bool intersects(const PtSet &other) const;
};

/** Module-wide points-to and memory side-effect summary. */
class AliasAnalysis
{
  public:
    explicit AliasAnalysis(const ir::Module &mod);

    /** What @p reg of function @p f may point to. */
    const PtSet &regPoints(ir::FuncId f, ir::Reg reg) const;

    /** Memory a load/store instruction may access through its base. */
    const PtSet &memAccess(ir::FuncId f, const ir::Inst &inst) const;

    /**
     * True when @p load (a Load in function @p f) accesses only named
     * globals — the compile-time condition for the `determinable`
     * annotation (paper §4.1).
     */
    bool loadDeterminable(ir::FuncId f, const ir::Inst &load) const;

    /** Globals function @p f may write, including through callees. */
    const PtSet &funcWrites(ir::FuncId f) const
    {
        return funcWrites_[f];
    }

    /** Memory function @p f may read, including through callees. */
    const PtSet &funcReads(ir::FuncId f) const { return funcReads_[f]; }

    /** True when every load in @p f (and its callees) is determinable
     *  and the function performs no stores or heap allocation — the
     *  condition for memoizing a whole call (paper §6 future work). */
    bool funcPure(ir::FuncId f) const { return funcPure_[f]; }

    /** True when @p f (transitively) may store to memory at all. */
    bool
    funcWritesMemory(ir::FuncId f) const
    {
        return !funcWrites_[f].empty();
    }

    /** Set ext.determinable on every qualifying load of @p mod.
     *  @p mod must be the module this analysis was built from. */
    void annotateDeterminableLoads(ir::Module &mod) const;

  private:
    const ir::Module &mod_;
    std::vector<std::vector<PtSet>> regPts_; // [func][reg]
    std::vector<PtSet> funcRet_;             // return-value pointees
    std::vector<PtSet> funcWrites_;          // written memory summary
    std::vector<PtSet> funcReads_;           // read memory summary
    std::vector<bool> funcPure_;             // see funcPure()

    bool transferFunction(const ir::Function &func);
    void summarizePurity();
};

} // namespace ccr::analysis

#endif // CCR_ANALYSIS_ALIAS_HH
