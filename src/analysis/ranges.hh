/**
 * @file
 * Symbolic access-range inference over the Lcode IR (the DawnCC
 * `PtrRangeAnalysis` direction, adapted to named globals).
 *
 * For every Load/Store of one function the analysis tries to bound the
 * effective address as a single global plus a byte-offset interval:
 * `g[lo..hi]`. Addresses are tracked through a small abstract domain —
 * constant intervals, global-base pointers with offset intervals, and
 * ⊤ — with saturating interval arithmetic and widening to ⊤ at join
 * points that keep growing. Masked indices (`and` with a non-negative
 * constant) re-bound even ⊤ operands, which is what makes bounded
 * table lookups inside loops inferable without loop-trip information.
 *
 * The former uses the result two ways: a memory-dependent region can
 * claim `reads g[lo..hi]` instead of forfeiting precision to the whole
 * structure, and an `invalidate` after a store whose written range
 * provably misses every claimed range can be elided entirely.
 * Conservative fallback everywhere: an unknown address simply keeps
 * the pre-range (whole-structure) behavior.
 */

#ifndef CCR_ANALYSIS_RANGES_HH
#define CCR_ANALYSIS_RANGES_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/module.hh"

namespace ccr::analysis
{

/** Abstract value of one register at one program point. */
struct RangeValue
{
    enum class Kind : std::uint8_t
    {
        Bottom,    ///< unreachable / uninitialized
        Interval,  ///< integer in [lo, hi]
        GlobalPtr, ///< addressOf(global) + offset, offset in [lo, hi]
        Top        ///< anything
    };

    Kind kind = Kind::Bottom;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    ir::GlobalId global = ir::kNoGlobal;

    static RangeValue top() { return {Kind::Top, 0, 0, ir::kNoGlobal}; }

    static RangeValue
    interval(std::int64_t lo, std::int64_t hi)
    {
        return {Kind::Interval, lo, hi, ir::kNoGlobal};
    }

    static RangeValue
    globalPtr(ir::GlobalId g, std::int64_t lo, std::int64_t hi)
    {
        return {Kind::GlobalPtr, lo, hi, g};
    }

    bool isInterval() const { return kind == Kind::Interval; }
    bool isGlobalPtr() const { return kind == Kind::GlobalPtr; }

    /** True when this is an Interval holding exactly one value. */
    bool
    isConst() const
    {
        return kind == Kind::Interval && lo == hi;
    }

    /** Least upper bound with @p other; returns true when changed.
     *  @p widen forces any growing bound straight to ⊤. */
    bool join(const RangeValue &other, bool widen);

    bool operator==(const RangeValue &) const = default;
};

/** Byte range of one memory access, resolved to a single global. */
struct AccessRange
{
    /** When false the access could not be bounded (⊤ base, multiple
     *  possible globals, or interval base): callers must fall back to
     *  whole-structure behavior. */
    bool known = false;

    ir::GlobalId global = ir::kNoGlobal;

    /** First/last byte offset touched within the global, inclusive,
     *  clamped into [0, sizeBytes). */
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    /** True when [lo..hi] covers every byte of the global. */
    bool coversWhole(const ir::Global &g) const
    {
        return lo == 0 && g.sizeBytes != 0 && hi == g.sizeBytes - 1;
    }
};

/**
 * Per-function forward dataflow over RangeValue register states.
 * Parameters enter as ⊤ (callers are unknown); all other registers
 * start at 0, matching the emulator's zero-initialized frames.
 */
class RangeAnalysis
{
  public:
    RangeAnalysis(const ir::Module &mod, const ir::Function &func);

    /**
     * Access range of @p inst, a Load or Store of the analyzed
     * function. `known == false` when the address could not be pinned
     * to one global with bounded offsets.
     */
    AccessRange
    accessRange(const ir::Inst &inst) const
    {
        const auto it = access_.find(inst.uid);
        return it == access_.end() ? AccessRange{} : it->second;
    }

    /** Abstract transfer of one instruction over @p regs (exposed for
     *  the unit tests; @p mod is the module the function belongs to). */
    static RangeValue eval(const ir::Module &mod, const ir::Inst &inst,
                           const std::vector<RangeValue> &regs);

  private:
    std::unordered_map<ir::InstUid, AccessRange> access_;
};

/** Union of two byte ranges ([min lo, max hi]). */
inline void
unionRange(std::uint64_t &lo, std::uint64_t &hi, std::uint64_t add_lo,
           std::uint64_t add_hi)
{
    if (add_lo < lo)
        lo = add_lo;
    if (add_hi > hi)
        hi = add_hi;
}

} // namespace ccr::analysis

#endif // CCR_ANALYSIS_RANGES_HH
