#include "analysis/dominators.hh"

#include "support/logging.hh"

namespace ccr::analysis
{

Dominators::Dominators(const Cfg &cfg) : cfg_(cfg)
{
    idom_.assign(cfg.numBlocks(), ir::kNoBlock);
    const auto &rpo = cfg.rpo();
    if (rpo.empty())
        return;

    const ir::BlockId entry = rpo.front();
    idom_[entry] = entry;

    auto intersect = [&](ir::BlockId a, ir::BlockId b) {
        while (a != b) {
            while (cfg_.rpoIndex(a) > cfg_.rpoIndex(b))
                a = idom_[a];
            while (cfg_.rpoIndex(b) > cfg_.rpoIndex(a))
                b = idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto b : rpo) {
            if (b == entry)
                continue;
            ir::BlockId new_idom = ir::kNoBlock;
            for (const auto p : cfg.preds(b)) {
                if (!cfg.reachable(p) || idom_[p] == ir::kNoBlock)
                    continue;
                new_idom = new_idom == ir::kNoBlock
                               ? p
                               : intersect(p, new_idom);
            }
            if (new_idom != ir::kNoBlock && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
}

bool
Dominators::dominates(ir::BlockId a, ir::BlockId b) const
{
    if (!cfg_.reachable(a) || !cfg_.reachable(b))
        return false;
    ir::BlockId cur = b;
    while (true) {
        if (cur == a)
            return true;
        const ir::BlockId up = idom_[cur];
        if (up == cur || up == ir::kNoBlock)
            return false;
        cur = up;
    }
}

} // namespace ccr::analysis
