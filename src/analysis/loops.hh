/**
 * @file
 * Natural-loop detection from back edges. Cyclic RCR formation (paper
 * §4.4) operates on the innermost loops found here.
 */

#ifndef CCR_ANALYSIS_LOOPS_HH
#define CCR_ANALYSIS_LOOPS_HH

#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"

namespace ccr::analysis
{

/** One natural loop: header plus member blocks. */
struct Loop
{
    ir::BlockId header = ir::kNoBlock;

    /** All blocks in the loop body, including the header. */
    std::vector<ir::BlockId> blocks;

    /** Blocks inside the loop with an edge leaving the loop. */
    std::vector<ir::BlockId> exitingBlocks;

    /** Loop nesting depth (1 = outermost). */
    int depth = 1;

    /** True when no other detected loop is nested inside this one. */
    bool innermost = true;

    bool contains(ir::BlockId b) const;
};

/** Find all natural loops of a function. */
class LoopInfo
{
  public:
    LoopInfo(const Cfg &cfg, const Dominators &dom);

    const std::vector<Loop> &loops() const { return loops_; }

    /** Innermost loops only. */
    std::vector<const Loop *> innermostLoops() const;

    /** The innermost loop containing @p b, or nullptr. */
    const Loop *loopFor(ir::BlockId b) const;

  private:
    std::vector<Loop> loops_;
    std::vector<int> loopIndex_; // innermost loop per block, -1 if none
};

} // namespace ccr::analysis

#endif // CCR_ANALYSIS_LOOPS_HH
