/**
 * @file
 * Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm.
 */

#ifndef CCR_ANALYSIS_DOMINATORS_HH
#define CCR_ANALYSIS_DOMINATORS_HH

#include <vector>

#include "analysis/cfg.hh"

namespace ccr::analysis
{

/** Immediate-dominator tree over a Cfg. */
class Dominators
{
  public:
    explicit Dominators(const Cfg &cfg);

    /** Immediate dominator of @p b; the entry's idom is itself.
     *  kNoBlock for unreachable blocks. */
    ir::BlockId idom(ir::BlockId b) const { return idom_[b]; }

    /** True when @p a dominates @p b (reflexive). */
    bool dominates(ir::BlockId a, ir::BlockId b) const;

  private:
    const Cfg &cfg_;
    std::vector<ir::BlockId> idom_;
};

} // namespace ccr::analysis

#endif // CCR_ANALYSIS_DOMINATORS_HH
