#include "analysis/ranges.hh"

#include <algorithm>
#include <limits>

#include "ir/inst.hh"

namespace ccr::analysis
{

namespace
{

using ir::Opcode;

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

std::int64_t
satAdd(std::int64_t a, std::int64_t b)
{
    std::int64_t r;
    if (__builtin_add_overflow(a, b, &r))
        return b > 0 ? kMax : kMin;
    return r;
}

std::int64_t
satSub(std::int64_t a, std::int64_t b)
{
    std::int64_t r;
    if (__builtin_sub_overflow(a, b, &r))
        return b < 0 ? kMax : kMin;
    return r;
}

std::int64_t
satMul(std::int64_t a, std::int64_t b)
{
    std::int64_t r;
    if (__builtin_mul_overflow(a, b, &r))
        return (a > 0) == (b > 0) ? kMax : kMin;
    return r;
}

RangeValue
mulIntervals(const RangeValue &a, const RangeValue &b)
{
    const std::int64_t c[4] = {satMul(a.lo, b.lo), satMul(a.lo, b.hi),
                               satMul(a.hi, b.lo), satMul(a.hi, b.hi)};
    return RangeValue::interval(*std::min_element(c, c + 4),
                                *std::max_element(c, c + 4));
}

/** Left shift is exact (no wrap) only when the operand fits. */
RangeValue
shlInterval(const RangeValue &a, std::int64_t k)
{
    if (k < 0 || k > 62 || a.lo < 0)
        return RangeValue::top();
    if (a.hi > (kMax >> k))
        return RangeValue::top();
    return RangeValue::interval(a.lo << k, a.hi << k);
}

} // namespace

bool
RangeValue::join(const RangeValue &other, bool widen)
{
    if (other.kind == Kind::Bottom)
        return false;
    if (kind == Kind::Bottom) {
        *this = other;
        return true;
    }
    if (kind == Kind::Top)
        return false;
    if (other.kind == Kind::Top || kind != other.kind
        || (kind == Kind::GlobalPtr && global != other.global)) {
        *this = top();
        return true;
    }
    // Same kind (Interval or same-global GlobalPtr): widen the bounds.
    if (other.lo >= lo && other.hi <= hi)
        return false;
    if (widen) {
        *this = top();
        return true;
    }
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    return true;
}

RangeValue
RangeAnalysis::eval(const ir::Module &mod, const ir::Inst &inst,
                    const std::vector<RangeValue> &regs)
{
    const auto src = [&](ir::Reg r) -> const RangeValue & {
        return regs[r];
    };
    const auto rhs = [&]() -> RangeValue {
        return inst.srcImm ? RangeValue::interval(inst.imm, inst.imm)
                           : src(inst.src2);
    };

    switch (inst.op) {
      case Opcode::MovI:
        return RangeValue::interval(inst.imm, inst.imm);
      case Opcode::Mov:
        return src(inst.src1);
      case Opcode::MovGA:
        return RangeValue::globalPtr(inst.globalId, 0, 0);
      case Opcode::Add: {
        const RangeValue &a = src(inst.src1);
        const RangeValue b = rhs();
        if (a.isInterval() && b.isInterval()) {
            return RangeValue::interval(satAdd(a.lo, b.lo),
                                        satAdd(a.hi, b.hi));
        }
        if (a.isGlobalPtr() && b.isInterval()) {
            return RangeValue::globalPtr(a.global, satAdd(a.lo, b.lo),
                                         satAdd(a.hi, b.hi));
        }
        if (a.isInterval() && b.isGlobalPtr()) {
            return RangeValue::globalPtr(b.global, satAdd(a.lo, b.lo),
                                         satAdd(a.hi, b.hi));
        }
        return RangeValue::top();
      }
      case Opcode::Sub: {
        const RangeValue &a = src(inst.src1);
        const RangeValue b = rhs();
        if (a.isInterval() && b.isInterval()) {
            return RangeValue::interval(satSub(a.lo, b.hi),
                                        satSub(a.hi, b.lo));
        }
        if (a.isGlobalPtr() && b.isInterval()) {
            return RangeValue::globalPtr(a.global, satSub(a.lo, b.hi),
                                         satSub(a.hi, b.lo));
        }
        return RangeValue::top();
      }
      case Opcode::Mul: {
        const RangeValue &a = src(inst.src1);
        const RangeValue b = rhs();
        if (a.isInterval() && b.isInterval())
            return mulIntervals(a, b);
        return RangeValue::top();
      }
      case Opcode::Shl: {
        const RangeValue &a = src(inst.src1);
        const RangeValue b = rhs();
        if (a.isInterval() && b.isConst())
            return shlInterval(a, b.lo);
        return RangeValue::top();
      }
      case Opcode::Shr: {
        // Logical shift: exact only for non-negative operands.
        const RangeValue &a = src(inst.src1);
        const RangeValue b = rhs();
        if (a.isInterval() && a.lo >= 0 && b.isConst() && b.lo >= 0
            && b.lo <= 63) {
            return RangeValue::interval(a.lo >> b.lo, a.hi >> b.lo);
        }
        return RangeValue::top();
      }
      case Opcode::Sra: {
        const RangeValue &a = src(inst.src1);
        const RangeValue b = rhs();
        if (a.isInterval() && b.isConst() && b.lo >= 0 && b.lo <= 63)
            return RangeValue::interval(a.lo >> b.lo, a.hi >> b.lo);
        return RangeValue::top();
      }
      case Opcode::And: {
        // A non-negative constant mask bounds the result to [0, mask]
        // whatever the other operand holds — including ⊤, which is how
        // masked table indices stay inferable inside loops.
        const RangeValue &a = src(inst.src1);
        const RangeValue b = rhs();
        if (b.isConst() && b.lo >= 0)
            return RangeValue::interval(0, b.lo);
        if (a.isConst() && a.lo >= 0)
            return RangeValue::interval(0, a.lo);
        if (a.isInterval() && b.isInterval() && a.lo >= 0 && b.lo >= 0) {
            return RangeValue::interval(0, std::min(a.hi, b.hi));
        }
        return RangeValue::top();
      }
      case Opcode::Or:
      case Opcode::Xor: {
        // For non-negative operands both are bounded by the sum.
        const RangeValue &a = src(inst.src1);
        const RangeValue b = rhs();
        if (a.isInterval() && b.isInterval() && a.lo >= 0 && b.lo >= 0)
            return RangeValue::interval(0, satAdd(a.hi, b.hi));
        return RangeValue::top();
      }
      case Opcode::Div: {
        const RangeValue &a = src(inst.src1);
        const RangeValue b = rhs();
        if (a.isInterval() && b.isConst() && b.lo > 0)
            return RangeValue::interval(a.lo / b.lo, a.hi / b.lo);
        return RangeValue::top();
      }
      case Opcode::Rem: {
        const RangeValue &a = src(inst.src1);
        const RangeValue b = rhs();
        if (b.isConst() && b.lo > 0) {
            if (a.isInterval() && a.lo >= 0)
                return RangeValue::interval(0, b.lo - 1);
            return RangeValue::interval(-(b.lo - 1), b.lo - 1);
        }
        return RangeValue::top();
      }
      case Opcode::CmpEq:
      case Opcode::CmpNe:
      case Opcode::CmpLt:
      case Opcode::CmpLe:
      case Opcode::CmpGt:
      case Opcode::CmpGe:
      case Opcode::CmpLtU:
      case Opcode::CmpGeU:
      case Opcode::FCmpLt:
        return RangeValue::interval(0, 1);
      default:
        // Load, Alloc, Call results, float arithmetic, conversions.
        return RangeValue::top();
    }
    (void)mod;
}

RangeAnalysis::RangeAnalysis(const ir::Module &mod,
                             const ir::Function &func)
{
    const auto nregs = static_cast<std::size_t>(func.numRegs());
    const std::size_t nblocks = func.numBlocks();

    // In-state per block. The entry block starts with parameters at ⊤
    // and every other register at 0 (frames are zero-initialized).
    std::vector<std::vector<RangeValue>> in(
        nblocks, std::vector<RangeValue>(nregs));
    std::vector<RangeValue> &entry = in[func.entry()];
    for (std::size_t r = 0; r < nregs; ++r) {
        entry[r] = static_cast<int>(r) < func.numParams()
                       ? RangeValue::top()
                       : RangeValue::interval(0, 0);
    }

    // Round-robin to fixpoint with widening after a few passes; the
    // widen-to-⊤ acceleration plus the monotone transfers bound the
    // pass count tightly in practice.
    constexpr int kWidenAfterPass = 3;
    constexpr int kMaxPasses = 64;
    std::vector<RangeValue> state(nregs);
    bool changed = true;
    for (int pass = 0; changed && pass < kMaxPasses; ++pass) {
        changed = false;
        const bool widen = pass >= kWidenAfterPass;
        for (const auto &bb : func.blocks()) {
            if (!bb.isTerminated())
                continue;
            state = in[bb.id()];
            for (const auto &inst : bb.insts()) {
                if (inst.hasDst())
                    state[inst.dst] = eval(mod, inst, state);
            }
            for (const ir::BlockId s : bb.successors()) {
                if (s >= nblocks)
                    continue;
                std::vector<RangeValue> &target = in[s];
                for (std::size_t r = 0; r < nregs; ++r) {
                    if (target[r].join(state[r], widen))
                        changed = true;
                }
            }
        }
    }
    if (changed) {
        // Did not converge inside the cap (should not happen with the
        // widening); everything becomes ⊤ so the results stay sound.
        for (auto &block_in : in)
            block_in.assign(nregs, RangeValue::top());
    }

    // Final pass: resolve every Load/Store address against the fixed
    // point. Out-of-bounds offsets clamp into the global (the
    // system-wide convention: a g-based access is attributed to g).
    for (const auto &bb : func.blocks()) {
        state = in[bb.id()];
        for (const auto &inst : bb.insts()) {
            if (inst.isLoad() || inst.isStore()) {
                const RangeValue &base = state[inst.src1];
                if (base.isGlobalPtr()) {
                    const ir::Global &g = mod.global(base.global);
                    const std::int64_t bytes = static_cast<std::int64_t>(
                        ir::memSizeBytes(inst.size));
                    std::int64_t lo = satAdd(base.lo, inst.imm);
                    std::int64_t hi = satAdd(satAdd(base.hi, inst.imm),
                                             bytes - 1);
                    const auto last = static_cast<std::int64_t>(
                        g.sizeBytes == 0 ? 0 : g.sizeBytes - 1);
                    lo = std::clamp<std::int64_t>(lo, 0, last);
                    hi = std::clamp<std::int64_t>(hi, lo, last);
                    AccessRange ar;
                    ar.known = true;
                    ar.global = base.global;
                    ar.lo = static_cast<std::uint64_t>(lo);
                    ar.hi = static_cast<std::uint64_t>(hi);
                    access_.emplace(inst.uid, ar);
                }
            }
            if (inst.hasDst())
                state[inst.dst] = eval(mod, inst, state);
        }
    }
}

} // namespace ccr::analysis
