#include "ir/diagnostic.hh"

#include <sstream>

#include "obs/json.hh"

namespace ccr::ir
{

std::string_view
severityName(Severity s)
{
    switch (s) {
      case Severity::Error: return "error";
      case Severity::Warn: return "warn";
      case Severity::Note: return "note";
    }
    return "error";
}

Diagnostic
makeError(std::string rule, std::string message, SourceLoc loc)
{
    return {Severity::Error, std::move(rule), std::move(message), loc};
}

Diagnostic
makeWarn(std::string rule, std::string message, SourceLoc loc)
{
    return {Severity::Warn, std::move(rule), std::move(message), loc};
}

Diagnostic
makeNote(std::string rule, std::string message, SourceLoc loc)
{
    return {Severity::Note, std::move(rule), std::move(message), loc};
}

std::size_t
countErrors(const std::vector<Diagnostic> &diags)
{
    std::size_t n = 0;
    for (const auto &d : diags) {
        if (d.severity == Severity::Error)
            ++n;
    }
    return n;
}

bool
hasErrors(const std::vector<Diagnostic> &diags)
{
    return countErrors(diags) > 0;
}

std::string
formatDiagnostic(const Diagnostic &d, std::string_view filename)
{
    std::ostringstream os;
    if (!filename.empty())
        os << filename << ":";
    if (d.loc.valid())
        os << d.loc.line << ":" << d.loc.col << ":";
    if (!filename.empty() || d.loc.valid())
        os << " ";
    os << severityName(d.severity) << ": ";
    if (!d.rule.empty())
        os << "[" << d.rule << "] ";
    os << d.message;
    return os.str();
}

std::string
formatDiagnostics(const std::vector<Diagnostic> &diags,
                  std::string_view filename)
{
    std::string out;
    for (const auto &d : diags) {
        out += formatDiagnostic(d, filename);
        out += "\n";
    }
    return out;
}

obs::Json
diagnosticToJson(const Diagnostic &d)
{
    obs::Json j = obs::Json::object();
    j["severity"] = obs::Json(std::string(severityName(d.severity)));
    j["rule"] = obs::Json(d.rule);
    j["message"] = obs::Json(d.message);
    if (d.loc.valid()) {
        j["line"] = obs::Json(d.loc.line);
        j["col"] = obs::Json(d.loc.col);
    }
    return j;
}

obs::Json
diagnosticsToJson(const std::vector<Diagnostic> &diags)
{
    obs::Json arr = obs::Json::array();
    for (const auto &d : diags)
        arr.push(diagnosticToJson(d));
    return arr;
}

} // namespace ccr::ir
