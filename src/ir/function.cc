#include "ir/function.hh"

#include "support/logging.hh"

namespace ccr::ir
{

std::vector<BlockId>
BasicBlock::successors() const
{
    if (insts_.empty())
        return {};
    const Inst &term = insts_.back();
    switch (term.op) {
      case Opcode::Br:
        if (term.target == term.target2)
            return {term.target};
        return {term.target, term.target2};
      case Opcode::Jump:
      case Opcode::Call:
        return {term.target};
      case Opcode::Reuse:
        return {term.target, term.target2};
      case Opcode::Ret:
      case Opcode::Halt:
        return {};
      default:
        return {};
    }
}

Reg
Function::newReg()
{
    ccr_assert(nextReg_ < kNoReg - 1, "register space exhausted in ",
               name_);
    return nextReg_++;
}

BlockId
Function::newBlock()
{
    const auto id = static_cast<BlockId>(blocks_.size());
    blocks_.emplace_back(id);
    if (entry_ == kNoBlock)
        entry_ = id;
    return id;
}

std::size_t
Function::numInsts() const
{
    std::size_t n = 0;
    for (const auto &bb : blocks_)
        n += bb.size();
    return n;
}

bool
Function::findInst(InstUid uid, BlockId &bb, std::size_t &idx) const
{
    for (const auto &blk : blocks_) {
        for (std::size_t i = 0; i < blk.size(); ++i) {
            if (blk.inst(i).uid == uid) {
                bb = blk.id();
                idx = i;
                return true;
            }
        }
    }
    return false;
}

} // namespace ccr::ir
