#include "ir/module.hh"

#include "support/logging.hh"

namespace ccr::ir
{

Function &
Module::addFunction(const std::string &name, int num_params)
{
    ccr_assert(findFunction(name) == nullptr, "duplicate function ", name);
    const auto id = static_cast<FuncId>(functions_.size());
    functions_.push_back(std::make_unique<Function>(id, name, num_params));
    if (entry_ == kNoFunc)
        entry_ = id;
    return *functions_.back();
}

Global &
Module::addGlobal(const std::string &name, std::uint64_t size_bytes,
                  bool is_const)
{
    ccr_assert(findGlobal(name) == nullptr, "duplicate global ", name);
    Global g;
    g.id = static_cast<GlobalId>(globals_.size());
    g.name = name;
    g.sizeBytes = size_bytes;
    g.isConst = is_const;
    globals_.push_back(std::move(g));
    return globals_.back();
}

Function *
Module::findFunction(const std::string &name)
{
    for (auto &f : functions_) {
        if (f->name() == name)
            return f.get();
    }
    return nullptr;
}

const Function *
Module::findFunction(const std::string &name) const
{
    for (const auto &f : functions_) {
        if (f->name() == name)
            return f.get();
    }
    return nullptr;
}

Global *
Module::findGlobal(const std::string &name)
{
    for (auto &g : globals_) {
        if (g.name == name)
            return &g;
    }
    return nullptr;
}

const Global *
Module::findGlobal(const std::string &name) const
{
    for (const auto &g : globals_) {
        if (g.name == name)
            return &g;
    }
    return nullptr;
}

std::size_t
Module::numInsts() const
{
    std::size_t n = 0;
    for (const auto &f : functions_)
        n += f->numInsts();
    return n;
}

std::unique_ptr<Module>
Module::clone() const
{
    auto m = std::make_unique<Module>(name_);
    m->globals_ = globals_;
    m->entry_ = entry_;
    m->nextRegion_ = nextRegion_;
    m->functions_.reserve(functions_.size());
    for (const auto &f : functions_)
        m->functions_.push_back(std::make_unique<Function>(*f));
    return m;
}

} // namespace ccr::ir
