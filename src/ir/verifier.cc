#include "ir/verifier.hh"

#include <sstream>

#include "support/logging.hh"

namespace ccr::ir
{

namespace
{

void
problem(std::vector<Diagnostic> &diags, const char *rule,
        const Function &func, BlockId bb, const std::string &msg)
{
    std::ostringstream os;
    os << func.name() << ":B" << bb << ": " << msg;
    diags.push_back(makeError(rule, os.str()));
}

bool
regOk(const Function &func, Reg r)
{
    return r != kNoReg && r < func.numRegs();
}

void
checkInst(const Module &mod, const Function &func, const BasicBlock &bb,
          const Inst &inst, bool is_last, std::vector<Diagnostic> &diags)
{
    auto err = [&](const char *rule, const std::string &msg) {
        problem(diags, rule, func, bb.id(),
                msg + " in '" + inst.toString() + "'");
    };

    if (inst.isControlInst() && !is_last)
        err("ir.block.control-mid", "control instruction not at block end");
    if (is_last && !inst.isControlInst())
        err("ir.block.bad-terminator",
            "block terminator is not a control instruction");

    // Destination register.
    if (inst.hasDst() && !regOk(func, inst.dst))
        err("ir.inst.bad-dst", "bad destination register");

    // Source registers.
    const int nsrc = inst.numRegSources();
    for (int i = 0; i < nsrc; ++i) {
        if (!regOk(func, inst.regSource(i)))
            err("ir.inst.bad-src", "bad source register");
    }

    const auto nblocks = static_cast<BlockId>(func.numBlocks());
    auto blockOk = [&](BlockId b) { return b < nblocks; };

    switch (inst.op) {
      case Opcode::Br:
        if (!blockOk(inst.target) || !blockOk(inst.target2))
            err("ir.inst.bad-target", "branch target out of range");
        break;
      case Opcode::Jump:
        if (!blockOk(inst.target))
            err("ir.inst.bad-target", "jump target out of range");
        break;
      case Opcode::Call:
        if (inst.callee >= mod.numFunctions()) {
            err("ir.call.unknown-callee", "call to unknown function");
        } else if (mod.function(inst.callee).numParams()
                   != inst.numArgs) {
            err("ir.call.arg-count", "call argument count mismatch");
        }
        if (!blockOk(inst.target))
            err("ir.inst.bad-target", "call continuation out of range");
        for (int i = 0; i < inst.numArgs; ++i) {
            if (!regOk(func, inst.args[i]))
                err("ir.call.bad-arg", "bad call argument register");
        }
        break;
      case Opcode::Reuse:
        if (!blockOk(inst.target) || !blockOk(inst.target2))
            err("ir.inst.bad-target", "reuse target out of range");
        if (inst.regionId == kNoRegion)
            err("ir.reuse.no-region", "reuse without region id");
        break;
      case Opcode::Invalidate:
        if (inst.regionId == kNoRegion)
            err("ir.reuse.no-region", "invalidate without region id");
        break;
      case Opcode::MovGA:
        if (inst.globalId >= mod.numGlobals())
            err("ir.inst.bad-global", "movga to unknown global");
        break;
      default:
        break;
    }

    // CCR extension sanity.
    if (inst.ext.liveOut && !inst.hasDst()) {
        err("ir.ext.liveout-no-dst",
            "live-out extension on instruction without destination");
    }
    if ((inst.ext.regionEnd || inst.ext.regionExit)
        && !inst.isControlInst()) {
        err("ir.ext.marker-non-control",
            "region end/exit extension on non-control instruction");
    }
    if (inst.ext.regionEnd && inst.ext.regionExit) {
        err("ir.ext.end-and-exit",
            "instruction marked both region-end and region-exit");
    }
    if (inst.ext.determinable && inst.op != Opcode::Load) {
        err("ir.ext.det-non-load",
            "determinable extension on non-load");
    }
}

} // namespace

void
verifyFunction(const Module &mod, const Function &func,
               std::vector<Diagnostic> &diags)
{
    if (func.numBlocks() == 0) {
        diags.push_back(makeError("ir.func.no-blocks",
                                  func.name()
                                      + ": function has no blocks"));
        return;
    }
    if (func.entry() >= func.numBlocks()) {
        diags.push_back(makeError("ir.func.bad-entry",
                                  func.name() + ": bad entry block"));
        return;
    }

    for (const auto &bb : func.blocks()) {
        if (bb.empty()) {
            problem(diags, "ir.block.empty", func, bb.id(),
                    "empty basic block");
            continue;
        }
        if (!bb.isTerminated()) {
            problem(diags, "ir.block.unterminated", func, bb.id(),
                    "unterminated basic block");
        }
        for (std::size_t i = 0; i < bb.size(); ++i) {
            checkInst(mod, func, bb, bb.inst(i), i + 1 == bb.size(),
                      diags);
        }
    }
}

std::vector<Diagnostic>
verifyModule(const Module &mod)
{
    std::vector<Diagnostic> diags;
    if (mod.numFunctions() == 0) {
        diags.push_back(
            makeError("ir.module.no-functions", "module has no functions"));
        return diags;
    }
    if (mod.entryFunction() >= mod.numFunctions()) {
        diags.push_back(makeError("ir.module.bad-entry",
                                  "module entry function invalid"));
    }
    for (std::size_t f = 0; f < mod.numFunctions(); ++f)
        verifyFunction(mod, mod.function(static_cast<FuncId>(f)), diags);
    return diags;
}

std::vector<std::string>
verify(const Module &mod)
{
    std::vector<std::string> errors;
    for (const auto &d : verifyModule(mod))
        errors.push_back(d.message);
    return errors;
}

void
verifyOrDie(const Module &mod)
{
    const auto diags = verifyModule(mod);
    if (!diags.empty()) {
        for (const auto &d : diags)
            std::cerr << "verify: " << formatDiagnostic(d) << "\n";
        ccr_fatal("IR verification failed for module '", mod.name(),
                  "': ", diags.front().message);
    }
}

} // namespace ccr::ir
