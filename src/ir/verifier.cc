#include "ir/verifier.hh"

#include <sstream>

#include "support/logging.hh"

namespace ccr::ir
{

namespace
{

void
problem(std::vector<std::string> &errors, const Function &func,
        BlockId bb, const std::string &msg)
{
    std::ostringstream os;
    os << func.name() << ":B" << bb << ": " << msg;
    errors.push_back(os.str());
}

bool
regOk(const Function &func, Reg r)
{
    return r != kNoReg && r < func.numRegs();
}

void
checkInst(const Module &mod, const Function &func, const BasicBlock &bb,
          const Inst &inst, bool is_last, std::vector<std::string> &errors)
{
    auto err = [&](const std::string &msg) {
        problem(errors, func, bb.id(), msg + " in '" + inst.toString()
                + "'");
    };

    if (inst.isControlInst() && !is_last)
        err("control instruction not at block end");
    if (is_last && !inst.isControlInst())
        err("block terminator is not a control instruction");

    // Destination register.
    if (inst.hasDst() && !regOk(func, inst.dst))
        err("bad destination register");

    // Source registers.
    const int nsrc = inst.numRegSources();
    for (int i = 0; i < nsrc; ++i) {
        if (!regOk(func, inst.regSource(i)))
            err("bad source register");
    }

    const auto nblocks = static_cast<BlockId>(func.numBlocks());
    auto blockOk = [&](BlockId b) { return b < nblocks; };

    switch (inst.op) {
      case Opcode::Br:
        if (!blockOk(inst.target) || !blockOk(inst.target2))
            err("branch target out of range");
        break;
      case Opcode::Jump:
        if (!blockOk(inst.target))
            err("jump target out of range");
        break;
      case Opcode::Call:
        if (inst.callee >= mod.numFunctions()) {
            err("call to unknown function");
        } else if (mod.function(inst.callee).numParams()
                   != inst.numArgs) {
            err("call argument count mismatch");
        }
        if (!blockOk(inst.target))
            err("call continuation out of range");
        for (int i = 0; i < inst.numArgs; ++i) {
            if (!regOk(func, inst.args[i]))
                err("bad call argument register");
        }
        break;
      case Opcode::Reuse:
        if (!blockOk(inst.target) || !blockOk(inst.target2))
            err("reuse target out of range");
        if (inst.regionId == kNoRegion)
            err("reuse without region id");
        break;
      case Opcode::Invalidate:
        if (inst.regionId == kNoRegion)
            err("invalidate without region id");
        break;
      case Opcode::MovGA:
        if (inst.globalId >= mod.numGlobals())
            err("movga to unknown global");
        break;
      default:
        break;
    }

    // CCR extension sanity.
    if (inst.ext.liveOut && !inst.hasDst())
        err("live-out extension on instruction without destination");
    if ((inst.ext.regionEnd || inst.ext.regionExit)
        && !inst.isControlInst()) {
        err("region end/exit extension on non-control instruction");
    }
    if (inst.ext.regionEnd && inst.ext.regionExit)
        err("instruction marked both region-end and region-exit");
    if (inst.ext.determinable && inst.op != Opcode::Load)
        err("determinable extension on non-load");
}

} // namespace

void
verifyFunction(const Module &mod, const Function &func,
               std::vector<std::string> &errors)
{
    if (func.numBlocks() == 0) {
        errors.push_back(func.name() + ": function has no blocks");
        return;
    }
    if (func.entry() >= func.numBlocks()) {
        errors.push_back(func.name() + ": bad entry block");
        return;
    }

    for (const auto &bb : func.blocks()) {
        if (bb.empty()) {
            problem(errors, func, bb.id(), "empty basic block");
            continue;
        }
        if (!bb.isTerminated())
            problem(errors, func, bb.id(), "unterminated basic block");
        for (std::size_t i = 0; i < bb.size(); ++i) {
            checkInst(mod, func, bb, bb.inst(i), i + 1 == bb.size(),
                      errors);
        }
    }
}

std::vector<std::string>
verify(const Module &mod)
{
    std::vector<std::string> errors;
    if (mod.numFunctions() == 0) {
        errors.push_back("module has no functions");
        return errors;
    }
    if (mod.entryFunction() >= mod.numFunctions())
        errors.push_back("module entry function invalid");
    for (std::size_t f = 0; f < mod.numFunctions(); ++f)
        verifyFunction(mod, mod.function(static_cast<FuncId>(f)), errors);
    return errors;
}

void
verifyOrDie(const Module &mod)
{
    const auto errors = verify(mod);
    if (!errors.empty()) {
        for (const auto &e : errors)
            std::cerr << "verify: " << e << "\n";
        ccr_fatal("IR verification failed for module '", mod.name(),
                  "': ", errors.front());
    }
}

} // namespace ccr::ir
