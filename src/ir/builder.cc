#include "ir/builder.hh"

#include "support/logging.hh"

namespace ccr::ir
{

Inst &
IRBuilder::emit(Inst inst)
{
    ccr_assert(cur_ != kNoBlock, "no insert point set");
    BasicBlock &bb = func_.block(cur_);
    ccr_assert(!bb.isTerminated(),
               "emitting into terminated block B", bb.id(), " of ",
               func_.name());
    if (inst.uid == kNoUid)
        inst.uid = func_.newUid();
    bb.insts().push_back(inst);
    return bb.insts().back();
}

Reg
IRBuilder::movI(std::int64_t imm)
{
    const Reg dst = func_.newReg();
    movITo(dst, imm);
    return dst;
}

void
IRBuilder::movITo(Reg dst, std::int64_t imm)
{
    Inst i;
    i.op = Opcode::MovI;
    i.dst = dst;
    i.imm = imm;
    emit(i);
}

Reg
IRBuilder::mov(Reg src)
{
    const Reg dst = func_.newReg();
    movTo(dst, src);
    return dst;
}

void
IRBuilder::movTo(Reg dst, Reg src)
{
    Inst i;
    i.op = Opcode::Mov;
    i.dst = dst;
    i.src1 = src;
    emit(i);
}

Reg
IRBuilder::movGA(GlobalId g)
{
    Inst i;
    i.op = Opcode::MovGA;
    i.dst = func_.newReg();
    i.globalId = g;
    emit(i);
    return i.dst;
}

Reg
IRBuilder::binOp(Opcode op, Reg a, Reg b)
{
    const Reg dst = func_.newReg();
    binOpTo(dst, op, a, b);
    return dst;
}

Reg
IRBuilder::binOpI(Opcode op, Reg a, std::int64_t imm)
{
    const Reg dst = func_.newReg();
    binOpITo(dst, op, a, imm);
    return dst;
}

void
IRBuilder::binOpTo(Reg dst, Opcode op, Reg a, Reg b)
{
    ccr_assert(isBinaryAlu(op), "not a binary op: ", opcodeName(op));
    Inst i;
    i.op = op;
    i.dst = dst;
    i.src1 = a;
    i.src2 = b;
    emit(i);
}

void
IRBuilder::binOpITo(Reg dst, Opcode op, Reg a, std::int64_t imm)
{
    ccr_assert(isBinaryAlu(op), "not a binary op: ", opcodeName(op));
    Inst i;
    i.op = op;
    i.dst = dst;
    i.src1 = a;
    i.srcImm = true;
    i.imm = imm;
    emit(i);
}

Reg
IRBuilder::load(Reg base, std::int64_t off, MemSize size,
                bool unsigned_load)
{
    const Reg dst = func_.newReg();
    loadTo(dst, base, off, size, unsigned_load);
    return dst;
}

void
IRBuilder::loadTo(Reg dst, Reg base, std::int64_t off, MemSize size,
                  bool unsigned_load)
{
    Inst i;
    i.op = Opcode::Load;
    i.dst = dst;
    i.src1 = base;
    i.imm = off;
    i.size = size;
    i.unsignedLoad = unsigned_load;
    emit(i);
}

void
IRBuilder::store(Reg base, std::int64_t off, Reg value, MemSize size)
{
    Inst i;
    i.op = Opcode::Store;
    i.src1 = base;
    i.src2 = value;
    i.imm = off;
    i.size = size;
    emit(i);
}

Reg
IRBuilder::allocI(std::int64_t bytes)
{
    Inst i;
    i.op = Opcode::Alloc;
    i.dst = func_.newReg();
    i.srcImm = true;
    i.imm = bytes;
    emit(i);
    return i.dst;
}

void
IRBuilder::br(Reg cond, BlockId taken, BlockId not_taken)
{
    Inst i;
    i.op = Opcode::Br;
    i.src1 = cond;
    i.target = taken;
    i.target2 = not_taken;
    emit(i);
}

void
IRBuilder::jump(BlockId target)
{
    Inst i;
    i.op = Opcode::Jump;
    i.target = target;
    emit(i);
}

Reg
IRBuilder::call(FuncId callee, std::initializer_list<Reg> args,
                BlockId cont)
{
    ccr_assert(args.size() <= kMaxCallArgs, "too many call args");
    Inst i;
    i.op = Opcode::Call;
    i.dst = func_.newReg();
    i.callee = callee;
    i.target = cont;
    i.numArgs = static_cast<std::uint8_t>(args.size());
    int n = 0;
    for (const Reg a : args)
        i.args[n++] = a;
    const Reg dst = i.dst;
    emit(i);
    return dst;
}

void
IRBuilder::callVoid(FuncId callee, std::initializer_list<Reg> args,
                    BlockId cont)
{
    ccr_assert(args.size() <= kMaxCallArgs, "too many call args");
    Inst i;
    i.op = Opcode::Call;
    i.dst = kNoReg;
    i.callee = callee;
    i.target = cont;
    i.numArgs = static_cast<std::uint8_t>(args.size());
    int n = 0;
    for (const Reg a : args)
        i.args[n++] = a;
    emit(i);
}

void
IRBuilder::ret(Reg value)
{
    Inst i;
    i.op = Opcode::Ret;
    i.src1 = value;
    emit(i);
}

void
IRBuilder::halt()
{
    Inst i;
    i.op = Opcode::Halt;
    emit(i);
}

void
IRBuilder::reuse(RegionId region, BlockId hit, BlockId body)
{
    Inst i;
    i.op = Opcode::Reuse;
    i.regionId = region;
    i.target = hit;
    i.target2 = body;
    emit(i);
}

void
IRBuilder::invalidate(RegionId region)
{
    Inst i;
    i.op = Opcode::Invalidate;
    i.regionId = region;
    emit(i);
}

} // namespace ccr::ir
