/**
 * @file
 * Structured diagnostics shared by the IR verifier, the `.lc` text
 * frontend, and the region lint (`ccr_lint`). A diagnostic carries a
 * severity, a stable machine-readable rule id (e.g. "ir.inst.bad-reg"
 * or "lint.region.livein.missing"), a human-readable message, and an
 * optional source location when the module came from `.lc` text.
 */

#ifndef CCR_IR_DIAGNOSTIC_HH
#define CCR_IR_DIAGNOSTIC_HH

#include <string>
#include <string_view>
#include <vector>

namespace ccr::obs
{
class Json;
}

namespace ccr::ir
{

/** A 1-based line/column position in a `.lc` source buffer.
 *  line == 0 means "no source location" (module built in memory). */
struct SourceLoc
{
    int line = 0;
    int col = 0;

    bool valid() const { return line > 0; }
    bool operator==(const SourceLoc &) const = default;
};

enum class Severity
{
    Error,
    Warn,
    Note,
};

/** "error" / "warn" / "note". */
std::string_view severityName(Severity s);

/** One finding. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Stable rule id ("ir.*", "parse.*", "lint.*"). */
    std::string rule;
    std::string message;
    SourceLoc loc;

    bool operator==(const Diagnostic &) const = default;
};

/** Convenience constructors. */
Diagnostic makeError(std::string rule, std::string message,
                     SourceLoc loc = {});
Diagnostic makeWarn(std::string rule, std::string message,
                    SourceLoc loc = {});
Diagnostic makeNote(std::string rule, std::string message,
                    SourceLoc loc = {});

/** Number of Error-severity diagnostics. */
std::size_t countErrors(const std::vector<Diagnostic> &diags);

/** True when at least one diagnostic has Error severity. */
bool hasErrors(const std::vector<Diagnostic> &diags);

/**
 * Render one diagnostic as
 * "[file:][line:col:] severity: [rule] message". The file prefix and
 * the line/col prefix are omitted when @p filename is empty / the loc
 * is invalid.
 */
std::string formatDiagnostic(const Diagnostic &d,
                             std::string_view filename = {});

/** Render all diagnostics, one per line. */
std::string formatDiagnostics(const std::vector<Diagnostic> &diags,
                              std::string_view filename = {});

/**
 * JSON serialization (via ccr_obs):
 * {"severity":..,"rule":..,"message":..[,"line":..,"col":..]}.
 */
obs::Json diagnosticToJson(const Diagnostic &d);
obs::Json diagnosticsToJson(const std::vector<Diagnostic> &diags);

} // namespace ccr::ir

#endif // CCR_IR_DIAGNOSTIC_HH
