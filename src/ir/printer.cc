#include "ir/printer.hh"

#include <sstream>

namespace ccr::ir
{

void
printFunction(const Function &func, std::ostream &os)
{
    os << "func @" << func.name() << "(" << func.numParams()
       << " params, " << func.numRegs() << " regs) entry=B"
       << func.entry() << "\n";
    for (const auto &bb : func.blocks()) {
        os << "  B" << bb.id() << ":\n";
        for (const auto &inst : bb.insts())
            os << "    " << inst.toString() << "\n";
    }
}

void
printModule(const Module &mod, std::ostream &os)
{
    os << "module " << mod.name() << "\n";
    for (std::size_t g = 0; g < mod.numGlobals(); ++g) {
        const Global &gl = mod.global(static_cast<GlobalId>(g));
        os << "global @g" << gl.id << " " << gl.name << " ["
           << gl.sizeBytes << " bytes]" << (gl.isConst ? " const" : "")
           << "\n";
    }
    for (std::size_t f = 0; f < mod.numFunctions(); ++f)
        printFunction(mod.function(static_cast<FuncId>(f)), os);
}

std::string
moduleToString(const Module &mod)
{
    std::ostringstream os;
    printModule(mod, os);
    return os.str();
}

} // namespace ccr::ir
