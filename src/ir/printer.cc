#include "ir/printer.hh"

#include <cstdio>
#include <sstream>

namespace ccr::ir
{

namespace
{

std::string
regName(Reg r)
{
    if (r == kNoReg)
        return "_";
    return "r" + std::to_string(r);
}

std::string
blockName(BlockId b)
{
    if (b == kNoBlock)
        return "B?";
    return "B" + std::to_string(b);
}

/** A function/global reference: `@"name"`. Falls back to the raw id
 *  when the id is out of range (unverified module); that form is
 *  deliberately not parseable. */
std::string
globalRef(const Module &mod, GlobalId id)
{
    if (id >= mod.numGlobals())
        return "@?g" + std::to_string(id);
    return "@" + quoteName(mod.global(id).name);
}

std::string
funcRef(const Module &mod, FuncId id)
{
    if (id >= mod.numFunctions())
        return "@?f" + std::to_string(id);
    return "@" + quoteName(mod.function(id).name());
}

void
printHexBytes(const std::vector<std::uint8_t> &bytes, std::ostream &os)
{
    static const char kHex[] = "0123456789abcdef";
    os << "x\"";
    for (const std::uint8_t b : bytes)
        os << kHex[b >> 4] << kHex[b & 0xf];
    os << "\"";
}

} // namespace

std::string
quoteName(std::string_view name)
{
    std::string out;
    out.reserve(name.size() + 2);
    out += '"';
    for (const char c : name) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\x%02x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
instToString(const Module &mod, const Inst &inst)
{
    // MovGA and Call are the only opcodes whose text depends on the
    // module (name-based operands); everything else matches
    // Inst::toString() exactly.
    std::ostringstream os;
    switch (inst.op) {
      case Opcode::MovGA:
        os << opcodeName(inst.op) << " " << regName(inst.dst) << ", "
           << globalRef(mod, inst.globalId);
        break;
      case Opcode::Call:
        os << opcodeName(inst.op) << " " << regName(inst.dst) << ", "
           << funcRef(mod, inst.callee) << "(";
        for (int i = 0; i < inst.numArgs; ++i)
            os << (i ? ", " : "") << regName(inst.args[i]);
        os << ") -> " << blockName(inst.target);
        break;
      default:
        return inst.toString();
    }
    if (inst.ext.liveOut)
        os << " <live-out>";
    if (inst.ext.regionEnd)
        os << " <region-end>";
    if (inst.ext.regionExit)
        os << " <region-exit>";
    if (inst.ext.determinable)
        os << " <det>";
    return os.str();
}

void
printFunction(const Module &mod, const Function &func, std::ostream &os)
{
    os << "func @" << quoteName(func.name()) << "(" << func.numParams()
       << " params, " << func.numRegs() << " regs) entry=B"
       << func.entry() << "\n";
    for (const auto &bb : func.blocks()) {
        os << "  B" << bb.id() << ":\n";
        for (const auto &inst : bb.insts())
            os << "    " << instToString(mod, inst) << "\n";
    }
}

void
printModule(const Module &mod, std::ostream &os)
{
    os << "module " << quoteName(mod.name()) << "\n";
    if (mod.entryFunction() != kNoFunc &&
        mod.entryFunction() < mod.numFunctions())
        os << "entry @" << quoteName(mod.function(mod.entryFunction()).name())
           << "\n";
    for (std::size_t g = 0; g < mod.numGlobals(); ++g) {
        const Global &gl = mod.global(static_cast<GlobalId>(g));
        os << "global @" << quoteName(gl.name) << " [" << gl.sizeBytes
           << " bytes]" << (gl.isConst ? " const" : "");
        if (!gl.init.empty()) {
            os << " init=";
            printHexBytes(gl.init, os);
        }
        os << "\n";
    }
    for (std::size_t f = 0; f < mod.numFunctions(); ++f)
        printFunction(mod, mod.function(static_cast<FuncId>(f)), os);
}

std::string
moduleToString(const Module &mod)
{
    std::ostringstream os;
    printModule(mod, os);
    return os.str();
}

} // namespace ccr::ir
