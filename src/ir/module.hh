/**
 * @file
 * Module: the compilation unit — functions plus global data.
 */

#ifndef CCR_IR_MODULE_HH
#define CCR_IR_MODULE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hh"
#include "ir/types.hh"

namespace ccr::ir
{

/**
 * A named global data object. The emulator lays globals out in the data
 * segment at load time; MovGA materializes a global's base address.
 *
 * `isConst` marks read-only data (e.g. lookup tables); alias analysis
 * uses it to classify loads as determinable with no invalidation sites.
 */
struct Global
{
    GlobalId id = kNoGlobal;
    std::string name;
    std::uint64_t sizeBytes = 0;
    bool isConst = false;

    /** Optional initial contents (little-endian), may be shorter than
     *  sizeBytes; the rest is zero. */
    std::vector<std::uint8_t> init;
};

/**
 * A module owns its functions and globals. Function and global ids are
 * their vector indices.
 */
class Module
{
  public:
    explicit Module(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Create a function; parameters arrive in registers 0..n-1. */
    Function &addFunction(const std::string &name, int num_params);

    /** Create a zero-initialized global of @p size_bytes bytes. */
    Global &addGlobal(const std::string &name, std::uint64_t size_bytes,
                      bool is_const = false);

    Function &function(FuncId id) { return *functions_[id]; }
    const Function &function(FuncId id) const { return *functions_[id]; }

    /** Look up a function by name; nullptr when absent. */
    Function *findFunction(const std::string &name);
    const Function *findFunction(const std::string &name) const;

    Global &global(GlobalId id) { return globals_[id]; }
    const Global &global(GlobalId id) const { return globals_[id]; }

    /** Look up a global by name; nullptr when absent. */
    Global *findGlobal(const std::string &name);
    const Global *findGlobal(const std::string &name) const;

    std::size_t numFunctions() const { return functions_.size(); }
    std::size_t numGlobals() const { return globals_.size(); }

    FuncId entryFunction() const { return entry_; }
    void setEntryFunction(FuncId f) { entry_ = f; }

    /** Allocate a module-unique reuse-region id. */
    RegionId newRegionId() { return nextRegion_++; }
    RegionId regionIdBound() const { return nextRegion_; }

    /** Raise the region-id allocator so future newRegionId() calls
     *  return ids >= @p bound. Used by the text parser to keep region
     *  ids found in source from colliding with later-formed regions.
     *  Never lowers the bound. */
    void
    reserveRegionIds(RegionId bound)
    {
        if (bound > nextRegion_)
            nextRegion_ = bound;
    }

    /** Total static instructions across all functions. */
    std::size_t numInsts() const;

    /**
     * Deep-copy the module: functions, globals, entry point, and the
     * region-id allocator. Clones are fully independent, so an
     * immutable template module can be built (and optimized) once and
     * cheaply instantiated per experiment run — region formation and
     * the optimizer both rewrite modules in place. Instruction uids
     * are preserved, so profile data gathered on one clone applies to
     * any sibling clone.
     */
    std::unique_ptr<Module> clone() const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<Function>> functions_;
    std::vector<Global> globals_;
    FuncId entry_ = kNoFunc;
    RegionId nextRegion_ = 0;
};

} // namespace ccr::ir

#endif // CCR_IR_MODULE_HH
