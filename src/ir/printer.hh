/**
 * @file
 * Text rendering of functions and modules. The module form is the
 * canonical `.lc` syntax: everything printed here is re-parseable by
 * text::parseModule, and `print(parse(print(m))) == print(m)` holds
 * for any verified module (see docs/WORKLOADS.md for the grammar).
 */

#ifndef CCR_IR_PRINTER_HH
#define CCR_IR_PRINTER_HH

#include <ostream>
#include <string>
#include <string_view>

#include "ir/module.hh"

namespace ccr::ir
{

/** Quote a name for `.lc` text: wraps in double quotes and escapes
 *  backslash, quote, and control characters (\n \t \r \xHH). */
std::string quoteName(std::string_view name);

/** Render one instruction in `.lc` syntax. Differs from
 *  Inst::toString() only for MovGA and Call, whose global/function
 *  operands are printed by quoted name (resolved through @p mod)
 *  instead of by numeric id. */
std::string instToString(const Module &mod, const Inst &inst);

/** Print one function as `.lc` text (header, blocks, instructions). */
void printFunction(const Module &mod, const Function &func,
                   std::ostream &os);

/** Print the whole module: header, entry, globals, then functions. */
void printModule(const Module &mod, std::ostream &os);

/** Convenience: module text as a string. */
std::string moduleToString(const Module &mod);

} // namespace ccr::ir

#endif // CCR_IR_PRINTER_HH
