/**
 * @file
 * Text rendering of functions and modules, for debugging and tests.
 */

#ifndef CCR_IR_PRINTER_HH
#define CCR_IR_PRINTER_HH

#include <ostream>
#include <string>

#include "ir/module.hh"

namespace ccr::ir
{

/** Print one function as annotated text. */
void printFunction(const Function &func, std::ostream &os);

/** Print the whole module (globals then functions). */
void printModule(const Module &mod, std::ostream &os);

/** Convenience: module text as a string. */
std::string moduleToString(const Module &mod);

} // namespace ccr::ir

#endif // CCR_IR_PRINTER_HH
