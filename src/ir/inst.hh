/**
 * @file
 * The Inst structure: one three-address instruction, including the CCR
 * instruction-extension bits (paper §3.2).
 */

#ifndef CCR_IR_INST_HH
#define CCR_IR_INST_HH

#include <array>
#include <cstdint>
#include <string>

#include "ir/opcode.hh"
#include "ir/types.hh"

namespace ccr::ir
{

/** Maximum register arguments a Call may pass. */
constexpr int kMaxCallArgs = 8;

/**
 * CCR instruction-set extension bits. The paper adds per-instruction
 * extensions rather than new opcodes for these: a live-out marker on
 * value-producing instructions inside a region, and region-end /
 * region-exit markers on control instructions.
 */
struct InstExt
{
    /** Destination is live-out of the enclosing reuse region; record it
     *  in the output bank during memoization mode. */
    bool liveOut = false;

    /** Control instruction terminates the region: commits the CI. */
    bool regionEnd = false;

    /** Control instruction is a side exit: aborts memoization. */
    bool regionExit = false;

    /** Load whose underlying memory structure is fully determinable at
     *  compile time (alias analysis annotation, paper §4.1). */
    bool determinable = false;

    bool operator==(const InstExt &) const = default;
};

/**
 * One IR instruction. Field use depends on the opcode:
 *
 *  - binary ALU / compare: dst, src1, and either src2 (srcImm == false)
 *    or imm (srcImm == true);
 *  - MovI: dst, imm; Mov: dst, src1; MovGA: dst, globalId;
 *  - Load: dst = mem[src1 + imm]; Store: mem[src1 + imm] = src2;
 *  - Br: src1 condition, target (taken), target2 (not taken);
 *  - Jump: target; Ret: src1 (or kNoReg);
 *  - Call: callee, args[0..numArgs), dst (or kNoReg), target
 *    (continuation block);
 *  - Reuse: regionId, target (hit/join), target2 (miss/region body);
 *  - Invalidate: regionId.
 */
struct Inst
{
    Opcode op = Opcode::Nop;

    Reg dst = kNoReg;
    Reg src1 = kNoReg;
    Reg src2 = kNoReg;

    /** When true, the second ALU operand is `imm`, not `src2`. */
    bool srcImm = false;

    /** When true, Load zero-extends instead of sign-extending. */
    bool unsignedLoad = false;

    std::int64_t imm = 0;

    MemSize size = MemSize::Dword;

    BlockId target = kNoBlock;
    BlockId target2 = kNoBlock;

    FuncId callee = kNoFunc;
    GlobalId globalId = kNoGlobal;
    RegionId regionId = kNoRegion;

    std::uint8_t numArgs = 0;
    std::array<Reg, kMaxCallArgs> args{};

    /** CCR extension bits. */
    InstExt ext;

    /** Function-unique static id; stable across CCR transformation so
     *  profile data keyed on it survives region formation. */
    InstUid uid = kNoUid;

    /** True when this instruction writes its dst register. */
    bool
    hasDst() const
    {
        return writesDst(op) && dst != kNoReg;
    }

    /** Number of register sources actually read (excluding call args). */
    int
    numRegSources() const
    {
        if (op == Opcode::Store)
            return 2;
        if (isBinaryAlu(op))
            return srcImm ? 1 : 2;
        switch (op) {
          case Opcode::Mov: case Opcode::Load: case Opcode::Br:
          case Opcode::I2F: case Opcode::F2I:
            return 1;
          case Opcode::Alloc:
            return srcImm ? 0 : 1;
          case Opcode::Ret:
            return src1 == kNoReg ? 0 : 1;
          default:
            return 0;
        }
    }

    /** The @p i-th register source (0-based); see numRegSources(). */
    Reg
    regSource(int i) const
    {
        if (op == Opcode::Store)
            return i == 0 ? src1 : src2;
        if (i == 0)
            return src1;
        return src2;
    }

    bool isControlInst() const { return isControl(op); }
    bool isLoad() const { return op == Opcode::Load; }
    bool isStore() const { return op == Opcode::Store; }

    /** Render as text, e.g. "add r3, r1, r2" or "br r5, B2, B3". */
    std::string toString() const;
};

} // namespace ccr::ir

#endif // CCR_IR_INST_HH
