/**
 * @file
 * Basic blocks and functions.
 */

#ifndef CCR_IR_FUNCTION_HH
#define CCR_IR_FUNCTION_HH

#include <string>
#include <vector>

#include "ir/inst.hh"
#include "ir/types.hh"

namespace ccr::ir
{

/**
 * A basic block: a straight-line instruction sequence whose last
 * instruction is the block's only control transfer. There is no implicit
 * fall-through; conditional branches name both targets.
 */
class BasicBlock
{
  public:
    explicit BasicBlock(BlockId id) : id_(id) {}

    BlockId id() const { return id_; }

    std::vector<Inst> &insts() { return insts_; }
    const std::vector<Inst> &insts() const { return insts_; }

    bool empty() const { return insts_.empty(); }
    std::size_t size() const { return insts_.size(); }

    Inst &inst(std::size_t i) { return insts_[i]; }
    const Inst &inst(std::size_t i) const { return insts_[i]; }

    /** The control instruction ending the block (last instruction). */
    const Inst &terminator() const { return insts_.back(); }
    Inst &terminator() { return insts_.back(); }

    /** True once the block ends in a control instruction. */
    bool
    isTerminated() const
    {
        return !insts_.empty() && insts_.back().isControlInst();
    }

    /** Successor block ids implied by the terminator. */
    std::vector<BlockId> successors() const;

  private:
    BlockId id_;
    std::vector<Inst> insts_;
};

/**
 * A function: an entry block, a vector of blocks, and a flat virtual
 * register space. Parameters arrive in registers 0 .. numParams-1.
 */
class Function
{
  public:
    Function(FuncId id, std::string name, int num_params)
        : id_(id), name_(std::move(name)), numParams_(num_params),
          nextReg_(static_cast<Reg>(num_params))
    {}

    FuncId id() const { return id_; }
    const std::string &name() const { return name_; }
    int numParams() const { return numParams_; }

    /** Allocate a fresh virtual register. */
    Reg newReg();

    /** Number of virtual registers allocated so far. */
    int numRegs() const { return nextReg_; }

    /** Create a new empty basic block and return its id. */
    BlockId newBlock();

    BasicBlock &block(BlockId id) { return blocks_[id]; }
    const BasicBlock &block(BlockId id) const { return blocks_[id]; }

    std::size_t numBlocks() const { return blocks_.size(); }

    std::vector<BasicBlock> &blocks() { return blocks_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    BlockId entry() const { return entry_; }
    void setEntry(BlockId b) { entry_ = b; }

    /** Allocate a function-unique static instruction id. */
    InstUid newUid() { return nextUid_++; }

    /** Highest uid allocated so far (exclusive upper bound). */
    InstUid uidBound() const { return nextUid_; }

    /** Total static instruction count across all blocks. */
    std::size_t numInsts() const;

    /** Find the (block, index) of the instruction with @p uid.
     *  Returns false when no such instruction exists. */
    bool findInst(InstUid uid, BlockId &bb, std::size_t &idx) const;

  private:
    FuncId id_;
    std::string name_;
    int numParams_;
    Reg nextReg_;
    InstUid nextUid_ = 0;
    BlockId entry_ = kNoBlock;
    std::vector<BasicBlock> blocks_;
};

} // namespace ccr::ir

#endif // CCR_IR_FUNCTION_HH
