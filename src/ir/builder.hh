/**
 * @file
 * IRBuilder: the ergonomic construction API for IR functions. Workload
 * programs and tests build code through this interface.
 *
 * Usage:
 * @code
 *   Module m("demo");
 *   Function &f = m.addFunction("main", 0);
 *   IRBuilder b(f);
 *   BlockId entry = b.newBlock();
 *   b.setInsertPoint(entry);
 *   Reg x = b.movI(42);
 *   Reg y = b.add(x, b.movI(1));
 *   b.halt();
 * @endcode
 */

#ifndef CCR_IR_BUILDER_HH
#define CCR_IR_BUILDER_HH

#include <initializer_list>

#include "ir/function.hh"
#include "ir/module.hh"

namespace ccr::ir
{

/** Builds instructions into a function one block at a time. */
class IRBuilder
{
  public:
    explicit IRBuilder(Function &func) : func_(func) {}

    Function &function() { return func_; }

    /** Create a new block (does not move the insert point). */
    BlockId newBlock() { return func_.newBlock(); }

    /** Direct subsequent emissions into @p block. */
    void setInsertPoint(BlockId block) { cur_ = block; }

    BlockId insertPoint() const { return cur_; }

    /** Allocate a fresh virtual register. */
    Reg reg() { return func_.newReg(); }

    // -- Data movement -----------------------------------------------

    /** dst = immediate. */
    Reg movI(std::int64_t imm);
    void movITo(Reg dst, std::int64_t imm);

    /** dst = src. */
    Reg mov(Reg src);
    void movTo(Reg dst, Reg src);

    /** dst = &global. */
    Reg movGA(GlobalId g);

    // -- ALU: register-register and register-immediate forms ---------

    Reg binOp(Opcode op, Reg a, Reg b);
    Reg binOpI(Opcode op, Reg a, std::int64_t imm);
    void binOpTo(Reg dst, Opcode op, Reg a, Reg b);
    void binOpITo(Reg dst, Opcode op, Reg a, std::int64_t imm);

    Reg add(Reg a, Reg b) { return binOp(Opcode::Add, a, b); }
    Reg addI(Reg a, std::int64_t i) { return binOpI(Opcode::Add, a, i); }
    Reg sub(Reg a, Reg b) { return binOp(Opcode::Sub, a, b); }
    Reg subI(Reg a, std::int64_t i) { return binOpI(Opcode::Sub, a, i); }
    Reg mul(Reg a, Reg b) { return binOp(Opcode::Mul, a, b); }
    Reg mulI(Reg a, std::int64_t i) { return binOpI(Opcode::Mul, a, i); }
    Reg div(Reg a, Reg b) { return binOp(Opcode::Div, a, b); }
    Reg rem(Reg a, Reg b) { return binOp(Opcode::Rem, a, b); }
    Reg remI(Reg a, std::int64_t i) { return binOpI(Opcode::Rem, a, i); }
    Reg andR(Reg a, Reg b) { return binOp(Opcode::And, a, b); }
    Reg andI(Reg a, std::int64_t i) { return binOpI(Opcode::And, a, i); }
    Reg orR(Reg a, Reg b) { return binOp(Opcode::Or, a, b); }
    Reg orI(Reg a, std::int64_t i) { return binOpI(Opcode::Or, a, i); }
    Reg xorR(Reg a, Reg b) { return binOp(Opcode::Xor, a, b); }
    Reg xorI(Reg a, std::int64_t i) { return binOpI(Opcode::Xor, a, i); }
    Reg shlI(Reg a, std::int64_t i) { return binOpI(Opcode::Shl, a, i); }
    Reg shrI(Reg a, std::int64_t i) { return binOpI(Opcode::Shr, a, i); }
    Reg sraI(Reg a, std::int64_t i) { return binOpI(Opcode::Sra, a, i); }

    Reg cmpEq(Reg a, Reg b) { return binOp(Opcode::CmpEq, a, b); }
    Reg cmpEqI(Reg a, std::int64_t i)
    {
        return binOpI(Opcode::CmpEq, a, i);
    }
    Reg cmpNe(Reg a, Reg b) { return binOp(Opcode::CmpNe, a, b); }
    Reg cmpNeI(Reg a, std::int64_t i)
    {
        return binOpI(Opcode::CmpNe, a, i);
    }
    Reg cmpLt(Reg a, Reg b) { return binOp(Opcode::CmpLt, a, b); }
    Reg cmpLtI(Reg a, std::int64_t i)
    {
        return binOpI(Opcode::CmpLt, a, i);
    }
    Reg cmpLe(Reg a, Reg b) { return binOp(Opcode::CmpLe, a, b); }
    Reg cmpLeI(Reg a, std::int64_t i)
    {
        return binOpI(Opcode::CmpLe, a, i);
    }
    Reg cmpGt(Reg a, Reg b) { return binOp(Opcode::CmpGt, a, b); }
    Reg cmpGtI(Reg a, std::int64_t i)
    {
        return binOpI(Opcode::CmpGt, a, i);
    }
    Reg cmpGe(Reg a, Reg b) { return binOp(Opcode::CmpGe, a, b); }
    Reg cmpGeI(Reg a, std::int64_t i)
    {
        return binOpI(Opcode::CmpGe, a, i);
    }

    /** Int -> double bit-carried conversion. */
    Reg
    i2f(Reg a)
    {
        Inst i;
        i.op = Opcode::I2F;
        i.dst = function().newReg();
        i.src1 = a;
        emit(i);
        return i.dst;
    }

    /** Double -> int truncation. */
    Reg
    f2i(Reg a)
    {
        Inst i;
        i.op = Opcode::F2I;
        i.dst = function().newReg();
        i.src1 = a;
        emit(i);
        return i.dst;
    }

    // -- Memory -------------------------------------------------------

    /** dst = mem[base + off]. */
    Reg load(Reg base, std::int64_t off, MemSize size = MemSize::Dword,
             bool unsigned_load = false);
    void loadTo(Reg dst, Reg base, std::int64_t off,
                MemSize size = MemSize::Dword, bool unsigned_load = false);

    /** mem[base + off] = value. */
    void store(Reg base, std::int64_t off, Reg value,
               MemSize size = MemSize::Dword);

    /** dst = pointer to @p bytes fresh zeroed heap bytes. */
    Reg allocI(std::int64_t bytes);

    // -- Control ------------------------------------------------------

    /** if cond != 0 goto taken else goto not_taken; ends the block. */
    void br(Reg cond, BlockId taken, BlockId not_taken);

    /** goto target; ends the block. */
    void jump(BlockId target);

    /** dst = callee(args...); continues in @p cont. Ends the block. */
    Reg call(FuncId callee, std::initializer_list<Reg> args,
             BlockId cont);
    void callVoid(FuncId callee, std::initializer_list<Reg> args,
                  BlockId cont);

    void ret(Reg value = kNoReg);
    void halt();

    // -- CCR extension instructions ----------------------------------

    /** reuse #region, hit -> @p hit, miss -> @p body. Ends the block. */
    void reuse(RegionId region, BlockId hit, BlockId body);

    /** invalidate #region. */
    void invalidate(RegionId region);

    /** Append an arbitrary pre-built instruction (uid is assigned). */
    Inst &emit(Inst inst);

  private:
    Function &func_;
    BlockId cur_ = kNoBlock;
};

} // namespace ccr::ir

#endif // CCR_IR_BUILDER_HH
