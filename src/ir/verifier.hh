/**
 * @file
 * Structural IR verifier. Run after construction and after every
 * transformation pass; returns a list of human-readable problems.
 */

#ifndef CCR_IR_VERIFIER_HH
#define CCR_IR_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/module.hh"

namespace ccr::ir
{

/** Verify one function; appends messages to @p errors. */
void verifyFunction(const Module &mod, const Function &func,
                    std::vector<std::string> &errors);

/** Verify the whole module. Returns the list of problems (empty = OK). */
std::vector<std::string> verify(const Module &mod);

/** Verify and ccr_fatal() with the first message on failure. */
void verifyOrDie(const Module &mod);

} // namespace ccr::ir

#endif // CCR_IR_VERIFIER_HH
