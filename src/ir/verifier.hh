/**
 * @file
 * Structural IR verifier. Run after construction and after every
 * transformation pass; returns structured diagnostics (severity +
 * stable "ir.*" rule id + message). A thin string shim (`verify`) is
 * kept for one release for callers that only want the message text.
 */

#ifndef CCR_IR_VERIFIER_HH
#define CCR_IR_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/diagnostic.hh"
#include "ir/module.hh"

namespace ccr::ir
{

/** Verify one function; appends diagnostics to @p diags. */
void verifyFunction(const Module &mod, const Function &func,
                    std::vector<Diagnostic> &diags);

/** Verify the whole module. Returns the diagnostics (empty = OK). */
std::vector<Diagnostic> verifyModule(const Module &mod);

/**
 * Deprecated string shim: the diagnostics of verifyModule() flattened
 * to their message text. Prefer verifyModule().
 */
std::vector<std::string> verify(const Module &mod);

/** Verify and ccr_fatal() with the first message on failure. */
void verifyOrDie(const Module &mod);

} // namespace ccr::ir

#endif // CCR_IR_VERIFIER_HH
