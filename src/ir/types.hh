/**
 * @file
 * Fundamental identifier and value types for the CCR intermediate
 * representation.
 *
 * The IR is a load/store register machine in the style of IMPACT Lcode:
 * functions own a flat space of virtual registers, basic blocks hold
 * three-address instructions, and every block ends in exactly one
 * explicit control-transfer instruction (no fall-through).
 */

#ifndef CCR_IR_TYPES_HH
#define CCR_IR_TYPES_HH

#include <cstdint>
#include <limits>

namespace ccr::ir
{

/** Runtime value: the machine is a 64-bit integer machine. Floating
 *  point values are carried bit-cast inside a Value. */
using Value = std::int64_t;

/** Virtual register index, local to a function. */
using Reg = std::uint16_t;

/** Sentinel meaning "no register operand". */
constexpr Reg kNoReg = std::numeric_limits<Reg>::max();

/** Basic-block index, local to a function. */
using BlockId = std::uint32_t;

constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();

/** Function index, local to a module. */
using FuncId = std::uint32_t;

constexpr FuncId kNoFunc = std::numeric_limits<FuncId>::max();

/** Global-variable index, local to a module. */
using GlobalId = std::uint32_t;

constexpr GlobalId kNoGlobal = std::numeric_limits<GlobalId>::max();

/** Reusable-computation-region identifier, global to a module. The
 *  compiler assigns these; the CRB is indexed by them. */
using RegionId = std::uint32_t;

constexpr RegionId kNoRegion = std::numeric_limits<RegionId>::max();

/** Static-instruction unique id within a function (profile key). */
using InstUid = std::uint32_t;

constexpr InstUid kNoUid = std::numeric_limits<InstUid>::max();

/** Memory access width in bytes. */
enum class MemSize : std::uint8_t { Byte = 1, Half = 2, Word = 4, Dword = 8 };

constexpr int
memSizeBytes(MemSize size)
{
    return static_cast<int>(size);
}

} // namespace ccr::ir

#endif // CCR_IR_TYPES_HH
