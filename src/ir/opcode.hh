/**
 * @file
 * Opcode definitions and static opcode properties.
 */

#ifndef CCR_IR_OPCODE_HH
#define CCR_IR_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace ccr::ir
{

/**
 * Instruction opcodes. Binary ALU ops take either two register sources
 * or a register and an immediate (Inst::srcImm selects the form).
 *
 * Reuse and Invalidate are the two new instructions of the CCR ISA
 * extension (paper §3.2); the per-instruction extension bits live in
 * InstExt.
 */
enum class Opcode : std::uint8_t
{
    Nop,

    // Data movement.
    MovI,   ///< dst = imm
    Mov,    ///< dst = src1
    MovGA,  ///< dst = base address of global #globalId

    // Integer arithmetic / logical.
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor,
    Shl, Shr, Sra,

    // Comparisons producing 0/1.
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe, CmpLtU, CmpGeU,

    // Floating point (values bit-cast in 64-bit registers).
    FAdd, FSub, FMul, FDiv, FCmpLt, I2F, F2I,

    // Memory.
    Load,   ///< dst = mem[src1 + imm]
    Store,  ///< mem[src1 + imm] = src2
    Alloc,  ///< dst = pointer to fresh heap block of src1-or-imm bytes

    // Control transfer (every block ends with exactly one of these).
    Br,     ///< if src1 != 0 goto target else goto target2
    Jump,   ///< goto target
    Call,   ///< dst = callee(args...); continues at target
    Ret,    ///< return src1 (or nothing when src1 == kNoReg)
    Halt,   ///< stop the machine

    // CCR ISA extension instructions.
    Reuse,      ///< CRB hit: write outputs, goto target; miss: goto target2
    Invalidate, ///< invalidate memory-valid flags of region #regionId

    NumOpcodes
};

/** Functional-unit class an opcode issues to (paper §5.1 machine). */
enum class FuClass : std::uint8_t
{
    IntAlu,  ///< 4 units, 1-cycle latency
    Mem,     ///< 2 ports, 2-cycle load latency
    FpAlu,   ///< 2 units
    Branch,  ///< 1 unit
    None     ///< consumes no functional unit (Nop)
};

/** Human-readable mnemonic. */
std::string_view opcodeName(Opcode op);

/** True for Br, Jump, Call, Ret, Halt, Reuse. */
bool isControl(Opcode op);

/** True for Load / Store. */
bool isMemory(Opcode op);

/** True when the opcode writes Inst::dst. */
bool writesDst(Opcode op);

/** True for two-source register/immediate ALU or compare ops. */
bool isBinaryAlu(Opcode op);

/** True for comparison opcodes (CmpEq..CmpGeU, FCmpLt). */
bool isCompare(Opcode op);

/** True for FAdd..F2I. */
bool isFloat(Opcode op);

/** Functional unit the opcode needs. */
FuClass fuClass(Opcode op);

/** Execution latency in cycles (HP PA-7100-style; paper §5.1). */
int opLatency(Opcode op);

} // namespace ccr::ir

#endif // CCR_IR_OPCODE_HH
