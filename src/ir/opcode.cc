#include "ir/opcode.hh"

#include "support/logging.hh"

namespace ccr::ir
{

std::string_view
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::MovI: return "movi";
      case Opcode::Mov: return "mov";
      case Opcode::MovGA: return "movga";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Sra: return "sra";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::CmpNe: return "cmpne";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpLe: return "cmple";
      case Opcode::CmpGt: return "cmpgt";
      case Opcode::CmpGe: return "cmpge";
      case Opcode::CmpLtU: return "cmpltu";
      case Opcode::CmpGeU: return "cmpgeu";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::FCmpLt: return "fcmplt";
      case Opcode::I2F: return "i2f";
      case Opcode::F2I: return "f2i";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Alloc: return "alloc";
      case Opcode::Br: return "br";
      case Opcode::Jump: return "jump";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Halt: return "halt";
      case Opcode::Reuse: return "reuse";
      case Opcode::Invalidate: return "invalidate";
      default: return "<bad-op>";
    }
}

bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::Br:
      case Opcode::Jump:
      case Opcode::Call:
      case Opcode::Ret:
      case Opcode::Halt:
      case Opcode::Reuse:
        return true;
      default:
        return false;
    }
}

bool
isMemory(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store;
}

bool
writesDst(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Store:
      case Opcode::Br:
      case Opcode::Jump:
      case Opcode::Ret:
      case Opcode::Halt:
      case Opcode::Reuse:
      case Opcode::Invalidate:
        return false;
      case Opcode::Call:
        // Call writes dst only when the call site names one; the
        // instruction-level check is in Inst.
        return true;
      default:
        return true;
    }
}

bool
isBinaryAlu(Opcode op)
{
    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem:
      case Opcode::And: case Opcode::Or: case Opcode::Xor:
      case Opcode::Shl: case Opcode::Shr: case Opcode::Sra:
      case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
      case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
      case Opcode::CmpLtU: case Opcode::CmpGeU:
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
      case Opcode::FDiv: case Opcode::FCmpLt:
        return true;
      default:
        return false;
    }
}

bool
isCompare(Opcode op)
{
    switch (op) {
      case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
      case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
      case Opcode::CmpLtU: case Opcode::CmpGeU: case Opcode::FCmpLt:
        return true;
      default:
        return false;
    }
}

bool
isFloat(Opcode op)
{
    switch (op) {
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
      case Opcode::FDiv: case Opcode::FCmpLt:
      case Opcode::I2F: case Opcode::F2I:
        return true;
      default:
        return false;
    }
}

FuClass
fuClass(Opcode op)
{
    if (op == Opcode::Nop)
        return FuClass::None;
    if (isMemory(op) || op == Opcode::Alloc)
        return FuClass::Mem;
    if (isFloat(op))
        return FuClass::FpAlu;
    if (isControl(op) || op == Opcode::Invalidate)
        return FuClass::Branch;
    return FuClass::IntAlu;
}

int
opLatency(Opcode op)
{
    switch (op) {
      case Opcode::Load:
        return 2;       // PA-7100 load-use latency (paper §5.1).
      case Opcode::Mul:
        return 3;
      case Opcode::Div:
      case Opcode::Rem:
        return 10;
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FCmpLt:
      case Opcode::I2F:
      case Opcode::F2I:
        return 2;
      case Opcode::FMul:
        return 3;
      case Opcode::FDiv:
        return 12;
      default:
        return 1;
    }
}

} // namespace ccr::ir
