#include "ir/inst.hh"

#include <sstream>

namespace ccr::ir
{

namespace
{

std::string
regName(Reg r)
{
    if (r == kNoReg)
        return "_";
    return "r" + std::to_string(r);
}

std::string
blockName(BlockId b)
{
    if (b == kNoBlock)
        return "B?";
    return "B" + std::to_string(b);
}

} // namespace

std::string
Inst::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);

    switch (op) {
      case Opcode::Nop:
        break;
      case Opcode::MovI:
        os << " " << regName(dst) << ", " << imm;
        break;
      case Opcode::Mov:
      case Opcode::I2F:
      case Opcode::F2I:
        os << " " << regName(dst) << ", " << regName(src1);
        break;
      case Opcode::MovGA:
        os << " " << regName(dst) << ", @g" << globalId;
        break;
      case Opcode::Load:
        os << (unsignedLoad ? "u" : "") << memSizeBytes(size) << " "
           << regName(dst) << ", [" << regName(src1) << " + " << imm << "]";
        break;
      case Opcode::Store:
        os << memSizeBytes(size) << " [" << regName(src1) << " + " << imm
           << "], " << regName(src2);
        break;
      case Opcode::Alloc:
        os << " " << regName(dst) << ", ";
        if (srcImm)
            os << imm;
        else
            os << regName(src1);
        break;
      case Opcode::Br:
        os << " " << regName(src1) << ", " << blockName(target) << ", "
           << blockName(target2);
        break;
      case Opcode::Jump:
        os << " " << blockName(target);
        break;
      case Opcode::Call:
        os << " " << regName(dst) << ", @f" << callee << "(";
        for (int i = 0; i < numArgs; ++i)
            os << (i ? ", " : "") << regName(args[i]);
        os << ") -> " << blockName(target);
        break;
      case Opcode::Ret:
        if (src1 != kNoReg)
            os << " " << regName(src1);
        break;
      case Opcode::Halt:
        break;
      case Opcode::Reuse:
        os << " #" << regionId << ", hit=" << blockName(target)
           << ", miss=" << blockName(target2);
        break;
      case Opcode::Invalidate:
        os << " #" << regionId;
        break;
      default:
        // Binary ALU / compare forms.
        os << " " << regName(dst) << ", " << regName(src1) << ", ";
        if (srcImm)
            os << imm;
        else
            os << regName(src2);
        break;
    }

    if (ext.liveOut)
        os << " <live-out>";
    if (ext.regionEnd)
        os << " <region-end>";
    if (ext.regionExit)
        os << " <region-exit>";
    if (ext.determinable)
        os << " <det>";
    return os.str();
}

} // namespace ccr::ir
