#include "server/admission.hh"

#include <algorithm>
#include <chrono>

#include "ir/module.hh"
#include "lint/lint.hh"
#include "text/parser.hh"
#include "workloads/corpus.hh"
#include "workloads/harness.hh"

namespace ccr::server
{

namespace
{

double
monotonicSeconds()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch())
        .count();
}

std::uint64_t
fnv1a(std::string_view bytes)
{
    std::uint64_t hash = 0xcbf2'9ce4'8422'2325ULL;
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 0x100'0000'01b3ULL;
    }
    return hash;
}

bool
moduleHasReuse(const ir::Module &mod)
{
    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        for (const auto &bb : mod.function(f).blocks()) {
            for (const auto &inst : bb.insts()) {
                if (inst.op == ir::Opcode::Reuse)
                    return true;
            }
        }
    }
    return false;
}

AdmissionResult
reject(std::string reason, std::vector<ir::Diagnostic> diags)
{
    AdmissionResult r;
    r.admitted = false;
    r.reason = std::move(reason);
    r.diagnostics = std::move(diags);
    return r;
}

} // namespace

AdmissionController::AdmissionController(AdmissionLimits limits,
                                         Clock clock)
    : limits_(limits),
      clock_(clock ? std::move(clock) : Clock(monotonicSeconds))
{
}

bool
AdmissionController::admitQuota(const std::string &tenant,
                                double tokens,
                                std::vector<ir::Diagnostic> &diags)
{
    const double now = clock_();
    std::lock_guard lock(mutex_);
    Bucket &bucket = buckets_[tenant];
    if (!bucket.initialized) {
        bucket.tokens = limits_.quotaBurst;
        bucket.lastRefill = now;
        bucket.initialized = true;
    }
    const double elapsed = std::max(0.0, now - bucket.lastRefill);
    bucket.tokens = std::min(limits_.quotaBurst,
                             bucket.tokens
                                 + elapsed * limits_.quotaRatePerSec);
    bucket.lastRefill = now;
    if (bucket.tokens + 1e-9 < tokens) {
        diags.push_back(ir::makeError(
            "server.quota.exceeded",
            "tenant \"" + tenant + "\" is over its run quota ("
                + std::to_string(tokens) + " requested)"));
        return false;
    }
    bucket.tokens -= tokens;
    return true;
}

AdmissionResult
AdmissionController::admitInline(const std::string &source,
                                 const std::string &display)
{
    if (source.size() > limits_.maxSourceBytes) {
        return reject(
            "server.admission.source",
            {ir::makeError("server.admission.source",
                           display + ": inline source too large ("
                               + std::to_string(source.size())
                               + " bytes > "
                               + std::to_string(
                                   limits_.maxSourceBytes)
                               + ")")});
    }

    text::ParseResult parsed = text::parseModule(source);
    if (!parsed.ok())
        return reject("server.admission.parse",
                      std::move(parsed.errors));

    if (moduleHasReuse(*parsed.module)) {
        // Untrusted clients don't get to assert region claims; the
        // lint audits whatever they submitted and its findings ride
        // along in the rejection.
        std::vector<ir::Diagnostic> diags;
        diags.push_back(ir::makeError(
            "server.admission.preformed",
            display
                + ": inline submissions must not carry preformed "
                  "reuse regions (the server derives its own)"));
        std::vector<ir::Diagnostic> region_diags;
        core::RegionTable table = lint::regionsFromSource(
            *parsed.module, parsed.pragmas, region_diags);
        for (auto &d : region_diags)
            diags.push_back(std::move(d));
        lint::LintResult audit = lint::lintModule(
            *parsed.module, table, &parsed.instLocs);
        for (auto &d : audit.diagnostics)
            diags.push_back(std::move(d));
        return reject("server.admission.preformed",
                      std::move(diags));
    }

    std::vector<std::string> build_errors;
    auto workload =
        workloads::buildWorkloadFromText(source, display,
                                         build_errors);
    if (!workload) {
        std::vector<ir::Diagnostic> diags;
        for (auto &e : build_errors)
            diags.push_back(
                ir::makeError("server.admission.workload",
                              std::move(e)));
        return reject("server.admission.workload",
                      std::move(diags));
    }

    const std::uint64_t content = fnv1a(source);
    {
        std::lock_guard lock(mutex_);
        if (admitted_.count({workload->name, content})) {
            AdmissionResult r;
            r.admitted = true;
            r.name = workload->name;
            return r;
        }
    }

    // Full audit: compile + profile + form + lint on a throwaway
    // build, under the reduced admission budget.
    workloads::WorkloadLintResult audit = workloads::lintWorkload(
        *workload, {}, /*run_crosscheck=*/false,
        limits_.lintMaxInsts);
    if (!audit.ok())
        return reject("server.admission.lint",
                      std::move(audit.lint.diagnostics));

    workloads::RegisterTextResult reg =
        workloads::registerWorkloadTextStructured(source, display);
    if (!reg.ok())
        return reject("server.admission.workload",
                      std::move(reg.diagnostics));

    AdmissionResult r;
    r.admitted = true;
    r.name = reg.name;
    std::lock_guard lock(mutex_);
    admitted_.insert({r.name, content});
    admittedNames_.insert(r.name);
    return r;
}

bool
AdmissionController::isAdmitted(const std::string &name) const
{
    std::lock_guard lock(mutex_);
    return admittedNames_.count(name) > 0;
}

} // namespace ccr::server
