#include "server/protocol.hh"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "reuse/factory.hh"

namespace ccr::server
{

namespace
{

/** Receive exactly @p len bytes; false on EOF or error (errno set by
 *  recv on error, 0 on clean EOF). */
bool
recvAll(int fd, void *buf, std::size_t len)
{
    auto *p = static_cast<char *>(buf);
    while (len > 0) {
        ssize_t n = ::recv(fd, p, len, 0);
        if (n == 0) {
            errno = 0;
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
sendAll(int fd, const void *buf, std::size_t len)
{
    const auto *p = static_cast<const char *>(buf);
    while (len > 0) {
        ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

ir::Diagnostic
protoError(std::string rule, std::string message)
{
    return ir::makeError(std::move(rule), std::move(message));
}

/** Strict field reader: every request key must be consumed exactly
 *  once; leftovers are "proto.request.unknown-key" errors. */
class FieldReader
{
  public:
    FieldReader(const obs::Json &obj, std::string context,
                std::vector<ir::Diagnostic> &diags)
        : obj_(obj), context_(std::move(context)), diags_(diags)
    {
    }

    const obs::Json *
    take(const std::string &key)
    {
        seen_.push_back(key);
        auto it = obj_.fields().find(key);
        return it == obj_.fields().end() ? nullptr : &it->second;
    }

    bool
    string(const std::string &key, std::string &out)
    {
        const obs::Json *v = take(key);
        if (!v)
            return true;
        if (!v->isString()) {
            typeError(key, "a string");
            return false;
        }
        out = v->asString();
        return true;
    }

    bool
    boolean(const std::string &key, bool &out)
    {
        const obs::Json *v = take(key);
        if (!v)
            return true;
        if (!v->isBool()) {
            typeError(key, "a bool");
            return false;
        }
        out = v->asBool();
        return true;
    }

    bool
    uint64(const std::string &key, std::uint64_t &out)
    {
        const obs::Json *v = take(key);
        if (!v)
            return true;
        if (!v->isNumber() || v->asDouble() < 0) {
            typeError(key, "a non-negative integer");
            return false;
        }
        out = v->asUint();
        return true;
    }

    bool
    intPositive(const std::string &key, int &out)
    {
        const obs::Json *v = take(key);
        if (!v)
            return true;
        if (!v->isNumber() || v->asInt() <= 0) {
            typeError(key, "a positive integer");
            return false;
        }
        out = static_cast<int>(v->asInt());
        return true;
    }

    bool
    fraction(const std::string &key, double &out)
    {
        const obs::Json *v = take(key);
        if (!v)
            return true;
        if (!v->isNumber() || v->asDouble() < 0.0
            || v->asDouble() > 1.0) {
            typeError(key, "a number in [0, 1]");
            return false;
        }
        out = v->asDouble();
        return true;
    }

    /** Call last: flags every key not consumed by a take()/typed
     *  reader. */
    bool
    finish()
    {
        bool ok = true;
        for (const auto &[key, value] : obj_.fields()) {
            (void)value;
            bool known = false;
            for (const auto &s : seen_)
                if (s == key)
                    known = true;
            if (!known) {
                diags_.push_back(protoError(
                    "proto.request.unknown-key",
                    context_ + ": unknown key \"" + key + "\""));
                ok = false;
            }
        }
        return ok;
    }

  private:
    void
    typeError(const std::string &key, const char *expected)
    {
        diags_.push_back(protoError("proto.request.bad-type",
                                    context_ + ": \"" + key
                                        + "\" must be "
                                        + expected));
    }

    const obs::Json &obj_;
    std::string context_;
    std::vector<ir::Diagnostic> &diags_;
    std::vector<std::string> seen_;
};

bool
parseInputSet(const std::string &text, workloads::InputSet &out)
{
    if (text == "train") {
        out = workloads::InputSet::Train;
        return true;
    }
    if (text == "ref") {
        out = workloads::InputSet::Ref;
        return true;
    }
    return false;
}

const char *
inputSetName(workloads::InputSet set)
{
    return set == workloads::InputSet::Ref ? "ref" : "train";
}

bool
parseRunSpec(const obs::Json &json, std::size_t index, RunSpec &out,
             std::vector<ir::Diagnostic> &diags)
{
    std::ostringstream ctx;
    ctx << "runs[" << index << "]";
    const std::string context = ctx.str();

    if (!json.isObject()) {
        diags.push_back(protoError("proto.request.bad-type",
                                   context + " must be an object"));
        return false;
    }

    FieldReader r(json, context, diags);
    bool ok = true;
    ok &= r.string("workload", out.workload);
    ok &= r.string("source", out.source);
    ok &= r.string("display", out.display);

    std::string scheme_text;
    ok &= r.string("scheme", scheme_text);
    if (!scheme_text.empty()) {
        auto kind = reuse::parseSchemeKind(scheme_text);
        if (!kind) {
            diags.push_back(protoError(
                "proto.request.bad-scheme",
                context + ": unknown scheme \"" + scheme_text
                    + "\" (want crb|dtm|none)"));
            ok = false;
        } else {
            out.config.scheme = *kind;
        }
    }

    const std::pair<const char *, workloads::InputSet *> inputs[] = {
        {"profileInput", &out.config.profileInput},
        {"measureInput", &out.config.measureInput},
    };
    for (const auto &[key, member] : inputs) {
        std::string text;
        ok &= r.string(key, text);
        if (!text.empty() && !parseInputSet(text, *member)) {
            diags.push_back(protoError(
                "proto.request.bad-input-set",
                context + ": \"" + key + "\" must be train|ref"));
            ok = false;
        }
    }

    ok &= r.boolean("optimizeBase", out.config.optimizeBase);
    ok &= r.uint64("maxInsts", out.config.maxInsts);

    if (const obs::Json *crb = r.take("crb")) {
        if (!crb->isObject()) {
            diags.push_back(protoError("proto.request.bad-type",
                                       context
                                           + ": \"crb\" must be an "
                                             "object"));
            ok = false;
        } else {
            FieldReader c(*crb, context + ".crb", diags);
            ok &= c.intPositive("entries", out.config.crb.entries);
            ok &= c.intPositive("instances",
                                out.config.crb.instances);
            ok &= c.intPositive("assoc", out.config.crb.assoc);
            ok &= c.intPositive("bankSize", out.config.crb.bankSize);
            ok &= c.fraction("memCapableFraction",
                             out.config.crb.memCapableFraction);
            ok &= c.fraction("nonuniformSplit",
                             out.config.crb.nonuniformSplit);
            ok &= c.intPositive(
                "nonuniformSmallInstances",
                out.config.crb.nonuniformSmallInstances);
            ok &= c.finish();
        }
    }

    if (const obs::Json *dtm = r.take("dtm")) {
        if (!dtm->isObject()) {
            diags.push_back(protoError("proto.request.bad-type",
                                       context
                                           + ": \"dtm\" must be an "
                                             "object"));
            ok = false;
        } else {
            FieldReader d(*dtm, context + ".dtm", diags);
            ok &= d.intPositive("maxTraces",
                                out.config.dtm.maxTraces);
            ok &= d.intPositive("tracesPerRegion",
                                out.config.dtm.tracesPerRegion);
            ok &= d.intPositive("maxRegInputs",
                                out.config.dtm.maxRegInputs);
            ok &= d.intPositive("maxMemInputs",
                                out.config.dtm.maxMemInputs);
            ok &= d.intPositive("maxOutputs",
                                out.config.dtm.maxOutputs);
            ok &= d.finish();
        }
    }

    ok &= r.finish();

    const bool named = !out.workload.empty();
    const bool inline_src = !out.source.empty();
    if (named == inline_src) {
        diags.push_back(protoError(
            "proto.request.workload",
            context
                + ": exactly one of \"workload\" and \"source\" is "
                  "required"));
        ok = false;
    }
    if (out.display.empty())
        out.display = named ? out.workload : "<inline>";
    return ok;
}

} // namespace

const char *
frameStatusName(FrameStatus status)
{
    switch (status) {
    case FrameStatus::Ok:
        return "ok";
    case FrameStatus::Closed:
        return "closed";
    case FrameStatus::Truncated:
        return "truncated";
    case FrameStatus::Oversized:
        return "oversized";
    case FrameStatus::BadLength:
        return "bad-length";
    case FrameStatus::IoError:
        return "io-error";
    }
    return "unknown";
}

FrameStatus
readFrame(int fd, std::size_t max_bytes, std::string &payload)
{
    unsigned char header[4];
    ssize_t n = ::recv(fd, header, 1, 0);
    if (n == 0)
        return FrameStatus::Closed;
    if (n < 0)
        return errno == EINTR ? readFrame(fd, max_bytes, payload)
                              : FrameStatus::IoError;
    if (!recvAll(fd, header + 1, 3))
        return errno == 0 ? FrameStatus::Truncated
                          : FrameStatus::IoError;

    std::uint32_t len = (std::uint32_t(header[0]) << 24)
                        | (std::uint32_t(header[1]) << 16)
                        | (std::uint32_t(header[2]) << 8)
                        | std::uint32_t(header[3]);
    if (len == 0)
        return FrameStatus::BadLength;
    if (len > max_bytes)
        return FrameStatus::Oversized;

    payload.resize(len);
    if (!recvAll(fd, payload.data(), len))
        return errno == 0 ? FrameStatus::Truncated
                          : FrameStatus::IoError;
    return FrameStatus::Ok;
}

bool
writeFrame(int fd, std::string_view payload)
{
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    // One buffer, one send: keeps a frame in a single segment on
    // loopback and avoids a Nagle stall between header and payload.
    std::string buf;
    buf.reserve(payload.size() + 4);
    buf.push_back(static_cast<char>(len >> 24));
    buf.push_back(static_cast<char>(len >> 16));
    buf.push_back(static_cast<char>(len >> 8));
    buf.push_back(static_cast<char>(len));
    buf.append(payload);
    return sendAll(fd, buf.data(), buf.size());
}

bool
parseRequest(const obs::Json &json, std::size_t max_runs,
             Request &out, std::vector<ir::Diagnostic> &diags)
{
    if (!json.isObject()) {
        diags.push_back(protoError("proto.request.bad-type",
                                   "request must be an object"));
        return false;
    }

    FieldReader r(json, "request", diags);

    const obs::Json *schema = r.take("schema");
    if (!schema || !schema->isObject()) {
        diags.push_back(
            protoError("proto.schema.missing",
                       "request needs a \"schema\" object"));
        return false;
    }
    if (schema->at("name").asString() != kRequestSchemaName) {
        diags.push_back(protoError(
            "proto.schema.name",
            "schema name must be \"" + std::string(kRequestSchemaName)
                + "\""));
        return false;
    }
    const obs::Json &version = schema->at("version");
    if (!version.isNumber()
        || version.asInt() != kProtocolVersion) {
        std::ostringstream msg;
        msg << "unsupported schema version (server speaks "
            << kProtocolVersion << ")";
        diags.push_back(
            protoError("proto.schema.version", msg.str()));
        return false;
    }

    std::string type_text = "run";
    if (!r.string("type", type_text))
        return false;
    if (type_text == "run")
        out.type = RequestType::Run;
    else if (type_text == "list")
        out.type = RequestType::List;
    else if (type_text == "metrics")
        out.type = RequestType::Metrics;
    else if (type_text == "shutdown")
        out.type = RequestType::Shutdown;
    else {
        diags.push_back(protoError("proto.request.type",
                                   "unknown request type \""
                                       + type_text + "\""));
        return false;
    }

    if (!r.string("tenant", out.tenant))
        return false;
    if (out.tenant.empty()) {
        diags.push_back(protoError("proto.request.tenant",
                                   "tenant must be non-empty"));
        return false;
    }

    bool ok = true;
    const obs::Json *runs = r.take("runs");
    if (out.type == RequestType::Run) {
        if (!runs || !runs->isArray() || runs->items().empty()) {
            diags.push_back(protoError(
                "proto.request.runs",
                "\"run\" request needs a non-empty \"runs\" array"));
            return false;
        }
        if (runs->items().size() > max_runs) {
            std::ostringstream msg;
            msg << "too many runs in one request ("
                << runs->items().size() << " > " << max_runs << ")";
            diags.push_back(
                protoError("proto.request.runs", msg.str()));
            return false;
        }
        out.runs.resize(runs->items().size());
        for (std::size_t i = 0; i < runs->items().size(); ++i)
            ok &= parseRunSpec(runs->items()[i], i, out.runs[i],
                               diags);
    } else if (runs) {
        diags.push_back(protoError(
            "proto.request.runs",
            "\"runs\" is only valid on \"run\" requests"));
        ok = false;
    }

    ok &= r.finish();
    return ok;
}

obs::Json
responseHeader(std::string_view type)
{
    obs::Json schema = obs::Json::object();
    schema["name"] = kResponseSchemaName;
    schema["version"] = kProtocolVersion;
    obs::Json out = obs::Json::object();
    out["schema"] = std::move(schema);
    out["type"] = std::string(type);
    return out;
}

obs::Json
errorResponse(std::string_view reason,
              const std::vector<ir::Diagnostic> &diags)
{
    obs::Json out = responseHeader("error");
    out["reason"] = std::string(reason);
    out["diagnostics"] = ir::diagnosticsToJson(diags);
    return out;
}

obs::Json
runResponse(std::size_t index, const std::string &workload,
            bool cached, double server_millis, obs::Json run_report)
{
    obs::Json out = responseHeader("run");
    out["index"] = static_cast<std::uint64_t>(index);
    out["workload"] = workload;
    out["cached"] = cached;
    out["serverMillis"] = server_millis;
    out["run"] = std::move(run_report);
    return out;
}

obs::Json
runErrorResponse(std::size_t index, const std::string &workload,
                 std::string_view reason,
                 const std::vector<ir::Diagnostic> &diags)
{
    obs::Json error = obs::Json::object();
    error["reason"] = std::string(reason);
    error["diagnostics"] = ir::diagnosticsToJson(diags);

    obs::Json out = responseHeader("run");
    out["index"] = static_cast<std::uint64_t>(index);
    out["workload"] = workload;
    out["error"] = std::move(error);
    return out;
}

obs::Json
doneResponse(std::size_t requested, std::size_t completed,
             std::size_t rejected, double millis)
{
    obs::Json out = responseHeader("done");
    out["requested"] = static_cast<std::uint64_t>(requested);
    out["completed"] = static_cast<std::uint64_t>(completed);
    out["rejected"] = static_cast<std::uint64_t>(rejected);
    out["millis"] = millis;
    return out;
}

std::string
runSignature(const std::string &workload,
             const workloads::RunConfig &config)
{
    std::ostringstream os;
    os << workload << '|'
       << reuse::schemeKindName(config.scheme) << '|'
       << inputSetName(config.profileInput) << '|'
       << inputSetName(config.measureInput) << '|'
       << (config.optimizeBase ? 1 : 0) << '|' << config.maxInsts
       << "|crb:" << config.crb.entries << ','
       << config.crb.instances << ',' << config.crb.assoc << ','
       << config.crb.bankSize << ','
       << config.crb.memCapableFraction << ','
       << config.crb.nonuniformSplit << ','
       << config.crb.nonuniformSmallInstances
       << "|dtm:" << config.dtm.maxTraces << ','
       << config.dtm.tracesPerRegion << ','
       << config.dtm.maxRegInputs << ',' << config.dtm.maxMemInputs
       << ',' << config.dtm.maxOutputs;
    return os.str();
}

std::string
batchKey(const std::string &workload,
         const workloads::RunConfig &config)
{
    std::ostringstream os;
    os << workload << '|' << (config.optimizeBase ? 1 : 0) << '|'
       << inputSetName(config.profileInput) << '|'
       << inputSetName(config.measureInput) << '|'
       << config.maxInsts;
    return os.str();
}

} // namespace ccr::server
