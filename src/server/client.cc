#include "server/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace ccr::server
{

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)), status_(other.status_)
{
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        status_ = other.status_;
    }
    return *this;
}

bool
Client::connectTo(std::uint16_t port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        close();
        return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    status_ = FrameStatus::Ok;
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::sendJson(const obs::Json &json)
{
    return connected() && writeFrame(fd_, json.dump());
}

bool
Client::sendRaw(std::string_view bytes)
{
    if (!connected())
        return false;
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd_, bytes.data() + off,
                           bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<obs::Json>
Client::readJson()
{
    if (!connected())
        return std::nullopt;
    std::string payload;
    status_ = readFrame(fd_, kDefaultMaxFrameBytes, payload);
    if (status_ != FrameStatus::Ok)
        return std::nullopt;
    return obs::Json::parse(payload);
}

std::vector<obs::Json>
Client::call(const obs::Json &request, std::size_t max_frames)
{
    std::vector<obs::Json> frames;
    if (!sendJson(request))
        return frames;
    const bool streaming =
        request.at("type").asString() == "run";
    while (frames.size() < max_frames) {
        auto frame = readJson();
        if (!frame)
            break;
        const std::string type = frame->at("type").asString();
        frames.push_back(std::move(*frame));
        if (!streaming || type == "done" || type == "error")
            break;
    }
    return frames;
}

obs::Json
Client::makeRequest(std::string_view type, std::string_view tenant)
{
    obs::Json schema = obs::Json::object();
    schema["name"] = kRequestSchemaName;
    schema["version"] = kProtocolVersion;
    obs::Json out = obs::Json::object();
    out["schema"] = std::move(schema);
    out["type"] = std::string(type);
    if (!tenant.empty())
        out["tenant"] = std::string(tenant);
    return out;
}

} // namespace ccr::server
