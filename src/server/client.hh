/**
 * @file
 * Minimal blocking client for the `ccrd` protocol, shared by the
 * `ccrload` bench harness and the server tests. One Client is one
 * TCP connection; it is not thread-safe — closed-loop load drivers
 * use one Client per connection thread.
 */

#ifndef CCR_SERVER_CLIENT_HH
#define CCR_SERVER_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hh"
#include "server/protocol.hh"

namespace ccr::server
{

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect to 127.0.0.1:@p port. False on failure. */
    bool connectTo(std::uint16_t port);

    void close();
    bool connected() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Frame and send one JSON request. */
    bool sendJson(const obs::Json &json);

    /** Send raw bytes verbatim — protocol-abuse tests forge bad
     *  frames with this. */
    bool sendRaw(std::string_view bytes);

    /** Read one response frame; nullopt on close/error/bad JSON
     *  (status() says which). */
    std::optional<obs::Json> readJson();

    FrameStatus status() const { return status_; }

    /**
     * Send @p request and collect response frames until the request
     * terminates: a "done" or "error" frame for run requests, any
     * frame for the single-response verbs. Returns every frame in
     * arrival order; empty on transport failure.
     */
    std::vector<obs::Json> call(const obs::Json &request,
                                std::size_t max_frames = 4096);

    /** Build the common {"schema": ..., "type": ...} request
     *  skeleton. */
    static obs::Json makeRequest(std::string_view type,
                                 std::string_view tenant = {});

  private:
    int fd_ = -1;
    FrameStatus status_ = FrameStatus::Ok;
};

} // namespace ccr::server

#endif // CCR_SERVER_CLIENT_HH
