/**
 * @file
 * Admission control for the `ccrd` server: everything that stands
 * between an untrusted request and the simulation core.
 *
 * Three gates, applied in order:
 *
 *  1. **Quota** — a per-tenant token bucket (rate + burst) charged one
 *     token per requested run. Tenants over budget get a structured
 *     "server.quota.exceeded" rejection before any parsing or
 *     simulation work happens on their behalf.
 *
 *  2. **Budget** — every run's `maxInsts` is clamped to the server's
 *     instruction-budget cap, sandboxing runaway kernels; the clamp is
 *     visible in the returned report's config snapshot.
 *
 *  3. **Inline audit** — inline `.lc` source must parse, must not
 *     carry preformed `reuse` regions (region claims are the server's
 *     to derive, not the client's to assert — a submitted claim is
 *     audited with the lint and rejected), must build into a runnable
 *     workload, and must pass the full compile + profile + region-form
 *     + lint pipeline (`workloads::lintWorkload`) under a reduced
 *     instruction budget before it is registered and runnable.
 *
 * Admission is the only path by which a name becomes runnable: the
 * server starts from a snapshot of the built-in corpus and extends it
 * solely through admitInline, so a rejected submission can never be
 * reached by a later named request (zero-bypass property; see
 * docs/SERVER.md).
 */

#ifndef CCR_SERVER_ADMISSION_HH
#define CCR_SERVER_ADMISSION_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ir/diagnostic.hh"

namespace ccr::server
{

/** Tunable admission limits (ccrd flags map onto these). */
struct AdmissionLimits
{
    /** Hard per-run instruction-budget ceiling; requested maxInsts is
     *  clamped to this. */
    std::uint64_t maxInstsCap = 50'000'000ULL;

    /** Token-bucket refill rate, runs/second/tenant. */
    double quotaRatePerSec = 200.0;

    /** Token-bucket capacity (burst), runs/tenant. */
    double quotaBurst = 400.0;

    /** Largest accepted inline `.lc` submission. */
    std::size_t maxSourceBytes = 256u << 10;

    /** Instruction budget for the admission-time audit runs (profile
     *  + lint cross-checks) of an inline submission. */
    std::uint64_t lintMaxInsts = 20'000'000ULL;
};

/** Outcome of an inline-source admission check. */
struct AdmissionResult
{
    bool admitted = false;

    /** Registered workload name (valid when admitted). */
    std::string name;

    /** Rejection reason id mirrored into the response "reason"
     *  field: server.admission.{source,parse,preformed,workload,lint}
     */
    std::string reason;

    std::vector<ir::Diagnostic> diagnostics;
};

/**
 * The admission gatekeeper. Thread-safe: connection handlers on many
 * threads consult one shared instance.
 */
class AdmissionController
{
  public:
    /** Monotonic-seconds clock; injectable so quota tests don't
     *  sleep. */
    using Clock = std::function<double()>;

    explicit AdmissionController(AdmissionLimits limits,
                                 Clock clock = {});

    const AdmissionLimits &limits() const { return limits_; }

    /**
     * Charge @p tokens runs against @p tenant's bucket. False (with a
     * "server.quota.exceeded" diagnostic) when the bucket cannot
     * cover them; partial charges never happen.
     */
    bool admitQuota(const std::string &tenant, double tokens,
                    std::vector<ir::Diagnostic> &diags);

    /** Clamp a requested per-run instruction budget to the cap. */
    std::uint64_t
    clampBudget(std::uint64_t requested) const
    {
        return requested == 0 ? limits_.maxInstsCap
                              : std::min(requested,
                                         limits_.maxInstsCap);
    }

    /**
     * Full inline-source gate (size, parse, preformed-region audit,
     * build, lint, register). Idempotent: resubmitting an
     * already-admitted (name, source) pair succeeds without
     * re-linting.
     */
    AdmissionResult admitInline(const std::string &source,
                                const std::string &display);

    /** True when @p name was admitted through admitInline. */
    bool isAdmitted(const std::string &name) const;

  private:
    AdmissionLimits limits_;
    Clock clock_;

    struct Bucket
    {
        double tokens = 0.0;
        double lastRefill = 0.0;
        bool initialized = false;
    };

    mutable std::mutex mutex_;
    std::map<std::string, Bucket> buckets_;

    /** (name, content-hash) pairs that already cleared the gate. */
    std::set<std::pair<std::string, std::uint64_t>> admitted_;
    std::set<std::string> admittedNames_;
};

} // namespace ccr::server

#endif // CCR_SERVER_ADMISSION_HH
