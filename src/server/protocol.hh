/**
 * @file
 * Wire protocol of the `ccrd` simulation server: length-prefixed JSON
 * frames over a stream socket, schema-versioned in both directions
 * (see docs/SERVER.md for the full grammar).
 *
 * A frame is a 4-byte big-endian payload length followed by that many
 * bytes of UTF-8 JSON. Frames the peer declares longer than the
 * receiver's limit are rejected before any payload is read, so a
 * hostile length prefix cannot force an allocation.
 *
 * A request ("ccr.request" v1) is either an admin verb (`list`,
 * `metrics`, `shutdown`) or a `run` batch: up to maxRunsPerRequest
 * run specs, each naming a registered workload or carrying inline
 * `.lc` source, plus run parameters (scheme, CRB/DTM geometry,
 * input sets, `maxInsts` cap). Responses ("ccr.response" v1) stream
 * back one frame per completed or rejected run — in completion
 * order, tagged with the request-local `index` — followed by one
 * `done` frame. Protocol-level failures produce a single `error`
 * frame carrying structured ir::Diagnostic JSON.
 */

#ifndef CCR_SERVER_PROTOCOL_HH
#define CCR_SERVER_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ir/diagnostic.hh"
#include "obs/json.hh"
#include "workloads/harness.hh"

namespace ccr::server
{

constexpr const char *kRequestSchemaName = "ccr.request";
constexpr const char *kResponseSchemaName = "ccr.response";
constexpr int kProtocolVersion = 1;

/** Default cap on a single frame's payload (inline `.lc` sources are
 *  the big case; 4 MiB is ~40x the largest corpus kernel). */
constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

// -- Framing ----------------------------------------------------------

enum class FrameStatus
{
    Ok,        ///< payload read completely
    Closed,    ///< peer closed cleanly at a frame boundary
    Truncated, ///< peer closed mid-header or mid-payload
    Oversized, ///< declared length exceeds the receiver's limit
    BadLength, ///< declared length is zero
    IoError,   ///< recv/send failed
};

const char *frameStatusName(FrameStatus status);

/** Read one frame from @p fd (blocking). On Ok, @p payload holds the
 *  JSON text. Oversized/BadLength return before reading any payload
 *  byte — the stream position is then unrecoverable and the
 *  connection must be dropped after an optional error frame. */
FrameStatus readFrame(int fd, std::size_t max_bytes,
                      std::string &payload);

/** Write one frame (blocking, SIGPIPE-safe). False when the peer is
 *  gone or the write fails. */
bool writeFrame(int fd, std::string_view payload);

// -- Requests ---------------------------------------------------------

enum class RequestType
{
    Run,      ///< execute a batch of run specs
    List,     ///< report the runnable workload names
    Metrics,  ///< report the server metric registry
    Shutdown, ///< ask the server to stop (when enabled)
};

/** One requested experiment run: a registered workload name XOR
 *  inline `.lc` source, plus the run parameters the protocol
 *  exposes. */
struct RunSpec
{
    std::string workload; ///< registered name ("" for inline runs)
    std::string source;   ///< inline `.lc` text ("" for named runs)
    std::string display;  ///< diagnostic label for inline source

    /** Parsed run parameters; fields the protocol does not expose
     *  (policy, telemetry) keep their defaults. */
    workloads::RunConfig config;
};

struct Request
{
    RequestType type = RequestType::Run;
    std::string tenant = "anonymous";
    std::vector<RunSpec> runs;
};

/**
 * Parse and validate one request payload. Strict: unknown keys,
 * wrong types, a missing/foreign schema object, or a version newer
 * than kProtocolVersion all fail with "proto.*" diagnostics (never an
 * exception). @p max_runs bounds the run batch.
 */
bool parseRequest(const obs::Json &json, std::size_t max_runs,
                  Request &out, std::vector<ir::Diagnostic> &diags);

// -- Responses --------------------------------------------------------

/** {"schema": {...}, "type": <type>} — the base of every response. */
obs::Json responseHeader(std::string_view type);

/** Whole-request failure: protocol error, quota reject, shutdown. */
obs::Json errorResponse(std::string_view reason,
                        const std::vector<ir::Diagnostic> &diags);

/** Per-run success. @p run_report is RunReport JSON; the server-side
 *  timing lives only in the envelope ("serverMillis"), so the report
 *  stays byte-identical to an offline driver run. */
obs::Json runResponse(std::size_t index, const std::string &workload,
                      bool cached, double server_millis,
                      obs::Json run_report);

/** Per-run rejection (admission, unknown workload, shutdown race). */
obs::Json runErrorResponse(std::size_t index,
                           const std::string &workload,
                           std::string_view reason,
                           const std::vector<ir::Diagnostic> &diags);

/** End-of-request marker. */
obs::Json doneResponse(std::size_t requested, std::size_t completed,
                       std::size_t rejected, double millis);

// -- Run identity -----------------------------------------------------

/**
 * Canonical signature of one run: the workload name plus every
 * protocol-visible config field, in fixed order. Two runs with equal
 * signatures are the same deterministic computation — the key of the
 * server's single-flight result cache.
 */
std::string runSignature(const std::string &workload,
                         const workloads::RunConfig &config);

/**
 * Compatibility key for batching: runs with equal batch keys share
 * their module build, RPS profile, and base timed run (the
 * ExperimentCache stages), so the server folds them into one RunPlan.
 */
std::string batchKey(const std::string &workload,
                     const workloads::RunConfig &config);

} // namespace ccr::server

#endif // CCR_SERVER_PROTOCOL_HH
