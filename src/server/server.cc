#include "server/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>

#include "support/logging.hh"
#include "workloads/cache.hh"
#include "workloads/corpus.hh"
#include "workloads/driver.hh"

namespace ccr::server
{

namespace
{

double
nowMillis()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
               steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

/** One client connection. Writes are serialized through writeMu so
 *  concurrently-completing runs never interleave frames. The handler
 *  thread lives here so the accept loop can reap finished
 *  connections; `done` flips when the handler returns (after
 *  shutting the socket down, so the peer sees EOF immediately rather
 *  than at server stop). */
struct Server::Connection
{
    int fd = -1;
    std::mutex writeMu;
    std::thread handler;
    std::atomic<bool> done{false};

    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool
    sendJson(const obs::Json &json)
    {
        const std::string payload = json.dump();
        std::lock_guard lock(writeMu);
        return writeFrame(fd, payload);
    }
};

/** Completion tracking of one in-flight run request. */
struct Server::RequestSync
{
    std::shared_ptr<Connection> conn;
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = 0;
    std::size_t completed = 0;
    std::size_t rejected = 0;

    void
    finishOne(bool ok)
    {
        std::lock_guard lock(mu);
        (ok ? completed : rejected) += 1;
        remaining -= 1;
        if (remaining == 0)
            cv.notify_all();
    }

    void
    wait()
    {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return remaining == 0; });
    }
};

/** One admitted run, en route to a shard (or attached to an
 *  in-flight leader). */
struct Server::Job
{
    std::shared_ptr<RequestSync> sync;
    std::size_t index = 0; ///< request-local run index
    std::string workload;
    workloads::RunConfig config;
    std::string signature;
    std::string batch;
};

/** Single-flight result-cache entry. The leader (first job with this
 *  signature) computes; followers queue here and are serviced on
 *  completion. */
struct Server::CachedRun
{
    std::mutex mu;
    bool done = false;
    obs::Json report; ///< RunReport JSON, valid once done
    std::vector<Job> waiters;
};

struct Server::Shard
{
    int id = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> queue;
    workloads::ExperimentCache cache;
    std::thread dispatcher;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      admission_(options_.limits, options_.clock)
{
    if (options_.shards < 1)
        options_.shards = 1;
    if (options_.jobsPerShard < 1)
        options_.jobsPerShard = 1;
}

Server::~Server()
{
    stop();
}

std::uint16_t
Server::start()
{
    ccr_assert(!running_.load(), "server already started");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        ccr_fatal("ccrd: socket() failed");
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr))
        != 0)
        ccr_fatal("ccrd: cannot bind 127.0.0.1:", options_.port);
    if (::listen(listenFd_, 64) != 0)
        ccr_fatal("ccrd: listen() failed");

    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);

    for (const auto &name : workloads::allWorkloadNames())
        builtinNames_.insert(name);

    shards_.clear();
    for (int s = 0; s < options_.shards; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->id = s;
        shards_.push_back(std::move(shard));
    }

    running_.store(true);
    stopping_.store(false);
    for (auto &shard : shards_)
        shard->dispatcher =
            std::thread([this, &shard] { dispatchLoop(*shard); });
    acceptor_ = std::thread([this] { acceptLoop(); });
    return port_;
}

void
Server::stop()
{
    if (!running_.exchange(false))
        return;
    stopping_.store(true);

    // Unblock the acceptor.
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptor_.joinable())
        acceptor_.join();

    // Wake the dispatchers; they fail any queued jobs and exit.
    for (auto &shard : shards_) {
        shard->cv.notify_all();
        if (shard->dispatcher.joinable())
            shard->dispatcher.join();
    }

    // Unblock handler threads stuck in recv(), then join them.
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard lock(connMutex_);
        conns.swap(connections_);
    }
    for (auto &conn : conns)
        if (conn->fd >= 0)
            ::shutdown(conn->fd, SHUT_RDWR);
    for (auto &conn : conns)
        if (conn->handler.joinable())
            conn->handler.join();
}

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                break;
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        std::lock_guard lock(connMutex_);
        if (stopping_.load())
            break; // conn dtor closes fd
        // Reap connections whose handler already returned, so a
        // long-lived server does not accumulate dead sockets.
        for (auto it = connections_.begin();
             it != connections_.end();) {
            if ((*it)->done.load()) {
                if ((*it)->handler.joinable())
                    (*it)->handler.join();
                it = connections_.erase(it);
            } else {
                ++it;
            }
        }
        connections_.push_back(conn);
        conn->handler =
            std::thread([this, conn] { handleConnection(conn); });
        bumpCounter("server.connections");
    }
}

void
Server::handleConnection(std::shared_ptr<Connection> conn)
{
    std::string payload;
    while (!stopping_.load()) {
        FrameStatus status =
            readFrame(conn->fd, options_.maxFrameBytes, payload);
        if (status == FrameStatus::Closed
            || status == FrameStatus::Truncated
            || status == FrameStatus::IoError)
            break;
        bumpCounter("server.frames");

        if (status == FrameStatus::Oversized
            || status == FrameStatus::BadLength) {
            // The stream position is unrecoverable past a bad
            // length prefix: report and drop the connection.
            bumpCounter("server.admission.rejects.protocol");
            conn->sendJson(errorResponse(
                "proto.frame",
                {ir::makeError(std::string("proto.frame.")
                                   + frameStatusName(status),
                               "rejected frame: "
                                   + std::string(
                                       frameStatusName(status)))}));
            break;
        }

        std::string parse_err;
        auto json = obs::Json::parse(payload, &parse_err);
        if (!json) {
            bumpCounter("server.admission.rejects.protocol");
            conn->sendJson(errorResponse(
                "proto.json",
                {ir::makeError("proto.json",
                               "malformed JSON: " + parse_err)}));
            continue; // frame boundary intact; keep the connection
        }

        Request request;
        std::vector<ir::Diagnostic> diags;
        if (!parseRequest(*json, options_.maxRunsPerRequest, request,
                          diags)) {
            bumpCounter("server.admission.rejects.protocol");
            conn->sendJson(errorResponse("proto.request", diags));
            continue;
        }

        bumpCounter("server.requests");
        handleRequest(conn, request);
        if (request.type == RequestType::Shutdown)
            break;
    }

    // Drop the TCP stream now so the peer sees EOF at the protocol
    // boundary instead of at server stop. The fd itself is closed by
    // the Connection destructor; deliveries still in flight for this
    // connection fail their writes harmlessly.
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->done.store(true);
}

void
Server::handleRequest(const std::shared_ptr<Connection> &conn,
                      const Request &request)
{
    switch (request.type) {
    case RequestType::Run:
        handleRunRequest(conn, request);
        return;
    case RequestType::List: {
        obs::Json names = obs::Json::array();
        for (const auto &name : builtinNames_)
            names.push(name);
        obs::Json out = responseHeader("list");
        out["workloads"] = std::move(names);
        conn->sendJson(out);
        return;
    }
    case RequestType::Metrics: {
        obs::Json out = responseHeader("metrics");
        out["metrics"] = metricsJson();
        conn->sendJson(out);
        return;
    }
    case RequestType::Shutdown: {
        if (!options_.allowRemoteShutdown) {
            conn->sendJson(errorResponse(
                "server.shutdown.forbidden",
                {ir::makeError("server.shutdown.forbidden",
                               "remote shutdown is disabled")}));
            return;
        }
        // Flag first: a client that saw the ack must observe
        // shutdownRequested() == true.
        shutdownRequested_.store(true);
        conn->sendJson(responseHeader("shutdown-ack"));
        return;
    }
    }
}

void
Server::handleRunRequest(const std::shared_ptr<Connection> &conn,
                         const Request &request)
{
    const double t0 = nowMillis();

    std::vector<ir::Diagnostic> quota_diags;
    if (!admission_.admitQuota(
            request.tenant,
            static_cast<double>(request.runs.size()),
            quota_diags)) {
        bumpCounter("server.admission.rejects.quota");
        conn->sendJson(
            errorResponse("server.quota.exceeded", quota_diags));
        return;
    }

    bumpCounter("server.runs.requested", request.runs.size());

    auto sync = std::make_shared<RequestSync>();
    sync->conn = conn;
    sync->remaining = request.runs.size();

    for (std::size_t i = 0; i < request.runs.size(); ++i) {
        const RunSpec &spec = request.runs[i];

        Job job;
        job.sync = sync;
        job.index = i;
        job.config = spec.config;
        job.config.maxInsts =
            admission_.clampBudget(spec.config.maxInsts);
        job.config.telemetry = {}; // traces never cross the wire
        // Sandbox: a run that exhausts its budget is reported as a
        // structured error, never a process kill.
        job.config.budgetFatal = false;

        if (!spec.source.empty()) {
            AdmissionResult adm =
                admission_.admitInline(spec.source, spec.display);
            if (!adm.admitted) {
                bumpCounter("server.admission.rejects.lint");
                job.workload = spec.display;
                deliverRunError(job, adm.reason, adm.diagnostics);
                continue;
            }
            job.workload = adm.name;
        } else {
            if (!workloadAllowed(spec.workload)) {
                bumpCounter("server.admission.rejects.workload");
                job.workload = spec.workload;
                deliverRunError(
                    job, "server.admission.workload",
                    {ir::makeError(
                        "server.admission.unknown-workload",
                        "unknown or unadmitted workload \""
                            + spec.workload + "\"")});
                continue;
            }
            job.workload = spec.workload;
        }

        job.signature = runSignature(job.workload, job.config);
        job.batch = batchKey(job.workload, job.config);

        // Single-flight: first job with this signature leads, the
        // rest attach to its cache entry.
        bool lead = false;
        {
            std::lock_guard lock(cacheMutex_);
            auto [it, inserted] = resultCache_.try_emplace(
                job.signature, nullptr);
            if (inserted) {
                it->second = std::make_shared<CachedRun>();
                lead = true;
            } else {
                std::shared_ptr<CachedRun> entry = it->second;
                std::lock_guard elock(entry->mu);
                if (entry->done) {
                    bumpCounter("server.runs.cached");
                    deliverRun(job, /*cached=*/true, 0.0,
                               entry->report);
                    continue;
                }
                entry->waiters.push_back(std::move(job));
                continue;
            }
        }
        if (lead) {
            Shard &shard = *shards_[static_cast<std::size_t>(
                workloads::workloadContentKey(job.workload)
                % static_cast<std::uint64_t>(shards_.size()))];
            std::lock_guard lock(shard.mu);
            if (stopping_.load()) {
                failLeader(job, "server.shutdown",
                           {ir::makeError("server.shutdown",
                                          "server is stopping")});
                continue;
            }
            shard.queue.push_back(std::move(job));
            shard.cv.notify_one();
        }
    }

    sync->wait();

    std::size_t completed, rejected;
    {
        std::lock_guard lock(sync->mu);
        completed = sync->completed;
        rejected = sync->rejected;
    }
    conn->sendJson(doneResponse(request.runs.size(), completed,
                                rejected, nowMillis() - t0));
}

void
Server::dispatchLoop(Shard &shard)
{
    for (;;) {
        std::vector<Job> jobs;
        {
            std::unique_lock lock(shard.mu);
            shard.cv.wait(lock, [&] {
                return stopping_.load() || !shard.queue.empty();
            });
            while (!shard.queue.empty()) {
                jobs.push_back(std::move(shard.queue.front()));
                shard.queue.pop_front();
            }
            if (jobs.empty() && stopping_.load())
                return;
        }

        if (stopping_.load()) {
            for (const auto &job : jobs)
                failLeader(job, "server.shutdown",
                           {ir::makeError("server.shutdown",
                                          "server is stopping")});
            return;
        }

        // Group compatible jobs into RunPlans: equal batch keys share
        // every ExperimentCache stage.
        std::map<std::string, std::vector<Job>> batches;
        for (auto &job : jobs)
            batches[job.batch].push_back(std::move(job));
        for (auto &[key, batch] : batches) {
            (void)key;
            {
                std::lock_guard lock(metricsMutex_);
                metrics_
                    .histogram("server.batch.occupancy", 0, 64, 16)
                    .record(
                        static_cast<std::int64_t>(batch.size()));
            }
            runBatch(shard, std::move(batch));
        }
    }
}

void
Server::runBatch(Shard &shard, std::vector<Job> jobs)
{
    workloads::RunPlan plan;
    for (const auto &job : jobs)
        plan.add(job.workload, job.config);

    workloads::DriverOptions opts;
    opts.jobs = options_.jobsPerShard;
    opts.seed = options_.seed
                + static_cast<std::uint64_t>(shard.id);
    opts.cache = &shard.cache;
    // Output mismatches must reach the client as data, not kill the
    // server; the offline driver's fatal check stays off here.
    opts.checkOutputs = false;

    const double t0 = nowMillis();
    workloads::runPlan(
        plan, opts,
        [&](std::size_t index, const workloads::RunResult &result) {
            const Job &job = jobs[index];
            const double millis = nowMillis() - t0;

            if (!result.completed) {
                // Budget sandbox tripped: error the leader and any
                // followers; the entry is not worth caching.
                bumpCounter("server.runs.incomplete");
                failLeader(
                    job, "server.budget.exhausted",
                    {ir::makeError(
                        "server.budget.exhausted",
                        job.workload + ": " + result.incompleteStage
                            + " run did not halt within maxInsts="
                            + std::to_string(job.config.maxInsts))});
                return;
            }

            const obs::Json report = result.report.toJson();

            // Publish to the cache entry and collect the followers.
            std::vector<Job> waiters;
            {
                std::lock_guard lock(cacheMutex_);
                auto it = resultCache_.find(job.signature);
                if (it != resultCache_.end()) {
                    std::shared_ptr<CachedRun> entry = it->second;
                    {
                        std::lock_guard elock(entry->mu);
                        entry->done = true;
                        entry->report = report;
                        waiters = std::move(entry->waiters);
                        entry->waiters.clear();
                    }
                    if (!options_.resultCache)
                        resultCache_.erase(it);
                }
            }

            bumpCounter("server.runs.completed");
            deliverRun(job, /*cached=*/false, millis, report);
            for (const auto &waiter : waiters) {
                bumpCounter("server.runs.cached");
                deliverRun(waiter, /*cached=*/true, millis, report);
            }
        });
}

void
Server::deliverRun(const Job &job, bool cached, double server_millis,
                   const obs::Json &report)
{
    job.sync->conn->sendJson(runResponse(
        job.index, job.workload, cached, server_millis, report));
    job.sync->finishOne(/*ok=*/true);
}

void
Server::deliverRunError(const Job &job, std::string_view reason,
                        const std::vector<ir::Diagnostic> &diags)
{
    job.sync->conn->sendJson(
        runErrorResponse(job.index, job.workload, reason, diags));
    job.sync->finishOne(/*ok=*/false);
}

void
Server::failLeader(const Job &job, std::string_view reason,
                   const std::vector<ir::Diagnostic> &diags)
{
    std::vector<Job> waiters;
    {
        std::lock_guard lock(cacheMutex_);
        auto it = resultCache_.find(job.signature);
        if (it != resultCache_.end()) {
            {
                std::lock_guard elock(it->second->mu);
                waiters = std::move(it->second->waiters);
            }
            resultCache_.erase(it);
        }
    }
    deliverRunError(job, reason, diags);
    for (const auto &waiter : waiters)
        deliverRunError(waiter, reason, diags);
}

bool
Server::workloadAllowed(const std::string &name) const
{
    return builtinNames_.count(name) > 0
           || admission_.isAdmitted(name);
}

void
Server::bumpCounter(const std::string &name, std::uint64_t delta)
{
    std::lock_guard lock(metricsMutex_);
    metrics_.counter(name) += delta;
}

obs::Json
Server::metricsJson()
{
    obs::Json out;
    {
        std::lock_guard lock(metricsMutex_);
        out = metrics_.toJson();
    }
    for (const auto &shard : shards_) {
        const auto stats = shard->cache.stats();
        const std::string prefix =
            "server.shard." + std::to_string(shard->id) + ".cache.";
        out[prefix + "module.hits"] = stats.moduleHits;
        out[prefix + "module.misses"] = stats.moduleMisses;
        out[prefix + "profile.hits"] = stats.profileHits;
        out[prefix + "profile.misses"] = stats.profileMisses;
        out[prefix + "baseRun.hits"] = stats.baseRunHits;
        out[prefix + "baseRun.misses"] = stats.baseRunMisses;
    }
    return out;
}

} // namespace ccr::server
