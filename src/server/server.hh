/**
 * @file
 * `ccrd`: a long-lived, sharded, multi-tenant CCR simulation server.
 *
 * Architecture (docs/SERVER.md has the full picture):
 *
 *  - One acceptor thread owns the listening socket; each accepted
 *    connection gets a handler thread that reads length-prefixed JSON
 *    request frames (server/protocol.hh) and streams response frames
 *    back as runs complete.
 *
 *  - Run jobs are routed to one of N **shards** by the content hash
 *    of their workload (workloads::workloadContentKey), so all runs
 *    of one module land on the same shard and share that shard's
 *    private ExperimentCache (module build, RPS profile, base timed
 *    run) without cross-shard lock traffic.
 *
 *  - Each shard's dispatcher drains its queue, groups compatible
 *    jobs — same workload, optimization flag, input sets, and budget
 *    (protocol batchKey) — into one workloads::RunPlan, and executes
 *    it on the shard's worker pool with the streaming runPlan
 *    overload, delivering every result frame the moment its point
 *    finishes.
 *
 *  - A server-wide single-flight **result cache** keyed by the full
 *    run signature collapses duplicate in-flight and repeated runs:
 *    followers attach to the leader's entry and receive the same
 *    RunReport JSON with "cached": true. Simulation determinism
 *    (driver.hh) is what makes this sound — equal signatures mean
 *    byte-equal reports.
 *
 *  - Every request passes the AdmissionController first: per-tenant
 *    token-bucket quotas, instruction-budget clamping, and the full
 *    lint gate for inline `.lc` submissions. Named runs are checked
 *    against the built-in corpus snapshot plus the admitted set, so
 *    nothing that skipped the gate can run.
 */

#ifndef CCR_SERVER_SERVER_HH
#define CCR_SERVER_SERVER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "server/admission.hh"
#include "server/protocol.hh"

namespace ccr::server
{

struct ServerOptions
{
    /** TCP port to bind on 127.0.0.1; 0 picks an ephemeral port
     *  (read it back from Server::port()). */
    std::uint16_t port = 0;

    /** Worker-pool shards; workloads hash-route to one shard. */
    int shards = 4;

    /** Parallel plan-execution jobs per shard. */
    int jobsPerShard = 2;

    /** Largest accepted request frame. */
    std::size_t maxFrameBytes = kDefaultMaxFrameBytes;

    /** Largest run batch in one request. */
    std::size_t maxRunsPerRequest = 64;

    /** Retain completed run reports in the single-flight result
     *  cache (off: entries are dropped once delivered, duplicate
     *  in-flight runs still collapse). */
    bool resultCache = true;

    /** Honor "shutdown" requests from clients (ccrload/CI use this;
     *  a hardened deployment would turn it off). */
    bool allowRemoteShutdown = true;

    /** Base seed for the shard worker pools. */
    std::uint64_t seed = 0x5EED'0001ULL;

    AdmissionLimits limits;

    /** Injectable quota clock (tests); default is the monotonic
     *  clock. */
    AdmissionController::Clock clock;
};

class Server
{
  public:
    explicit Server(ServerOptions options = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and start the acceptor and shard dispatchers.
     * Returns the bound port. Fatal if the socket can't be bound.
     */
    std::uint16_t start();

    /** Stop accepting, fail queued jobs, unblock every connection,
     *  and join all threads. Idempotent. */
    void stop();

    std::uint16_t port() const { return port_; }
    bool running() const { return running_.load(); }

    /** Set once a (permitted) shutdown request arrives; the host
     *  process polls this to decide when to stop(). */
    bool shutdownRequested() const
    {
        return shutdownRequested_.load();
    }

    /** Snapshot of the server metric registry plus per-shard
     *  experiment-cache hit/miss counters. */
    obs::Json metricsJson();

    const AdmissionController &admission() const
    {
        return admission_;
    }

  private:
    struct Connection;
    struct RequestSync;
    struct Job;
    struct CachedRun;
    struct Shard;

    void acceptLoop();
    void handleConnection(std::shared_ptr<Connection> conn);
    void handleRequest(const std::shared_ptr<Connection> &conn,
                       const Request &request);
    void handleRunRequest(const std::shared_ptr<Connection> &conn,
                          const Request &request);
    void dispatchLoop(Shard &shard);
    void runBatch(Shard &shard, std::vector<Job> jobs);
    void deliverRun(const Job &job, bool cached,
                    double server_millis, const obs::Json &report);
    void deliverRunError(const Job &job, std::string_view reason,
                         const std::vector<ir::Diagnostic> &diags);
    /** Fail a leader job without running it: resolve its cache entry,
     *  drain any attached waiters, and error them all (shutdown
     *  path — otherwise waiters would block their handlers
     *  forever). */
    void failLeader(const Job &job, std::string_view reason,
                    const std::vector<ir::Diagnostic> &diags);
    bool workloadAllowed(const std::string &name) const;
    void bumpCounter(const std::string &name,
                     std::uint64_t delta = 1);

    ServerOptions options_;
    AdmissionController admission_;

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> shutdownRequested_{false};

    /** Names runnable without inline admission: the corpus snapshot
     *  taken at start(). */
    std::set<std::string> builtinNames_;

    std::vector<std::unique_ptr<Shard>> shards_;

    std::mutex connMutex_;
    std::vector<std::shared_ptr<Connection>> connections_;
    std::thread acceptor_;

    /** Single-flight result cache (run signature -> entry). */
    std::mutex cacheMutex_;
    std::map<std::string, std::shared_ptr<CachedRun>> resultCache_;

    /** MetricRegistry is not thread-safe; all access goes through
     *  this mutex. */
    std::mutex metricsMutex_;
    obs::MetricRegistry metrics_;
};

} // namespace ccr::server

#endif // CCR_SERVER_SERVER_HH
