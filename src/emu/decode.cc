#include "emu/decode.hh"

#include "emu/machine.hh"
#include "support/logging.hh"

namespace ccr::emu
{

DecodedProgram::DecodedProgram(const ir::Module &mod,
                               const CodeLayout &layout)
{
    funcs_.resize(mod.numFunctions());
    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        const auto fid = static_cast<ir::FuncId>(f);
        const ir::Function &func = mod.function(fid);
        DecodedFunction &df = funcs_[f];
        df.id = fid;
        df.numRegs = func.numRegs();
        df.blockStart.assign(func.numBlocks(), 0);

        // Flatten in blocks() order — the order CodeLayout assigns
        // addresses in — so straight-line execution is ip + 1.
        std::size_t total = 0;
        for (const auto &bb : func.blocks())
            total += bb.size();
        df.insts.reserve(total);

        for (const auto &bb : func.blocks()) {
            df.blockStart[bb.id()] =
                static_cast<std::uint32_t>(df.insts.size());
            // Tracks whether the preceding instruction chain (through
            // other Invalidates only) ends in a Store, so an
            // Invalidate can be tagged with the store that caused it.
            bool after_store = false;
            for (std::size_t i = 0; i < bb.size(); ++i) {
                const ir::Inst &inst = bb.inst(i);
                DecodedInst di;
                di.inst = &inst;
                di.pc = layout.instAddr(fid, bb.id(), i);
                di.imm = inst.imm;
                di.op = inst.op;
                di.numSrc =
                    static_cast<std::uint8_t>(inst.numRegSources());
                di.srcImm = inst.srcImm;
                di.unsignedLoad = inst.unsignedLoad;
                di.numArgs = inst.numArgs;
                di.size = inst.size;
                di.dst = inst.dst;
                if (di.numSrc > 0)
                    di.src0 = inst.regSource(0);
                if (di.numSrc > 1)
                    di.src1 = inst.regSource(1);
                di.block = bb.id();
                di.callee = inst.callee;
                di.globalId = inst.globalId;
                di.regionId = inst.regionId;
                if (inst.op == ir::Opcode::Invalidate)
                    di.afterStore = after_store;
                else
                    after_store = inst.isStore();
                df.insts.push_back(di);
            }
        }

        // Resolve control successors to flat indices. The default
        // successor is the next instruction in layout order.
        for (std::size_t i = 0; i < df.insts.size(); ++i) {
            DecodedInst &di = df.insts[i];
            di.succ = static_cast<std::uint32_t>(i + 1);
            const ir::Inst &inst = *di.inst;
            switch (di.op) {
              case ir::Opcode::Br:
                di.succ = df.blockStart[inst.target];
                di.succ2 = df.blockStart[inst.target2];
                break;
              case ir::Opcode::Jump:
                di.succ = df.blockStart[inst.target];
                break;
              case ir::Opcode::Call:
                // Continuation in the caller; the callee entry comes
                // from its own DecodedFunction.
                di.succ = df.blockStart[inst.target];
                break;
              case ir::Opcode::Reuse:
                di.succ = df.blockStart[inst.target];
                di.succ2 = df.blockStart[inst.target2];
                break;
              default:
                break;
            }
        }

        df.entryIp = df.blockStart[func.entry()];
    }
}

} // namespace ccr::emu
