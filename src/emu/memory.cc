#include "emu/memory.hh"

#include <cstring>

#include "support/bits.hh"

namespace ccr::emu
{

Memory::Page &
Memory::pageFor(Addr addr)
{
    const Addr key = addr >> kPageBits;
    auto &slot = pages_[key];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

const Memory::Page *
Memory::pageForRead(Addr addr) const
{
    const auto it = pages_.find(addr >> kPageBits);
    return it == pages_.end() ? nullptr : it->second.get();
}

ir::Value
Memory::read(Addr addr, ir::MemSize size, bool unsigned_load) const
{
    const int n = ir::memSizeBytes(size);
    std::uint64_t raw = 0;
    // Fast path: access within one page.
    const Addr off = addr & (kPageSize - 1);
    if (off + static_cast<Addr>(n) <= kPageSize) {
        if (const Page *p = pageForRead(addr)) {
            for (int i = 0; i < n; ++i)
                raw |= static_cast<std::uint64_t>((*p)[off + i]) << (8 * i);
        }
    } else {
        for (int i = 0; i < n; ++i) {
            std::uint8_t b = 0;
            if (const Page *p = pageForRead(addr + i))
                b = (*p)[(addr + i) & (kPageSize - 1)];
            raw |= static_cast<std::uint64_t>(b) << (8 * i);
        }
    }
    if (unsigned_load || n == 8)
        return static_cast<ir::Value>(raw);
    return signExtend(raw, n * 8);
}

void
Memory::write(Addr addr, ir::MemSize size, ir::Value value)
{
    const int n = ir::memSizeBytes(size);
    const auto raw = static_cast<std::uint64_t>(value);
    const Addr off = addr & (kPageSize - 1);
    if (off + static_cast<Addr>(n) <= kPageSize) {
        Page &p = pageFor(addr);
        for (int i = 0; i < n; ++i)
            p[off + i] = static_cast<std::uint8_t>(raw >> (8 * i));
    } else {
        for (int i = 0; i < n; ++i) {
            pageFor(addr + i)[(addr + i) & (kPageSize - 1)] =
                static_cast<std::uint8_t>(raw >> (8 * i));
        }
    }
}

void
Memory::writeBytes(Addr addr, const std::uint8_t *data, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        pageFor(addr + i)[(addr + i) & (kPageSize - 1)] = data[i];
}

void
Memory::readBytes(Addr addr, std::uint8_t *data, std::size_t len) const
{
    for (std::size_t i = 0; i < len; ++i) {
        const Page *p = pageForRead(addr + i);
        data[i] = p ? (*p)[(addr + i) & (kPageSize - 1)] : 0;
    }
}

void
Memory::zero(Addr addr, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        pageFor(addr + i)[(addr + i) & (kPageSize - 1)] = 0;
}

} // namespace ccr::emu
