#include "emu/memory.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "support/bits.hh"

namespace ccr::emu
{

Memory::Page &
Memory::pageFor(Addr addr)
{
    const Addr key = addr >> kPageBits;
    if (key == writeKey_)
        return *writePage_;
    auto &slot = pages_[key];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    writeKey_ = key;
    writePage_ = slot.get();
    return *slot;
}

const Memory::Page *
Memory::pageForRead(Addr addr) const
{
    const Addr key = addr >> kPageBits;
    if (key == readKey_)
        return readPage_;
    const auto it = pages_.find(key);
    if (it == pages_.end())
        return nullptr;
    readKey_ = key;
    readPage_ = it->second.get();
    return readPage_;
}

ir::Value
Memory::read(Addr addr, ir::MemSize size, bool unsigned_load) const
{
    const int n = ir::memSizeBytes(size);
    std::uint64_t raw = 0;
    // Fast path: access within one page.
    const Addr off = addr & (kPageSize - 1);
    if (off + static_cast<Addr>(n) <= kPageSize) {
        if (const Page *p = pageForRead(addr)) {
            for (int i = 0; i < n; ++i)
                raw |= static_cast<std::uint64_t>((*p)[off + i]) << (8 * i);
        }
    } else {
        for (int i = 0; i < n; ++i) {
            std::uint8_t b = 0;
            if (const Page *p = pageForRead(addr + i))
                b = (*p)[(addr + i) & (kPageSize - 1)];
            raw |= static_cast<std::uint64_t>(b) << (8 * i);
        }
    }
    if (unsigned_load || n == 8)
        return static_cast<ir::Value>(raw);
    return signExtend(raw, n * 8);
}

void
Memory::write(Addr addr, ir::MemSize size, ir::Value value)
{
    const int n = ir::memSizeBytes(size);
    const auto raw = static_cast<std::uint64_t>(value);
    const Addr off = addr & (kPageSize - 1);
    if (off + static_cast<Addr>(n) <= kPageSize) {
        Page &p = pageFor(addr);
        for (int i = 0; i < n; ++i)
            p[off + i] = static_cast<std::uint8_t>(raw >> (8 * i));
    } else {
        for (int i = 0; i < n; ++i) {
            pageFor(addr + i)[(addr + i) & (kPageSize - 1)] =
                static_cast<std::uint8_t>(raw >> (8 * i));
        }
    }
}

void
Memory::writeBytes(Addr addr, const std::uint8_t *data, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        pageFor(addr + i)[(addr + i) & (kPageSize - 1)] = data[i];
}

void
Memory::readBytes(Addr addr, std::uint8_t *data, std::size_t len) const
{
    for (std::size_t i = 0; i < len; ++i) {
        const Page *p = pageForRead(addr + i);
        data[i] = p ? (*p)[(addr + i) & (kPageSize - 1)] : 0;
    }
}

void
Memory::zero(Addr addr, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        pageFor(addr + i)[(addr + i) & (kPageSize - 1)] = 0;
}

Memory
Memory::clone() const
{
    Memory copy;
    for (const auto &[key, page] : pages_) {
        auto p = std::make_unique<Page>(*page);
        copy.pages_.emplace(key, std::move(p));
    }
    return copy;
}

std::uint64_t
Memory::contentHash() const
{
    // Pages in sorted key order; all-zero pages are skipped so that
    // touched-but-blank and never-touched memory digest identically.
    std::vector<Addr> keys;
    keys.reserve(pages_.size());
    for (const auto &[key, page] : pages_)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());

    std::uint64_t h = 0xcbf2'9ce4'8422'2325ULL; // FNV offset basis
    for (const Addr key : keys) {
        const Page &p = *pages_.at(key);
        bool any = false;
        for (const auto b : p) {
            if (b != 0) {
                any = true;
                break;
            }
        }
        if (!any)
            continue;
        h = hashCombine(h, key);
        for (const auto b : p)
            h = hashCombine(h, b);
    }
    return h;
}

} // namespace ccr::emu
