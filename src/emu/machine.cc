#include "emu/machine.hh"

#include <cstring>

#include "support/bits.hh"
#include "support/logging.hh"

namespace ccr::emu
{

namespace
{

double
asDouble(ir::Value v)
{
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

ir::Value
asValue(double d)
{
    ir::Value v;
    std::memcpy(&v, &d, sizeof(v));
    return v;
}

} // namespace

CodeLayout::CodeLayout(const ir::Module &mod)
{
    Addr next = kCodeBase;
    funcBase_.resize(mod.numFunctions());
    blockBase_.resize(mod.numFunctions());
    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        const auto &func = mod.function(static_cast<ir::FuncId>(f));
        funcBase_[f] = next;
        blockBase_[f].resize(func.numBlocks());
        for (const auto &bb : func.blocks()) {
            blockBase_[f][bb.id()] = next;
            next += 4 * bb.size();
        }
        next = alignUp(next, 16);
    }
}

Addr
CodeLayout::blockBase(ir::FuncId f, ir::BlockId b) const
{
    return blockBase_[f][b];
}

Machine::Machine(const ir::Module &mod) : mod_(mod), layout_(mod)
{
    layoutGlobals();
    restart();
}

void
Machine::layoutGlobals()
{
    globalAddr_.resize(mod_.numGlobals());
    Addr next = kGlobalBase;
    for (std::size_t g = 0; g < mod_.numGlobals(); ++g) {
        const auto &gl = mod_.global(static_cast<ir::GlobalId>(g));
        next = alignUp(next, 16);
        globalAddr_[g] = next;
        if (!gl.init.empty())
            mem_.writeBytes(next, gl.init.data(), gl.init.size());
        next += gl.sizeBytes;
    }
}

void
Machine::restart()
{
    frames_.clear();
    halted_ = false;
    instCount_ = 0;
    heapNext_ = kHeapBase;

    const auto entry = mod_.entryFunction();
    ccr_assert(entry != ir::kNoFunc, "module has no entry function");
    const auto &func = mod_.function(entry);
    ccr_assert(func.numParams() == 0, "entry function takes parameters");

    Frame frame;
    frame.func = entry;
    frame.block = func.entry();
    frame.idx = 0;
    frame.regs.assign(static_cast<std::size_t>(func.numRegs()), 0);
    frames_.push_back(std::move(frame));
}

void
Machine::reset()
{
    mem_ = Memory();
    layoutGlobals();
    restart();
    stats_.reset();
}

ir::Value
Machine::readReg(ir::Reg r) const
{
    return top().regs[r];
}

void
Machine::writeReg(ir::Reg r, ir::Value v)
{
    top().regs[r] = v;
}

ir::Value
Machine::aluOp(const ir::Inst &inst, ir::Value a, ir::Value b) const
{
    using ir::Opcode;
    const auto ua = static_cast<std::uint64_t>(a);
    const auto ub = static_cast<std::uint64_t>(b);
    switch (inst.op) {
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::Mul: return a * b;
      case Opcode::Div:
        // Deterministic semantics for pathological inputs.
        if (b == 0)
            return 0;
        if (a == INT64_MIN && b == -1)
            return INT64_MIN;
        return a / b;
      case Opcode::Rem:
        if (b == 0)
            return 0;
        if (a == INT64_MIN && b == -1)
            return 0;
        return a % b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl:
        return static_cast<ir::Value>(ua << (ub & 63));
      case Opcode::Shr:
        return static_cast<ir::Value>(ua >> (ub & 63));
      case Opcode::Sra: return a >> (ub & 63);
      case Opcode::CmpEq: return a == b;
      case Opcode::CmpNe: return a != b;
      case Opcode::CmpLt: return a < b;
      case Opcode::CmpLe: return a <= b;
      case Opcode::CmpGt: return a > b;
      case Opcode::CmpGe: return a >= b;
      case Opcode::CmpLtU: return ua < ub;
      case Opcode::CmpGeU: return ua >= ub;
      case Opcode::FAdd: return asValue(asDouble(a) + asDouble(b));
      case Opcode::FSub: return asValue(asDouble(a) - asDouble(b));
      case Opcode::FMul: return asValue(asDouble(a) * asDouble(b));
      case Opcode::FDiv: return asValue(asDouble(a) / asDouble(b));
      case Opcode::FCmpLt: return asDouble(a) < asDouble(b);
      default:
        ccr_panic("aluOp on non-ALU opcode ", ir::opcodeName(inst.op));
    }
}

StepKind
Machine::step(ExecInfo &info)
{
    using ir::Opcode;

    if (halted_)
        return StepKind::Halted;

    Frame &frame = top();
    const ir::Function &func = mod_.function(frame.func);
    const ir::BasicBlock &bb = func.block(frame.block);
    ccr_assert(frame.idx < bb.size(), "ran off block end");
    const ir::Inst &inst = bb.inst(frame.idx);

    info = ExecInfo{};
    info.inst = &inst;
    info.func = frame.func;
    info.block = frame.block;
    info.pc = layout_.instAddr(frame.func, frame.block, frame.idx);

    const int nsrc = inst.numRegSources();
    for (int i = 0; i < nsrc && i < 2; ++i)
        info.srcVals[static_cast<std::size_t>(i)] =
            frame.regs[inst.regSource(i)];

    StepKind kind = StepKind::Inst;
    bool advance = true; // move to next instruction in the same block

    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::MovI:
        info.result = inst.imm;
        frame.regs[inst.dst] = inst.imm;
        break;
      case Opcode::Mov:
        info.result = info.srcVals[0];
        frame.regs[inst.dst] = info.result;
        break;
      case Opcode::MovGA:
        info.result = static_cast<ir::Value>(globalAddr_[inst.globalId]);
        frame.regs[inst.dst] = info.result;
        break;
      case Opcode::I2F:
        info.result = asValue(static_cast<double>(info.srcVals[0]));
        frame.regs[inst.dst] = info.result;
        break;
      case Opcode::F2I:
        info.result =
            static_cast<ir::Value>(asDouble(info.srcVals[0]));
        frame.regs[inst.dst] = info.result;
        break;
      case Opcode::Load: {
        info.memAddr = static_cast<Addr>(info.srcVals[0])
                       + static_cast<Addr>(inst.imm);
        info.result = mem_.read(info.memAddr, inst.size,
                                inst.unsignedLoad);
        frame.regs[inst.dst] = info.result;
        ++stats_.counter("loads");
        break;
      }
      case Opcode::Store: {
        info.memAddr = static_cast<Addr>(info.srcVals[0])
                       + static_cast<Addr>(inst.imm);
        mem_.write(info.memAddr, inst.size, info.srcVals[1]);
        ++stats_.counter("stores");
        break;
      }
      case Opcode::Alloc: {
        const auto bytes = static_cast<Addr>(
            inst.srcImm ? inst.imm : info.srcVals[0]);
        heapNext_ = alignUp(heapNext_, 16);
        info.result = static_cast<ir::Value>(heapNext_);
        frame.regs[inst.dst] = info.result;
        heapNext_ += bytes;
        break;
      }
      case Opcode::Br: {
        info.taken = info.srcVals[0] != 0;
        frame.block = info.taken ? inst.target : inst.target2;
        frame.idx = 0;
        advance = false;
        ++stats_.counter("branches");
        break;
      }
      case Opcode::Jump:
        frame.block = inst.target;
        frame.idx = 0;
        advance = false;
        break;
      case Opcode::Call: {
        const ir::Function &callee = mod_.function(inst.callee);
        for (int i = 0; i < inst.numArgs; ++i)
            info.argVals[static_cast<std::size_t>(i)] =
                frame.regs[inst.args[i]];
        Frame next;
        next.func = inst.callee;
        next.block = callee.entry();
        next.idx = 0;
        next.retDst = inst.dst;
        next.retBlock = inst.target;
        next.regs.assign(static_cast<std::size_t>(callee.numRegs()), 0);
        for (int i = 0; i < inst.numArgs; ++i)
            next.regs[static_cast<std::size_t>(i)] =
                frame.regs[inst.args[i]];
        frames_.push_back(std::move(next));
        advance = false;
        ++stats_.counter("calls");
        break;
      }
      case Opcode::Ret: {
        const ir::Value result =
            inst.src1 == ir::kNoReg ? 0 : info.srcVals[0];
        info.result = result;
        const ir::Reg ret_dst = frame.retDst;
        const ir::BlockId ret_block = frame.retBlock;
        frames_.pop_back();
        if (frames_.empty()) {
            halted_ = true;
        } else {
            Frame &caller = top();
            if (ret_dst != ir::kNoReg)
                caller.regs[ret_dst] = result;
            caller.block = ret_block;
            caller.idx = 0;
        }
        advance = false;
        break;
      }
      case Opcode::Halt:
        halted_ = true;
        advance = false;
        break;
      case Opcode::Reuse: {
        ReuseOutcome outcome;
        if (reuse_)
            outcome = reuse_->onReuse(inst.regionId, *this);
        if (outcome.hit) {
            frame.block = inst.target;
            kind = StepKind::ReuseHit;
            ++stats_.counter("reuseHits");
        } else {
            frame.block = inst.target2;
            kind = StepKind::ReuseMiss;
            ++stats_.counter("reuseMisses");
        }
        frame.idx = 0;
        advance = false;
        break;
      }
      case Opcode::Invalidate:
        if (reuse_)
            reuse_->onInvalidate(inst.regionId);
        ++stats_.counter("invalidates");
        break;
      default:
        // Binary ALU / compare.
        {
            const ir::Value b =
                inst.srcImm ? inst.imm : info.srcVals[1];
            if (inst.srcImm)
                info.srcVals[1] = inst.imm;
            info.result = aluOp(inst, info.srcVals[0], b);
            frame.regs[inst.dst] = info.result;
        }
        break;
    }

    if (advance)
        ++frame.idx;

    ++instCount_;
    ++stats_.counter("insts");

    // Next-PC for the timing model's fetch redirect logic.
    if (halted_) {
        info.nextPc = 0;
    } else {
        const Frame &now = top();
        info.nextPc = layout_.instAddr(now.func, now.block, now.idx);
    }

    // Route to the CCR handler while it is recording a region, and to
    // passive observers always.
    if (reuse_ && kind == StepKind::Inst && reuse_->memoActive())
        reuse_->observe(info);
    for (auto *obs : observers_)
        obs->onInst(info);

    // Note: the final instruction (Halt / last Ret) still reports its
    // own kind; step() only returns Halted when called after the
    // machine has already stopped.
    return kind;
}

std::uint64_t
Machine::run(std::uint64_t max_insts)
{
    ExecInfo info;
    const std::uint64_t start = instCount_;
    while (!halted_ && instCount_ - start < max_insts)
        step(info);
    return instCount_ - start;
}

} // namespace ccr::emu
