#include "emu/machine.hh"

#include <cstring>

#include "support/bits.hh"
#include "support/logging.hh"

namespace ccr::emu
{

namespace
{

double
asDouble(ir::Value v)
{
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

ir::Value
asValue(double d)
{
    ir::Value v;
    std::memcpy(&v, &d, sizeof(v));
    return v;
}

} // namespace

CodeLayout::CodeLayout(const ir::Module &mod)
{
    Addr next = kCodeBase;
    funcBase_.resize(mod.numFunctions());
    blockBase_.resize(mod.numFunctions());
    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        const auto &func = mod.function(static_cast<ir::FuncId>(f));
        funcBase_[f] = next;
        blockBase_[f].resize(func.numBlocks());
        for (const auto &bb : func.blocks()) {
            blockBase_[f][bb.id()] = next;
            next += 4 * bb.size();
        }
        next = alignUp(next, 16);
    }
}

Addr
CodeLayout::blockBase(ir::FuncId f, ir::BlockId b) const
{
    return blockBase_[f][b];
}

ir::Value
evalAlu(ir::Opcode op, ir::Value a, ir::Value b)
{
    using ir::Opcode;
    const auto ua = static_cast<std::uint64_t>(a);
    const auto ub = static_cast<std::uint64_t>(b);
    switch (op) {
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::Mul: return a * b;
      case Opcode::Div:
        // Deterministic semantics for pathological inputs.
        if (b == 0)
            return 0;
        if (a == INT64_MIN && b == -1)
            return INT64_MIN;
        return a / b;
      case Opcode::Rem:
        if (b == 0)
            return 0;
        if (a == INT64_MIN && b == -1)
            return 0;
        return a % b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl:
        return static_cast<ir::Value>(ua << (ub & 63));
      case Opcode::Shr:
        return static_cast<ir::Value>(ua >> (ub & 63));
      case Opcode::Sra: return a >> (ub & 63);
      case Opcode::CmpEq: return a == b;
      case Opcode::CmpNe: return a != b;
      case Opcode::CmpLt: return a < b;
      case Opcode::CmpLe: return a <= b;
      case Opcode::CmpGt: return a > b;
      case Opcode::CmpGe: return a >= b;
      case Opcode::CmpLtU: return ua < ub;
      case Opcode::CmpGeU: return ua >= ub;
      case Opcode::FAdd: return asValue(asDouble(a) + asDouble(b));
      case Opcode::FSub: return asValue(asDouble(a) - asDouble(b));
      case Opcode::FMul: return asValue(asDouble(a) * asDouble(b));
      case Opcode::FDiv: return asValue(asDouble(a) / asDouble(b));
      case Opcode::FCmpLt: return asDouble(a) < asDouble(b);
      default:
        ccr_panic("evalAlu on non-ALU opcode ", ir::opcodeName(op));
    }
}

Machine::Machine(const ir::Module &mod)
    : mod_(mod), layout_(mod), prog_(mod, layout_),
      cInsts_(stats_.counter("insts")),
      cLoads_(stats_.counter("loads")),
      cStores_(stats_.counter("stores")),
      cBranches_(stats_.counter("branches")),
      cCalls_(stats_.counter("calls")),
      cReuseHits_(stats_.counter("reuseHits")),
      cReuseMisses_(stats_.counter("reuseMisses")),
      cInvalidates_(stats_.counter("invalidates"))
{
    layoutGlobals();
    restart();
}

void
Machine::layoutGlobals()
{
    globalAddr_.resize(mod_.numGlobals());
    Addr next = kGlobalBase;
    for (std::size_t g = 0; g < mod_.numGlobals(); ++g) {
        const auto &gl = mod_.global(static_cast<ir::GlobalId>(g));
        next = alignUp(next, 16);
        globalAddr_[g] = next;
        if (!gl.init.empty())
            mem_.writeBytes(next, gl.init.data(), gl.init.size());
        next += gl.sizeBytes;
    }
}

void
Machine::restart()
{
    frames_.clear();
    halted_ = false;
    instCount_ = 0;
    heapNext_ = kHeapBase;
    lastStoreAddr_ = 0;
    lastStoreSize_ = 0;

    const auto entry = mod_.entryFunction();
    ccr_assert(entry != ir::kNoFunc, "module has no entry function");
    const auto &func = mod_.function(entry);
    ccr_assert(func.numParams() == 0, "entry function takes parameters");

    const DecodedFunction &df = prog_.function(entry);
    Frame frame;
    frame.df = &df;
    frame.ip = df.entryIp;
    frame.regs.assign(static_cast<std::size_t>(df.numRegs), 0);
    frames_.push_back(std::move(frame));
}

void
Machine::reset()
{
    mem_ = Memory();
    layoutGlobals();
    restart();
    stats_.reset();
}

ir::Value
Machine::readReg(ir::Reg r) const
{
    return top().regs[r];
}

void
Machine::writeReg(ir::Reg r, ir::Value v)
{
    top().regs[r] = v;
}

StepKind
Machine::step(ExecInfo &info)
{
    using ir::Opcode;

    if (halted_)
        return StepKind::Halted;

    Frame &frame = frames_.back();
    const DecodedInst &di = frame.df->insts[frame.ip];

    info.inst = di.inst;
    info.func = frame.df->id;
    info.block = di.block;
    info.pc = di.pc;
    info.numSrcRegs = di.numSrc;
    info.srcVals[0] = di.numSrc > 0 ? frame.regs[di.src0] : 0;
    info.srcVals[1] = di.numSrc > 1 ? frame.regs[di.src1] : 0;
    info.result = 0;
    info.memAddr = 0;
    info.taken = false;

    StepKind kind = StepKind::Inst;
    std::uint32_t next = frame.ip + 1;
    bool framed = false; // Call/Ret/Halt manage control flow themselves

    switch (di.op) {
      case Opcode::Nop:
        break;
      case Opcode::MovI:
        info.result = di.imm;
        frame.regs[di.dst] = di.imm;
        break;
      case Opcode::Mov:
        info.result = info.srcVals[0];
        frame.regs[di.dst] = info.result;
        break;
      case Opcode::MovGA:
        info.result = static_cast<ir::Value>(globalAddr_[di.globalId]);
        frame.regs[di.dst] = info.result;
        break;
      case Opcode::I2F:
        info.result = asValue(static_cast<double>(info.srcVals[0]));
        frame.regs[di.dst] = info.result;
        break;
      case Opcode::F2I:
        info.result =
            static_cast<ir::Value>(asDouble(info.srcVals[0]));
        frame.regs[di.dst] = info.result;
        break;
      case Opcode::Load: {
        info.memAddr = static_cast<Addr>(info.srcVals[0])
                       + static_cast<Addr>(di.imm);
        info.result = mem_.read(info.memAddr, di.size, di.unsignedLoad);
        frame.regs[di.dst] = info.result;
        ++cLoads_;
        break;
      }
      case Opcode::Store: {
        info.memAddr = static_cast<Addr>(info.srcVals[0])
                       + static_cast<Addr>(di.imm);
        mem_.write(info.memAddr, di.size, info.srcVals[1]);
        lastStoreAddr_ = info.memAddr;
        lastStoreSize_ =
            static_cast<unsigned>(ir::memSizeBytes(di.size));
        ++cStores_;
        break;
      }
      case Opcode::Alloc: {
        const auto bytes = static_cast<Addr>(
            di.srcImm ? di.imm : info.srcVals[0]);
        heapNext_ = alignUp(heapNext_, 16);
        info.result = static_cast<ir::Value>(heapNext_);
        frame.regs[di.dst] = info.result;
        heapNext_ += bytes;
        break;
      }
      case Opcode::Br: {
        info.taken = info.srcVals[0] != 0;
        next = info.taken ? di.succ : di.succ2;
        ++cBranches_;
        break;
      }
      case Opcode::Jump:
        next = di.succ;
        break;
      case Opcode::Call: {
        const DecodedFunction &callee = prog_.function(di.callee);
        const ir::Reg *args = di.inst->args.data();
        for (int i = 0; i < di.numArgs; ++i)
            info.argVals[static_cast<std::size_t>(i)] =
                frame.regs[args[i]];
        Frame nf;
        nf.df = &callee;
        nf.ip = callee.entryIp;
        nf.retDst = di.dst;
        nf.retIp = di.succ;
        nf.regs.assign(static_cast<std::size_t>(callee.numRegs), 0);
        for (int i = 0; i < di.numArgs; ++i)
            nf.regs[static_cast<std::size_t>(i)] =
                info.argVals[static_cast<std::size_t>(i)];
        frames_.push_back(std::move(nf));
        framed = true;
        ++cCalls_;
        break;
      }
      case Opcode::Ret: {
        const ir::Value result = di.numSrc > 0 ? info.srcVals[0] : 0;
        info.result = result;
        const ir::Reg ret_dst = frame.retDst;
        const std::uint32_t ret_ip = frame.retIp;
        frames_.pop_back();
        if (frames_.empty()) {
            halted_ = true;
        } else {
            Frame &caller = frames_.back();
            if (ret_dst != ir::kNoReg)
                caller.regs[ret_dst] = result;
            caller.ip = ret_ip;
        }
        framed = true;
        break;
      }
      case Opcode::Halt:
        halted_ = true;
        framed = true;
        break;
      case Opcode::Reuse: {
        ReuseOutcome outcome;
        if (reuse_)
            outcome = reuse_->onReuse(di.regionId, *this);
        if (outcome.hit) {
            next = di.succ;
            kind = StepKind::ReuseHit;
            ++cReuseHits_;
        } else {
            next = di.succ2;
            kind = StepKind::ReuseMiss;
            ++cReuseMisses_;
        }
        break;
      }
      case Opcode::Invalidate:
        // Forward the triggering store only when the decode proved
        // this invalidate sits right after one; hand-written
        // invalidates stay unconditional (size 0).
        if (reuse_) {
            if (di.afterStore) {
                reuse_->onInvalidate(di.regionId, lastStoreAddr_,
                                     lastStoreSize_);
            } else {
                reuse_->onInvalidate(di.regionId, 0, 0);
            }
        }
        ++cInvalidates_;
        break;
      default:
        // Binary ALU / compare.
        {
            const ir::Value b = di.srcImm ? di.imm : info.srcVals[1];
            if (di.srcImm)
                info.srcVals[1] = di.imm;
            info.result = evalAlu(di.op, info.srcVals[0], b);
            frame.regs[di.dst] = info.result;
        }
        break;
    }

    if (!framed)
        frame.ip = next;

    ++instCount_;
    ++cInsts_;

    // Next-PC for the timing model's fetch redirect logic.
    if (halted_) {
        info.nextPc = 0;
    } else {
        const Frame &now = frames_.back();
        info.nextPc = now.df->insts[now.ip].pc;
    }

    // Route to the CCR handler while it is recording a region, and to
    // passive observers always. The common unhooked case pays one
    // predictable branch.
    if (hooked_) {
        if (reuse_ && kind == StepKind::Inst && reuse_->memoActive())
            reuse_->observe(info);
        for (auto *obs : observers_)
            obs->onInst(info);
    }

    // Note: the final instruction (Halt / last Ret) still reports its
    // own kind; step() only returns Halted when called after the
    // machine has already stopped.
    return kind;
}

std::uint64_t
Machine::run(std::uint64_t max_insts)
{
    ExecInfo info;
    const std::uint64_t start = instCount_;
    while (!halted_ && instCount_ - start < max_insts)
        step(info);
    return instCount_ - start;
}

} // namespace ccr::emu
