/**
 * @file
 * Pre-decoded program representation for the emulator hot loop.
 *
 * At Machine construction every function is flattened into one
 * contiguous array of DecodedInst records, laid out in the same block
 * order as CodeLayout assigns code addresses. Each record carries the
 * operand metadata the interpreter needs (opcode, pre-resolved source
 * registers, immediate, memory size), the instruction's code address
 * (folding CodeLayout::instAddr into decode), and the control-flow
 * successors as flat instruction indices — so the fetch-execute loop
 * is an index walk with no per-step function/block/vector indirection.
 */

#ifndef CCR_EMU_DECODE_HH
#define CCR_EMU_DECODE_HH

#include <cstdint>
#include <vector>

#include "emu/memory.hh"
#include "ir/module.hh"

namespace ccr::emu
{

class CodeLayout;

/** One pre-decoded instruction. Successor fields by opcode:
 *  Br: succ = taken target, succ2 = fall-through; Jump: succ;
 *  Call: succ = continuation (the caller resumes there after Ret);
 *  Reuse: succ = hit/join, succ2 = miss/region body; others: succ =
 *  next instruction in layout order. */
struct DecodedInst
{
    const ir::Inst *inst = nullptr; ///< identity for observers/handlers
    Addr pc = 0;
    std::uint32_t succ = 0;
    std::uint32_t succ2 = 0;
    std::int64_t imm = 0;

    ir::Opcode op = ir::Opcode::Nop;
    std::uint8_t numSrc = 0; ///< register sources read (0..2)
    bool srcImm = false;
    bool unsignedLoad = false;
    std::uint8_t numArgs = 0;
    ir::MemSize size = ir::MemSize::Dword;

    ir::Reg dst = ir::kNoReg;
    ir::Reg src0 = ir::kNoReg; ///< pre-resolved regSource(0)
    ir::Reg src1 = ir::kNoReg; ///< pre-resolved regSource(1)

    ir::BlockId block = ir::kNoBlock; ///< owning block
    ir::FuncId callee = ir::kNoFunc;
    ir::GlobalId globalId = ir::kNoGlobal;
    ir::RegionId regionId = ir::kNoRegion;

    /** Invalidate only: statically preceded (through nothing but other
     *  Invalidates) by a Store in the same block, i.e. placed by the
     *  former as that store's invalidation. The machine then forwards
     *  the store's address/size to ReuseHandler::onInvalidate so
     *  range-claiming schemes can skip non-overlapping kills. False
     *  for hand-written invalidates with no adjacent store. */
    bool afterStore = false;
};

/** One function, flattened. */
struct DecodedFunction
{
    ir::FuncId id = ir::kNoFunc;
    std::uint32_t entryIp = 0;
    int numRegs = 0;
    std::vector<DecodedInst> insts;
    std::vector<std::uint32_t> blockStart; ///< block id -> flat index
};

/** All functions of a module, decoded against a CodeLayout. */
class DecodedProgram
{
  public:
    DecodedProgram(const ir::Module &mod, const CodeLayout &layout);

    const DecodedFunction &
    function(ir::FuncId f) const
    {
        return funcs_[f];
    }

  private:
    std::vector<DecodedFunction> funcs_;
};

} // namespace ccr::emu

#endif // CCR_EMU_DECODE_HH
