/**
 * @file
 * The functional IR emulator ("Machine"). Executes a Module instruction
 * by instruction; the timing model and the profilers attach through the
 * Observer and ReuseHandler hooks, mirroring IMPACT's emulation-driven
 * simulation style.
 *
 * The fetch-execute loop runs over a pre-decoded flat instruction
 * array built at construction (see emu/decode.hh): successors are
 * pre-resolved indices, code addresses are folded into the decode, and
 * the no-observer / no-memoization case dispatches hooks behind a
 * single cached boolean.
 */

#ifndef CCR_EMU_MACHINE_HH
#define CCR_EMU_MACHINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "emu/decode.hh"
#include "emu/memory.hh"
#include "ir/module.hh"
#include "support/smallvec.hh"
#include "support/stats.hh"

namespace ccr::emu
{

/** Everything an observer may want to know about one executed inst. */
struct ExecInfo
{
    const ir::Inst *inst = nullptr;
    ir::FuncId func = ir::kNoFunc;
    ir::BlockId block = ir::kNoBlock;

    /** Number of register sources read (inst->numRegSources(), carried
     *  pre-computed so observers avoid re-deriving it per step). */
    std::uint8_t numSrcRegs = 0;

    /** Values of regSource(0) / regSource(1) before execution. */
    std::array<ir::Value, 2> srcVals{};

    /** Call only: the argument values passed to the callee. Only the
     *  first inst->numArgs slots are written each step. */
    std::array<ir::Value, ir::kMaxCallArgs> argVals{};

    /** Value written to dst (when the instruction has one). */
    ir::Value result = 0;

    /** Effective address for Load/Store. */
    Addr memAddr = 0;

    /** Branch outcome for Br. */
    bool taken = false;

    /** Code address of this instruction (see CodeLayout). */
    Addr pc = 0;

    /** Code address of the next instruction to execute. */
    Addr nextPc = 0;
};

/** Kinds of step outcomes the timing model distinguishes. */
enum class StepKind : std::uint8_t
{
    Inst,       ///< ordinary instruction committed
    ReuseHit,   ///< reuse instruction found a valid CI and skipped code
    ReuseMiss,  ///< reuse instruction missed; memoization mode begins
    Halted      ///< program finished
};

/** Outcome of a CRB query, including what timing needs. Register
 *  lists are sized by the configured bank geometry (a CI bank holds
 *  up to 16 registers, and a summary set unions the input banks of
 *  all CIs in an entry, so either list can exceed any fixed cap). */
struct ReuseOutcome
{
    bool hit = false;

    /** The summary-set registers the validation step read (paper
     *  §3.3; for interlock modeling). */
    SmallVec<ir::Reg, 16> inputRegs;

    /** The live-out registers written on a hit (for wakeup
     *  modeling). */
    SmallVec<ir::Reg, 16> outputRegs;

    /** Memory addresses the query re-read to validate (schemes with
     *  SchemeTraits::validatesMemoryAtQuery; the timing model charges
     *  each probe as a data-cache access). Empty for the CRB, whose
     *  memory state is maintained by `invalidate` instructions. */
    SmallVec<Addr, 16> memProbes;

    /** Number of distinct input registers validation read. */
    int numInputsRead() const
    {
        return static_cast<int>(inputRegs.size());
    }

    /** Number of live-out registers written on a hit. */
    int numOutputsWritten() const
    {
        return static_cast<int>(outputRegs.size());
    }
};

class Machine;

/**
 * Hardware-side handler for the CCR ISA extension. The uarch layer's
 * CRB controller implements this; the machine routes `reuse`,
 * `invalidate`, and (while a region executes) every instruction to it.
 */
class ReuseHandler
{
  public:
    virtual ~ReuseHandler() = default;

    /** A `reuse` instruction executed. On a hit the handler must write
     *  the live-out registers through machine.writeReg(). */
    virtual ReuseOutcome onReuse(ir::RegionId region, Machine &machine)
        = 0;

    /** Every instruction executed while the handler is interested
     *  (memoization mode); the handler watches ext.regionEnd /
     *  ext.regionExit bits to finish recording. */
    virtual void observe(const ExecInfo &info) = 0;

    /** An `invalidate` instruction executed. @p store_addr /
     *  @p store_size describe the store that triggered it when the
     *  invalidate statically follows one in its block (store_size > 0);
     *  a size of 0 means the triggering store is unknown and the
     *  handler must invalidate unconditionally. Handlers holding range
     *  claims (ReuseScheme::setMemClaims) may skip the kill when the
     *  store provably misses every claimed range. */
    virtual void onInvalidate(ir::RegionId region, Addr store_addr,
                              unsigned store_size)
        = 0;

    /** True while memoization mode is active (machine forwards every
     *  instruction through observe() only in that case). */
    virtual bool memoActive() const = 0;
};

/** Passive profiling observer (value profiling, limit studies). */
class Observer
{
  public:
    virtual ~Observer() = default;
    virtual void onInst(const ExecInfo &info) = 0;
};

/**
 * Code-address layout: assigns a synthetic address to every static
 * instruction (functions laid out in id order, 4 bytes per
 * instruction). The timing model's I-cache and BTB key on these.
 */
class CodeLayout
{
  public:
    explicit CodeLayout(const ir::Module &mod);

    Addr funcBase(ir::FuncId f) const { return funcBase_[f]; }
    Addr blockBase(ir::FuncId f, ir::BlockId b) const;

    Addr
    instAddr(ir::FuncId f, ir::BlockId b, std::size_t idx) const
    {
        return blockBase(f, b) + 4 * idx;
    }

    static constexpr Addr kCodeBase = 0x1000;

  private:
    std::vector<Addr> funcBase_;
    std::vector<std::vector<Addr>> blockBase_; // [func][block]
};

/** Evaluate a binary ALU / compare opcode (shared by the pre-decoded
 *  engine and the reference interpreter). Division semantics are
 *  deterministic for pathological inputs: x/0 == 0, INT64_MIN/-1
 *  saturates. Panics on non-ALU opcodes. */
ir::Value evalAlu(ir::Opcode op, ir::Value a, ir::Value b);

/**
 * The machine: register frames, memory, and the fetch-execute loop.
 *
 * Globals are laid out at construction; input generators may then write
 * into them through global(Addr)/memory(). run() executes until Halt or
 * the instruction budget is exhausted.
 */
class Machine
{
  public:
    explicit Machine(const ir::Module &mod);

    /** Reset control state and registers (memory is preserved). */
    void restart();

    /** Reset everything including memory and re-lay-out globals. */
    void reset();

    /** Execute one instruction. @p info_out receives the details. */
    StepKind step(ExecInfo &info_out);

    /** Run to Halt or until @p max_insts committed. Returns committed
     *  instruction count. */
    std::uint64_t run(std::uint64_t max_insts = UINT64_MAX);

    bool halted() const { return halted_; }

    /** Dynamic instructions committed so far (reuse hit counts as 1). */
    std::uint64_t instCount() const { return instCount_; }

    // -- Hook installation -------------------------------------------

    void
    setReuseHandler(ReuseHandler *handler)
    {
        reuse_ = handler;
        updateHooked();
    }

    void
    addObserver(Observer *obs)
    {
        observers_.push_back(obs);
        updateHooked();
    }

    void
    clearObservers()
    {
        observers_.clear();
        updateHooked();
    }

    // -- State access -------------------------------------------------

    /** Register of the current (innermost) frame. */
    ir::Value readReg(ir::Reg r) const;
    void writeReg(ir::Reg r, ir::Value v);

    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }

    /** Base address assigned to global @p g. */
    Addr globalAddr(ir::GlobalId g) const { return globalAddr_[g]; }

    const ir::Module &module() const { return mod_; }
    const CodeLayout &layout() const { return layout_; }

    StatGroup &stats() { return stats_; }

  private:
    struct Frame
    {
        const DecodedFunction *df = nullptr;
        std::uint32_t ip = 0;                ///< flat index into df->insts
        ir::Reg retDst = ir::kNoReg;         ///< caller register for result
        std::uint32_t retIp = 0;             ///< caller continuation index
        std::vector<ir::Value> regs;
    };

    const ir::Module &mod_;
    CodeLayout layout_;
    DecodedProgram prog_;
    Memory mem_;
    std::vector<Addr> globalAddr_;
    Addr heapNext_ = kHeapBase;

    std::vector<Frame> frames_;
    bool halted_ = false;
    std::uint64_t instCount_ = 0;

    /** Address/size of the last committed Store, handed to
     *  ReuseHandler::onInvalidate when the invalidate is statically
     *  tied to a store (DecodedInst::afterStore). Size 0 = none yet. */
    Addr lastStoreAddr_ = 0;
    unsigned lastStoreSize_ = 0;

    ReuseHandler *reuse_ = nullptr;
    std::vector<Observer *> observers_;

    /** True when any hook (handler or observer) is attached; the hot
     *  loop tests only this. */
    bool hooked_ = false;

    StatGroup stats_{"machine"};

    // Hot-path counters cached out of the by-name map (references
    // stay valid across StatGroup::reset()).
    Counter &cInsts_;
    Counter &cLoads_;
    Counter &cStores_;
    Counter &cBranches_;
    Counter &cCalls_;
    Counter &cReuseHits_;
    Counter &cReuseMisses_;
    Counter &cInvalidates_;

    static constexpr Addr kGlobalBase = 0x10000;
    static constexpr Addr kHeapBase = 0x10000000;

    void layoutGlobals();
    void updateHooked() { hooked_ = reuse_ || !observers_.empty(); }
    Frame &top() { return frames_.back(); }
    const Frame &top() const { return frames_.back(); }
};

} // namespace ccr::emu

#endif // CCR_EMU_MACHINE_HH
