/**
 * @file
 * The functional IR emulator ("Machine"). Executes a Module instruction
 * by instruction; the timing model and the profilers attach through the
 * Observer and ReuseHandler hooks, mirroring IMPACT's emulation-driven
 * simulation style.
 */

#ifndef CCR_EMU_MACHINE_HH
#define CCR_EMU_MACHINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "emu/memory.hh"
#include "ir/module.hh"
#include "support/stats.hh"

namespace ccr::emu
{

/** Everything an observer may want to know about one executed inst. */
struct ExecInfo
{
    const ir::Inst *inst = nullptr;
    ir::FuncId func = ir::kNoFunc;
    ir::BlockId block = ir::kNoBlock;

    /** Values of regSource(0) / regSource(1) before execution. */
    std::array<ir::Value, 2> srcVals{};

    /** Call only: the argument values passed to the callee. */
    std::array<ir::Value, ir::kMaxCallArgs> argVals{};

    /** Value written to dst (when the instruction has one). */
    ir::Value result = 0;

    /** Effective address for Load/Store. */
    Addr memAddr = 0;

    /** Branch outcome for Br. */
    bool taken = false;

    /** Code address of this instruction (see CodeLayout). */
    Addr pc = 0;

    /** Code address of the next instruction to execute. */
    Addr nextPc = 0;
};

/** Kinds of step outcomes the timing model distinguishes. */
enum class StepKind : std::uint8_t
{
    Inst,       ///< ordinary instruction committed
    ReuseHit,   ///< reuse instruction found a valid CI and skipped code
    ReuseMiss,  ///< reuse instruction missed; memoization mode begins
    Halted      ///< program finished
};

/** Outcome of a CRB query, including what timing needs. */
struct ReuseOutcome
{
    bool hit = false;

    /** Number of distinct input registers the validation step read
     *  (summary set size, paper §3.3). */
    int numInputsRead = 0;

    /** Number of live-out registers written on a hit. */
    int numOutputsWritten = 0;

    /** The summary-set registers read (for interlock modeling). */
    std::array<ir::Reg, 8> inputRegs{};

    /** The live-out registers written on a hit (for wakeup modeling). */
    std::array<ir::Reg, 8> outputRegs{};
};

class Machine;

/**
 * Hardware-side handler for the CCR ISA extension. The uarch layer's
 * CRB controller implements this; the machine routes `reuse`,
 * `invalidate`, and (while a region executes) every instruction to it.
 */
class ReuseHandler
{
  public:
    virtual ~ReuseHandler() = default;

    /** A `reuse` instruction executed. On a hit the handler must write
     *  the live-out registers through machine.writeReg(). */
    virtual ReuseOutcome onReuse(ir::RegionId region, Machine &machine)
        = 0;

    /** Every instruction executed while the handler is interested
     *  (memoization mode); the handler watches ext.regionEnd /
     *  ext.regionExit bits to finish recording. */
    virtual void observe(const ExecInfo &info) = 0;

    /** An `invalidate` instruction executed. */
    virtual void onInvalidate(ir::RegionId region) = 0;

    /** True while memoization mode is active (machine forwards every
     *  instruction through observe() only in that case). */
    virtual bool memoActive() const = 0;
};

/** Passive profiling observer (value profiling, limit studies). */
class Observer
{
  public:
    virtual ~Observer() = default;
    virtual void onInst(const ExecInfo &info) = 0;
};

/**
 * Code-address layout: assigns a synthetic address to every static
 * instruction (functions laid out in id order, 4 bytes per
 * instruction). The timing model's I-cache and BTB key on these.
 */
class CodeLayout
{
  public:
    explicit CodeLayout(const ir::Module &mod);

    Addr funcBase(ir::FuncId f) const { return funcBase_[f]; }
    Addr blockBase(ir::FuncId f, ir::BlockId b) const;

    Addr
    instAddr(ir::FuncId f, ir::BlockId b, std::size_t idx) const
    {
        return blockBase(f, b) + 4 * idx;
    }

    static constexpr Addr kCodeBase = 0x1000;

  private:
    std::vector<Addr> funcBase_;
    std::vector<std::vector<Addr>> blockBase_; // [func][block]
};

/**
 * The machine: register frames, memory, and the fetch-execute loop.
 *
 * Globals are laid out at construction; input generators may then write
 * into them through global(Addr)/memory(). run() executes until Halt or
 * the instruction budget is exhausted.
 */
class Machine
{
  public:
    explicit Machine(const ir::Module &mod);

    /** Reset control state and registers (memory is preserved). */
    void restart();

    /** Reset everything including memory and re-lay-out globals. */
    void reset();

    /** Execute one instruction. @p info_out receives the details. */
    StepKind step(ExecInfo &info_out);

    /** Run to Halt or until @p max_insts committed. Returns committed
     *  instruction count. */
    std::uint64_t run(std::uint64_t max_insts = UINT64_MAX);

    bool halted() const { return halted_; }

    /** Dynamic instructions committed so far (reuse hit counts as 1). */
    std::uint64_t instCount() const { return instCount_; }

    // -- Hook installation -------------------------------------------

    void setReuseHandler(ReuseHandler *handler) { reuse_ = handler; }
    void addObserver(Observer *obs) { observers_.push_back(obs); }
    void clearObservers() { observers_.clear(); }

    // -- State access -------------------------------------------------

    /** Register of the current (innermost) frame. */
    ir::Value readReg(ir::Reg r) const;
    void writeReg(ir::Reg r, ir::Value v);

    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }

    /** Base address assigned to global @p g. */
    Addr globalAddr(ir::GlobalId g) const { return globalAddr_[g]; }

    const ir::Module &module() const { return mod_; }
    const CodeLayout &layout() const { return layout_; }

    StatGroup &stats() { return stats_; }

  private:
    struct Frame
    {
        ir::FuncId func = ir::kNoFunc;
        ir::BlockId block = ir::kNoBlock;
        std::size_t idx = 0;
        ir::Reg retDst = ir::kNoReg;      // caller register for result
        ir::BlockId retBlock = ir::kNoBlock; // caller continuation
        std::vector<ir::Value> regs;
    };

    const ir::Module &mod_;
    CodeLayout layout_;
    Memory mem_;
    std::vector<Addr> globalAddr_;
    Addr heapNext_ = kHeapBase;

    std::vector<Frame> frames_;
    bool halted_ = false;
    std::uint64_t instCount_ = 0;

    ReuseHandler *reuse_ = nullptr;
    std::vector<Observer *> observers_;

    StatGroup stats_{"machine"};

    static constexpr Addr kGlobalBase = 0x10000;
    static constexpr Addr kHeapBase = 0x10000000;

    void layoutGlobals();
    Frame &top() { return frames_.back(); }
    const Frame &top() const { return frames_.back(); }

    ir::Value aluOp(const ir::Inst &inst, ir::Value a, ir::Value b) const;
};

} // namespace ccr::emu

#endif // CCR_EMU_MACHINE_HH
