#include "emu/reference.hh"

#include <cstring>

#include "support/bits.hh"
#include "support/logging.hh"

namespace ccr::emu
{

namespace
{

double
asDouble(ir::Value v)
{
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

ir::Value
asValue(double d)
{
    ir::Value v;
    std::memcpy(&v, &d, sizeof(v));
    return v;
}

} // namespace

ReferenceMachine::ReferenceMachine(const ir::Module &mod)
    : mod_(mod), layout_(mod), heapNext_(kHeapBase)
{
    layoutGlobals();
    restart();
}

void
ReferenceMachine::layoutGlobals()
{
    globalAddr_.resize(mod_.numGlobals());
    Addr next = kGlobalBase;
    for (std::size_t g = 0; g < mod_.numGlobals(); ++g) {
        const auto &gl = mod_.global(static_cast<ir::GlobalId>(g));
        next = alignUp(next, 16);
        globalAddr_[g] = next;
        if (!gl.init.empty())
            mem_.writeBytes(next, gl.init.data(), gl.init.size());
        next += gl.sizeBytes;
    }
}

void
ReferenceMachine::restart()
{
    frames_.clear();
    halted_ = false;
    instCount_ = 0;
    heapNext_ = kHeapBase;

    const auto entry = mod_.entryFunction();
    ccr_assert(entry != ir::kNoFunc, "module has no entry function");
    const auto &func = mod_.function(entry);
    ccr_assert(func.numParams() == 0, "entry function takes parameters");

    Frame frame;
    frame.func = entry;
    frame.block = func.entry();
    frame.idx = 0;
    frame.regs.assign(static_cast<std::size_t>(func.numRegs()), 0);
    frames_.push_back(std::move(frame));
}

StepKind
ReferenceMachine::step(ExecInfo &info)
{
    using ir::Opcode;

    if (halted_)
        return StepKind::Halted;

    Frame &frame = top();
    const ir::Function &func = mod_.function(frame.func);
    const ir::BasicBlock &bb = func.block(frame.block);
    ccr_assert(frame.idx < bb.size(), "ran off block end");
    const ir::Inst &inst = bb.inst(frame.idx);

    info = ExecInfo{};
    info.inst = &inst;
    info.func = frame.func;
    info.block = frame.block;
    info.pc = layout_.instAddr(frame.func, frame.block, frame.idx);

    const int nsrc = inst.numRegSources();
    info.numSrcRegs = static_cast<std::uint8_t>(nsrc);
    for (int i = 0; i < nsrc && i < 2; ++i)
        info.srcVals[static_cast<std::size_t>(i)] =
            frame.regs[inst.regSource(i)];

    StepKind kind = StepKind::Inst;
    bool advance = true; // move to next instruction in the same block

    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::MovI:
        info.result = inst.imm;
        frame.regs[inst.dst] = inst.imm;
        break;
      case Opcode::Mov:
        info.result = info.srcVals[0];
        frame.regs[inst.dst] = info.result;
        break;
      case Opcode::MovGA:
        info.result = static_cast<ir::Value>(globalAddr_[inst.globalId]);
        frame.regs[inst.dst] = info.result;
        break;
      case Opcode::I2F:
        info.result = asValue(static_cast<double>(info.srcVals[0]));
        frame.regs[inst.dst] = info.result;
        break;
      case Opcode::F2I:
        info.result =
            static_cast<ir::Value>(asDouble(info.srcVals[0]));
        frame.regs[inst.dst] = info.result;
        break;
      case Opcode::Load: {
        info.memAddr = static_cast<Addr>(info.srcVals[0])
                       + static_cast<Addr>(inst.imm);
        info.result = mem_.read(info.memAddr, inst.size,
                                inst.unsignedLoad);
        frame.regs[inst.dst] = info.result;
        ++stats_.counter("loads");
        break;
      }
      case Opcode::Store: {
        info.memAddr = static_cast<Addr>(info.srcVals[0])
                       + static_cast<Addr>(inst.imm);
        mem_.write(info.memAddr, inst.size, info.srcVals[1]);
        ++stats_.counter("stores");
        break;
      }
      case Opcode::Alloc: {
        const auto bytes = static_cast<Addr>(
            inst.srcImm ? inst.imm : info.srcVals[0]);
        heapNext_ = alignUp(heapNext_, 16);
        info.result = static_cast<ir::Value>(heapNext_);
        frame.regs[inst.dst] = info.result;
        heapNext_ += bytes;
        break;
      }
      case Opcode::Br: {
        info.taken = info.srcVals[0] != 0;
        frame.block = info.taken ? inst.target : inst.target2;
        frame.idx = 0;
        advance = false;
        ++stats_.counter("branches");
        break;
      }
      case Opcode::Jump:
        frame.block = inst.target;
        frame.idx = 0;
        advance = false;
        break;
      case Opcode::Call: {
        const ir::Function &callee = mod_.function(inst.callee);
        for (int i = 0; i < inst.numArgs; ++i)
            info.argVals[static_cast<std::size_t>(i)] =
                frame.regs[inst.args[i]];
        Frame next;
        next.func = inst.callee;
        next.block = callee.entry();
        next.idx = 0;
        next.retDst = inst.dst;
        next.retBlock = inst.target;
        next.regs.assign(static_cast<std::size_t>(callee.numRegs()), 0);
        for (int i = 0; i < inst.numArgs; ++i)
            next.regs[static_cast<std::size_t>(i)] =
                frame.regs[inst.args[i]];
        frames_.push_back(std::move(next));
        advance = false;
        ++stats_.counter("calls");
        break;
      }
      case Opcode::Ret: {
        const ir::Value result =
            inst.src1 == ir::kNoReg ? 0 : info.srcVals[0];
        info.result = result;
        const ir::Reg ret_dst = frame.retDst;
        const ir::BlockId ret_block = frame.retBlock;
        frames_.pop_back();
        if (frames_.empty()) {
            halted_ = true;
        } else {
            Frame &caller = top();
            if (ret_dst != ir::kNoReg)
                caller.regs[ret_dst] = result;
            caller.block = ret_block;
            caller.idx = 0;
        }
        advance = false;
        break;
      }
      case Opcode::Halt:
        halted_ = true;
        advance = false;
        break;
      case Opcode::Reuse:
        // No handler: always the miss path.
        frame.block = inst.target2;
        frame.idx = 0;
        kind = StepKind::ReuseMiss;
        advance = false;
        ++stats_.counter("reuseMisses");
        break;
      case Opcode::Invalidate:
        ++stats_.counter("invalidates");
        break;
      default:
        // Binary ALU / compare.
        {
            const ir::Value b =
                inst.srcImm ? inst.imm : info.srcVals[1];
            if (inst.srcImm)
                info.srcVals[1] = inst.imm;
            info.result = evalAlu(inst.op, info.srcVals[0], b);
            frame.regs[inst.dst] = info.result;
        }
        break;
    }

    if (advance)
        ++frame.idx;

    ++instCount_;
    ++stats_.counter("insts");

    if (halted_) {
        info.nextPc = 0;
    } else {
        const Frame &now = top();
        info.nextPc = layout_.instAddr(now.func, now.block, now.idx);
    }

    return kind;
}

std::uint64_t
ReferenceMachine::run(std::uint64_t max_insts)
{
    ExecInfo info;
    const std::uint64_t start = instCount_;
    while (!halted_ && instCount_ - start < max_insts)
        step(info);
    return instCount_ - start;
}

} // namespace ccr::emu
