/**
 * @file
 * ReferenceMachine: the original (pre-decoded-engine) interpreter,
 * kept verbatim as a semantic oracle. It walks (function, block,
 * index) frames and resolves code addresses through CodeLayout on
 * every step — slow, but structurally independent of the flat decoded
 * arrays the production Machine executes, so lockstep tests comparing
 * the two catch decode bugs (successor resolution, PC folding,
 * operand metadata) that a single-engine test cannot.
 *
 * Differences from Machine: no ReuseHandler or Observer hooks —
 * `reuse` always takes the miss path and `invalidate` is a no-op,
 * exactly like a Machine with no handler attached. Input preparation
 * for workloads writes into a Machine; use Memory::clone() to carry
 * the prepared image over (see tests/test_properties.cc).
 */

#ifndef CCR_EMU_REFERENCE_HH
#define CCR_EMU_REFERENCE_HH

#include <cstdint>
#include <vector>

#include "emu/machine.hh"
#include "emu/memory.hh"
#include "ir/module.hh"
#include "support/stats.hh"

namespace ccr::emu
{

class ReferenceMachine
{
  public:
    explicit ReferenceMachine(const ir::Module &mod);

    void restart();
    StepKind step(ExecInfo &info_out);
    std::uint64_t run(std::uint64_t max_insts = UINT64_MAX);

    bool halted() const { return halted_; }
    std::uint64_t instCount() const { return instCount_; }

    ir::Value readReg(ir::Reg r) const { return top().regs[r]; }

    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }

    Addr globalAddr(ir::GlobalId g) const { return globalAddr_[g]; }

    StatGroup &stats() { return stats_; }

  private:
    struct Frame
    {
        ir::FuncId func = ir::kNoFunc;
        ir::BlockId block = ir::kNoBlock;
        std::size_t idx = 0;
        ir::Reg retDst = ir::kNoReg;
        ir::BlockId retBlock = ir::kNoBlock;
        std::vector<ir::Value> regs;
    };

    const ir::Module &mod_;
    CodeLayout layout_;
    Memory mem_;
    std::vector<Addr> globalAddr_;
    Addr heapNext_;

    std::vector<Frame> frames_;
    bool halted_ = false;
    std::uint64_t instCount_ = 0;

    StatGroup stats_{"machine"};

    static constexpr Addr kGlobalBase = 0x10000;
    static constexpr Addr kHeapBase = 0x10000000;

    void layoutGlobals();
    Frame &top() { return frames_.back(); }
    const Frame &top() const { return frames_.back(); }
};

} // namespace ccr::emu

#endif // CCR_EMU_REFERENCE_HH
