/**
 * @file
 * Sparse flat byte-addressed memory for the emulator. Pages are
 * allocated on first touch; all memory reads as zero until written.
 */

#ifndef CCR_EMU_MEMORY_HH
#define CCR_EMU_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "ir/types.hh"

namespace ccr::emu
{

/** Address type within the emulated machine. */
using Addr = std::uint64_t;

/** Sparse paged memory. */
class Memory
{
  public:
    static constexpr std::size_t kPageBits = 12;
    static constexpr std::size_t kPageSize = 1ULL << kPageBits;

    /** Read @p size bytes at @p addr; sign- or zero-extend. */
    ir::Value read(Addr addr, ir::MemSize size, bool unsigned_load) const;

    /** Write the low @p size bytes of @p value at @p addr. */
    void write(Addr addr, ir::MemSize size, ir::Value value);

    /** Bulk copy-in (loader / input generators). */
    void writeBytes(Addr addr, const std::uint8_t *data, std::size_t len);

    /** Bulk copy-out (harness output checks). */
    void readBytes(Addr addr, std::uint8_t *data, std::size_t len) const;

    /** Zero a byte range. */
    void zero(Addr addr, std::size_t len);

    /** Number of pages currently allocated. */
    std::size_t numPages() const { return pages_.size(); }

  private:
    using Page = std::array<std::uint8_t, kPageSize>;

    Page &pageFor(Addr addr);
    const Page *pageForRead(Addr addr) const;

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

} // namespace ccr::emu

#endif // CCR_EMU_MEMORY_HH
