/**
 * @file
 * Sparse flat byte-addressed memory for the emulator. Pages are
 * allocated on first touch; all memory reads as zero until written.
 *
 * Hot-path accesses go through one-entry page caches (separate for
 * reads and writes) so the steady-state cost is a key compare instead
 * of an unordered_map lookup. Page storage never moves once
 * allocated, so the cached pointers stay valid for the lifetime of
 * the Memory object.
 */

#ifndef CCR_EMU_MEMORY_HH
#define CCR_EMU_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "ir/types.hh"

namespace ccr::emu
{

/** Address type within the emulated machine. */
using Addr = std::uint64_t;

/** Sparse paged memory. */
class Memory
{
  public:
    static constexpr std::size_t kPageBits = 12;
    static constexpr std::size_t kPageSize = 1ULL << kPageBits;

    Memory() = default;
    Memory(Memory &&) = default;
    Memory &operator=(Memory &&) = default;
    Memory(const Memory &) = delete;
    Memory &operator=(const Memory &) = delete;

    /** Read @p size bytes at @p addr; sign- or zero-extend. */
    ir::Value read(Addr addr, ir::MemSize size, bool unsigned_load) const;

    /** Write the low @p size bytes of @p value at @p addr. */
    void write(Addr addr, ir::MemSize size, ir::Value value);

    /** Bulk copy-in (loader / input generators). */
    void writeBytes(Addr addr, const std::uint8_t *data, std::size_t len);

    /** Bulk copy-out (harness output checks). */
    void readBytes(Addr addr, std::uint8_t *data, std::size_t len) const;

    /** Zero a byte range. */
    void zero(Addr addr, std::size_t len);

    /** Number of pages currently allocated. */
    std::size_t numPages() const { return pages_.size(); }

    /** Deep copy (test support: carry a prepared input image over to
     *  a second machine). */
    Memory clone() const;

    /** Order-independent digest of the full contents (allocated page
     *  set + bytes); equal images hash equal. Test support. */
    std::uint64_t contentHash() const;

  private:
    using Page = std::array<std::uint8_t, kPageSize>;

    Page &pageFor(Addr addr);
    const Page *pageForRead(Addr addr) const;

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;

    // One-entry caches of the last touched page. Only present pages
    // are cached (a negative read result may be invalidated by a
    // later write). The read cache is populated by const reads.
    mutable Addr readKey_ = ~Addr{0};
    mutable const Page *readPage_ = nullptr;
    Addr writeKey_ = ~Addr{0};
    Page *writePage_ = nullptr;
};

} // namespace ccr::emu

#endif // CCR_EMU_MEMORY_HH
