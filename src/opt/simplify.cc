/**
 * @file
 * Branch simplification and jump threading.
 */

#include <unordered_map>

#include "analysis/cfg.hh"
#include "opt/passes.hh"

namespace ccr::opt
{

int
simplifyBranches(ir::Function &func)
{
    int changed = 0;

    // Pass 1: degenerate conditional branches.
    for (auto &bb : func.blocks()) {
        if (bb.empty())
            continue;
        ir::Inst &term = bb.terminator();
        if (term.op != ir::Opcode::Br)
            continue;

        if (term.target == term.target2) {
            term.op = ir::Opcode::Jump;
            term.src1 = ir::kNoReg;
            term.target2 = ir::kNoBlock;
            ++changed;
            continue;
        }

        // Block-local constant condition.
        std::int64_t cond = 0;
        bool known = false;
        for (std::size_t i = 0; i + 1 < bb.size(); ++i) {
            const ir::Inst &inst = bb.inst(i);
            if (!inst.hasDst() || inst.dst != term.src1)
                continue;
            if (inst.op == ir::Opcode::MovI) {
                cond = inst.imm;
                known = true;
            } else {
                known = false;
            }
        }
        if (known) {
            term.op = ir::Opcode::Jump;
            term.target = cond != 0 ? term.target : term.target2;
            term.src1 = ir::kNoReg;
            term.target2 = ir::kNoBlock;
            ++changed;
        }
    }

    // Pass 2: thread jumps through pure forwarding blocks. A forwarder
    // is a block holding exactly one unannotated `jump`; CCR
    // trampolines carry region end/exit marks and must survive.
    std::unordered_map<ir::BlockId, ir::BlockId> forward;
    for (const auto &bb : func.blocks()) {
        if (bb.size() != 1)
            continue;
        const ir::Inst &only = bb.inst(0);
        if (only.op == ir::Opcode::Jump && !only.ext.regionEnd
            && !only.ext.regionExit && only.target != bb.id()) {
            forward[bb.id()] = only.target;
        }
    }
    auto resolve = [&](ir::BlockId b) {
        int hops = 0;
        while (hops++ < 8) {
            const auto it = forward.find(b);
            if (it == forward.end())
                break;
            b = it->second;
        }
        return b;
    };
    for (auto &bb : func.blocks()) {
        if (bb.empty())
            continue;
        ir::Inst &term = bb.terminator();
        switch (term.op) {
          case ir::Opcode::Br:
          case ir::Opcode::Reuse: {
            const auto t1 = resolve(term.target);
            const auto t2 = resolve(term.target2);
            if (t1 != term.target || t2 != term.target2) {
                term.target = t1;
                term.target2 = t2;
                ++changed;
            }
            break;
          }
          case ir::Opcode::Jump:
          case ir::Opcode::Call: {
            const auto t = resolve(term.target);
            if (t != term.target) {
                term.target = t;
                ++changed;
            }
            break;
          }
          default:
            break;
        }
    }
    if (func.entry() < func.numBlocks()) {
        const auto e = resolve(func.entry());
        if (e != func.entry()) {
            func.setEntry(e);
            ++changed;
        }
    }

    // Pass 3: merge straight-line block pairs. A ends in a plain jump
    // to B and B has no other predecessor: fold B into A.
    bool merged = true;
    while (merged) {
        merged = false;
        const analysis::Cfg cfg(func);
        for (auto &bb : func.blocks()) {
            if (bb.empty() || !cfg.reachable(bb.id()))
                continue;
            const ir::Inst &term = bb.terminator();
            if (term.op != ir::Opcode::Jump || term.ext.regionEnd
                || term.ext.regionExit) {
                continue;
            }
            const ir::BlockId succ = term.target;
            if (succ == bb.id() || succ == func.entry())
                continue;
            if (cfg.preds(succ).size() != 1)
                continue;
            auto &dst = bb.insts();
            auto &src = func.block(succ).insts();
            if (src.empty())
                continue;
            dst.pop_back(); // drop the jump
            dst.insert(dst.end(),
                       std::make_move_iterator(src.begin()),
                       std::make_move_iterator(src.end()));
            // Leave the emptied block with a self-consistent
            // terminator; it is unreachable now.
            src.clear();
            ir::Inst dead;
            dead.op = ir::Opcode::Halt;
            dead.uid = func.newUid();
            src.push_back(dead);
            ++changed;
            merged = true;
            break; // CFG changed; recompute predecessors
        }
    }

    return changed;
}

} // namespace ccr::opt
