/**
 * @file
 * Local constant propagation and folding.
 */

#include <unordered_map>

#include "opt/passes.hh"
#include "support/logging.hh"

namespace ccr::opt
{

namespace
{

/** Fold one ALU op over two constants (mirrors Machine::aluOp). */
bool
foldAlu(ir::Opcode op, std::int64_t a, std::int64_t b,
        std::int64_t &out)
{
    using ir::Opcode;
    const auto ua = static_cast<std::uint64_t>(a);
    const auto ub = static_cast<std::uint64_t>(b);
    switch (op) {
      case Opcode::Add: out = a + b; return true;
      case Opcode::Sub: out = a - b; return true;
      case Opcode::Mul: out = a * b; return true;
      case Opcode::Div:
        out = b == 0 ? 0
                     : (a == INT64_MIN && b == -1 ? INT64_MIN : a / b);
        return true;
      case Opcode::Rem:
        out = b == 0 ? 0 : (a == INT64_MIN && b == -1 ? 0 : a % b);
        return true;
      case Opcode::And: out = a & b; return true;
      case Opcode::Or: out = a | b; return true;
      case Opcode::Xor: out = a ^ b; return true;
      case Opcode::Shl:
        out = static_cast<std::int64_t>(ua << (ub & 63));
        return true;
      case Opcode::Shr:
        out = static_cast<std::int64_t>(ua >> (ub & 63));
        return true;
      case Opcode::Sra: out = a >> (ub & 63); return true;
      case Opcode::CmpEq: out = a == b; return true;
      case Opcode::CmpNe: out = a != b; return true;
      case Opcode::CmpLt: out = a < b; return true;
      case Opcode::CmpLe: out = a <= b; return true;
      case Opcode::CmpGt: out = a > b; return true;
      case Opcode::CmpGe: out = a >= b; return true;
      case Opcode::CmpLtU: out = ua < ub; return true;
      case Opcode::CmpGeU: out = ua >= ub; return true;
      default: return false;
    }
}

} // namespace

int
foldConstants(ir::Function &func)
{
    int changed = 0;

    for (auto &bb : func.blocks()) {
        std::unordered_map<ir::Reg, std::int64_t> constants;

        for (auto &inst : bb.insts()) {
            using ir::Opcode;

            // Substitute known-constant register operands.
            if (ir::isBinaryAlu(inst.op) && !inst.srcImm
                && !ir::isFloat(inst.op)) {
                const auto it = constants.find(inst.src2);
                if (it != constants.end()) {
                    inst.srcImm = true;
                    inst.imm = it->second;
                    inst.src2 = ir::kNoReg;
                    ++changed;
                }
            }

            // Fold fully-constant operations.
            if (ir::isBinaryAlu(inst.op) && inst.srcImm
                && !ir::isFloat(inst.op)) {
                const auto it = constants.find(inst.src1);
                std::int64_t result;
                if (it != constants.end()
                    && foldAlu(inst.op, it->second, inst.imm, result)) {
                    inst.op = Opcode::MovI;
                    inst.src1 = ir::kNoReg;
                    inst.srcImm = false;
                    inst.imm = result;
                    ++changed;
                }
            }

            // Copy of a known constant becomes MovI.
            if (inst.op == Opcode::Mov) {
                const auto it = constants.find(inst.src1);
                if (it != constants.end()) {
                    inst.op = Opcode::MovI;
                    inst.imm = it->second;
                    inst.src1 = ir::kNoReg;
                    ++changed;
                }
            }

            // Update the constant map.
            if (inst.hasDst()) {
                if (inst.op == Opcode::MovI)
                    constants[inst.dst] = inst.imm;
                else
                    constants.erase(inst.dst);
            }
        }
    }
    return changed;
}

} // namespace ccr::opt
