/**
 * @file
 * Function inlining and loop unrolling — the "best base code"
 * transformations of the paper's §5.1 baseline.
 */

#include <unordered_map>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"
#include "analysis/loops.hh"
#include "opt/passes.hh"
#include "support/logging.hh"

namespace ccr::opt
{

namespace
{

/** True when @p func contains no calls and no CCR instructions. */
bool
isLeafAndPlain(const ir::Function &func)
{
    for (const auto &bb : func.blocks()) {
        for (const auto &inst : bb.insts()) {
            switch (inst.op) {
              case ir::Opcode::Call:
              case ir::Opcode::Reuse:
              case ir::Opcode::Invalidate:
              case ir::Opcode::Halt:
                return false;
              default:
                break;
            }
            if (inst.ext.liveOut || inst.ext.regionEnd
                || inst.ext.regionExit) {
                return false;
            }
        }
    }
    return true;
}

/** Remap the register operands of @p inst through @p reg_map. */
void
remapRegs(ir::Inst &inst,
          const std::unordered_map<ir::Reg, ir::Reg> &reg_map)
{
    auto remap = [&](ir::Reg r) {
        if (r == ir::kNoReg)
            return r;
        const auto it = reg_map.find(r);
        return it == reg_map.end() ? r : it->second;
    };
    inst.dst = remap(inst.dst);
    inst.src1 = remap(inst.src1);
    inst.src2 = remap(inst.src2);
    for (int i = 0; i < inst.numArgs; ++i)
        inst.args[i] = remap(inst.args[i]);
}

/** Inline one call site. @p call_block's terminator must be a Call to
 *  @p callee. */
void
inlineOneCall(ir::Function &caller, const ir::Function &callee,
              ir::BlockId call_block)
{
    const ir::Inst call_snapshot =
        caller.block(call_block).terminator();

    // Parameters the callee never writes can bind directly to the
    // caller's argument registers (no copy); the rest get fresh
    // registers plus an entry move.
    std::vector<bool> param_written(
        static_cast<std::size_t>(callee.numParams()), false);
    for (const auto &bb : callee.blocks()) {
        for (const auto &inst : bb.insts()) {
            if (inst.hasDst() && inst.dst < callee.numParams())
                param_written[inst.dst] = true;
        }
    }

    std::unordered_map<ir::Reg, ir::Reg> reg_map;
    for (int r = 0; r < callee.numRegs(); ++r) {
        const auto reg = static_cast<ir::Reg>(r);
        if (r < callee.numParams() && !param_written[r])
            reg_map[reg] = call_snapshot.args[r];
        else
            reg_map[reg] = caller.newReg();
    }

    // Fresh blocks mirroring the callee's.
    std::unordered_map<ir::BlockId, ir::BlockId> block_map;
    for (const auto &bb : callee.blocks())
        block_map[bb.id()] = caller.newBlock();

    const ir::Inst call = caller.block(call_block).terminator();
    ccr_assert(call.op == ir::Opcode::Call, "not a call site");
    const ir::BlockId cont = call.target;
    const ir::Reg ret_dst = call.dst;

    // Clone the body.
    for (const auto &bb : callee.blocks()) {
        auto &out = caller.block(block_map[bb.id()]).insts();
        for (const auto &src : bb.insts()) {
            ir::Inst inst = src;
            remapRegs(inst, reg_map);
            inst.uid = caller.newUid();
            if (inst.op == ir::Opcode::Ret) {
                // return v  =>  ret_dst = v; jump cont
                if (ret_dst != ir::kNoReg) {
                    ir::Inst mv;
                    mv.op = inst.src1 == ir::kNoReg ? ir::Opcode::MovI
                                                    : ir::Opcode::Mov;
                    mv.dst = ret_dst;
                    mv.src1 = inst.src1;
                    mv.uid = caller.newUid();
                    out.push_back(mv);
                }
                ir::Inst j;
                j.op = ir::Opcode::Jump;
                j.target = cont;
                j.uid = caller.newUid();
                out.push_back(j);
            } else {
                if (inst.isControlInst() || inst.op == ir::Opcode::Br) {
                    if (inst.target != ir::kNoBlock
                        && block_map.count(inst.target)) {
                        inst.target = block_map[inst.target];
                    }
                    if (inst.target2 != ir::kNoBlock
                        && block_map.count(inst.target2)) {
                        inst.target2 = block_map[inst.target2];
                    }
                }
                out.push_back(inst);
            }
        }
    }

    // Replace the call with parameter moves (written params only) +
    // a jump into the body.
    auto &insts = caller.block(call_block).insts();
    insts.pop_back();
    for (int i = 0; i < call.numArgs; ++i) {
        if (i < callee.numParams() && !param_written[i]) {
            continue; // bound directly to the argument register
        }
        ir::Inst mv;
        mv.op = ir::Opcode::Mov;
        mv.dst = reg_map[static_cast<ir::Reg>(i)];
        mv.src1 = call.args[i];
        mv.uid = caller.newUid();
        insts.push_back(mv);
    }
    ir::Inst j;
    j.op = ir::Opcode::Jump;
    j.target = block_map[callee.entry()];
    j.uid = caller.newUid();
    insts.push_back(j);
}

} // namespace

int
inlineFunctions(ir::Module &mod, int max_insts)
{
    int inlined = 0;

    std::vector<bool> candidate(mod.numFunctions(), false);
    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        const auto &func = mod.function(static_cast<ir::FuncId>(f));
        candidate[f] =
            f != mod.entryFunction()
            && func.numInsts() <= static_cast<std::size_t>(max_insts)
            && isLeafAndPlain(func);
    }

    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        auto &caller = mod.function(static_cast<ir::FuncId>(f));
        // One inlining sweep per caller; block ids are stable because
        // inlineOneCall only appends blocks.
        const std::size_t original_blocks = caller.numBlocks();
        for (std::size_t b = 0; b < original_blocks; ++b) {
            const auto &bb = caller.block(static_cast<ir::BlockId>(b));
            if (bb.empty())
                continue;
            const ir::Inst &term = bb.terminator();
            if (term.op != ir::Opcode::Call || !candidate[term.callee])
                continue;
            inlineOneCall(caller, mod.function(term.callee),
                          static_cast<ir::BlockId>(b));
            ++inlined;
        }
    }
    return inlined;
}

int
unrollLoops(ir::Function &func, int max_body_insts)
{
    const analysis::Cfg cfg(func);
    const analysis::Dominators dom(cfg);
    const analysis::LoopInfo info(cfg, dom);

    int unrolled = 0;
    for (const auto *loop : info.innermostLoops()) {
        // Shape requirements: modest size, single latch ending in an
        // unconditional back edge, and no CCR annotations.
        std::size_t body_insts = 0;
        bool plain = true;
        ir::BlockId latch = ir::kNoBlock;
        for (const auto b : loop->blocks) {
            const auto &bb = func.block(b);
            body_insts += bb.size();
            for (const auto &inst : bb.insts()) {
                if (inst.op == ir::Opcode::Reuse
                    || inst.op == ir::Opcode::Invalidate
                    || inst.ext.liveOut || inst.ext.regionEnd
                    || inst.ext.regionExit || inst.op == ir::Opcode::Ret
                    || inst.op == ir::Opcode::Call) {
                    plain = false;
                }
            }
            const auto &term = bb.terminator();
            if (term.op == ir::Opcode::Jump
                && term.target == loop->header) {
                if (latch != ir::kNoBlock)
                    plain = false; // multiple back edges
                latch = b;
            } else if (term.op == ir::Opcode::Br
                       && (term.target == loop->header
                           || term.target2 == loop->header)) {
                plain = false; // conditional back edge
            }
        }
        if (!plain || latch == ir::kNoBlock
            || body_insts > static_cast<std::size_t>(max_body_insts)) {
            continue;
        }

        // Clone every loop block; intra-loop edges point at clones,
        // except the clone of the latch, which closes the cycle back
        // to the original header.
        std::unordered_map<ir::BlockId, ir::BlockId> clone;
        for (const auto b : loop->blocks)
            clone[b] = func.newBlock();
        for (const auto b : loop->blocks) {
            auto &out = func.block(clone[b]).insts();
            const auto src = func.block(b).insts(); // copy: iterators
            for (ir::Inst inst : src) {
                inst.uid = func.newUid();
                if (inst.isControlInst()) {
                    if (clone.count(inst.target))
                        inst.target = clone[inst.target];
                    if (inst.target2 != ir::kNoBlock
                        && clone.count(inst.target2)) {
                        inst.target2 = clone[inst.target2];
                    }
                }
                out.push_back(inst);
            }
        }
        // Second iteration's back edge returns to the original header.
        func.block(clone[latch]).terminator().target = loop->header;
        // First iteration's latch continues into the cloned header.
        func.block(latch).terminator().target = clone[loop->header];

        ++unrolled;
    }
    return unrolled;
}

OptStats
runStandardPipeline(ir::Module &mod, bool enable_unroll,
                    bool enable_inline)
{
    OptStats stats;
    if (enable_inline)
        stats.callsInlined = inlineFunctions(mod);

    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        auto &func = mod.function(static_cast<ir::FuncId>(f));
        for (int round = 0; round < 8; ++round) {
            int changed = 0;
            const int folded = foldConstants(func);
            const int cse = eliminateCommonSubexpressions(func);
            const int branches = simplifyBranches(func);
            const int dead = eliminateDeadCode(func);
            stats.constantsFolded += folded;
            stats.cseRemoved += cse;
            stats.branchesSimplified += branches;
            stats.deadRemoved += dead;
            changed = folded + cse + branches + dead;
            if (changed == 0)
                break;
        }
        if (enable_unroll)
            stats.loopsUnrolled += unrollLoops(func);
    }
    return stats;
}

} // namespace ccr::opt
