/**
 * @file
 * Local common-subexpression elimination and global dead-code
 * elimination.
 */

#include <unordered_map>

#include "analysis/cfg.hh"
#include "analysis/liveness.hh"
#include "opt/passes.hh"
#include "support/bits.hh"

namespace ccr::opt
{

namespace
{

/** Hashable key of a pure expression. */
std::uint64_t
exprKey(const ir::Inst &inst)
{
    std::uint64_t h = static_cast<std::uint64_t>(inst.op);
    h = hashCombine(h, inst.src1);
    h = hashCombine(h, inst.srcImm ? 0xFFFFFFull : inst.src2);
    h = hashCombine(h, static_cast<std::uint64_t>(inst.imm));
    h = hashCombine(h, inst.globalId);
    h = hashCombine(h, static_cast<std::uint64_t>(inst.size));
    h = hashCombine(h, inst.unsignedLoad ? 1 : 0);
    return h;
}

bool
cseCandidate(const ir::Inst &inst)
{
    if (inst.ext.liveOut)
        return false; // keep CCR annotations untouched
    switch (inst.op) {
      case ir::Opcode::MovGA:
      case ir::Opcode::Load:
        return true;
      default:
        return ir::isBinaryAlu(inst.op);
    }
}

} // namespace

int
eliminateCommonSubexpressions(ir::Function &func)
{
    int changed = 0;

    for (auto &bb : func.blocks()) {
        // expression key -> defining instruction index
        std::unordered_map<std::uint64_t, std::size_t> available;

        for (std::size_t i = 0; i < bb.size(); ++i) {
            ir::Inst &inst = bb.inst(i);

            // Stores, calls, and allocation kill available loads.
            if (inst.isStore() || inst.op == ir::Opcode::Call
                || inst.op == ir::Opcode::Alloc) {
                for (auto it = available.begin();
                     it != available.end();) {
                    if (bb.inst(it->second).isLoad())
                        it = available.erase(it);
                    else
                        ++it;
                }
            }

            if (cseCandidate(inst)) {
                const auto key = exprKey(inst);
                const auto it = available.find(key);
                bool replaced = false;
                if (it != available.end()) {
                    const ir::Inst &prev = bb.inst(it->second);
                    // Equality of key plus structural equality guards
                    // against hash collisions; operand registers must
                    // not have been redefined in between.
                    bool operands_stable =
                        prev.op == inst.op && prev.src1 == inst.src1
                        && prev.src2 == inst.src2
                        && prev.imm == inst.imm
                        && prev.srcImm == inst.srcImm
                        && prev.globalId == inst.globalId;
                    if (operands_stable) {
                        for (std::size_t k = it->second + 1;
                             operands_stable && k < i; ++k) {
                            const ir::Inst &mid = bb.inst(k);
                            if (!mid.hasDst())
                                continue;
                            const int nsrc = inst.numRegSources();
                            for (int s = 0; s < nsrc; ++s) {
                                if (mid.dst == inst.regSource(s))
                                    operands_stable = false;
                            }
                            if (mid.dst == prev.dst)
                                operands_stable = false;
                        }
                    }
                    if (operands_stable) {
                        const ir::Reg src = prev.dst;
                        const ir::Reg dst = inst.dst;
                        inst = ir::Inst{};
                        inst.op = ir::Opcode::Mov;
                        inst.dst = dst;
                        inst.src1 = src;
                        inst.uid = func.newUid();
                        ++changed;
                        replaced = true;
                    }
                }
                if (!replaced)
                    available[key] = i;
            }
        }
    }
    return changed;
}

int
eliminateDeadCode(ir::Function &func)
{
    int removed = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        const analysis::Cfg cfg(func);
        const analysis::Liveness live(cfg);

        for (auto &bb : func.blocks()) {
            // Walk backwards tracking liveness within the block.
            analysis::RegSet live_now = live.liveOut(bb.id());
            std::vector<bool> dead(bb.size(), false);
            for (std::size_t i = bb.size(); i-- > 0;) {
                const ir::Inst &inst = bb.inst(i);
                const bool side_effect =
                    inst.isStore() || inst.op == ir::Opcode::Call
                    || inst.op == ir::Opcode::Alloc
                    || inst.op == ir::Opcode::Invalidate
                    || inst.isControlInst();
                if (!side_effect && inst.hasDst()
                    && !live_now.test(inst.dst) && !inst.ext.liveOut) {
                    dead[i] = true;
                    continue;
                }
                if (inst.hasDst())
                    live_now.clear(inst.dst);
                analysis::Liveness::addUses(inst, live_now);
            }
            auto &insts = bb.insts();
            for (std::size_t i = insts.size(); i-- > 0;) {
                if (dead[i]) {
                    insts.erase(insts.begin()
                                + static_cast<std::ptrdiff_t>(i));
                    ++removed;
                    changed = true;
                }
            }
        }
    }
    return removed;
}

} // namespace ccr::opt
