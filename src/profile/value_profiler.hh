/**
 * @file
 * The Reuse Profiling System (RPS) observer — paper §4.2. Gathers, in
 * one emulation pass:
 *
 *  1. instruction-level repetition: per-instruction input-tuple value
 *     distributions and recent-recurrence counts;
 *  2. memory reusability: per-load frequency of the loaded location
 *     being unmodified between consecutive accesses;
 *  3. cyclic computation recurrence: per inner loop, the fraction of
 *     invocations whose live-in register values and read memory
 *     structures match a recent previous invocation.
 */

#ifndef CCR_PROFILE_VALUE_PROFILER_HH
#define CCR_PROFILE_VALUE_PROFILER_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "analysis/loops.hh"
#include "emu/machine.hh"
#include "profile/addrmap.hh"
#include "profile/profiles.hh"

namespace ccr::profile
{

/** Tunables for the RPS. */
struct RpsParams
{
    /** Distinct-tuple history window for recent-recurrence counting
     *  ("the ten most recent instruction executions", paper §4.4). */
    int historyDepth = 10;

    /** Invocation-record history per loop (paper §2.3 uses 8 records
     *  per code segment). */
    int loopHistoryDepth = 8;

    /** Cap on distinct tuples tracked per instruction. */
    std::size_t maxTuplesPerInst = 4096;
};

/** One-pass RPS profiler; install with machine.addObserver(). */
class ValueProfiler : public emu::Observer
{
  public:
    ValueProfiler(emu::Machine &machine, RpsParams params = {});
    ~ValueProfiler() override;

    void onInst(const emu::ExecInfo &info) override;

    /** Snapshot the collected profiles. */
    ProfileData takeProfile();

    const AddrMap &addrMap() const { return addrMap_; }

  private:
    struct LoopData
    {
        ir::BlockId header = ir::kNoBlock;
        std::vector<bool> member;      // block membership
        std::vector<ir::Reg> liveIns;  // sampled at invocation start
    };

    struct FuncLoops
    {
        std::vector<LoopData> loops;
        std::vector<int> headerToLoop; // per block, -1 when not a header
        std::vector<bool> inAnyLoop;
    };

    struct InvRecord
    {
        std::uint64_t inputHash = 0;
        std::vector<std::pair<std::uint32_t, std::uint64_t>> touched;
    };

    struct ActiveInv
    {
        int loopIdx = -1;
        std::uint64_t inputHash = 0;
        std::uint64_t iterations = 1;
        bool impure = false;
        std::vector<std::uint32_t> touched; // struct ids (kHeap incl.)
    };

    struct FrameState
    {
        ir::FuncId func = ir::kNoFunc;
        const FuncLoops *loops = nullptr;
        ActiveInv inv;
        bool invActive = false;
    };

    struct LoopHistory
    {
        std::deque<InvRecord> records;
    };

    struct RecentWindow
    {
        std::deque<std::uint64_t> tuples;
    };

    emu::Machine &machine_;
    RpsParams params_;
    AddrMap addrMap_;

    ProfileData data_;

    // Per-inst side state (not part of the exported profile).
    std::vector<std::vector<RecentWindow>> recent_;       // [func][uid]
    std::vector<std::vector<
        std::unordered_map<emu::Addr, std::uint64_t>>> lastLoadEpoch_;

    std::vector<std::unique_ptr<FuncLoops>> funcLoops_;
    std::unordered_map<LoopKey, LoopHistory, LoopKeyHash> loopHist_;

    std::vector<FrameState> frames_;

    const FuncLoops &loopsFor(ir::FuncId f);
    void ensureFunc(ir::FuncId f);
    void profileInstLevel(const emu::ExecInfo &info);
    void handleLoops(const emu::ExecInfo &info);
    void beginInvocation(FrameState &fs, int loop_idx);
    void finalizeInvocation(FrameState &fs);
};

} // namespace ccr::profile

#endif // CCR_PROFILE_VALUE_PROFILER_HH
