#include "profile/value_profiler.hh"

#include <algorithm>

#include "analysis/liveness.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace ccr::profile
{

double
InstProfile::invarianceTopK(int k) const
{
    if (exec == 0 || tuples.empty())
        return 0.0;
    std::vector<std::uint64_t> counts;
    counts.reserve(tuples.size());
    for (const auto &[key, count] : tuples)
        counts.push_back(count);
    const auto kk = std::min<std::size_t>(static_cast<std::size_t>(k),
                                          counts.size());
    std::partial_sort(counts.begin(), counts.begin() + kk, counts.end(),
                      std::greater<>());
    std::uint64_t top = 0;
    for (std::size_t i = 0; i < kk; ++i)
        top += counts[i];
    return static_cast<double>(top) / static_cast<double>(exec);
}

ValueProfiler::ValueProfiler(emu::Machine &machine, RpsParams params)
    : machine_(machine), params_(params), addrMap_(machine)
{
    const auto &mod = machine.module();
    const std::size_t nfuncs = mod.numFunctions();
    data_.insts.resize(nfuncs);
    recent_.resize(nfuncs);
    lastLoadEpoch_.resize(nfuncs);
    funcLoops_.resize(nfuncs);
    for (std::size_t f = 0; f < nfuncs; ++f)
        ensureFunc(static_cast<ir::FuncId>(f));

    FrameState fs;
    fs.func = mod.entryFunction();
    fs.loops = &loopsFor(fs.func);
    frames_.push_back(fs);
}

ValueProfiler::~ValueProfiler() = default;

void
ValueProfiler::ensureFunc(ir::FuncId f)
{
    const auto &func = machine_.module().function(f);
    const std::size_t n = func.uidBound();
    data_.insts[f].resize(n);
    recent_[f].resize(n);
    lastLoadEpoch_[f].resize(n);
}

const ValueProfiler::FuncLoops &
ValueProfiler::loopsFor(ir::FuncId f)
{
    if (funcLoops_[f])
        return *funcLoops_[f];

    const auto &func = machine_.module().function(f);
    auto fl = std::make_unique<FuncLoops>();
    fl->headerToLoop.assign(func.numBlocks(), -1);
    fl->inAnyLoop.assign(func.numBlocks(), false);

    const analysis::Cfg cfg(func);
    const analysis::Dominators dom(cfg);
    const analysis::LoopInfo info(cfg, dom);
    const analysis::Liveness live(cfg);

    for (const auto *loop : info.innermostLoops()) {
        LoopData data;
        data.header = loop->header;
        data.member.assign(func.numBlocks(), false);
        for (const auto b : loop->blocks) {
            data.member[b] = true;
            fl->inAnyLoop[b] = true;
        }

        // Loop live-ins: registers live into the header that the loop
        // body actually reads. These are the values that must recur for
        // the whole invocation to be reusable.
        analysis::RegSet used(static_cast<std::size_t>(func.numRegs()));
        for (const auto b : loop->blocks) {
            for (const auto &inst : func.block(b).insts())
                analysis::Liveness::addUses(inst, used);
        }
        for (const auto r : live.liveIn(loop->header).toVector()) {
            if (used.test(r))
                data.liveIns.push_back(r);
        }

        fl->headerToLoop[loop->header] =
            static_cast<int>(fl->loops.size());
        fl->loops.push_back(std::move(data));
    }

    funcLoops_[f] = std::move(fl);
    return *funcLoops_[f];
}

void
ValueProfiler::profileInstLevel(const emu::ExecInfo &info)
{
    const ir::Inst &inst = *info.inst;
    auto &prof = data_.insts[info.func][inst.uid];
    ++prof.exec;
    ++data_.totalDynamicInsts;

    if (inst.op == ir::Opcode::Br && info.taken)
        ++prof.taken;

    // Input tuple: the consumed register values (loads also fold in the
    // effective address so that distinct array elements count as
    // distinct inputs).
    std::uint64_t key = 0xabcd'ef01'2345'6789ULL;
    const int nsrc = info.numSrcRegs;
    for (int i = 0; i < nsrc; ++i) {
        key = hashCombine(
            key, static_cast<std::uint64_t>(
                     info.srcVals[static_cast<std::size_t>(i)]));
    }
    if (inst.srcImm)
        key = hashCombine(key, static_cast<std::uint64_t>(inst.imm));
    if (inst.isLoad())
        key = hashCombine(key, info.memAddr);
    if (inst.op == ir::Opcode::Call) {
        for (int i = 0; i < inst.numArgs; ++i) {
            key = hashCombine(
                key, static_cast<std::uint64_t>(
                         info.argVals[static_cast<std::size_t>(i)]));
        }
    }

    const auto it = prof.tuples.find(key);
    if (it != prof.tuples.end()) {
        ++it->second;
    } else if (prof.tuples.size() < params_.maxTuplesPerInst) {
        prof.tuples.emplace(key, 1);
    } else {
        ++prof.tupleOverflow;
    }

    // Recent-recurrence window over distinct tuples.
    auto &window = recent_[info.func][inst.uid];
    const auto wit = std::find(window.tuples.begin(), window.tuples.end(),
                               key);
    if (wit != window.tuples.end()) {
        ++prof.recentHits;
    } else {
        window.tuples.push_back(key);
        if (window.tuples.size()
            > static_cast<std::size_t>(params_.historyDepth)) {
            window.tuples.pop_front();
        }
    }

    // Memory reusability for loads: has the address's structure been
    // stored to since this instruction last loaded this address?
    if (inst.isLoad()) {
        const MemStruct ms = addrMap_.structOf(info.memAddr);
        const std::uint64_t now = addrMap_.epoch(ms);
        auto &last = lastLoadEpoch_[info.func][inst.uid];
        const auto lit = last.find(info.memAddr);
        if (lit != last.end() && lit->second == now)
            ++prof.memClean;
        last[info.memAddr] = now;
    }

    if (inst.isStore())
        addrMap_.recordStore(info.memAddr);
}

void
ValueProfiler::beginInvocation(FrameState &fs, int loop_idx)
{
    fs.invActive = true;
    fs.inv = ActiveInv{};
    fs.inv.loopIdx = loop_idx;

    const LoopData &loop = fs.loops->loops[static_cast<std::size_t>(
        loop_idx)];
    std::uint64_t h = 0x9e37'79b9'7f4a'7c15ULL;
    h = hashCombine(h, loop.header);
    for (const auto r : loop.liveIns) {
        h = hashCombine(
            h, static_cast<std::uint64_t>(machine_.readReg(r)));
    }
    fs.inv.inputHash = h;
}

void
ValueProfiler::finalizeInvocation(FrameState &fs)
{
    fs.invActive = false;
    const ActiveInv &inv = fs.inv;
    const LoopData &loop =
        fs.loops->loops[static_cast<std::size_t>(inv.loopIdx)];

    const LoopKey key{fs.func, loop.header};
    auto &prof = data_.loops[key];
    ++prof.invocations;
    prof.totalIterations += inv.iterations;
    if (inv.iterations > 1)
        ++prof.multiIter;
    if (inv.impure)
        ++prof.impure;

    auto &hist = loopHist_[key];

    bool matched = false;
    if (!inv.impure) {
        for (const auto &rec : hist.records) {
            if (rec.inputHash != inv.inputHash)
                continue;
            bool clean = true;
            for (const auto &[sid, epoch] : rec.touched) {
                if (addrMap_.epoch(MemStruct{sid}) != epoch) {
                    clean = false;
                    break;
                }
            }
            if (clean) {
                matched = true;
                break;
            }
        }
    }
    if (matched)
        ++prof.reusable;

    // Record this invocation for future matching.
    InvRecord rec;
    rec.inputHash = inv.inputHash;
    for (const auto sid : inv.touched)
        rec.touched.emplace_back(sid, addrMap_.epoch(MemStruct{sid}));
    hist.records.push_back(std::move(rec));
    if (hist.records.size()
        > static_cast<std::size_t>(params_.loopHistoryDepth)) {
        hist.records.pop_front();
    }
}

void
ValueProfiler::handleLoops(const emu::ExecInfo &info)
{
    const ir::Inst &inst = *info.inst;
    FrameState &fs = frames_.back();

    // Record loads / impurity inside an active invocation.
    if (fs.invActive) {
        if (inst.isLoad()) {
            const MemStruct ms = addrMap_.structOf(info.memAddr);
            if (!ms.isGlobal()) {
                fs.inv.impure = true; // anonymous memory
            } else if (std::find(fs.inv.touched.begin(),
                                 fs.inv.touched.end(), ms.id)
                       == fs.inv.touched.end()) {
                fs.inv.touched.push_back(ms.id);
            }
        } else if (inst.isStore() || inst.op == ir::Opcode::Alloc) {
            fs.inv.impure = true;
        }
    }

    switch (inst.op) {
      case ir::Opcode::Br:
      case ir::Opcode::Jump:
      case ir::Opcode::Reuse: {
        ir::BlockId target;
        if (inst.op == ir::Opcode::Br)
            target = info.taken ? inst.target : inst.target2;
        else if (inst.op == ir::Opcode::Jump)
            target = inst.target;
        else
            target = inst.target2; // profiling runs take the miss path

        if (fs.invActive) {
            const LoopData &loop = fs.loops->loops[
                static_cast<std::size_t>(fs.inv.loopIdx)];
            if (target == loop.header) {
                ++fs.inv.iterations; // back edge
                break;
            }
            if (!loop.member[target])
                finalizeInvocation(fs);
        }
        if (!fs.invActive) {
            const int idx = fs.loops->headerToLoop[target];
            if (idx >= 0 && !fs.loops->loops[
                    static_cast<std::size_t>(idx)].member[info.block]) {
                beginInvocation(fs, idx);
            }
        }
        break;
      }
      case ir::Opcode::Call: {
        if (fs.invActive)
            fs.inv.impure = true;
        FrameState next;
        next.func = inst.callee;
        next.loops = &loopsFor(inst.callee);
        frames_.push_back(next);
        // Function entry may itself be a loop header.
        FrameState &nfs = frames_.back();
        const auto entry =
            machine_.module().function(inst.callee).entry();
        const int idx = nfs.loops->headerToLoop[entry];
        if (idx >= 0)
            beginInvocation(nfs, idx);
        break;
      }
      case ir::Opcode::Ret: {
        if (fs.invActive)
            finalizeInvocation(fs);
        frames_.pop_back();
        if (frames_.empty()) {
            // Program finished (entry returned): restore a root frame
            // so late observations stay safe.
            FrameState root;
            root.func = machine_.module().entryFunction();
            root.loops = &loopsFor(root.func);
            frames_.push_back(root);
        }
        break;
      }
      case ir::Opcode::Halt:
        if (fs.invActive)
            finalizeInvocation(fs);
        break;
      default:
        break;
    }
}

void
ValueProfiler::onInst(const emu::ExecInfo &info)
{
    profileInstLevel(info);
    handleLoops(info);
}

ProfileData
ValueProfiler::takeProfile()
{
    return std::move(data_);
}

} // namespace ccr::profile
