/**
 * @file
 * Dynamic reuse-potential limit study (paper §2.3, Figure 4).
 *
 * Measures what fraction of a program's dynamic execution is redundant
 * at two granularities, each checked against the 8 most recent records
 * of the corresponding code segment:
 *
 *  - block level: one basic-block execution is reusable when the values
 *    it consumes from outside the block (and, for each load, the
 *    last-store time of the loaded location) match a recent previous
 *    execution of the same block;
 *  - region level: the same test applied to multi-block acyclic path
 *    segments (delimited by stores, calls, allocation, function
 *    boundaries, and back edges), plus whole invocations of
 *    deterministic inner loops matched on their live-in values and the
 *    last-store times of the locations they read ("monitoring
 *    additional program state at the invocation of the respective
 *    region headers", §2.3).
 *
 * Store instructions are never considered reusable, and loads key on
 * "location unmodified since the recorded execution", both per the
 * paper's stated evaluation guidelines.
 */

#ifndef CCR_PROFILE_REUSE_POTENTIAL_HH
#define CCR_PROFILE_REUSE_POTENTIAL_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "emu/machine.hh"
#include "obs/report.hh"

namespace ccr::profile
{

/** Parameters of the limit study. */
struct PotentialParams
{
    /** Records kept per code segment (paper: eight). */
    int historyDepth = 8;

    /** Dynamic-length cap for one region segment. */
    std::uint64_t maxSegmentInsts = 512;
};

/** Results: fractions of dynamic execution that could be reused. */
struct PotentialResult
{
    std::uint64_t totalInsts = 0;
    std::uint64_t blockReusableInsts = 0;
    std::uint64_t regionReusableInsts = 0;

    double
    blockFraction() const
    {
        return obs::ratio(static_cast<double>(blockReusableInsts),
                          static_cast<double>(totalInsts));
    }

    double
    regionFraction() const
    {
        return obs::ratio(static_cast<double>(regionReusableInsts),
                          static_cast<double>(totalInsts));
    }
};

/** The limit-study observer. Attach, run the machine, read result(). */
class ReusePotentialStudy : public emu::Observer
{
  public:
    explicit ReusePotentialStudy(const emu::Machine &machine,
                                 PotentialParams params = {});

    void onInst(const emu::ExecInfo &info) override;

    /** Flushes open segments and returns the tallies. */
    PotentialResult result();

  private:
    struct SegKeyHash
    {
        std::size_t
        operator()(const std::uint64_t &k) const
        {
            return k;
        }
    };

    struct History
    {
        std::deque<std::uint64_t> sigs;
    };

    /** Running accumulation over one block execution or one acyclic
     *  region segment. */
    struct Run
    {
        ir::BlockId start = ir::kNoBlock;
        std::uint64_t sig = 0;
        std::uint64_t insts = 0;
        bool poisoned = false; // contains store/call: never reusable
        bool open = false;

        /** Segment only: closed for feeding, awaiting attribution. */
        bool sealed = false;
    };

    /** One finished block run awaiting region-level attribution. */
    struct RunRecord
    {
        std::uint64_t insts = 0;
        bool blockMatched = false;
    };

    /** Candidate inner loop (no stores/calls) for cyclic matching. */
    struct LoopData
    {
        ir::BlockId header = ir::kNoBlock;
        std::vector<bool> member;
        std::vector<ir::Reg> liveIns;
    };

    struct FuncLoops
    {
        std::vector<LoopData> loops;
        std::vector<int> headerToLoop; // -1 when not a candidate header
    };

    /** One in-flight cyclic invocation. */
    struct ActiveInv
    {
        int loopIdx = -1;
        std::uint64_t sig = 0;

        /** Instructions inside this invocation not already credited
         *  at block or path-segment granularity. */
        std::uint64_t unmatched = 0;
    };

    struct FrameState
    {
        ir::FuncId func = ir::kNoFunc;
        const FuncLoops *loops = nullptr;
        Run blockRun;
        Run segment;
        std::vector<ir::BlockId> segmentBlocks;
        std::vector<RunRecord> segRecords;
        ActiveInv inv;
        bool invActive = false;
        bool invEndPending = false;
        bool runInSegment = false;
        ir::BlockId curBlock = ir::kNoBlock;
        bool lastWasControl = true;
        std::vector<std::uint64_t> definedStampBlock;
        std::vector<std::uint64_t> definedStampSeg;
        std::uint64_t blockStamp = 0;
        std::uint64_t segStamp = 0;
    };

    const emu::Machine &machine_;
    PotentialParams params_;
    PotentialResult result_;

    std::unordered_map<std::uint64_t, History, SegKeyHash> blockHist_;
    std::unordered_map<std::uint64_t, History, SegKeyHash> regionHist_;
    std::unordered_map<std::uint64_t, History, SegKeyHash> cyclicHist_;

    std::unordered_map<emu::Addr, std::uint64_t> lastStore_;
    std::uint64_t time_ = 0;

    std::vector<std::unique_ptr<FuncLoops>> funcLoops_;
    std::vector<FrameState> frames_;

    FrameState makeFrame(ir::FuncId func);
    const FuncLoops &loopsFor(ir::FuncId func);

    void startBlockRun(FrameState &fs, ir::BlockId block);
    void flushBlockRun(FrameState &fs);
    void startSegment(FrameState &fs, ir::BlockId block);
    void sealSegment(FrameState &fs);
    void flushSegment(FrameState &fs);
    void beginInvocation(FrameState &fs, int loop_idx);
    void finalizeInvocation(FrameState &fs);
    void accumulate(const emu::ExecInfo &info, FrameState &fs);
    bool checkHistory(
        std::unordered_map<std::uint64_t, History, SegKeyHash> &hist,
        std::uint64_t key, std::uint64_t sig);
};

} // namespace ccr::profile

#endif // CCR_PROFILE_REUSE_POTENTIAL_HH
