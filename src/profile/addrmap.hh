/**
 * @file
 * Runtime address -> memory-structure mapping, and per-structure store
 * epochs. The profilers use epochs to decide whether memory read by a
 * computation changed between two points of the execution.
 */

#ifndef CCR_PROFILE_ADDRMAP_HH
#define CCR_PROFILE_ADDRMAP_HH

#include <cstdint>
#include <vector>

#include "emu/machine.hh"
#include "ir/module.hh"

namespace ccr::profile
{

/** Identifier for a memory structure: a global id, or the blended
 *  heap/unknown bucket. */
struct MemStruct
{
    static constexpr std::uint32_t kHeap = 0xffffffffu;

    std::uint32_t id = kHeap;

    bool isGlobal() const { return id != kHeap; }
    bool operator==(const MemStruct &) const = default;
};

/**
 * Maps runtime addresses back to the module global containing them
 * (binary search over the load-time layout), and tracks a store epoch
 * per structure: the epoch bumps every time the structure is written,
 * so "epoch unchanged" proves "contents unchanged".
 */
class AddrMap
{
  public:
    explicit AddrMap(const emu::Machine &machine);

    /** Structure containing @p addr (heap bucket when no global). */
    MemStruct structOf(emu::Addr addr) const;

    /** Note a store to @p addr. */
    void
    recordStore(emu::Addr addr)
    {
        bumpEpoch(structOf(addr));
    }

    void
    bumpEpoch(MemStruct s)
    {
        if (s.isGlobal())
            ++globalEpoch_[s.id];
        else
            ++heapEpoch_;
    }

    std::uint64_t
    epoch(MemStruct s) const
    {
        return s.isGlobal() ? globalEpoch_[s.id] : heapEpoch_;
    }

  private:
    struct Range
    {
        emu::Addr base;
        emu::Addr limit;
        std::uint32_t global;
    };

    std::vector<Range> ranges_; // sorted by base
    std::vector<std::uint64_t> globalEpoch_;
    std::uint64_t heapEpoch_ = 0;
};

} // namespace ccr::profile

#endif // CCR_PROFILE_ADDRMAP_HH
