#include "profile/addrmap.hh"

#include <algorithm>

namespace ccr::profile
{

AddrMap::AddrMap(const emu::Machine &machine)
{
    const auto &mod = machine.module();
    ranges_.reserve(mod.numGlobals());
    for (std::size_t g = 0; g < mod.numGlobals(); ++g) {
        const auto gid = static_cast<ir::GlobalId>(g);
        const auto &gl = mod.global(gid);
        Range r;
        r.base = machine.globalAddr(gid);
        r.limit = r.base + gl.sizeBytes;
        r.global = gid;
        ranges_.push_back(r);
    }
    std::sort(ranges_.begin(), ranges_.end(),
              [](const Range &a, const Range &b) {
                  return a.base < b.base;
              });
    globalEpoch_.assign(mod.numGlobals(), 0);
}

MemStruct
AddrMap::structOf(emu::Addr addr) const
{
    // Binary search for the last range with base <= addr.
    const auto it = std::upper_bound(
        ranges_.begin(), ranges_.end(), addr,
        [](emu::Addr a, const Range &r) { return a < r.base; });
    if (it != ranges_.begin()) {
        const Range &r = *(it - 1);
        if (addr >= r.base && addr < r.limit)
            return MemStruct{r.global};
    }
    return MemStruct{}; // heap / unknown bucket
}

} // namespace ccr::profile
