#include "profile/reuse_potential.hh"

#include "analysis/dominators.hh"
#include "analysis/liveness.hh"
#include "analysis/loops.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace ccr::profile
{

namespace
{

std::uint64_t
segKey(ir::FuncId func, ir::BlockId block)
{
    return (static_cast<std::uint64_t>(func) << 32) | block;
}

constexpr std::uint64_t kSigSeed = 0x51ed'270b'9f5d'3c17ULL;

/** True when the loop contains no instruction that disqualifies it as
 *  a cyclic reuse candidate (stores, calls, allocation, returns). */
bool
loopIsCandidate(const ir::Function &func, const analysis::Loop &loop)
{
    for (const auto b : loop.blocks) {
        for (const auto &inst : func.block(b).insts()) {
            switch (inst.op) {
              case ir::Opcode::Store:
              case ir::Opcode::Call:
              case ir::Opcode::Alloc:
              case ir::Opcode::Ret:
              case ir::Opcode::Halt:
                return false;
              default:
                break;
            }
        }
    }
    return true;
}

} // namespace

ReusePotentialStudy::ReusePotentialStudy(const emu::Machine &machine,
                                         PotentialParams params)
    : machine_(machine), params_(params)
{
    funcLoops_.resize(machine.module().numFunctions());
    frames_.push_back(makeFrame(machine.module().entryFunction()));
}

ReusePotentialStudy::FrameState
ReusePotentialStudy::makeFrame(ir::FuncId func)
{
    FrameState fs;
    fs.func = func;
    const auto &f = machine_.module().function(func);
    fs.definedStampBlock.assign(static_cast<std::size_t>(f.numRegs()),
                                0);
    fs.definedStampSeg.assign(static_cast<std::size_t>(f.numRegs()), 0);
    fs.loops = &loopsFor(func);
    return fs;
}

const ReusePotentialStudy::FuncLoops &
ReusePotentialStudy::loopsFor(ir::FuncId func)
{
    if (funcLoops_[func])
        return *funcLoops_[func];

    const auto &f = machine_.module().function(func);
    auto fl = std::make_unique<FuncLoops>();
    fl->headerToLoop.assign(f.numBlocks(), -1);

    const analysis::Cfg cfg(f);
    const analysis::Dominators dom(cfg);
    const analysis::LoopInfo info(cfg, dom);
    const analysis::Liveness live(cfg);

    for (const auto *loop : info.innermostLoops()) {
        if (!loopIsCandidate(f, *loop))
            continue;
        LoopData data;
        data.header = loop->header;
        data.member.assign(f.numBlocks(), false);
        for (const auto b : loop->blocks)
            data.member[b] = true;

        analysis::RegSet used(static_cast<std::size_t>(f.numRegs()));
        for (const auto b : loop->blocks) {
            for (const auto &inst : f.block(b).insts())
                analysis::Liveness::addUses(inst, used);
        }
        for (const auto r : live.liveIn(loop->header).toVector()) {
            if (used.test(r))
                data.liveIns.push_back(r);
        }
        fl->headerToLoop[loop->header] =
            static_cast<int>(fl->loops.size());
        fl->loops.push_back(std::move(data));
    }

    funcLoops_[func] = std::move(fl);
    return *funcLoops_[func];
}

bool
ReusePotentialStudy::checkHistory(
    std::unordered_map<std::uint64_t, History, SegKeyHash> &hist,
    std::uint64_t key, std::uint64_t sig)
{
    auto &h = hist[key];
    bool found = false;
    for (const auto s : h.sigs) {
        if (s == sig) {
            found = true;
            break;
        }
    }
    h.sigs.push_back(sig);
    if (h.sigs.size() > static_cast<std::size_t>(params_.historyDepth))
        h.sigs.pop_front();
    return found;
}

void
ReusePotentialStudy::startBlockRun(FrameState &fs, ir::BlockId block)
{
    fs.blockRun = Run{};
    fs.blockRun.start = block;
    fs.blockRun.sig = hashCombine(kSigSeed, block);
    fs.blockRun.open = true;
    fs.runInSegment = fs.segment.open;
    ++fs.blockStamp;
}

void
ReusePotentialStudy::flushBlockRun(FrameState &fs)
{
    if (!fs.blockRun.open)
        return;
    Run &run = fs.blockRun;
    run.open = false;
    if (run.insts == 0)
        return;

    const bool match = checkHistory(
        blockHist_, segKey(fs.func, run.start), run.sig);
    const bool reusable = match && !run.poisoned;
    if (reusable)
        result_.blockReusableInsts += run.insts;

    // Region-level attribution happens at the coarsest granularity
    // that matches: block run, enclosing path segment, or enclosing
    // loop invocation. Records resolve when the segment flushes.
    RunRecord rec;
    rec.insts = run.insts;
    rec.blockMatched = reusable;
    if (fs.runInSegment && (fs.segment.open || fs.segment.sealed)) {
        fs.segRecords.push_back(rec);
    } else if (reusable) {
        result_.regionReusableInsts += rec.insts;
    } else if (fs.invActive) {
        fs.inv.unmatched += rec.insts;
    }
}

void
ReusePotentialStudy::startSegment(FrameState &fs, ir::BlockId block)
{
    fs.segment = Run{};
    fs.segment.start = block;
    fs.segment.sig = hashCombine(kSigSeed ^ 0xffff, block);
    fs.segment.open = true;
    fs.segmentBlocks.clear();
    fs.segmentBlocks.push_back(block);
    fs.segRecords.clear();
    ++fs.segStamp;
}

void
ReusePotentialStudy::sealSegment(FrameState &fs)
{
    if (fs.segment.open) {
        fs.segment.open = false;
        fs.segment.sealed = true;
    }
}

void
ReusePotentialStudy::flushSegment(FrameState &fs)
{
    sealSegment(fs);
    if (!fs.segment.sealed)
        return;
    Run &run = fs.segment;
    run.sealed = false;
    const bool match =
        run.insts == 0
            ? false
            : checkHistory(regionHist_, segKey(fs.func, run.start),
                           run.sig)
                  && !run.poisoned;

    for (const auto &rec : fs.segRecords) {
        if (match || rec.blockMatched)
            result_.regionReusableInsts += rec.insts;
        else if (fs.invActive)
            fs.inv.unmatched += rec.insts;
    }
    fs.segRecords.clear();
}

void
ReusePotentialStudy::accumulate(const emu::ExecInfo &info,
                                FrameState &fs)
{
    const ir::Inst &inst = *info.inst;

    auto feed = [&](Run &run, std::vector<std::uint64_t> &stamp,
                    std::uint64_t cur) {
        if (!run.open)
            return;
        // Values consumed from outside the run are its inputs.
        const int nsrc = inst.numRegSources();
        for (int i = 0; i < nsrc && i < 2; ++i) {
            const ir::Reg r = inst.regSource(i);
            if (stamp[r] != cur) {
                run.sig = hashCombine(
                    run.sig,
                    static_cast<std::uint64_t>(
                        info.srcVals[static_cast<std::size_t>(i)]));
            }
        }
        if (inst.isLoad()) {
            // Key loads on (address, last store time to that address):
            // equal means the location was not stored to in between.
            const auto it = lastStore_.find(info.memAddr);
            const std::uint64_t st =
                it == lastStore_.end() ? 0 : it->second;
            run.sig = hashCombine(run.sig,
                                  hashCombine(info.memAddr, st));
        }
        if (inst.hasDst())
            stamp[inst.dst] = cur;
        ++run.insts;
    };

    feed(fs.blockRun, fs.definedStampBlock, fs.blockStamp);
    feed(fs.segment, fs.definedStampSeg, fs.segStamp);
}

void
ReusePotentialStudy::beginInvocation(FrameState &fs, int loop_idx)
{
    fs.invActive = true;
    fs.inv = ActiveInv{};
    fs.inv.loopIdx = loop_idx;

    const LoopData &loop =
        fs.loops->loops[static_cast<std::size_t>(loop_idx)];
    std::uint64_t h = hashCombine(kSigSeed ^ 0xabcd, loop.header);
    for (const auto r : loop.liveIns) {
        h = hashCombine(
            h, static_cast<std::uint64_t>(machine_.readReg(r)));
    }
    fs.inv.sig = h;
}

void
ReusePotentialStudy::finalizeInvocation(FrameState &fs)
{
    fs.invActive = false;
    const ActiveInv &inv = fs.inv;
    const LoopData &loop =
        fs.loops->loops[static_cast<std::size_t>(inv.loopIdx)];
    const bool match = checkHistory(
        cyclicHist_, segKey(fs.func, loop.header), inv.sig);
    if (match)
        result_.regionReusableInsts += inv.unmatched;
    fs.inv = ActiveInv{};
}

void
ReusePotentialStudy::onInst(const emu::ExecInfo &info)
{
    ++time_;
    ++result_.totalInsts;

    FrameState &fs = frames_.back();
    const ir::Inst &inst = *info.inst;

    // Detect entry into a new block execution. Block-run records must
    // be appended to the (possibly sealed) segment before the segment
    // itself resolves, and a sealed segment resolves before a new one
    // starts.
    if (fs.lastWasControl || info.block != fs.curBlock) {
        flushBlockRun(fs);
        if (fs.segment.sealed)
            flushSegment(fs);
        if (fs.invEndPending && fs.invActive) {
            finalizeInvocation(fs);
            fs.invEndPending = false;
        }
        startBlockRun(fs, info.block);
        fs.curBlock = info.block;
        if (!fs.segment.open)
            startSegment(fs, info.block);
    }
    fs.lastWasControl = inst.isControlInst();

    // Cyclic invocation signature: loads fold (address, last-store)
    // keys so memory mutation between invocations breaks matching.
    if (fs.invActive && inst.isLoad()) {
        const auto it = lastStore_.find(info.memAddr);
        const std::uint64_t st =
            it == lastStore_.end() ? 0 : it->second;
        fs.inv.sig =
            hashCombine(fs.inv.sig, hashCombine(info.memAddr, st));
    }

    // Stores, calls, and allocation are non-reusable content: they
    // seal the current segment and poison the enclosing block run.
    // Ret/Halt merely end the frame.
    const bool boundary = inst.isStore() || inst.op == ir::Opcode::Call
                          || inst.op == ir::Opcode::Alloc;
    const bool frame_end = inst.op == ir::Opcode::Ret
                           || inst.op == ir::Opcode::Halt;

    if (boundary) {
        sealSegment(fs);
        fs.blockRun.poisoned = true;
    } else if (!frame_end) {
        accumulate(info, fs);
        if (fs.segment.open
            && fs.segment.insts >= params_.maxSegmentInsts) {
            sealSegment(fs);
        }
    }

    if (inst.isStore())
        lastStore_[info.memAddr] = time_;

    // Control transfers: cyclic invocation begin/end detection and
    // back-edge segment sealing.
    if (inst.op == ir::Opcode::Br || inst.op == ir::Opcode::Jump
        || inst.op == ir::Opcode::Reuse) {
        ir::BlockId target;
        if (inst.op == ir::Opcode::Br)
            target = info.taken ? inst.target : inst.target2;
        else if (inst.op == ir::Opcode::Jump)
            target = inst.target;
        else
            target = inst.target2;

        if (fs.invActive) {
            const LoopData &loop = fs.loops->loops[
                static_cast<std::size_t>(fs.inv.loopIdx)];
            if (!loop.member[target] && target != loop.header) {
                // Finalize after the pending block/segment records of
                // the exiting iteration resolve (next block entry).
                fs.invEndPending = true;
            }
        } else {
            const int idx = fs.loops->headerToLoop[target];
            if (idx >= 0
                && !fs.loops->loops[static_cast<std::size_t>(idx)]
                        .member[info.block]) {
                beginInvocation(fs, idx);
            }
        }
        if (fs.segment.open) {
            // Path segments never span a revisit of one of their own
            // blocks: back edges delimit paths.
            for (const auto b : fs.segmentBlocks) {
                if (b == target) {
                    sealSegment(fs);
                    break;
                }
            }
            if (fs.segment.open)
                fs.segmentBlocks.push_back(target);
        }
    }

    // Frame transitions.
    if (inst.op == ir::Opcode::Call) {
        frames_.push_back(makeFrame(inst.callee));
    } else if (frame_end) {
        flushBlockRun(fs);
        flushSegment(fs);
        if (fs.invActive)
            finalizeInvocation(fs);
        if (inst.op == ir::Opcode::Ret) {
            frames_.pop_back();
            if (frames_.empty()) {
                frames_.push_back(
                    makeFrame(machine_.module().entryFunction()));
            } else {
                frames_.back().lastWasControl = true;
            }
        }
    }
}

PotentialResult
ReusePotentialStudy::result()
{
    for (auto &fs : frames_) {
        flushBlockRun(fs);
        flushSegment(fs);
        if (fs.invActive)
            finalizeInvocation(fs);
    }
    return result_;
}

} // namespace ccr::profile
