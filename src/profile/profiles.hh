/**
 * @file
 * Profile data produced by the Reuse Profiling System (RPS, paper §4.2)
 * and consumed by the RCR formation heuristics (paper §4.4).
 */

#ifndef CCR_PROFILE_PROFILES_HH
#define CCR_PROFILE_PROFILES_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "ir/types.hh"

namespace ccr::profile
{

/**
 * Per-static-instruction profile: execution weight, input-tuple value
 * distribution (for Invariance_R[k]), branch direction weight, and the
 * memory-reuse fraction for loads.
 */
struct InstProfile
{
    /** Dynamic executions, Exec(i). */
    std::uint64_t exec = 0;

    /** Executions where the branch was taken (Br only). */
    std::uint64_t taken = 0;

    /** Input-tuple hash -> occurrence count (capped; excess counted in
     *  tupleOverflow). */
    std::unordered_map<std::uint64_t, std::uint64_t> tuples;
    std::uint64_t tupleOverflow = 0;

    /** Load executions whose address had not been stored to since the
     *  previous load of the same address by this instruction. */
    std::uint64_t memClean = 0;

    /** Executions whose input tuple appeared within the last
     *  `historyDepth` distinct tuples (recent-recurrence measure). */
    std::uint64_t recentHits = 0;

    /** Fraction of executions covered by the top @p k input tuples:
     *  Invariance_R[k](i) in the paper's heuristic (eq. 1). */
    double invarianceTopK(int k) const;

    /** Distinct input tuples observed (capped count). */
    std::size_t distinctTuples() const { return tuples.size(); }

    /** MemReuse fraction: memClean / exec (loads; eq. 2). */
    double
    memReuseFraction() const
    {
        return exec == 0 ? 0.0
                         : static_cast<double>(memClean)
                               / static_cast<double>(exec);
    }

    double
    takenFraction() const
    {
        return exec == 0 ? 0.0
                         : static_cast<double>(taken)
                               / static_cast<double>(exec);
    }
};

/**
 * Per-loop (cyclic region candidate) profile: invocation counts,
 * iteration structure, and the fraction of invocations whose whole
 * computation was observed to be reusable.
 */
struct LoopProfile
{
    std::uint64_t invocations = 0;

    /** Invocations executing more than one iteration. */
    std::uint64_t multiIter = 0;

    /** Invocations whose (inputs, memory state) matched one of the
     *  last `historyDepth` records. */
    std::uint64_t reusable = 0;

    std::uint64_t totalIterations = 0;

    /** Invocations containing a store, call, or non-determinable load
     *  (disqualifying for cyclic RCR formation). */
    std::uint64_t impure = 0;

    double
    reuseFraction() const
    {
        return invocations == 0
                   ? 0.0
                   : static_cast<double>(reusable)
                         / static_cast<double>(invocations);
    }

    double
    multiIterFraction() const
    {
        return invocations == 0
                   ? 0.0
                   : static_cast<double>(multiIter)
                         / static_cast<double>(invocations);
    }
};

/** Key for a loop: (function, header block). */
struct LoopKey
{
    ir::FuncId func = ir::kNoFunc;
    ir::BlockId header = ir::kNoBlock;

    bool operator==(const LoopKey &) const = default;
};

struct LoopKeyHash
{
    std::size_t
    operator()(const LoopKey &k) const
    {
        return (static_cast<std::size_t>(k.func) << 32) ^ k.header;
    }
};

/** All RPS output for one training run. */
struct ProfileData
{
    /** Per function, indexed by InstUid. */
    std::vector<std::vector<InstProfile>> insts;

    std::unordered_map<LoopKey, LoopProfile, LoopKeyHash> loops;

    /** Total dynamic instructions in the profiled run. */
    std::uint64_t totalDynamicInsts = 0;

    /** False when the profiled run was cut off by its instruction
     *  budget before halting (the profile is then partial). Callers
     *  that need a complete training pass must check this —
     *  the experiment harness turns it into a fatal error or a
     *  structured incomplete result per RunConfig::budgetFatal. */
    bool completed = true;

    const InstProfile *
    instProfile(ir::FuncId f, ir::InstUid uid) const
    {
        if (f >= insts.size() || uid >= insts[f].size())
            return nullptr;
        return &insts[f][uid];
    }

    const LoopProfile *
    loopProfile(ir::FuncId f, ir::BlockId header) const
    {
        const auto it = loops.find(LoopKey{f, header});
        return it == loops.end() ? nullptr : &it->second;
    }
};

} // namespace ccr::profile

#endif // CCR_PROFILE_PROFILES_HH
