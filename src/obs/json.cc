#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ccr::obs
{

std::int64_t
Json::asInt() const
{
    switch (kind_) {
      case Kind::Int: return int_;
      case Kind::Uint: return static_cast<std::int64_t>(uint_);
      case Kind::Double: return static_cast<std::int64_t>(dbl_);
      default: return 0;
    }
}

std::uint64_t
Json::asUint() const
{
    switch (kind_) {
      case Kind::Int:
        return int_ < 0 ? 0 : static_cast<std::uint64_t>(int_);
      case Kind::Uint: return uint_;
      case Kind::Double:
        return dbl_ < 0 ? 0 : static_cast<std::uint64_t>(dbl_);
      default: return 0;
    }
}

double
Json::asDouble() const
{
    switch (kind_) {
      case Kind::Int: return static_cast<double>(int_);
      case Kind::Uint: return static_cast<double>(uint_);
      case Kind::Double: return dbl_;
      default: return 0.0;
    }
}

Json &
Json::operator[](const std::string &key)
{
    if (kind_ != Kind::Object) {
        kind_ = Kind::Object;
        obj_.clear();
    }
    return obj_[key];
}

const Json &
Json::at(const std::string &key) const
{
    static const Json null;
    if (kind_ != Kind::Object)
        return null;
    const auto it = obj_.find(key);
    return it == obj_.end() ? null : it->second;
}

bool
Json::operator==(const Json &other) const
{
    // Numbers compare across kinds by value (1 == 1u == 1.0).
    if (isNumber() && other.isNumber()) {
        if (kind_ == Kind::Double || other.kind_ == Kind::Double)
            return asDouble() == other.asDouble();
        if (kind_ == Kind::Uint || other.kind_ == Kind::Uint) {
            if (asInt() < 0 || other.asInt() < 0)
                return asInt() == other.asInt();
            return asUint() == other.asUint();
        }
        return asInt() == other.asInt();
    }
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null: return true;
      case Kind::Bool: return bool_ == other.bool_;
      case Kind::String: return str_ == other.str_;
      case Kind::Array: return arr_ == other.arr_;
      case Kind::Object: return obj_ == other.obj_;
      default: return false;
    }
}

namespace
{

void
dumpString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
dumpDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; emit null (the conventional fallback).
        os << "null";
        return;
    }
    // Shortest representation that round-trips a double.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    double parsed = std::strtod(buf, nullptr);
    if (parsed == v) {
        for (int prec = 1; prec < 17; ++prec) {
            char trial[32];
            std::snprintf(trial, sizeof trial, "%.*g", prec, v);
            if (std::strtod(trial, nullptr) == v) {
                std::snprintf(buf, sizeof buf, "%s", trial);
                break;
            }
        }
    }
    os << buf;
}

void
newlineIndent(std::ostream &os, int indent, int depth)
{
    os << '\n';
    for (int i = 0; i < indent * depth; ++i)
        os << ' ';
}

} // namespace

void
Json::dumpImpl(std::ostream &os, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    switch (kind_) {
      case Kind::Null: os << "null"; break;
      case Kind::Bool: os << (bool_ ? "true" : "false"); break;
      case Kind::Int: os << int_; break;
      case Kind::Uint: os << uint_; break;
      case Kind::Double: dumpDouble(os, dbl_); break;
      case Kind::String: dumpString(os, str_); break;
      case Kind::Array: {
        if (arr_.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        bool first = true;
        for (const auto &v : arr_) {
            if (!first)
                os << ',';
            first = false;
            if (pretty)
                newlineIndent(os, indent, depth + 1);
            v.dumpImpl(os, indent, depth + 1);
        }
        if (pretty)
            newlineIndent(os, indent, depth);
        os << ']';
        break;
      }
      case Kind::Object: {
        if (obj_.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        bool first = true;
        for (const auto &[key, v] : obj_) {
            if (!first)
                os << ',';
            first = false;
            if (pretty)
                newlineIndent(os, indent, depth + 1);
            dumpString(os, key);
            os << (pretty ? ": " : ":");
            v.dumpImpl(os, indent, depth + 1);
        }
        if (pretty)
            newlineIndent(os, indent, depth);
        os << '}';
        break;
      }
    }
}

void
Json::dump(std::ostream &os, int indent) const
{
    dumpImpl(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    dump(os, indent);
    return os.str();
}

// -- Parser ------------------------------------------------------------

namespace
{

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;

    bool fail(const std::string &msg)
    {
        if (error.empty()) {
            error = "json parse error at byte " + std::to_string(pos)
                    + ": " + msg;
        }
        return false;
    }

    void skipWs()
    {
        while (pos < text.size()
               && (text[pos] == ' ' || text[pos] == '\t'
                   || text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) == word) {
            pos += word.size();
            return true;
        }
        return fail("bad literal");
    }

    void appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool hex4(unsigned &out)
    {
        if (pos + 4 > text.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text[pos++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        return true;
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= text.size())
                    return fail("truncated escape");
                const char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    unsigned cp = 0;
                    if (!hex4(cp))
                        return false;
                    if (cp >= 0xD800 && cp <= 0xDBFF
                        && text.substr(pos, 2) == "\\u") {
                        pos += 2;
                        unsigned lo = 0;
                        if (!hex4(lo))
                            return false;
                        if (lo >= 0xDC00 && lo <= 0xDFFF) {
                            cp = 0x10000 + ((cp - 0xD800) << 10)
                                 + (lo - 0xDC00);
                        } else {
                            return fail("bad surrogate pair");
                        }
                    }
                    appendUtf8(out, cp);
                    break;
                  }
                  default: return fail("bad escape");
                }
            } else {
                out += c;
                ++pos;
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(Json &out)
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() && std::isdigit(
                   static_cast<unsigned char>(text[pos])))
            ++pos;
        bool is_float = false;
        if (pos < text.size() && text[pos] == '.') {
            is_float = true;
            ++pos;
            while (pos < text.size() && std::isdigit(
                       static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            is_float = true;
            ++pos;
            if (pos < text.size()
                && (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            while (pos < text.size() && std::isdigit(
                       static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        const std::string token(text.substr(start, pos - start));
        if (token.empty() || token == "-")
            return fail("bad number");
        errno = 0;
        if (!is_float) {
            if (token[0] == '-') {
                const std::int64_t v =
                    std::strtoll(token.c_str(), nullptr, 10);
                if (errno != ERANGE) {
                    out = Json(v);
                    return true;
                }
            } else {
                const std::uint64_t v =
                    std::strtoull(token.c_str(), nullptr, 10);
                if (errno != ERANGE) {
                    out = Json(v);
                    return true;
                }
            }
            errno = 0;
        }
        out = Json(std::strtod(token.c_str(), nullptr));
        return true;
    }

    bool parseValue(Json &out, int depth)
    {
        if (depth > 200)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == 'n') {
            if (!literal("null"))
                return false;
            out = Json();
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            out = Json(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            out = Json(false);
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (c == '[') {
            ++pos;
            Json::Array arr;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                out = Json(std::move(arr));
                return true;
            }
            while (true) {
                Json v;
                if (!parseValue(v, depth + 1))
                    return false;
                arr.push_back(std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            if (!consume(']'))
                return false;
            out = Json(std::move(arr));
            return true;
        }
        if (c == '{') {
            ++pos;
            Json::Object obj;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                out = Json(std::move(obj));
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return false;
                Json v;
                if (!parseValue(v, depth + 1))
                    return false;
                obj[std::move(key)] = std::move(v);
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            if (!consume('}'))
                return false;
            out = Json(std::move(obj));
            return true;
        }
        if (c == '-'
            || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber(out);
        return fail("unexpected character");
    }
};

} // namespace

std::optional<Json>
Json::parse(std::string_view text, std::string *err)
{
    Parser p{text, 0, {}};
    Json out;
    if (!p.parseValue(out, 0)) {
        if (err)
            *err = p.error;
        return std::nullopt;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err)
            *err = "json parse error at byte " + std::to_string(p.pos)
                   + ": trailing content";
        return std::nullopt;
    }
    return out;
}

} // namespace ccr::obs
