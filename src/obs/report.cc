#include "obs/report.hh"

#include <fstream>
#include <set>
#include <sstream>

namespace ccr::obs
{

std::uint64_t
RunReport::metric(const std::string &name) const
{
    const Json &v = metrics.at(name);
    return v.isNumber() ? v.asUint() : 0;
}

Json
RunReport::toJson() const
{
    Json out = Json::object();
    out["workload"] = Json(workload);
    out["config"] = config;
    out["metrics"] = metrics;
    out["derived"] = derived;
    out["regions"] = regions;
    return out;
}

std::optional<RunReport>
RunReport::fromJson(const Json &json, std::string *err)
{
    if (!json.isObject()) {
        if (err)
            *err = "run report is not an object";
        return std::nullopt;
    }
    if (!json.at("workload").isString()) {
        if (err)
            *err = "run report missing 'workload'";
        return std::nullopt;
    }
    RunReport run;
    run.workload = json.at("workload").asString();
    run.config = json.at("config");
    run.metrics = json.at("metrics");
    run.derived = json.at("derived");
    run.regions = json.at("regions");
    if (run.config.isNull())
        run.config = Json::object();
    if (run.metrics.isNull())
        run.metrics = Json::object();
    if (run.derived.isNull())
        run.derived = Json::object();
    if (run.regions.isNull())
        run.regions = Json::array();
    return run;
}

Json
SimReport::toJson() const
{
    Json out = Json::object();
    Json schema = Json::object();
    schema["name"] = Json(kSchemaName);
    schema["version"] = Json(kSchemaVersion);
    out["schema"] = std::move(schema);
    out["generator"] = Json(generator);
    Json arr = Json::array();
    for (const auto &run : runs)
        arr.push(run.toJson());
    out["runs"] = std::move(arr);
    return out;
}

std::string
SimReport::toJsonString(int indent) const
{
    // A trailing newline so the file is a well-formed text file.
    return toJson().dump(indent) + "\n";
}

std::optional<SimReport>
SimReport::fromJson(const Json &json, std::string *err)
{
    if (!json.isObject()) {
        if (err)
            *err = "report is not a JSON object";
        return std::nullopt;
    }
    const Json &schema = json.at("schema");
    if (!schema.isObject() || !schema.at("version").isNumber()) {
        if (err)
            *err = "report missing schema.version";
        return std::nullopt;
    }
    if (schema.at("name").isString()
        && schema.at("name").asString() != kSchemaName) {
        if (err)
            *err = "unexpected schema name '"
                   + schema.at("name").asString() + "'";
        return std::nullopt;
    }
    const std::int64_t version = schema.at("version").asInt();
    if (version < 1 || version > kSchemaVersion) {
        if (err)
            *err = "unsupported schema version "
                   + std::to_string(version) + " (this build reads <= "
                   + std::to_string(kSchemaVersion) + ")";
        return std::nullopt;
    }

    SimReport report;
    if (json.at("generator").isString())
        report.generator = json.at("generator").asString();
    const Json &runs = json.at("runs");
    if (!runs.isNull() && !runs.isArray()) {
        if (err)
            *err = "'runs' is not an array";
        return std::nullopt;
    }
    for (const auto &rj : runs.items()) {
        auto run = RunReport::fromJson(rj, err);
        if (!run)
            return std::nullopt;
        report.runs.push_back(std::move(*run));
    }
    return report;
}

std::optional<SimReport>
SimReport::fromJsonString(std::string_view text, std::string *err)
{
    const auto json = Json::parse(text, err);
    if (!json)
        return std::nullopt;
    return fromJson(*json, err);
}

namespace
{

bool
isScalar(const Json &v)
{
    return v.isBool() || v.isNumber() || v.isString();
}

void
collectScalarKeys(const Json &obj, const std::string &prefix,
                  std::set<std::string> &keys)
{
    if (!obj.isObject())
        return;
    for (const auto &[k, v] : obj.fields()) {
        if (isScalar(v))
            keys.insert(prefix + k);
    }
}

std::string
csvCell(const Json &v)
{
    std::string s;
    if (v.isString()) {
        s = v.asString();
    } else if (v.isBool()) {
        s = v.asBool() ? "1" : "0";
    } else if (v.isNumber()) {
        s = v.dump();
    }
    if (s.find_first_of(",\"\n") != std::string::npos) {
        std::string quoted = "\"";
        for (const char c : s) {
            if (c == '"')
                quoted += '"';
            quoted += c;
        }
        quoted += '"';
        return quoted;
    }
    return s;
}

const Json &
lookupCsvKey(const RunReport &run, const std::string &key)
{
    static const Json null;
    const auto dot = key.find('.');
    if (dot == std::string::npos)
        return null;
    const std::string section = key.substr(0, dot);
    const std::string name = key.substr(dot + 1);
    if (section == "config")
        return run.config.at(name);
    if (section == "derived")
        return run.derived.at(name);
    if (section == "metrics")
        return run.metrics.at(name);
    return null;
}

} // namespace

std::string
SimReport::toCsv() const
{
    std::set<std::string> keys;
    for (const auto &run : runs) {
        collectScalarKeys(run.config, "config.", keys);
        collectScalarKeys(run.derived, "derived.", keys);
        collectScalarKeys(run.metrics, "metrics.", keys);
    }

    std::ostringstream os;
    os << "workload";
    for (const auto &k : keys)
        os << ',' << k;
    os << '\n';
    for (const auto &run : runs) {
        os << csvCell(Json(run.workload));
        for (const auto &k : keys)
            os << ',' << csvCell(lookupCsvKey(run, k));
        os << '\n';
    }
    return os.str();
}

bool
SimReport::writeJsonFile(const std::string &path, std::string *err) const
{
    std::ofstream out(path);
    if (!out.good()) {
        if (err)
            *err = "cannot open '" + path + "' for writing";
        return false;
    }
    out << toJsonString();
    out.flush();
    if (!out.good()) {
        if (err)
            *err = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

} // namespace ccr::obs
