/**
 * @file
 * MetricRegistry: the single source of truth for simulation telemetry.
 *
 * Metrics are named with dotted hierarchical paths ("crb.hits",
 * "ccr.pipe.stall.fetch.icache") and come in three kinds: counters
 * (monotonic uint64), gauges (double-valued instantaneous readings),
 * and histograms (fixed-bucket, from support/stats). Components either
 * cache a `Counter &` at attach time and bump it on the hot path, or
 * fold plain member tallies in at end of run — both end in the same
 * registry, which snapshots to deterministic JSON for SimReport.
 *
 * References returned by counter()/gauge()/histogram() stay valid for
 * the registry's lifetime (node-based storage); reset() zeroes values
 * without invalidating them.
 */

#ifndef CCR_OBS_METRICS_HH
#define CCR_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "obs/json.hh"
#include "support/stats.hh"

namespace ccr::obs
{

/** A double-valued instantaneous metric. */
class Gauge
{
  public:
    Gauge() = default;

    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Find-or-create. A name registered as one kind must not be
     *  re-registered as another. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** Histogram shape parameters apply only on first registration. */
    Histogram &histogram(const std::string &name, std::int64_t lo,
                         std::int64_t hi, std::size_t nbuckets);

    bool has(const std::string &name) const;

    /** Counter value by name; 0 when absent or not a counter. */
    std::uint64_t get(const std::string &name) const;
    /** Gauge value by name; 0.0 when absent or not a gauge. */
    double getGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /** Zero every metric, keeping registrations (and references). */
    void reset();
    /** Drop every metric (invalidates references). */
    void clear();

    std::size_t size() const { return metrics_.size(); }

    /**
     * Snapshot as a flat JSON object: counters as unsigned integers,
     * gauges as doubles, histograms as structured sub-objects. Key
     * order is sorted, so the output is deterministic.
     */
    Json toJson() const;

    /** Fold a snapshot of @p other in under @p prefix ("base" turns
     *  "pipe.cycles" into "base.pipe.cycles"). Counters add; gauges
     *  and histograms overwrite/merge by name. */
    void merge(const MetricRegistry &other, const std::string &prefix);

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram
    };

    struct Metric
    {
        Kind kind;
        Counter counter;
        Gauge gauge;
        std::unique_ptr<Histogram> histogram;
    };

    std::map<std::string, std::unique_ptr<Metric>> metrics_;

    Metric &findOrCreate(const std::string &name, Kind kind);
};

} // namespace ccr::obs

#endif // CCR_OBS_METRICS_HH
