/**
 * @file
 * Low-overhead event tracing for the observability layer.
 *
 * TraceSink is a fixed-capacity ring buffer of small POD events. The
 * buffer is preallocated once, so emitting on the simulation hot path
 * never allocates; when full, the oldest events are overwritten and
 * counted as dropped. Events can be drained in order and flushed as
 * newline-delimited JSON (one event object per line).
 *
 * Tracing is opt-in via RunConfig::telemetry — components hold a
 * `TraceSink *` that is null when telemetry is off, keeping the fast
 * path to a single predictable branch.
 */

#ifndef CCR_OBS_TRACE_HH
#define CCR_OBS_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ccr::obs
{

/** Telemetry knob carried by RunConfig (off by default: the fast path
 *  stays allocation-free and branch-predictable). */
struct TelemetryOptions
{
    /** Master switch: attach trace sinks and interval snapshots. */
    bool enabled = false;

    /** Ring-buffer capacity in events. */
    std::size_t traceCapacity = 65536;

    /** Emit an Interval event every N committed instructions
     *  (0 = none). */
    std::uint64_t intervalInsts = 0;
};

enum class TraceEventKind : std::uint8_t
{
    ReuseHit,
    ReuseMiss,
    Invalidate,
    Evict,
    MemoCommit,
    MemoAbort,
    Interval
};

/** One traced event. Payload meaning depends on kind:
 *  ReuseHit/ReuseMiss: a = inputs read, b = outputs written;
 *  Evict: a = evicted region; Interval: a = insts, b = cycles. */
struct TraceEvent
{
    std::uint64_t seq = 0;
    TraceEventKind kind = TraceEventKind::ReuseHit;
    std::uint32_t region = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

class TraceSink
{
  public:
    explicit TraceSink(std::size_t capacity);

    /** Record one event; O(1), never allocates. */
    void
    emit(TraceEventKind kind, std::uint32_t region, std::uint64_t a = 0,
         std::uint64_t b = 0)
    {
        TraceEvent &e = ring_[head_];
        e.seq = nextSeq_++;
        e.kind = kind;
        e.region = region;
        e.a = a;
        e.b = b;
        head_ = (head_ + 1) % ring_.size();
        if (size_ < ring_.size())
            ++size_;
        else
            ++dropped_;
    }

    /** Events currently buffered, oldest first. */
    std::vector<TraceEvent> events() const;

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return ring_.size(); }
    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }
    /** Total events ever emitted. */
    std::uint64_t emitted() const { return nextSeq_; }

    void clear();

    /** Write buffered events as newline-delimited JSON, oldest first.
     *  Does not clear the buffer. */
    void flushNdjson(std::ostream &os) const;

    static const char *kindName(TraceEventKind kind);

  private:
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace ccr::obs

#endif // CCR_OBS_TRACE_HH
