#include "obs/metrics.hh"

#include "support/logging.hh"

namespace ccr::obs
{

MetricRegistry::Metric &
MetricRegistry::findOrCreate(const std::string &name, Kind kind)
{
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
        auto m = std::make_unique<Metric>();
        m->kind = kind;
        it = metrics_.emplace(name, std::move(m)).first;
    }
    ccr_assert(it->second->kind == kind,
               "metric '", name, "' re-registered as a different kind");
    return *it->second;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    return findOrCreate(name, Kind::Counter).counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    return findOrCreate(name, Kind::Gauge).gauge;
}

Histogram &
MetricRegistry::histogram(const std::string &name, std::int64_t lo,
                          std::int64_t hi, std::size_t nbuckets)
{
    Metric &m = findOrCreate(name, Kind::Histogram);
    if (!m.histogram)
        m.histogram = std::make_unique<Histogram>(lo, hi, nbuckets);
    return *m.histogram;
}

bool
MetricRegistry::has(const std::string &name) const
{
    return metrics_.count(name) != 0;
}

std::uint64_t
MetricRegistry::get(const std::string &name) const
{
    const auto it = metrics_.find(name);
    if (it == metrics_.end() || it->second->kind != Kind::Counter)
        return 0;
    return it->second->counter.value();
}

double
MetricRegistry::getGauge(const std::string &name) const
{
    const auto it = metrics_.find(name);
    if (it == metrics_.end() || it->second->kind != Kind::Gauge)
        return 0.0;
    return it->second->gauge.value();
}

const Histogram *
MetricRegistry::findHistogram(const std::string &name) const
{
    const auto it = metrics_.find(name);
    if (it == metrics_.end() || it->second->kind != Kind::Histogram)
        return nullptr;
    return it->second->histogram.get();
}

void
MetricRegistry::reset()
{
    for (auto &[name, m] : metrics_) {
        switch (m->kind) {
          case Kind::Counter: m->counter.reset(); break;
          case Kind::Gauge: m->gauge.reset(); break;
          case Kind::Histogram:
            if (m->histogram)
                m->histogram->reset();
            break;
        }
    }
}

void
MetricRegistry::clear()
{
    metrics_.clear();
}

Json
MetricRegistry::toJson() const
{
    Json out = Json::object();
    for (const auto &[name, m] : metrics_) {
        switch (m->kind) {
          case Kind::Counter:
            out[name] = Json(m->counter.value());
            break;
          case Kind::Gauge:
            out[name] = Json(m->gauge.value());
            break;
          case Kind::Histogram: {
            const Histogram &h = *m->histogram;
            Json hj = Json::object();
            hj["kind"] = Json("histogram");
            hj["samples"] = Json(h.samples());
            hj["mean"] = Json(h.mean());
            hj["underflow"] = Json(h.underflow());
            hj["overflow"] = Json(h.overflow());
            Json buckets = Json::array();
            for (const auto b : h.buckets())
                buckets.push(Json(b));
            hj["buckets"] = std::move(buckets);
            out[name] = std::move(hj);
            break;
          }
        }
    }
    return out;
}

void
MetricRegistry::merge(const MetricRegistry &other,
                      const std::string &prefix)
{
    const std::string dot = prefix.empty() ? "" : prefix + ".";
    for (const auto &[name, m] : other.metrics_) {
        const std::string full = dot + name;
        switch (m->kind) {
          case Kind::Counter:
            counter(full) += m->counter.value();
            break;
          case Kind::Gauge:
            gauge(full).set(m->gauge.value());
            break;
          case Kind::Histogram: {
            // Merged histograms copy the source shape wholesale; a
            // pre-existing histogram of a different shape keeps its
            // own and folds in only via record() by the caller.
            Metric &dst = findOrCreate(full, Kind::Histogram);
            dst.histogram = std::make_unique<Histogram>(*m->histogram);
            break;
          }
        }
    }
}

} // namespace ccr::obs
