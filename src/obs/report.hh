/**
 * @file
 * SimReport: the machine-readable result surface of a CCR experiment.
 *
 * A SimReport aggregates one RunReport per experiment point; each
 * RunReport carries the workload name, a flattened config snapshot,
 * the merged metric snapshot (see obs/metrics.hh for the naming
 * scheme), derived metrics, and per-region attribution. Reports
 * serialize to schema-versioned JSON (`toJsonString`) and to CSV
 * (`toCsv`, one row per run over the sorted union of scalar keys), and
 * parse back (`fromJsonString`) for round-trip tooling.
 *
 * The derived-metric helpers below are the single home for the
 * zero-division conventions previously duplicated across
 * TimingResult::ipc() and RunResult::speedup(): a ratio with a zero
 * denominator is 0.0, and an elimination fraction is clamped to
 * [0, 1]. Legacy accessors delegate here.
 */

#ifndef CCR_OBS_REPORT_HH
#define CCR_OBS_REPORT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/metrics.hh"

namespace ccr::obs
{

/** Version of the SimReport JSON schema. Bump on any change to field
 *  names or meanings; fromJson rejects reports from a newer schema. */
constexpr int kSchemaVersion = 1;
constexpr const char *kSchemaName = "ccr.simreport";

// -- Derived-metric conventions (single source of truth) ---------------

/** num/den with the project-wide convention ratio(x, 0) == 0. */
inline double
ratio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

/** Instructions per cycle; 0 when no cycles elapsed. */
inline double
ipc(std::uint64_t insts, std::uint64_t cycles)
{
    return ratio(static_cast<double>(insts),
                 static_cast<double>(cycles));
}

/** base/ccr cycle ratio; 0 when the CCR run recorded no cycles. */
inline double
speedup(std::uint64_t base_cycles, std::uint64_t ccr_cycles)
{
    return ratio(static_cast<double>(base_cycles),
                 static_cast<double>(ccr_cycles));
}

/** Fraction of base dynamic instructions eliminated, clamped to
 *  [0, 1]; 0 when the base executed nothing. */
inline double
fractionEliminated(std::uint64_t base_insts, std::uint64_t ccr_insts)
{
    if (base_insts == 0 || ccr_insts >= base_insts)
        return 0.0;
    return static_cast<double>(base_insts - ccr_insts)
           / static_cast<double>(base_insts);
}

// -- Report structure --------------------------------------------------

/** Telemetry for one experiment point. */
struct RunReport
{
    std::string workload;

    /** Flattened configuration snapshot (JSON object). */
    Json config = Json::object();

    /** Metric snapshot (JSON object, from MetricRegistry::toJson). */
    Json metrics = Json::object();

    /** Derived metrics (JSON object of doubles). */
    Json derived = Json::object();

    /** Per-region attribution: array of objects sorted by region id. */
    Json regions = Json::array();

    /** Scalar metric lookup: `metrics[name]` as uint64, 0 when the
     *  key is absent or not a number. */
    std::uint64_t metric(const std::string &name) const;

    /** Hits attributed to region @p id in the per-region array; 0
     *  when the region is absent. */
    std::uint64_t regionHits(std::uint64_t id) const
    {
        for (const Json &r : regions.items())
            if (r.at("id").asUint() == id)
                return r.at("hits").asUint();
        return 0;
    }

    Json toJson() const;
    static std::optional<RunReport> fromJson(const Json &json,
                                             std::string *err = nullptr);
};

/** The aggregate report for a whole experiment (one or many runs). */
class SimReport
{
  public:
    std::string generator = "ccr_sim";
    std::vector<RunReport> runs;

    Json toJson() const;
    std::string toJsonString(int indent = 2) const;

    /**
     * CSV over the sorted union of scalar keys across all runs:
     * column "workload", then "config.*", "derived.*", "metrics.*".
     * Non-scalar values (histograms, region arrays) are omitted;
     * absent keys render as empty cells.
     */
    std::string toCsv() const;

    static std::optional<SimReport> fromJson(const Json &json,
                                             std::string *err = nullptr);
    static std::optional<SimReport>
    fromJsonString(std::string_view text, std::string *err = nullptr);

    /** Write pretty-printed JSON; false (with @p err) on I/O error. */
    bool writeJsonFile(const std::string &path,
                       std::string *err = nullptr) const;
};

} // namespace ccr::obs

#endif // CCR_OBS_REPORT_HH
