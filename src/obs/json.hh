/**
 * @file
 * Minimal JSON value type for the observability layer: deterministic
 * serialization (object keys are kept in sorted order via std::map),
 * exact 64-bit integer round-trips for counters, and a small
 * recursive-descent parser used by the SimReport round-trip tests and
 * by tools that consume emitted reports. No external dependencies.
 */

#ifndef CCR_OBS_JSON_HH
#define CCR_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ccr::obs
{

/** A JSON value. Integers and unsigned integers are kept distinct
 *  from doubles so uint64 counters survive a dump/parse round trip. */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Uint,
        Double,
        String,
        Array,
        Object
    };

    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() : kind_(Kind::Null) {}
    Json(std::nullptr_t) : kind_(Kind::Null) {}
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(int v) : kind_(Kind::Int), int_(v) {}
    Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Json(unsigned v) : kind_(Kind::Uint), uint_(v) {}
    Json(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}
    Json(double v) : kind_(Kind::Double), dbl_(v) {}
    Json(const char *s) : kind_(Kind::String), str_(s) {}
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Json(Array a) : kind_(Kind::Array), arr_(std::move(a)) {}
    Json(Object o) : kind_(Kind::Object), obj_(std::move(o)) {}

    static Json array() { return Json(Array{}); }
    static Json object() { return Json(Object{}); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Uint
               || kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    /** Numeric accessors convert between the three number kinds. */
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    double asDouble() const;
    const std::string &asString() const { return str_; }

    Array &items() { return arr_; }
    const Array &items() const { return arr_; }
    Object &fields() { return obj_; }
    const Object &fields() const { return obj_; }

    /** Object member access; find-or-create on the mutable overload. */
    Json &operator[](const std::string &key);
    /** Null when absent (or not an object). */
    const Json &at(const std::string &key) const;

    /** Array append. */
    void push(Json v) { arr_.push_back(std::move(v)); }

    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const { return !(*this == other); }

    /**
     * Serialize. @p indent < 0 renders compact (no whitespace);
     * otherwise pretty-printed with @p indent spaces per level.
     * Output is deterministic: object keys iterate in sorted order.
     */
    void dump(std::ostream &os, int indent = -1) const;
    std::string dump(int indent = -1) const;

    /**
     * Parse @p text. Returns nullopt and sets @p err (when non-null)
     * with a byte offset and message on malformed input. Trailing
     * non-whitespace after the value is an error.
     */
    static std::optional<Json> parse(std::string_view text,
                                     std::string *err = nullptr);

  private:
    Kind kind_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;

    void dumpImpl(std::ostream &os, int indent, int depth) const;
};

} // namespace ccr::obs

#endif // CCR_OBS_JSON_HH
