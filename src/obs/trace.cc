#include "obs/trace.hh"

#include "support/logging.hh"

namespace ccr::obs
{

TraceSink::TraceSink(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity)
{}

std::vector<TraceEvent>
TraceSink::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(size_);
    // Oldest event sits at head_ when the ring has wrapped, else at 0.
    const std::size_t start =
        size_ == ring_.size() ? head_ : (head_ + ring_.size() - size_)
                                            % ring_.size();
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

void
TraceSink::clear()
{
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    nextSeq_ = 0;
}

const char *
TraceSink::kindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::ReuseHit: return "reuse_hit";
      case TraceEventKind::ReuseMiss: return "reuse_miss";
      case TraceEventKind::Invalidate: return "invalidate";
      case TraceEventKind::Evict: return "evict";
      case TraceEventKind::MemoCommit: return "memo_commit";
      case TraceEventKind::MemoAbort: return "memo_abort";
      case TraceEventKind::Interval: return "interval";
    }
    return "unknown";
}

void
TraceSink::flushNdjson(std::ostream &os) const
{
    for (const auto &e : events()) {
        os << "{\"seq\":" << e.seq << ",\"kind\":\""
           << kindName(e.kind) << "\",\"region\":" << e.region
           << ",\"a\":" << e.a << ",\"b\":" << e.b << "}\n";
    }
}

} // namespace ccr::obs
