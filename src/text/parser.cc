#include "text/parser.hh"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>

#include "ir/printer.hh"
#include "text/lexer.hh"

namespace ccr::text
{

namespace
{

using namespace ccr::ir;

/** Hard caps so hostile input cannot balloon memory: block ids and
 *  global sizes are bounded, diagnostics stop accumulating past a
 *  budget. */
constexpr std::uint64_t kMaxBlockId = 1u << 20;
constexpr std::uint64_t kMaxGlobalBytes = 1u << 30;
constexpr std::size_t kMaxErrors = 100;

const std::map<std::string_view, Opcode> &
mnemonicTable()
{
    static const auto table = [] {
        std::map<std::string_view, Opcode> t;
        for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
            const auto op = static_cast<Opcode>(i);
            // Load/Store never appear bare: they carry a width suffix
            // and are matched by prefix before the table lookup.
            if (op == Opcode::Load || op == Opcode::Store)
                continue;
            t.emplace(opcodeName(op), op);
        }
        return t;
    }();
    return table;
}

/** Parse the decimal digits of "r7" / "B12" style names. */
bool
parseIndexSuffix(const std::string &text, std::size_t prefix,
                 std::uint64_t &out)
{
    if (text.size() <= prefix)
        return false;
    std::uint64_t v = 0;
    for (std::size_t i = prefix; i < text.size(); ++i) {
        const char c = text[i];
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
        if (v > kMaxBlockId * 16)
            return false;
    }
    out = v;
    return true;
}

std::string
tokDesc(const Token &t)
{
    switch (t.kind) {
      case TokKind::End: return "end of input";
      case TokKind::Newline: return "end of line";
      case TokKind::Ident: return "'" + t.text + "'";
      case TokKind::Int: return "integer " + std::to_string(t.intValue);
      case TokKind::Str: return "string";
      case TokKind::HexBytes: return "byte string";
      case TokKind::ExtMarker: return "<" + t.text + ">";
      case TokKind::LParen: return "'('";
      case TokKind::RParen: return "')'";
      case TokKind::LBracket: return "'['";
      case TokKind::RBracket: return "']'";
      case TokKind::Comma: return "','";
      case TokKind::Colon: return "':'";
      case TokKind::Equals: return "'='";
      case TokKind::At: return "'@'";
      case TokKind::Hash: return "'#'";
      case TokKind::Plus: return "'+'";
      case TokKind::Arrow: return "'->'";
      case TokKind::Error: return "invalid token";
    }
    return "token";
}

class Parser
{
  public:
    explicit Parser(std::string_view src) : lex_(src) {}

    ParseResult
    run()
    {
        advance();
        skipNewlines();
        parseModuleHeader();
        while (!fatal_) {
            skipNewlines();
            if (at(TokKind::End))
                break;
            if (at(TokKind::Ident) && tok_.text == "entry")
                parseEntry();
            else if (at(TokKind::Ident) && tok_.text == "global")
                parseGlobal();
            else if (at(TokKind::Ident) && tok_.text == "func")
                parseFunction();
            else {
                error(tok_.loc,
                      "expected 'entry', 'global', or 'func', got " +
                          tokDesc(tok_));
                syncLine();
            }
        }
        finalizeModule();
        checkPragmas();

        ParseResult r;
        r.errors = std::move(errors_);
        r.pragmas = lex_.pragmas();
        r.instLocs = std::move(instLocs_);
        if (!ir::hasErrors(r.errors))
            r.module = std::move(mod_);
        return r;
    }

  private:
    // ----- token plumbing -------------------------------------------

    void
    advance()
    {
        tok_ = lex_.next();
        if (tok_.kind == TokKind::Error && !suppress_)
            error(tok_.loc, tok_.text);
    }

    bool at(TokKind k) const { return tok_.kind == k; }
    bool atEol() const { return at(TokKind::Newline) || at(TokKind::End); }

    bool
    expect(TokKind k, const char *what)
    {
        if (at(k))
            return true;
        // Lexical errors were already reported by advance().
        if (!at(TokKind::Error))
            error(tok_.loc,
                  std::string("expected ") + what + ", got " + tokDesc(tok_));
        return false;
    }

    /** Skip to the end of the current line without reporting further
     *  lexical errors on it. */
    void
    syncLine()
    {
        suppress_ = true;
        while (!atEol())
            advance();
        suppress_ = false;
    }

    void
    skipNewlines()
    {
        while (at(TokKind::Newline))
            advance();
    }

    void
    error(SourceLoc loc, std::string msg)
    {
        if (fatal_)
            return;
        if (numErrors_ >= kMaxErrors) {
            errors_.push_back(makeError("parse.too-many-errors",
                                        "too many errors; giving up",
                                        loc));
            ++numErrors_;
            fatal_ = true;
            return;
        }
        errors_.push_back(
            makeError("parse.syntax", std::move(msg), loc));
        ++numErrors_;
    }

    void
    warn(SourceLoc loc, std::string rule, std::string msg)
    {
        if (fatal_)
            return;
        errors_.push_back(
            makeWarn(std::move(rule), std::move(msg), loc));
    }

    /** Unknown `;!` directive keys used to be silently accepted; warn
     *  so typos ("outpt") don't quietly drop a workload directive. */
    void
    checkPragmas()
    {
        for (const auto &p : lex_.pragmas()) {
            const std::string_view key = directiveKey(p.text);
            if (key.empty()) {
                warn(p.loc, "parse.pragma.empty",
                     "empty ';!' directive");
            } else if (!isKnownDirectiveKey(key)) {
                warn(p.loc, "parse.pragma.unknown",
                     "unknown ';!' directive key '" + std::string(key) +
                         "' (known: workload, output, set, fill, "
                         "region)");
            }
        }
    }

    /** End-of-statement: anything left on the line is an error. */
    void
    endStatement()
    {
        if (!atEol()) {
            if (!at(TokKind::Error))
                error(tok_.loc, "unexpected " + tokDesc(tok_) +
                                    " at end of statement");
            syncLine();
        }
    }

    // ----- shared operand parsers -----------------------------------

    bool
    parseUInt(std::uint64_t max, const char *what, std::uint64_t &out)
    {
        if (!expect(TokKind::Int, what))
            return false;
        if (tok_.intValue < 0 ||
            static_cast<std::uint64_t>(tok_.intValue) > max) {
            error(tok_.loc, std::string(what) + " out of range");
            return false;
        }
        out = static_cast<std::uint64_t>(tok_.intValue);
        advance();
        return true;
    }

    bool
    parseKeyword(const char *kw)
    {
        if (at(TokKind::Ident) && tok_.text == kw) {
            advance();
            return true;
        }
        error(tok_.loc, std::string("expected '") + kw + "', got " +
                            tokDesc(tok_));
        return false;
    }

    /** `@"name"` reference; leaves the unescaped name in @p out. */
    bool
    parseNameRef(std::string &out, SourceLoc &loc)
    {
        if (!expect(TokKind::At, "'@'"))
            return false;
        loc = tok_.loc;
        advance();
        if (!expect(TokKind::Str, "quoted name"))
            return false;
        out = tok_.text;
        loc = tok_.loc;
        advance();
        return true;
    }

    // ----- per-function state ---------------------------------------

    struct FuncCtx
    {
        Function *f = nullptr;
        SourceLoc headerLoc;
        std::vector<bool> defined;
        std::vector<std::pair<BlockId, SourceLoc>> referenced;
        BlockId cur = kNoBlock;
        bool reportedNoBlock = false;
    };

    bool
    ensureBlock(FuncCtx &fc, std::uint64_t id, SourceLoc loc)
    {
        if (id >= kMaxBlockId) {
            error(loc, "block id B" + std::to_string(id) + " too large");
            return false;
        }
        while (fc.f->numBlocks() <= id)
            fc.f->newBlock();
        if (fc.defined.size() <= id)
            fc.defined.resize(id + 1, false);
        return true;
    }

    bool
    parseReg(FuncCtx &fc, Reg &out)
    {
        if (!expect(TokKind::Ident, "register"))
            return false;
        if (tok_.text == "_") {
            out = kNoReg;
            advance();
            return true;
        }
        std::uint64_t idx = 0;
        if (tok_.text[0] != 'r' || !parseIndexSuffix(tok_.text, 1, idx)) {
            error(tok_.loc, "expected register, got " + tokDesc(tok_));
            return false;
        }
        if (idx >= static_cast<std::uint64_t>(fc.f->numRegs())) {
            error(tok_.loc, "register r" + std::to_string(idx) +
                                " out of range (function declares " +
                                std::to_string(fc.f->numRegs()) +
                                " registers)");
            return false;
        }
        out = static_cast<Reg>(idx);
        advance();
        return true;
    }

    bool
    parseBlockRef(FuncCtx &fc, BlockId &out)
    {
        if (!expect(TokKind::Ident, "block label"))
            return false;
        std::uint64_t idx = 0;
        if (tok_.text[0] != 'B' || !parseIndexSuffix(tok_.text, 1, idx)) {
            error(tok_.loc, "expected block label, got " + tokDesc(tok_));
            return false;
        }
        if (!ensureBlock(fc, idx, tok_.loc))
            return false;
        out = static_cast<BlockId>(idx);
        fc.referenced.emplace_back(out, tok_.loc);
        advance();
        return true;
    }

    bool
    parseImm(std::int64_t &out)
    {
        if (!expect(TokKind::Int, "immediate"))
            return false;
        out = tok_.intValue;
        advance();
        return true;
    }

    /** Second ALU operand: register or immediate (sets srcImm). */
    bool
    parseRegOrImm(FuncCtx &fc, Inst &inst, Reg Inst::*regField)
    {
        if (at(TokKind::Int)) {
            inst.srcImm = true;
            inst.imm = tok_.intValue;
            advance();
            return true;
        }
        return parseReg(fc, inst.*regField);
    }

    bool
    parseRegionId(Inst &inst)
    {
        if (!expect(TokKind::Hash, "'#'"))
            return false;
        advance();
        std::uint64_t id = 0;
        if (!parseUInt(kNoRegion - 1, "region id", id))
            return false;
        inst.regionId = static_cast<RegionId>(id);
        if (!sawRegion_ || inst.regionId > maxRegion_)
            maxRegion_ = inst.regionId;
        sawRegion_ = true;
        return true;
    }

    bool
    parseGlobalRef(Inst &inst)
    {
        std::string name;
        SourceLoc loc;
        if (!parseNameRef(name, loc))
            return false;
        const Global *g = mod_->findGlobal(name);
        if (!g) {
            error(loc, "unknown global " + quoteName(name));
            return false;
        }
        inst.globalId = g->id;
        return true;
    }

    // ----- statements -----------------------------------------------

    void
    parseModuleHeader()
    {
        if (at(TokKind::Ident) && tok_.text == "module") {
            advance();
            if (expect(TokKind::Str, "quoted module name")) {
                mod_ = std::make_unique<Module>(tok_.text);
                advance();
                endStatement();
                return;
            }
            syncLine();
        } else {
            error(tok_.loc, "expected 'module \"name\"' header, got " +
                                tokDesc(tok_));
            syncLine();
        }
        mod_ = std::make_unique<Module>("<error>");
    }

    void
    parseEntry()
    {
        const SourceLoc loc = tok_.loc;
        advance(); // 'entry'
        std::string name;
        SourceLoc nameLoc;
        if (!parseNameRef(name, nameLoc)) {
            syncLine();
            return;
        }
        if (haveEntry_) {
            error(loc, "duplicate 'entry' directive");
            syncLine();
            return;
        }
        haveEntry_ = true;
        entryName_ = std::move(name);
        entryLoc_ = nameLoc;
        endStatement();
    }

    void
    parseGlobal()
    {
        advance(); // 'global'
        std::string name;
        SourceLoc nameLoc;
        std::uint64_t size = 0;
        if (!parseNameRef(name, nameLoc) ||
            !expect(TokKind::LBracket, "'['")) {
            syncLine();
            return;
        }
        advance(); // '['
        if (!parseUInt(kMaxGlobalBytes, "global size", size) ||
            !parseKeyword("bytes") || !expect(TokKind::RBracket, "']'")) {
            syncLine();
            return;
        }
        advance(); // ']'

        bool isConst = false;
        if (at(TokKind::Ident) && tok_.text == "const") {
            isConst = true;
            advance();
        }
        std::vector<std::uint8_t> init;
        bool haveInit = false;
        if (at(TokKind::Ident) && tok_.text == "init") {
            advance();
            if (!expect(TokKind::Equals, "'='")) {
                syncLine();
                return;
            }
            advance();
            if (!expect(TokKind::HexBytes, "x\"...\" byte string")) {
                syncLine();
                return;
            }
            init.assign(tok_.text.begin(), tok_.text.end());
            haveInit = true;
            advance();
        }

        if (mod_->findGlobal(name)) {
            error(nameLoc, "duplicate global " + quoteName(name));
            syncLine();
            return;
        }
        if (haveInit && init.size() > size) {
            error(nameLoc, "init data (" + std::to_string(init.size()) +
                               " bytes) exceeds global size (" +
                               std::to_string(size) + " bytes)");
            syncLine();
            return;
        }
        Global &g = mod_->addGlobal(name, size, isConst);
        g.init = std::move(init);
        endStatement();
    }

    void
    parseFunction()
    {
        const SourceLoc funcLoc = tok_.loc;
        advance(); // 'func'
        std::string name;
        SourceLoc nameLoc;
        std::uint64_t params = 0, regs = 0, entry = 0;
        if (!parseNameRef(name, nameLoc) ||
            !expect(TokKind::LParen, "'('")) {
            syncLine();
            return;
        }
        advance(); // '('
        if (!parseUInt(kNoReg - 1, "parameter count", params) ||
            !parseKeyword("params") || !expect(TokKind::Comma, "','")) {
            syncLine();
            return;
        }
        advance(); // ','
        if (!parseUInt(kNoReg - 1, "register count", regs) ||
            !parseKeyword("regs") || !expect(TokKind::RParen, "')'")) {
            syncLine();
            return;
        }
        advance(); // ')'
        if (regs < params) {
            error(nameLoc, "function declares fewer registers than "
                           "parameters");
            syncLine();
            return;
        }
        if (!parseKeyword("entry") || !expect(TokKind::Equals, "'='")) {
            syncLine();
            return;
        }
        advance(); // '='

        if (mod_->findFunction(name)) {
            error(nameLoc, "duplicate function " + quoteName(name));
            // Parse the body anyway (for its diagnostics) into a
            // placeholder; the errored module is discarded at the end.
            name += "$dup" + std::to_string(errors_.size());
        }

        FuncCtx fc;
        fc.f = &mod_->addFunction(name, static_cast<int>(params));
        fc.headerLoc = funcLoc;
        for (std::uint64_t r = params; r < regs; ++r)
            fc.f->newReg();

        BlockId entryBlock = kNoBlock;
        if (parseBlockRef(fc, entryBlock)) {
            fc.f->setEntry(entryBlock);
            entry = entryBlock;
        }
        (void)entry;
        endStatement();

        // Body: block labels and instructions until the next top-level
        // keyword or end of input.
        while (!fatal_) {
            skipNewlines();
            if (at(TokKind::End))
                break;
            if (at(TokKind::Ident) &&
                (tok_.text == "func" || tok_.text == "global" ||
                 tok_.text == "entry" || tok_.text == "module"))
                break;
            parseBlockLabelOrInst(fc);
        }
        finalizeFunction(fc);
    }

    void
    parseBlockLabelOrInst(FuncCtx &fc)
    {
        std::uint64_t idx = 0;
        if (at(TokKind::Ident) && tok_.text[0] == 'B' &&
            parseIndexSuffix(tok_.text, 1, idx)) {
            const SourceLoc loc = tok_.loc;
            advance();
            if (!expect(TokKind::Colon, "':' after block label")) {
                syncLine();
                return;
            }
            advance();
            if (!ensureBlock(fc, idx, loc)) {
                syncLine();
                return;
            }
            if (fc.defined[idx]) {
                error(loc, "duplicate block label B" + std::to_string(idx));
                syncLine();
                return;
            }
            fc.defined[idx] = true;
            fc.cur = static_cast<BlockId>(idx);
            endStatement();
            return;
        }
        parseInst(fc);
    }

    void
    parseInst(FuncCtx &fc)
    {
        if (!expect(TokKind::Ident, "instruction or block label")) {
            syncLine();
            return;
        }
        const Token mnemonic = tok_;
        advance();

        Inst inst;
        if (!parseInstBody(fc, mnemonic, inst)) {
            syncLine();
            return;
        }
        while (at(TokKind::ExtMarker)) {
            if (tok_.text == "live-out")
                inst.ext.liveOut = true;
            else if (tok_.text == "region-end")
                inst.ext.regionEnd = true;
            else if (tok_.text == "region-exit")
                inst.ext.regionExit = true;
            else if (tok_.text == "det")
                inst.ext.determinable = true;
            else {
                error(tok_.loc,
                      "unknown extension marker <" + tok_.text + ">");
                syncLine();
                return;
            }
            advance();
        }
        if (fc.cur == kNoBlock) {
            if (!fc.reportedNoBlock) {
                error(mnemonic.loc,
                      "instruction outside a block (missing 'B<n>:' label)");
                fc.reportedNoBlock = true;
            }
            syncLine();
            return;
        }
        inst.uid = fc.f->newUid();
        recordLoc(fc, inst.uid, mnemonic.loc);
        auto &insts = fc.f->block(fc.cur).insts();
        insts.push_back(inst);
        if (inst.op == Opcode::Call)
            callFixups_.push_back({fc.f->id(), fc.cur, insts.size() - 1,
                                   pendingCallee_, pendingCalleeLoc_});
        endStatement();
    }

    /** Mnemonic dispatch; returns false (after reporting) on any
     *  operand error. On success the token stream sits at the ext
     *  markers / end of line. */
    bool
    parseInstBody(FuncCtx &fc, const Token &mnemonic, Inst &inst)
    {
        const std::string &name = mnemonic.text;

        // load / store carry a width suffix: load8, loadu4, store2...
        if (name.rfind("load", 0) == 0 || name.rfind("store", 0) == 0) {
            const bool isLoad = name[0] == 'l';
            std::size_t p = isLoad ? 4 : 5;
            inst.op = isLoad ? Opcode::Load : Opcode::Store;
            if (isLoad && p < name.size() && name[p] == 'u') {
                inst.unsignedLoad = true;
                ++p;
            }
            const std::string suffix = name.substr(p);
            if (suffix == "1")
                inst.size = MemSize::Byte;
            else if (suffix == "2")
                inst.size = MemSize::Half;
            else if (suffix == "4")
                inst.size = MemSize::Word;
            else if (suffix == "8")
                inst.size = MemSize::Dword;
            else {
                error(mnemonic.loc, "unknown instruction '" + name +
                                        "' (width must be 1, 2, 4, or 8)");
                return false;
            }
            if (isLoad)
                return parseReg(fc, inst.dst) &&
                       expectConsume(TokKind::Comma, "','") &&
                       parseMemOperand(fc, inst);
            return parseMemOperand(fc, inst) &&
                   expectConsume(TokKind::Comma, "','") &&
                   parseReg(fc, inst.src2);
        }

        const auto &table = mnemonicTable();
        const auto it = table.find(name);
        if (it == table.end()) {
            error(mnemonic.loc, "unknown instruction '" + name + "'");
            return false;
        }
        inst.op = it->second;

        switch (inst.op) {
          case Opcode::Nop:
          case Opcode::Halt:
            return true;
          case Opcode::MovI:
            return parseReg(fc, inst.dst) &&
                   expectConsume(TokKind::Comma, "','") &&
                   parseImm(inst.imm);
          case Opcode::Mov:
          case Opcode::I2F:
          case Opcode::F2I:
            return parseReg(fc, inst.dst) &&
                   expectConsume(TokKind::Comma, "','") &&
                   parseReg(fc, inst.src1);
          case Opcode::MovGA:
            return parseReg(fc, inst.dst) &&
                   expectConsume(TokKind::Comma, "','") &&
                   parseGlobalRef(inst);
          case Opcode::Alloc:
            return parseReg(fc, inst.dst) &&
                   expectConsume(TokKind::Comma, "','") &&
                   parseRegOrImm(fc, inst, &Inst::src1);
          case Opcode::Br:
            return parseReg(fc, inst.src1) &&
                   expectConsume(TokKind::Comma, "','") &&
                   parseBlockRef(fc, inst.target) &&
                   expectConsume(TokKind::Comma, "','") &&
                   parseBlockRef(fc, inst.target2);
          case Opcode::Jump:
            return parseBlockRef(fc, inst.target);
          case Opcode::Call:
            return parseCall(fc, inst);
          case Opcode::Ret:
            if (at(TokKind::Ident))
                return parseReg(fc, inst.src1);
            return true;
          case Opcode::Reuse:
            return parseRegionId(inst) &&
                   expectConsume(TokKind::Comma, "','") &&
                   parseKeyword("hit") &&
                   expectConsume(TokKind::Equals, "'='") &&
                   parseBlockRef(fc, inst.target) &&
                   expectConsume(TokKind::Comma, "','") &&
                   parseKeyword("miss") &&
                   expectConsume(TokKind::Equals, "'='") &&
                   parseBlockRef(fc, inst.target2);
          case Opcode::Invalidate:
            return parseRegionId(inst);
          default:
            break;
        }

        if (isBinaryAlu(inst.op))
            return parseReg(fc, inst.dst) &&
                   expectConsume(TokKind::Comma, "','") &&
                   parseReg(fc, inst.src1) &&
                   expectConsume(TokKind::Comma, "','") &&
                   parseRegOrImm(fc, inst, &Inst::src2);

        error(mnemonic.loc, "unknown instruction '" + name + "'");
        return false;
    }

    bool
    expectConsume(TokKind k, const char *what)
    {
        if (!expect(k, what))
            return false;
        advance();
        return true;
    }

    /** `[rN + imm]` address operand (src1 + imm). */
    bool
    parseMemOperand(FuncCtx &fc, Inst &inst)
    {
        return expectConsume(TokKind::LBracket, "'['") &&
               parseReg(fc, inst.src1) &&
               expectConsume(TokKind::Plus, "'+'") &&
               parseImm(inst.imm) &&
               expectConsume(TokKind::RBracket, "']'");
    }

    bool
    parseCall(FuncCtx &fc, Inst &inst)
    {
        if (!parseReg(fc, inst.dst) ||
            !expectConsume(TokKind::Comma, "','") ||
            !parseNameRef(pendingCallee_, pendingCalleeLoc_) ||
            !expectConsume(TokKind::LParen, "'('"))
            return false;
        if (!at(TokKind::RParen)) {
            for (;;) {
                if (inst.numArgs >= kMaxCallArgs) {
                    error(tok_.loc, "too many call arguments (max " +
                                        std::to_string(kMaxCallArgs) + ")");
                    return false;
                }
                Reg arg = kNoReg;
                if (!parseReg(fc, arg))
                    return false;
                inst.args[inst.numArgs++] = arg;
                if (at(TokKind::Comma)) {
                    advance();
                    continue;
                }
                break;
            }
        }
        return expectConsume(TokKind::RParen, "')'") &&
               expectConsume(TokKind::Arrow, "'->'") &&
               parseBlockRef(fc, inst.target);
    }

    // ----- finalization ---------------------------------------------

    void
    finalizeFunction(FuncCtx &fc)
    {
        if (fc.f->entry() == kNoBlock)
            return; // header already reported an error
        for (const auto &[id, loc] : fc.referenced)
            if (!fc.defined[id])
                error(loc, "reference to undefined block B" +
                               std::to_string(id));
    }

    void
    finalizeModule()
    {
        if (!mod_)
            mod_ = std::make_unique<Module>("<error>");
        if (haveEntry_) {
            const Function *f = mod_->findFunction(entryName_);
            if (f)
                mod_->setEntryFunction(f->id());
            else
                error(entryLoc_,
                      "entry names unknown function " + quoteName(entryName_));
        }
        for (const auto &fix : callFixups_) {
            const Function *callee = mod_->findFunction(fix.callee);
            if (!callee) {
                error(fix.loc,
                      "call to unknown function " + quoteName(fix.callee));
                continue;
            }
            mod_->function(fix.func)
                .block(fix.block)
                .inst(fix.instIdx)
                .callee = callee->id();
        }
        if (sawRegion_)
            mod_->reserveRegionIds(maxRegion_ + 1);
    }

    struct CallFixup
    {
        FuncId func;
        BlockId block;
        std::size_t instIdx;
        std::string callee;
        SourceLoc loc;
    };

    void
    recordLoc(const FuncCtx &fc, std::uint32_t uid, SourceLoc loc)
    {
        const auto fid = static_cast<std::size_t>(fc.f->id());
        if (instLocs_.size() <= fid)
            instLocs_.resize(fid + 1);
        auto &locs = instLocs_[fid];
        if (locs.size() <= uid)
            locs.resize(uid + 1);
        locs[uid] = loc;
    }

    Lexer lex_;
    Token tok_;
    bool suppress_ = false;
    bool fatal_ = false;
    std::size_t numErrors_ = 0;
    std::vector<Diagnostic> errors_;
    std::vector<std::vector<SourceLoc>> instLocs_;
    std::unique_ptr<Module> mod_;

    std::vector<CallFixup> callFixups_;
    std::string pendingCallee_;
    SourceLoc pendingCalleeLoc_;

    bool haveEntry_ = false;
    std::string entryName_;
    SourceLoc entryLoc_;

    bool sawRegion_ = false;
    RegionId maxRegion_ = 0;
};

} // namespace

ParseResult
parseModule(std::string_view source)
{
    return Parser(source).run();
}

ParseResult
parseModuleFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        ParseResult r;
        r.errors.push_back(
            ir::makeError("parse.io", "cannot open file '" + path + "'"));
        return r;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string src = buf.str();
    return parseModule(src);
}

} // namespace ccr::text
