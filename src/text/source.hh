/**
 * @file
 * Source locations, diagnostics, and pragmas for the textual `.lc`
 * frontend. The location and diagnostic types are shared with the IR
 * layer (ir/diagnostic.hh) so the verifier, the parser, and the
 * region lint all speak the same structured-diagnostic language.
 */

#ifndef CCR_TEXT_SOURCE_HH
#define CCR_TEXT_SOURCE_HH

#include <string>
#include <string_view>
#include <vector>

#include "ir/diagnostic.hh"

namespace ccr::text
{

/** A 1-based line/column position in a `.lc` source buffer. */
using SourceLoc = ir::SourceLoc;

/** One finding (parse errors use rule ids "parse.*"). */
using Diagnostic = ir::Diagnostic;
using Severity = ir::Severity;

/**
 * A `;!` pragma line. The parser checks the directive key against the
 * known vocabulary (warning on unknown keys) but does not interpret
 * the body; the corpus loader interprets workload directives (inputs,
 * outputs — see docs/WORKLOADS.md) and the region lint interprets
 * `region` claims. `text` is the pragma body with the leading `;!`
 * and surrounding whitespace stripped.
 */
struct Pragma
{
    SourceLoc loc;
    std::string text;
};

/**
 * The known `;!` directive keys: "workload", "output", "set", "fill"
 * (corpus loader) and "region" (lint claims). Anything else draws a
 * parse.pragma.unknown warning.
 */
bool isKnownDirectiveKey(std::string_view key);

/** First whitespace-delimited token of a pragma body ("" if none). */
std::string_view directiveKey(std::string_view pragma_text);

/** Render diagnostics as "file:line:col: severity: [rule] message"
 *  lines (shared ir formatter). */
using ir::formatDiagnostic;
using ir::formatDiagnostics;

} // namespace ccr::text

#endif // CCR_TEXT_SOURCE_HH
