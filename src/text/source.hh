/**
 * @file
 * Source locations, diagnostics, and pragmas for the textual `.lc`
 * frontend.
 */

#ifndef CCR_TEXT_SOURCE_HH
#define CCR_TEXT_SOURCE_HH

#include <string>
#include <string_view>
#include <vector>

namespace ccr::text
{

/** A 1-based line/column position in a `.lc` source buffer. */
struct SourceLoc
{
    int line = 0;
    int col = 0;

    bool operator==(const SourceLoc &) const = default;
};

/** One parse error, anchored to the token where it was detected. */
struct Diagnostic
{
    SourceLoc loc;
    std::string message;
};

/**
 * A `;!` pragma line. The parser ignores pragmas entirely; the corpus
 * loader interprets them as workload directives (inputs, outputs —
 * see docs/WORKLOADS.md). `text` is the pragma body with the leading
 * `;!` and surrounding whitespace stripped.
 */
struct Pragma
{
    SourceLoc loc;
    std::string text;
};

/** Render diagnostics as "file:line:col: message" lines. */
std::string formatDiagnostics(const std::vector<Diagnostic> &diags,
                              std::string_view filename);

} // namespace ccr::text

#endif // CCR_TEXT_SOURCE_HH
