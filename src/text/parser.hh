/**
 * @file
 * Recursive-descent parser for the textual `.lc` IR syntax that
 * ir::Printer emits (see docs/WORKLOADS.md for the grammar).
 *
 * The parser is total: it never crashes or throws on malformed input.
 * Every error produces a Diagnostic with a 1-based line/column, and
 * parsing synchronizes at the next line so one bad statement yields
 * one diagnostic, not a cascade.
 *
 * Round-trip guarantee: for any module `m` that passes ir::verify,
 * `print(parse(print(m))) == print(m)` byte-for-byte.
 */

#ifndef CCR_TEXT_PARSER_HH
#define CCR_TEXT_PARSER_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ir/module.hh"
#include "text/source.hh"

namespace ccr::text
{

struct ParseResult
{
    /** The parsed module; non-null iff there were no Error-severity
     *  diagnostics (Warn/Note findings — e.g. an unknown `;!`
     *  directive key — do not fail the parse). The module is
     *  syntactically well-formed but callers who need the structural
     *  invariants must still run ir::verifyModule. */
    std::unique_ptr<ir::Module> module;

    std::vector<Diagnostic> errors;

    /** All `;!` pragma lines, in source order (also collected on
     *  failed parses, up to the point parsing stopped). */
    std::vector<Pragma> pragmas;

    /**
     * Source location of each parsed instruction, addressable as
     * instLocs[funcId][inst.uid] (the parser assigns uids densely per
     * function, and Module::clone preserves them). Entries with
     * line == 0 mean "no location" (e.g. compiler-inserted
     * instructions in a transformed clone share the table of the
     * original module and simply have no entry).
     */
    std::vector<std::vector<SourceLoc>> instLocs;

    bool ok() const { return module != nullptr; }
};

/** Parse a `.lc` source buffer. */
ParseResult parseModule(std::string_view source);

/** Parse a `.lc` file from disk. An unreadable file reports a single
 *  diagnostic at 0:0. */
ParseResult parseModuleFile(const std::string &path);

} // namespace ccr::text

#endif // CCR_TEXT_PARSER_HH
