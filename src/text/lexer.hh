/**
 * @file
 * Tokenizer for the textual `.lc` IR syntax.
 *
 * The lexer never fails hard: malformed input yields Error tokens
 * carrying a message, and scanning always makes progress, so the
 * parser can recover at the next line.
 */

#ifndef CCR_TEXT_LEXER_HH
#define CCR_TEXT_LEXER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "text/source.hh"

namespace ccr::text
{

enum class TokKind : std::uint8_t
{
    End,       ///< end of input
    Newline,   ///< one or more consecutive line breaks
    Ident,     ///< mnemonic / keyword / register / block name
    Int,       ///< signed integer literal (decimal or 0x hex)
    Str,       ///< quoted name, unescaped contents in `text`
    HexBytes,  ///< x"..." byte blob, decoded bytes in `text`
    ExtMarker, ///< <live-out> etc., marker name in `text`
    LParen, RParen, LBracket, RBracket,
    Comma, Colon, Equals, At, Hash, Plus, Arrow,
    Error,     ///< lexical error, message in `text`
};

struct Token
{
    TokKind kind = TokKind::End;
    std::string text;
    std::int64_t intValue = 0;
    SourceLoc loc;
};

class Lexer
{
  public:
    explicit Lexer(std::string_view src) : src_(src) {}

    /** Scan and return the next token. Consecutive line breaks (and
     *  comment-only lines) collapse into a single Newline token. */
    Token next();

    /** All `;!` pragma lines seen so far, in source order. */
    const std::vector<Pragma> &pragmas() const { return pragmas_; }

  private:
    bool atEnd() const { return pos_ >= src_.size(); }
    char peek(std::size_t ahead = 0) const;
    char advance();
    SourceLoc here() const { return {line_, col_}; }

    Token make(TokKind kind, SourceLoc loc) const { return {kind, {}, 0, loc}; }
    Token error(SourceLoc loc, std::string msg) const;

    Token lexNumber(SourceLoc loc, bool negative);
    Token lexIdentOrHexBytes(SourceLoc loc);
    Token lexString(SourceLoc loc);
    Token lexHexBytes(SourceLoc loc);
    Token lexExtMarker(SourceLoc loc);
    void lexComment();

    std::string_view src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    std::vector<Pragma> pragmas_;
};

} // namespace ccr::text

#endif // CCR_TEXT_LEXER_HH
