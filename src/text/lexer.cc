#include "text/lexer.hh"

#include <cctype>
#include <cstdio>

namespace ccr::text
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::string_view
directiveKey(std::string_view pragma_text)
{
    std::size_t b = 0;
    while (b < pragma_text.size() &&
           std::isspace(static_cast<unsigned char>(pragma_text[b])))
        ++b;
    std::size_t e = b;
    while (e < pragma_text.size() &&
           !std::isspace(static_cast<unsigned char>(pragma_text[e])))
        ++e;
    return pragma_text.substr(b, e - b);
}

bool
isKnownDirectiveKey(std::string_view key)
{
    return key == "workload" || key == "output" || key == "set" ||
           key == "fill" || key == "region";
}

char
Lexer::peek(std::size_t ahead) const
{
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char
Lexer::advance()
{
    const char c = src_[pos_++];
    if (c == '\n') {
        ++line_;
        col_ = 1;
    } else {
        ++col_;
    }
    return c;
}

Token
Lexer::error(SourceLoc loc, std::string msg) const
{
    Token t;
    t.kind = TokKind::Error;
    t.text = std::move(msg);
    t.loc = loc;
    return t;
}

void
Lexer::lexComment()
{
    // Consumes from ';' up to (not including) the line break. `;!`
    // lines are recorded as pragmas.
    const SourceLoc loc = here();
    advance(); // ';'
    const bool pragma = peek() == '!';
    if (pragma)
        advance();
    std::string body;
    while (!atEnd() && peek() != '\n')
        body += advance();
    if (pragma) {
        const auto first = body.find_first_not_of(" \t\r");
        const auto last = body.find_last_not_of(" \t\r");
        Pragma p;
        p.loc = loc;
        if (first != std::string::npos)
            p.text = body.substr(first, last - first + 1);
        pragmas_.push_back(std::move(p));
    }
}

Token
Lexer::next()
{
    bool sawNewline = false;
    SourceLoc newlineLoc;
    for (;;) {
        if (atEnd())
            return sawNewline ? make(TokKind::Newline, newlineLoc)
                              : make(TokKind::End, here());
        const char c = peek();
        if (c == ' ' || c == '\t' || c == '\r') {
            advance();
            continue;
        }
        if (c == ';') {
            lexComment();
            continue;
        }
        if (c == '\n') {
            if (!sawNewline) {
                sawNewline = true;
                newlineLoc = here();
            }
            advance();
            continue;
        }
        break;
    }
    if (sawNewline)
        return make(TokKind::Newline, newlineLoc);

    const SourceLoc loc = here();
    const char c = peek();

    if (std::isdigit(static_cast<unsigned char>(c)))
        return lexNumber(loc, false);
    if (c == '-') {
        if (peek(1) == '>') {
            advance();
            advance();
            return make(TokKind::Arrow, loc);
        }
        if (std::isdigit(static_cast<unsigned char>(peek(1)))) {
            advance();
            return lexNumber(loc, true);
        }
        advance();
        return error(loc, "stray '-' (expected '->' or a number)");
    }
    if (isIdentStart(c))
        return lexIdentOrHexBytes(loc);
    if (c == '"')
        return lexString(loc);
    if (c == '<')
        return lexExtMarker(loc);

    advance();
    switch (c) {
      case '(': return make(TokKind::LParen, loc);
      case ')': return make(TokKind::RParen, loc);
      case '[': return make(TokKind::LBracket, loc);
      case ']': return make(TokKind::RBracket, loc);
      case ',': return make(TokKind::Comma, loc);
      case ':': return make(TokKind::Colon, loc);
      case '=': return make(TokKind::Equals, loc);
      case '@': return make(TokKind::At, loc);
      case '#': return make(TokKind::Hash, loc);
      case '+': return make(TokKind::Plus, loc);
      default:
        break;
    }
    std::string msg = "unexpected character '";
    if (std::isprint(static_cast<unsigned char>(c)))
        msg += c;
    else {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\x%02x",
                      static_cast<unsigned char>(c));
        msg += buf;
    }
    msg += "'";
    return error(loc, std::move(msg));
}

Token
Lexer::lexNumber(SourceLoc loc, bool negative)
{
    std::uint64_t mag = 0;
    bool overflow = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        advance();
        advance();
        if (hexDigit(peek()) < 0)
            return error(loc, "expected hex digits after '0x'");
        while (hexDigit(peek()) >= 0) {
            const int d = hexDigit(advance());
            if (mag > (~std::uint64_t{0}) >> 4)
                overflow = true;
            mag = (mag << 4) | static_cast<std::uint64_t>(d);
        }
    } else {
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            const int d = advance() - '0';
            if (mag > (~std::uint64_t{0} - static_cast<unsigned>(d)) / 10)
                overflow = true;
            mag = mag * 10 + static_cast<std::uint64_t>(d);
        }
    }
    constexpr std::uint64_t kSignBit = std::uint64_t{1} << 63;
    if (overflow || (negative && mag > kSignBit))
        return error(loc, "integer literal out of 64-bit range");

    Token t;
    t.kind = TokKind::Int;
    t.loc = loc;
    // Two's-complement negate in unsigned space so -2^63 is legal.
    t.intValue = static_cast<std::int64_t>(negative ? ~mag + 1 : mag);
    return t;
}

Token
Lexer::lexIdentOrHexBytes(SourceLoc loc)
{
    if (peek() == 'x' && peek(1) == '"') {
        advance(); // 'x'
        return lexHexBytes(loc);
    }
    Token t;
    t.kind = TokKind::Ident;
    t.loc = loc;
    while (isIdentChar(peek()))
        t.text += advance();
    return t;
}

Token
Lexer::lexString(SourceLoc loc)
{
    advance(); // opening quote
    Token t;
    t.kind = TokKind::Str;
    t.loc = loc;
    for (;;) {
        if (atEnd() || peek() == '\n')
            return error(loc, "unterminated string");
        const char c = advance();
        if (c == '"')
            return t;
        if (c != '\\') {
            t.text += c;
            continue;
        }
        if (atEnd() || peek() == '\n')
            return error(loc, "unterminated string");
        const char e = advance();
        switch (e) {
          case '\\': t.text += '\\'; break;
          case '"': t.text += '"'; break;
          case 'n': t.text += '\n'; break;
          case 't': t.text += '\t'; break;
          case 'r': t.text += '\r'; break;
          case 'x': {
            const int hi = hexDigit(peek());
            const int lo = hi >= 0 ? hexDigit(peek(1)) : -1;
            if (lo < 0)
                return error(loc, "bad \\x escape (expected two hex digits)");
            advance();
            advance();
            t.text += static_cast<char>(hi << 4 | lo);
            break;
          }
          default:
            return error(loc, std::string("unknown escape '\\") + e + "'");
        }
    }
}

Token
Lexer::lexHexBytes(SourceLoc loc)
{
    advance(); // opening quote
    Token t;
    t.kind = TokKind::HexBytes;
    t.loc = loc;
    for (;;) {
        if (atEnd() || peek() == '\n')
            return error(loc, "unterminated x\"...\" byte string");
        if (peek() == '"') {
            advance();
            return t;
        }
        const int hi = hexDigit(peek());
        const int lo = hi >= 0 ? hexDigit(peek(1)) : -1;
        if (lo < 0)
            return error(loc, "x\"...\" bytes must be pairs of hex digits");
        advance();
        advance();
        t.text += static_cast<char>(hi << 4 | lo);
    }
}

Token
Lexer::lexExtMarker(SourceLoc loc)
{
    advance(); // '<'
    Token t;
    t.kind = TokKind::ExtMarker;
    t.loc = loc;
    while (std::isalpha(static_cast<unsigned char>(peek())) || peek() == '-')
        t.text += advance();
    if (peek() != '>' || t.text.empty())
        return error(loc, "malformed <...> extension marker");
    advance();
    return t;
}

} // namespace ccr::text
