#include "lint/crosscheck.hh"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace ccr::lint
{

namespace
{

using namespace ccr::ir;

/** Maps emulator data addresses back to the global they fall in. */
class GlobalMap
{
  public:
    explicit GlobalMap(const emu::Machine &machine)
    {
        const ir::Module &mod = machine.module();
        for (std::size_t g = 0; g < mod.numGlobals(); ++g) {
            const auto gid = static_cast<GlobalId>(g);
            const auto &gl = mod.global(gid);
            spans_.push_back({machine.globalAddr(gid),
                              machine.globalAddr(gid) + gl.sizeBytes,
                              gid});
        }
        std::sort(spans_.begin(), spans_.end(),
                  [](const Span &a, const Span &b) {
                      return a.lo < b.lo;
                  });
    }

    /** Global containing @p addr, or kNoGlobal for heap/unknown. */
    GlobalId
    lookup(emu::Addr addr) const
    {
        auto it = std::upper_bound(
            spans_.begin(), spans_.end(), addr,
            [](emu::Addr a, const Span &s) { return a < s.lo; });
        if (it == spans_.begin())
            return kNoGlobal;
        --it;
        return addr < it->hi ? it->gid : kNoGlobal;
    }

    /** Byte offset of @p addr inside @p g (addr must be inside). */
    emu::Addr
    offsetIn(GlobalId g, emu::Addr addr) const
    {
        for (const Span &s : spans_) {
            if (s.gid == g)
                return addr - s.lo;
        }
        return addr;
    }

  private:
    struct Span
    {
        emu::Addr lo = 0;
        emu::Addr hi = 0;
        GlobalId gid = kNoGlobal;
    };
    std::vector<Span> spans_;
};

/**
 * Passive observer mirroring the CRB's memoization-mode bookkeeping
 * (uarch/crb.cc observe()): tracks one recording at a time, from the
 * reuse instruction's fall-through to the region-end/region-exit
 * marker (or, for function-level regions, the matching return).
 */
class CrossChecker : public emu::Observer
{
  public:
    CrossChecker(const emu::Machine &machine,
                 const core::RegionTable &table,
                 CrossCheckResult &result)
        : mod_(machine.module()), table_(table), globals_(machine),
          result_(result)
    {
        // Absolute byte spans claimed by each memory-dependent
        // region, for the store/invalidate pairing watch.
        for (const auto &r : table_.regions()) {
            if (r.memStructs.empty())
                continue;
            RegionClaims rc;
            rc.id = r.id;
            for (std::size_t i = 0; i < r.memStructs.size(); ++i) {
                const auto &gl = mod_.global(r.memStructs[i]);
                const emu::Addr base =
                    machine.globalAddr(r.memStructs[i]);
                const core::MemRange mr = r.memRange(i);
                if (mr.whole)
                    rc.spans.push_back(
                        {base, base + gl.sizeBytes - 1});
                else
                    rc.spans.push_back({base + mr.lo, base + mr.hi});
            }
            mdClaims_.push_back(std::move(rc));
        }
    }

    void
    onInst(const emu::ExecInfo &info) override
    {
        const Inst &inst = *info.inst;

        // Store/invalidate pairing: a store overlapping a region's
        // claimed byte spans must be chased by `invalidate #id`
        // before anything else executes, or the region could replay
        // stale CIs. This dynamically audits the former's
        // range-based invalidation elision.
        if (inst.op == Opcode::Invalidate) {
            pendingInv_.erase(inst.regionId);
        } else {
            flushPendingInvalidates();
            if (inst.isStore())
                watchStore(info);
        }

        if (inst.op == Opcode::Reuse) {
            if (active_ != nullptr) {
                // The CRB aborts the outer recording on a nested
                // reuse; a former should never have produced one.
                violation("lint.dyn.nested",
                          "region #" + std::to_string(active_->id) +
                              ": nested reuse (#" +
                              std::to_string(inst.regionId) +
                              ") executed while the recording was "
                              "active");
                endTracking();
            }
            beginTracking(inst.regionId);
            return;
        }
        if (active_ == nullptr)
            return;

        if (active_->functionLevel) {
            observeFunctionLevel(info);
            return;
        }
        observeBlockRegion(info);
    }

  private:
    void
    beginTracking(RegionId id)
    {
        active_ = table_.find(id);
        if (active_ == nullptr)
            return; // lintModule reports the unknown id statically
        ++result_.regionEntries;
        defined_.clear();
        callDepth_ = 0;
        liveIns_.clear();
        liveIns_.insert(active_->liveIns.begin(),
                        active_->liveIns.end());
        liveOuts_.clear();
        liveOuts_.insert(active_->liveOuts.begin(),
                         active_->liveOuts.end());
        memStructs_.clear();
        memStructs_.insert(active_->memStructs.begin(),
                           active_->memStructs.end());
        memRanges_.clear();
        for (std::size_t i = 0; i < active_->memStructs.size(); ++i)
            memRanges_.emplace(active_->memStructs[i],
                               active_->memRange(i));
    }

    void endTracking() { active_ = nullptr; }

    void
    observeBlockRegion(const emu::ExecInfo &info)
    {
        const Inst &inst = *info.inst;

        // Use before definition must be covered by the claimed
        // live-in set, or a CRB hit would validate against a stale
        // input bank.
        for (int i = 0; i < info.numSrcRegs; ++i) {
            const Reg r = inst.regSource(i);
            if (!defined_.count(r) && !liveIns_.count(r)) {
                violation(
                    "lint.dyn.livein",
                    "region #" + std::to_string(active_->id) +
                        ": execution read r" + std::to_string(r) +
                        " before defining it, outside the claimed "
                        "live-in set");
            }
        }

        if (inst.isLoad())
            checkLoad(info.memAddr, inst);

        if (inst.hasDst()) {
            defined_.insert(inst.dst);
            if (inst.ext.liveOut && !liveOuts_.count(inst.dst)) {
                violation(
                    "lint.dyn.liveout",
                    "region #" + std::to_string(active_->id) +
                        ": execution recorded r" +
                        std::to_string(inst.dst) +
                        " as an output (live-out marker) outside "
                        "the claimed live-out set");
            }
        }

        if (inst.ext.regionEnd || inst.ext.regionExit) {
            endTracking();
            return;
        }
        // Anything that leaves the region's control without a marker
        // aborts the recording in hardware (calls, returns, halt);
        // the static opcode rule reports those, so just stop.
        if (inst.op == Opcode::Call || inst.op == Opcode::Ret ||
            inst.op == Opcode::Halt) {
            endTracking();
        }
    }

    void
    observeFunctionLevel(const emu::ExecInfo &info)
    {
        const Inst &inst = *info.inst;

        // Loads are checked at every call depth: the whole callee
        // tree is summarized by the region's memory set.
        if (inst.isLoad())
            checkLoad(info.memAddr, inst);

        if (callDepth_ == 0) {
            if (inst.op == Opcode::Call && inst.ext.regionEnd) {
                // Function-level inputs are the argument registers.
                for (int i = 0; i < inst.numArgs; ++i) {
                    const Reg r = inst.args[i];
                    if (!liveIns_.count(r)) {
                        violation(
                            "lint.dyn.livein",
                            "region #" +
                                std::to_string(active_->id) +
                                ": memoized call passed argument r" +
                                std::to_string(r) +
                                " outside the claimed live-in set");
                    }
                }
                callDepth_ = 1;
                return;
            }
            if (inst.op == Opcode::Call || inst.op == Opcode::Ret ||
                inst.op == Opcode::Halt) {
                endTracking();
            }
            return;
        }

        if (inst.op == Opcode::Call) {
            ++callDepth_;
        } else if (inst.op == Opcode::Ret) {
            if (--callDepth_ == 0)
                endTracking();
        } else if (inst.op == Opcode::Halt) {
            endTracking();
        }
    }

    void
    checkLoad(emu::Addr addr, const Inst &inst)
    {
        const GlobalId g = globals_.lookup(addr);
        if (g == kNoGlobal) {
            violation("lint.dyn.mem",
                      "region #" + std::to_string(active_->id) +
                          ": execution loaded from address outside "
                          "every named global (heap or unknown "
                          "memory; not invalidation-summarizable)");
            return;
        }
        const auto &gl = mod_.global(g);
        if (gl.isConst)
            return;
        if (!memStructs_.count(g)) {
            violation("lint.dyn.mem",
                      "region #" + std::to_string(active_->id) +
                          ": execution loaded from global '" +
                          gl.name +
                          "' outside the claimed memory set");
            return;
        }

        // Narrowed claim: the loaded bytes must fall inside the
        // claimed range, or a store elsewhere in the structure could
        // skip invalidation while this load goes stale.
        const auto it = memRanges_.find(g);
        if (it == memRanges_.end() || it->second.whole)
            return;
        const emu::Addr off = globals_.offsetIn(g, addr);
        const emu::Addr last =
            off + ir::memSizeBytes(inst.size) - 1;
        if (off >= it->second.lo && last <= it->second.hi)
            return;
        violation("lint.dyn.mem.range",
                  "region #" + std::to_string(active_->id) +
                      ": execution loaded '" + gl.name + "[" +
                      std::to_string(off) + ".." +
                      std::to_string(last) +
                      "]' outside the claimed range [" +
                      std::to_string(it->second.lo) + ".." +
                      std::to_string(it->second.hi) + "]",
                  "range|" + std::to_string(active_->id) + "|" +
                      std::to_string(g));
    }

    /** Record which MD regions the just-executed store obligates to
     *  invalidate (claimed spans overlapping the stored bytes). */
    void
    watchStore(const emu::ExecInfo &info)
    {
        const emu::Addr lo = info.memAddr;
        const emu::Addr hi =
            lo + ir::memSizeBytes(info.inst->size) - 1;
        for (const RegionClaims &rc : mdClaims_) {
            bool overlap = false;
            for (const auto &[clo, chi] : rc.spans) {
                if (clo <= hi && lo <= chi) {
                    overlap = true;
                    break;
                }
            }
            if (!overlap)
                continue;
            const GlobalId g = globals_.lookup(lo);
            const std::string where =
                g == kNoGlobal
                    ? "an unnamed address"
                    : "'" + mod_.global(g).name + "[" +
                          std::to_string(globals_.offsetIn(g, lo)) +
                          "]'";
            pendingInv_[rc.id] =
                "store to " + where + " overlaps the claimed byte "
                "ranges of region #" + std::to_string(rc.id) +
                " but no 'invalidate #" + std::to_string(rc.id) +
                "' followed before the next instruction";
        }
    }

    void
    flushPendingInvalidates()
    {
        if (pendingInv_.empty())
            return;
        for (auto &[id, msg] : pendingInv_) {
            violation("lint.dyn.store.missed-invalidate",
                      std::move(msg),
                      "inv|" + std::to_string(id));
        }
        pendingInv_.clear();
    }

    void
    violation(const char *rule, std::string msg, std::string key = "")
    {
        const std::string dedup =
            key.empty() ? msg : std::string(rule) + "|" + key;
        if (!seen_.insert(dedup).second)
            return;
        result_.diagnostics.push_back(
            ir::makeError(rule, std::move(msg)));
    }

    /** One MD region's claimed byte spans, in absolute addresses. */
    struct RegionClaims
    {
        RegionId id = kNoRegion;
        std::vector<std::pair<emu::Addr, emu::Addr>> spans;
    };

    const ir::Module &mod_;
    const core::RegionTable &table_;
    GlobalMap globals_;
    CrossCheckResult &result_;
    std::vector<RegionClaims> mdClaims_;

    const core::ReuseRegion *active_ = nullptr;
    std::set<Reg> defined_;
    std::set<Reg> liveIns_;
    std::set<Reg> liveOuts_;
    std::set<GlobalId> memStructs_;
    std::map<GlobalId, core::MemRange> memRanges_;
    int callDepth_ = 0;
    std::map<RegionId, std::string> pendingInv_;
    std::set<std::string> seen_;
};

} // namespace

CrossCheckResult
crossCheck(emu::Machine &machine, const core::RegionTable &table,
           std::uint64_t max_insts)
{
    CrossCheckResult result;
    CrossChecker checker(machine, table, result);
    machine.addObserver(&checker);
    result.instsExecuted = machine.run(max_insts);
    machine.clearObservers();
    return result;
}

} // namespace ccr::lint
