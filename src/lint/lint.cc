#include "lint/lint.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analysis/alias.hh"
#include "analysis/cfg.hh"
#include "analysis/dominators.hh"
#include "analysis/liveness.hh"
#include "analysis/loops.hh"
#include "analysis/ranges.hh"

namespace ccr::lint
{

namespace
{

using namespace ccr::ir;

/** Successor blocks of a terminator, for region traversal. */
std::vector<BlockId>
termSuccs(const Inst &term)
{
    switch (term.op) {
      case Opcode::Br:
      case Opcode::Reuse:
        if (term.target == term.target2)
            return {term.target};
        return {term.target, term.target2};
      case Opcode::Jump:
      case Opcode::Call:
        return {term.target};
      default:
        return {};
    }
}

/** Result of the region-body traversal from the body entry. */
struct Traversal
{
    /** Blocks reachable from the body entry without crossing a
     *  region-end/region-exit marker. */
    std::set<BlockId> members;

    /** Uids of the marked terminators that bound the region. */
    std::set<InstUid> boundaryUids;

    /** Back-edge heads found inside the member subgraph. */
    std::vector<BlockId> backEdgeHeads;

    /** Blocks whose unmarked terminator reaches the join directly. */
    std::vector<BlockId> leakBlocks;

    /** An empty/unterminated/out-of-range block was encountered. */
    bool malformed = false;

    bool cyclic() const { return !backEdgeHeads.empty(); }
};

Traversal
traverseRegion(const ir::Function &func, BlockId body_entry, BlockId join)
{
    Traversal t;
    const auto nblocks = static_cast<BlockId>(func.numBlocks());
    if (body_entry >= nblocks || join >= nblocks) {
        t.malformed = true;
        return t;
    }

    enum : std::uint8_t { White, Gray, Black };
    std::vector<std::uint8_t> color(func.numBlocks(), White);

    struct Frame
    {
        BlockId block;
        std::vector<BlockId> succs;
        std::size_t next = 0;
    };
    std::vector<Frame> stack;

    auto open = [&](BlockId b) {
        color[b] = Gray;
        t.members.insert(b);
        Frame fr;
        fr.block = b;
        const auto &bb = func.block(b);
        if (bb.empty() || !bb.isTerminated()) {
            t.malformed = true;
        } else {
            const Inst &term = bb.terminator();
            if (term.ext.regionEnd || term.ext.regionExit) {
                t.boundaryUids.insert(term.uid);
            } else {
                for (const BlockId s : termSuccs(term)) {
                    if (s >= nblocks) {
                        t.malformed = true;
                    } else if (s == join) {
                        t.leakBlocks.push_back(b);
                    } else {
                        fr.succs.push_back(s);
                    }
                }
            }
        }
        stack.push_back(std::move(fr));
    };

    open(body_entry);
    while (!stack.empty()) {
        Frame &fr = stack.back();
        if (fr.next < fr.succs.size()) {
            const BlockId s = fr.succs[fr.next++];
            if (color[s] == White)
                open(s);
            else if (color[s] == Gray)
                t.backEdgeHeads.push_back(s);
        } else {
            color[fr.block] = Black;
            stack.pop_back();
        }
    }
    return t;
}

std::set<Reg>
regSet(const std::vector<Reg> &regs)
{
    return {regs.begin(), regs.end()};
}

/** Where a reuse instruction for a region id lives. */
struct ReuseSite
{
    FuncId func = kNoFunc;
    BlockId block = kNoBlock;
    const Inst *inst = nullptr;
};

class Linter
{
  public:
    Linter(const ir::Module &mod, const core::RegionTable &table,
           const SourceMap *locs)
        : mod_(mod), table_(table), locs_(locs), alias_(mod)
    {}

    LintResult
    run()
    {
        scanModule();
        checkIds();
        for (const auto &r : table_.regions())
            checkRegion(r);
        checkStores();
        checkOrphanMarkers();
        return std::move(result_);
    }

  private:
    /** Per-function analyses, built on first use. */
    struct FuncAnalyses
    {
        explicit FuncAnalyses(const ir::Function &func)
            : cfg(func), dom(cfg), live(cfg), loops(cfg, dom)
        {}
        analysis::Cfg cfg;
        analysis::Dominators dom;
        analysis::Liveness live;
        analysis::LoopInfo loops;
    };

    const FuncAnalyses &
    analyses(FuncId f)
    {
        auto it = fa_.find(f);
        if (it == fa_.end()) {
            it = fa_.emplace(f, std::make_unique<FuncAnalyses>(
                                    mod_.function(f)))
                     .first;
        }
        return *it->second;
    }

    /** Per-function access-range inference, built on first use. Like
     *  the rest of the lint this is an independent derivation — it
     *  never consults the former's cached analysis. */
    const analysis::RangeAnalysis &
    ranges(FuncId f)
    {
        auto it = ra_.find(f);
        if (it == ra_.end()) {
            it = ra_.emplace(
                        f, std::make_unique<analysis::RangeAnalysis>(
                               mod_, mod_.function(f)))
                     .first;
        }
        return *it->second;
    }

    SourceLoc
    locOf(FuncId f, InstUid uid) const
    {
        if (locs_ == nullptr || f == kNoFunc)
            return {};
        const auto fi = static_cast<std::size_t>(f);
        if (fi >= locs_->size() || uid >= (*locs_)[fi].size())
            return {};
        return (*locs_)[fi][uid];
    }

    void
    diag(Severity sev, const char *rule, std::string msg,
         FuncId f = kNoFunc, InstUid uid = kNoUid)
    {
        result_.diagnostics.push_back(
            {sev, rule, std::move(msg), locOf(f, uid)});
    }

    std::string
    at(FuncId f, BlockId b) const
    {
        return mod_.function(f).name() + ":B" + std::to_string(b);
    }

    static std::string
    rname(RegionId id)
    {
        return "region #" + std::to_string(id);
    }

    // ----- module scan ----------------------------------------------

    void
    scanModule()
    {
        for (std::size_t f = 0; f < mod_.numFunctions(); ++f) {
            const auto fid = static_cast<FuncId>(f);
            const auto &func = mod_.function(fid);
            for (const auto &bb : func.blocks()) {
                for (const auto &inst : bb.insts()) {
                    if (inst.op == Opcode::Reuse) {
                        reuseSites_[inst.regionId].push_back(
                            {fid, bb.id(), &inst});
                    } else if (inst.op == Opcode::Invalidate) {
                        invalidateSites_[inst.regionId].push_back(
                            {fid, bb.id(), &inst});
                    }
                }
            }
        }
    }

    void
    checkIds()
    {
        for (const auto &[id, sites] : reuseSites_) {
            if (table_.find(id) == nullptr) {
                diag(Severity::Error, "lint.marker.unknown-region",
                     at(sites.front().func, sites.front().block) +
                         ": reuse names " + rname(id) +
                         " which is not in the region table",
                     sites.front().func, sites.front().inst->uid);
            }
            if (sites.size() > 1) {
                diag(Severity::Error, "lint.marker.reuse-dup",
                     rname(id) + ": " + std::to_string(sites.size()) +
                         " reuse instructions share the region id "
                         "(each region has exactly one inception "
                         "point)",
                     sites.front().func, sites.front().inst->uid);
            }
        }
        for (const auto &[id, sites] : invalidateSites_) {
            if (table_.find(id) == nullptr) {
                diag(Severity::Warn, "lint.marker.unknown-region",
                     at(sites.front().func, sites.front().block) +
                         ": invalidate names " + rname(id) +
                         " which is not in the region table",
                     sites.front().func, sites.front().inst->uid);
            }
        }
    }

    // ----- per-region checks ----------------------------------------

    void
    checkRegion(const core::ReuseRegion &r)
    {
        // -- Shape: the reuse instruction must exist and agree with
        // the claimed inception/body-entry/join geometry.
        const auto it = reuseSites_.find(r.id);
        if (it == reuseSites_.end()) {
            diag(Severity::Error, "lint.region.shape",
                 rname(r.id) + ": no reuse instruction in the module");
            return;
        }
        const ReuseSite &site = it->second.front();
        const Inst &reuse = *site.inst;
        if (site.func != r.func || site.block != r.inception ||
            reuse.target != r.join || reuse.target2 != r.bodyEntry) {
            diag(Severity::Error, "lint.region.shape",
                 rname(r.id) + ": reuse instruction at " +
                     at(site.func, site.block) +
                     " disagrees with the claimed geometry "
                     "(inception/body-entry/join)",
                 site.func, reuse.uid);
            return;
        }

        const auto &func = mod_.function(r.func);
        const Traversal t =
            r.functionLevel
                ? traverseFunctionLevel(r, func)
                : traverseRegion(func, r.bodyEntry, r.join);
        if (t.malformed) {
            diag(Severity::Error, "lint.region.shape",
                 rname(r.id) +
                     ": region body contains an empty, unterminated, "
                     "or out-of-range block");
            return;
        }
        for (const auto u : t.boundaryUids)
            boundaryUids_.insert({r.func, u});
        for (const auto b : t.leakBlocks) {
            diag(Severity::Error, "lint.region.leak",
                 rname(r.id) + ": " + at(r.func, b) +
                     " reaches the join without a region-end/"
                     "region-exit marker (the recording would never "
                     "commit or abort)",
                 r.func, func.block(b).terminator().uid);
        }

        checkMemberClaims(r, t);
        checkSingleEntry(r, t);
        checkLoopStructure(r, t);
        if (r.functionLevel) {
            checkFunctionLevel(r, func);
        } else {
            checkOpcodes(r, t, func);
            checkLiveIns(r, t, func);
            checkLiveOuts(r, t, func);
            checkMemory(r, t, func);
        }
    }

    Traversal
    traverseFunctionLevel(const core::ReuseRegion &r,
                          const ir::Function &func)
    {
        Traversal t;
        if (r.bodyEntry >= func.numBlocks()) {
            t.malformed = true;
            return t;
        }
        t.members.insert(r.bodyEntry);
        const auto &bb = func.block(r.bodyEntry);
        if (bb.empty() || !bb.isTerminated()) {
            t.malformed = true;
            return t;
        }
        const Inst &term = bb.terminator();
        if (term.op != Opcode::Call || !term.ext.regionEnd) {
            diag(Severity::Error, "lint.region.shape",
                 rname(r.id) + ": function-level body at " +
                     at(r.func, r.bodyEntry) +
                     " is not a region-end-marked call",
                 r.func, term.uid);
            t.malformed = true;
            return t;
        }
        t.boundaryUids.insert(term.uid);
        return t;
    }

    void
    checkMemberClaims(const core::ReuseRegion &r, const Traversal &t)
    {
        if (r.memberBlocks.empty())
            return;
        const std::set<BlockId> claimed(r.memberBlocks.begin(),
                                        r.memberBlocks.end());
        if (claimed == t.members)
            return;
        std::ostringstream os;
        os << rname(r.id)
           << ": claimed member blocks disagree with traversal from "
              "the body entry (";
        bool first = true;
        for (const auto b : t.members) {
            if (!claimed.count(b)) {
                os << (first ? "" : ", ") << "unclaimed B" << b;
                first = false;
            }
        }
        for (const auto b : claimed) {
            if (!t.members.count(b)) {
                os << (first ? "" : ", ") << "unreached B" << b;
                first = false;
            }
        }
        os << ")";
        diag(Severity::Error, "lint.region.members", os.str());
    }

    void
    checkSingleEntry(const core::ReuseRegion &r, const Traversal &t)
    {
        const auto &fa = analyses(r.func);
        if (!fa.cfg.reachable(r.inception)) {
            diag(Severity::Warn, "lint.region.unreachable",
                 rname(r.id) + ": inception block " +
                     at(r.func, r.inception) +
                     " is unreachable from the function entry");
            return;
        }
        for (const auto b : t.members) {
            if (!fa.cfg.reachable(b))
                continue;
            if (!fa.dom.dominates(r.inception, b)) {
                diag(Severity::Error, "lint.region.multi-entry",
                     rname(r.id) + ": " + at(r.func, b) +
                         " is reachable without passing the reuse "
                         "guard at " + at(r.func, r.inception) +
                         " (region has a second entry)");
            }
        }
    }

    void
    checkLoopStructure(const core::ReuseRegion &r, const Traversal &t)
    {
        if (r.functionLevel)
            return;
        if (!r.cyclic) {
            if (t.cyclic()) {
                diag(Severity::Error, "lint.region.acyclic-backedge",
                     rname(r.id) + ": acyclic region contains a back "
                                   "edge to " +
                         at(r.func, t.backEdgeHeads.front()));
            }
            return;
        }
        if (!t.cyclic()) {
            diag(Severity::Error, "lint.region.cyclic-mismatch",
                 rname(r.id) + ": claimed cyclic but the body "
                               "contains no back edge");
            return;
        }
        for (const auto h : t.backEdgeHeads) {
            if (h != r.bodyEntry) {
                diag(Severity::Error, "lint.region.loop",
                     rname(r.id) + ": back edge targets " +
                         at(r.func, h) +
                         " instead of the body entry (not a single-"
                         "header natural loop)");
            }
        }
        const auto &fa = analyses(r.func);
        const analysis::Loop *loop = fa.loops.loopFor(r.bodyEntry);
        if (loop == nullptr || loop->header != r.bodyEntry) {
            diag(Severity::Error, "lint.region.loop",
                 rname(r.id) + ": body entry " +
                     at(r.func, r.bodyEntry) +
                     " is not the header of a natural loop");
        }
    }

    void
    checkOpcodes(const core::ReuseRegion &r, const Traversal &t,
                 const ir::Function &func)
    {
        for (const auto b : t.members) {
            for (const auto &inst : func.block(b).insts()) {
                switch (inst.op) {
                  case Opcode::Store:
                  case Opcode::Call:
                  case Opcode::Alloc:
                  case Opcode::Ret:
                  case Opcode::Halt:
                  case Opcode::Reuse:
                  case Opcode::Invalidate:
                    diag(Severity::Error, "lint.region.opcode",
                         rname(r.id) + ": " + at(r.func, b) +
                             ": opcode not permitted inside a region "
                             "in '" + inst.toString() + "'",
                         r.func, inst.uid);
                    break;
                  default:
                    break;
                }
            }
        }
    }

    /** Region-restricted backward liveness: what the body actually
     *  reads before defining, along region-internal paths only. */
    analysis::RegSet
    regionLiveIn(const core::ReuseRegion &r, const Traversal &t,
                 const ir::Function &func)
    {
        const auto nregs = static_cast<std::size_t>(func.numRegs());
        std::map<BlockId, analysis::RegSet> use, def, in;
        for (const auto b : t.members) {
            analysis::RegSet u(nregs), d(nregs);
            for (const auto &inst : func.block(b).insts()) {
                analysis::RegSet reads(nregs);
                analysis::Liveness::addUses(inst, reads);
                for (const auto reg : reads.toVector()) {
                    if (!d.test(reg))
                        u.set(reg);
                }
                if (inst.hasDst())
                    d.set(inst.dst);
            }
            use.emplace(b, std::move(u));
            def.emplace(b, std::move(d));
            in.emplace(b, analysis::RegSet(nregs));
        }

        auto internalSuccs = [&](BlockId b) {
            std::vector<BlockId> out;
            const Inst &term = func.block(b).terminator();
            if (term.ext.regionEnd || term.ext.regionExit)
                return out;
            for (const auto s : termSuccs(term)) {
                if (t.members.count(s))
                    out.push_back(s);
            }
            return out;
        };

        bool changed = true;
        while (changed) {
            changed = false;
            for (const auto b : t.members) {
                analysis::RegSet out(nregs);
                for (const auto s : internalSuccs(b))
                    out.unionWith(in.at(s));
                out.subtract(def.at(b));
                out.unionWith(use.at(b));
                if (in.at(b) != out) {
                    in.at(b) = std::move(out);
                    changed = true;
                }
            }
        }
        return in.at(r.bodyEntry);
    }

    void
    checkLiveIns(const core::ReuseRegion &r, const Traversal &t,
                 const ir::Function &func)
    {
        const analysis::RegSet required = regionLiveIn(r, t, func);
        const std::set<Reg> claimed = regSet(r.liveIns);
        for (const auto reg : required.toVector()) {
            if (!claimed.count(reg)) {
                diag(Severity::Error, "lint.region.livein.missing",
                     rname(r.id) + ": body reads r" +
                         std::to_string(reg) +
                         " before defining it, but the register is "
                         "missing from the claimed live-in set");
            }
        }
        for (const auto reg : claimed) {
            if (static_cast<int>(reg) < func.numRegs() &&
                !required.test(reg)) {
                diag(Severity::Warn, "lint.region.livein.over",
                     rname(r.id) + ": claimed live-in r" +
                         std::to_string(reg) +
                         " is never read before definition in the "
                         "body (over-approximated claim)");
            }
        }
    }

    void
    checkLiveOuts(const core::ReuseRegion &r, const Traversal &t,
                  const ir::Function &func)
    {
        const auto &fa = analyses(r.func);
        const auto nregs = static_cast<std::size_t>(func.numRegs());
        analysis::RegSet defs(nregs);
        for (const auto b : t.members) {
            for (const auto &inst : func.block(b).insts()) {
                if (inst.hasDst())
                    defs.set(inst.dst);
            }
        }
        analysis::RegSet required = fa.live.liveIn(r.join);
        required.subtract([&] {
            analysis::RegSet inv(nregs);
            for (std::size_t i = 0; i < nregs; ++i) {
                const auto reg = static_cast<Reg>(i);
                if (!defs.test(reg))
                    inv.set(reg);
            }
            return inv;
        }());

        const std::set<Reg> claimed = regSet(r.liveOuts);
        for (const auto reg : required.toVector()) {
            if (!claimed.count(reg)) {
                diag(Severity::Error, "lint.region.liveout.missing",
                     rname(r.id) + ": r" + std::to_string(reg) +
                         " is defined in the body and live into the "
                         "join, but missing from the claimed "
                         "live-out set (a reuse hit would skip its "
                         "definition)");
            }
        }
        for (const auto reg : claimed) {
            if (static_cast<int>(reg) < func.numRegs() &&
                !required.test(reg)) {
                diag(Severity::Warn, "lint.region.liveout.over",
                     rname(r.id) + ": claimed live-out r" +
                         std::to_string(reg) +
                         " is not live across the region exit");
            }
        }

        // Marker bits: the CI output bank records exactly the
        // live-out-marked definitions.
        for (const auto b : t.members) {
            for (const auto &inst : func.block(b).insts()) {
                if (!inst.hasDst())
                    continue;
                if (claimed.count(inst.dst) && !inst.ext.liveOut) {
                    diag(Severity::Error,
                         "lint.region.liveout.unmarked",
                         rname(r.id) + ": " + at(r.func, b) +
                             ": definition of claimed live-out r" +
                             std::to_string(inst.dst) +
                             " lacks the <live-out> marker in '" +
                             inst.toString() +
                             "' (the CRB would not record it)",
                         r.func, inst.uid);
                } else if (inst.ext.liveOut &&
                           !claimed.count(inst.dst)) {
                    diag(Severity::Warn, "lint.marker.liveout-extra",
                         rname(r.id) + ": " + at(r.func, b) +
                             ": <live-out> marker on r" +
                             std::to_string(inst.dst) +
                             " which is not a claimed live-out in '" +
                             inst.toString() + "'",
                         r.func, inst.uid);
                }
            }
        }
    }

    void
    checkMemory(const core::ReuseRegion &r, const Traversal &t,
                const ir::Function &func)
    {
        const std::set<GlobalId> claimed(r.memStructs.begin(),
                                         r.memStructs.end());
        std::set<GlobalId> derived;
        bool uses_memory = false;
        for (const auto b : t.members) {
            for (const auto &inst : func.block(b).insts()) {
                if (!inst.isLoad())
                    continue;
                uses_memory = true;
                const analysis::PtSet &pts =
                    alias_.memAccess(r.func, inst);
                if (!pts.onlyNamedGlobals()) {
                    diag(Severity::Error,
                         "lint.region.load.indeterminable",
                         rname(r.id) + ": " + at(r.func, b) +
                             ": load is not compile-time "
                             "determinable (may access heap or "
                             "unknown memory) in '" +
                             inst.toString() + "'",
                         r.func, inst.uid);
                    continue;
                }
                if (!inst.ext.determinable) {
                    diag(Severity::Warn, "lint.marker.det-missing",
                         rname(r.id) + ": " + at(r.func, b) +
                             ": determinable load lacks the <det> "
                             "marker in '" + inst.toString() + "'",
                         r.func, inst.uid);
                }
                for (const auto g : pts.globals) {
                    if (mod_.global(g).isConst)
                        continue;
                    derived.insert(g);
                    if (!claimed.count(g)) {
                        diag(Severity::Error,
                             "lint.region.mem.missing",
                             rname(r.id) + ": " + at(r.func, b) +
                                 ": load may read global '" +
                                 mod_.global(g).name +
                                 "' which is missing from the "
                                 "claimed memory set (stores to it "
                                 "would not invalidate this region)",
                             r.func, inst.uid);
                    }
                }
                if (!r.memRanges.empty())
                    checkClaimRanges(r, r.func, b, inst);
            }
        }
        for (const auto g : claimed) {
            if (!derived.count(g)) {
                diag(Severity::Warn, "lint.region.mem.over",
                     rname(r.id) + ": claimed memory structure '" +
                         mod_.global(g).name +
                         "' is never read by a region load");
            }
        }
        if (uses_memory != r.usesMemory) {
            diag(Severity::Warn, "lint.region.uses-memory",
                 rname(r.id) + ": usesMemory claim (" +
                     (r.usesMemory ? "true" : "false") +
                     ") disagrees with the body (" +
                     (uses_memory ? "contains" : "contains no") +
                     " loads)");
        }
    }

    /**
     * Range-claim coverage: when a claim is narrowed to
     * `g[lo..hi]`, every load that may touch @p g must have an
     * inferred access range that fits inside the claimed bytes — a
     * store outside the range is allowed to skip invalidation, so an
     * uncovered load would read stale CIs.
     */
    void
    checkClaimRanges(const core::ReuseRegion &r, FuncId f, BlockId b,
                     const Inst &inst)
    {
        const analysis::AccessRange ar = ranges(f).accessRange(inst);
        for (std::size_t i = 0; i < r.memStructs.size(); ++i) {
            const core::MemRange mr = r.memRange(i);
            if (mr.whole)
                continue;
            const GlobalId g = r.memStructs[i];
            if (ar.known) {
                if (ar.global != g)
                    continue; // provably a different structure
                if (ar.lo >= mr.lo && ar.hi <= mr.hi)
                    continue;
                diag(Severity::Error, "lint.region.mem.range",
                     rname(r.id) + ": " + at(f, b) +
                         ": load reads '" + mod_.global(g).name +
                         "[" + std::to_string(ar.lo) + ".." +
                         std::to_string(ar.hi) +
                         "]' outside the claimed range [" +
                         std::to_string(mr.lo) + ".." +
                         std::to_string(mr.hi) + "] in '" +
                         inst.toString() + "'",
                     f, inst.uid);
                continue;
            }
            const analysis::PtSet &pts = alias_.memAccess(f, inst);
            if (!pts.unknown && !pts.globals.count(g))
                continue;
            diag(Severity::Error, "lint.region.mem.range",
                 rname(r.id) + ": " + at(f, b) + ": load into '" +
                     mod_.global(g).name +
                     "' has no statically bounded access range but "
                     "the claim is narrowed to [" +
                     std::to_string(mr.lo) + ".." +
                     std::to_string(mr.hi) + "] in '" +
                     inst.toString() + "'",
                 f, inst.uid);
        }
    }

    void
    checkFunctionLevel(const core::ReuseRegion &r,
                       const ir::Function &func)
    {
        const Inst &call = func.block(r.bodyEntry).terminator();
        const FuncId callee = call.callee;

        // Live-ins are the argument registers, by construction.
        std::set<Reg> args;
        for (int i = 0; i < call.numArgs; ++i)
            args.insert(call.args[i]);
        const std::set<Reg> claimed = regSet(r.liveIns);
        for (const auto reg : args) {
            if (!claimed.count(reg)) {
                diag(Severity::Error, "lint.region.livein.missing",
                     rname(r.id) + ": call argument r" +
                         std::to_string(reg) +
                         " is missing from the claimed live-in set");
            }
        }
        for (const auto reg : claimed) {
            if (!args.count(reg)) {
                diag(Severity::Warn, "lint.region.livein.over",
                     rname(r.id) + ": claimed live-in r" +
                         std::to_string(reg) +
                         " is not an argument of the memoized call");
            }
        }

        // Live-out is the call result.
        const std::set<Reg> lo = regSet(r.liveOuts);
        if (call.dst != kNoReg) {
            if (!lo.count(call.dst)) {
                diag(Severity::Error, "lint.region.liveout.missing",
                     rname(r.id) + ": call result r" +
                         std::to_string(call.dst) +
                         " is missing from the claimed live-out set");
            }
        } else if (!lo.empty()) {
            diag(Severity::Warn, "lint.region.liveout.over",
                 rname(r.id) + ": claimed live-outs on a call with "
                               "no result register");
        }

        // Callee-side purity and memory summary (per alias.cc).
        if (callee >= mod_.numFunctions())
            return; // ir verifier territory
        if (!alias_.funcPure(callee)) {
            diag(Severity::Error, "lint.region.call.impure",
                 rname(r.id) + ": memoized callee '" +
                     mod_.function(callee).name() +
                     "' is not pure (stores, allocates, or performs "
                     "non-determinable loads)");
            return;
        }
        const analysis::PtSet &reads = alias_.funcReads(callee);
        if (!reads.empty() && !reads.onlyNamedGlobals()) {
            diag(Severity::Error, "lint.region.load.indeterminable",
                 rname(r.id) + ": memoized callee '" +
                     mod_.function(callee).name() +
                     "' reads memory that is not compile-time "
                     "determinable");
            return;
        }
        const std::set<GlobalId> claimed_mem(r.memStructs.begin(),
                                             r.memStructs.end());
        std::set<GlobalId> derived_mem;
        for (const auto g : reads.globals) {
            if (mod_.global(g).isConst)
                continue;
            derived_mem.insert(g);
            if (!claimed_mem.count(g)) {
                diag(Severity::Error, "lint.region.mem.missing",
                     rname(r.id) + ": memoized callee may read "
                                   "global '" +
                         mod_.global(g).name +
                         "' which is missing from the claimed "
                         "memory set");
            }
        }
        for (const auto g : claimed_mem) {
            if (!derived_mem.count(g)) {
                diag(Severity::Warn, "lint.region.mem.over",
                     rname(r.id) + ": claimed memory structure '" +
                         mod_.global(g).name +
                         "' is never read by the memoized callee");
            }
        }

        // Narrowed claims: every load anywhere in the callee tree
        // must fit inside the claimed byte ranges.
        if (!r.memRanges.empty()) {
            std::vector<FuncId> work{callee};
            std::set<FuncId> seen{callee};
            while (!work.empty()) {
                const FuncId cf = work.back();
                work.pop_back();
                const auto &cfn = mod_.function(cf);
                for (const auto &bb : cfn.blocks()) {
                    for (const auto &inst : bb.insts()) {
                        if (inst.op == Opcode::Call &&
                            inst.callee < mod_.numFunctions() &&
                            seen.insert(inst.callee).second) {
                            work.push_back(inst.callee);
                        }
                        if (inst.isLoad())
                            checkClaimRanges(r, cf, bb.id(), inst);
                    }
                }
            }
        }
    }

    // ----- module-wide checks ---------------------------------------

    /** Every store aliasing an MD region's memory set must be
     *  followed by an invalidate for that region (the former's
     *  placeInvalidations contract), or stale CIs would be reused. */
    void
    checkStores()
    {
        std::vector<const core::ReuseRegion *> md;
        for (const auto &r : table_.regions()) {
            if (!r.memStructs.empty())
                md.push_back(&r);
        }
        if (md.empty())
            return;

        for (std::size_t f = 0; f < mod_.numFunctions(); ++f) {
            const auto fid = static_cast<FuncId>(f);
            const auto &func = mod_.function(fid);
            for (const auto &bb : func.blocks()) {
                const auto &insts = bb.insts();
                for (std::size_t i = 0; i < insts.size(); ++i) {
                    if (!insts[i].isStore())
                        continue;
                    const analysis::PtSet &pts =
                        alias_.memAccess(fid, insts[i]);
                    std::set<RegionId> following;
                    for (std::size_t k = i + 1;
                         k < insts.size() &&
                         insts[k].op == Opcode::Invalidate;
                         ++k) {
                        following.insert(insts[k].regionId);
                    }
                    for (const auto *r : md) {
                        bool aliases = pts.unknown;
                        if (!aliases) {
                            for (const auto g : r->memStructs) {
                                if (pts.globals.count(g)) {
                                    aliases = true;
                                    break;
                                }
                            }
                        }
                        if (aliases && !following.count(r->id)) {
                            // Range-based proof: a store whose
                            // inferred byte range misses every
                            // claimed range of the region cannot
                            // stale its CIs, so the former is
                            // allowed to elide the invalidation.
                            const analysis::AccessRange sr =
                                ranges(fid).accessRange(insts[i]);
                            if (sr.known) {
                                bool hit = false;
                                for (std::size_t gi = 0;
                                     gi < r->memStructs.size();
                                     ++gi) {
                                    if (r->memStructs[gi] ==
                                            sr.global &&
                                        r->memRange(gi).overlaps(
                                            sr.lo, sr.hi)) {
                                        hit = true;
                                        break;
                                    }
                                }
                                if (!hit)
                                    continue;
                            }
                            diag(Severity::Error,
                                 "lint.region.store.unsummarized",
                                 at(fid, bb.id()) +
                                     ": store may write memory read "
                                     "by " + rname(r->id) +
                                     " but is not followed by "
                                     "'invalidate #" +
                                     std::to_string(r->id) +
                                     "' in '" + insts[i].toString() +
                                     "'",
                                 fid, insts[i].uid);
                        }
                    }
                }
            }
        }
    }

    /** A region-end/region-exit marker the traversals never claimed
     *  would commit or abort an unrelated recording at run time. */
    void
    checkOrphanMarkers()
    {
        for (std::size_t f = 0; f < mod_.numFunctions(); ++f) {
            const auto fid = static_cast<FuncId>(f);
            const auto &func = mod_.function(fid);
            for (const auto &bb : func.blocks()) {
                for (const auto &inst : bb.insts()) {
                    if (!inst.ext.regionEnd && !inst.ext.regionExit)
                        continue;
                    if (boundaryUids_.count({fid, inst.uid}))
                        continue;
                    diag(Severity::Error, "lint.marker.orphan",
                         at(fid, bb.id()) +
                             ": region-end/region-exit marker does "
                             "not bound any region in '" +
                             inst.toString() + "'",
                         fid, inst.uid);
                }
            }
        }
    }

    const ir::Module &mod_;
    const core::RegionTable &table_;
    const SourceMap *locs_;
    analysis::AliasAnalysis alias_;
    LintResult result_;

    std::map<RegionId, std::vector<ReuseSite>> reuseSites_;
    std::map<RegionId, std::vector<ReuseSite>> invalidateSites_;
    std::map<FuncId, std::unique_ptr<FuncAnalyses>> fa_;
    std::map<FuncId, std::unique_ptr<analysis::RangeAnalysis>> ra_;
    std::set<std::pair<FuncId, InstUid>> boundaryUids_;
};

// ----- claims from `;! region` pragmas ------------------------------

bool
parseRegList(const ir::Module &mod, std::string_view text,
             std::vector<Reg> &out, std::string &err)
{
    (void)mod;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string_view::npos)
            comma = text.size();
        const std::string_view item = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        if (item[0] != 'r' || item.size() < 2) {
            err = "expected register (rN), got '" + std::string(item) +
                  "'";
            return false;
        }
        std::uint64_t v = 0;
        for (std::size_t i = 1; i < item.size(); ++i) {
            if (item[i] < '0' || item[i] > '9') {
                err = "expected register (rN), got '" +
                      std::string(item) + "'";
                return false;
            }
            v = v * 10 + static_cast<std::uint64_t>(item[i] - '0');
        }
        out.push_back(static_cast<Reg>(v));
    }
    return true;
}

/** Parse the "[lo..hi]" byte-range suffix of a mem= claim item. */
bool
parseByteRange(std::string_view spec, std::uint64_t &lo,
               std::uint64_t &hi)
{
    if (spec.size() < 5 || spec.front() != '[' || spec.back() != ']')
        return false;
    spec = spec.substr(1, spec.size() - 2);
    const std::size_t dots = spec.find("..");
    if (dots == std::string_view::npos)
        return false;
    auto num = [](std::string_view s, std::uint64_t &v) {
        if (s.empty())
            return false;
        v = 0;
        for (const char c : s) {
            if (c < '0' || c > '9')
                return false;
            v = v * 10 + static_cast<std::uint64_t>(c - '0');
        }
        return true;
    };
    return num(spec.substr(0, dots), lo) &&
           num(spec.substr(dots + 2), hi);
}

bool
parseGlobalList(const ir::Module &mod, std::string_view text,
                std::vector<GlobalId> &out,
                std::vector<core::MemRange> &ranges, std::string &err)
{
    bool any_narrow = false;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string_view::npos)
            comma = text.size();
        std::string item(text.substr(pos, comma - pos));
        pos = comma + 1;
        if (item.empty())
            continue;
        core::MemRange mr;
        const std::size_t br = item.find('[');
        if (br != std::string::npos) {
            const std::string spec = item.substr(br);
            item.resize(br);
            if (!parseByteRange(spec, mr.lo, mr.hi)) {
                err = "malformed byte range '" + spec +
                      "' (expected [lo..hi])";
                return false;
            }
            mr.whole = false;
        }
        const Global *g = mod.findGlobal(item);
        if (g == nullptr) {
            err = "unknown global '" + item + "'";
            return false;
        }
        if (!mr.whole) {
            if (mr.lo > mr.hi) {
                err = "empty byte range [" + std::to_string(mr.lo) +
                      ".." + std::to_string(mr.hi) + "] on '" + item +
                      "'";
                return false;
            }
            if (mr.hi >= g->sizeBytes) {
                err = "byte range [" + std::to_string(mr.lo) + ".." +
                      std::to_string(mr.hi) + "] exceeds '" + item +
                      "' (" + std::to_string(g->sizeBytes) +
                      " bytes)";
                return false;
            }
        }
        out.push_back(g->id);
        ranges.push_back(mr);
        any_narrow |= !mr.whole;
    }
    // Compact form: all-whole claims carry no range vector (matches
    // the former's representation and the report surface).
    if (!any_narrow)
        ranges.clear();
    return true;
}

} // namespace

LintResult
lintModule(const ir::Module &mod, const core::RegionTable &table,
           const SourceMap *locs)
{
    return Linter(mod, table, locs).run();
}

core::RegionTable
regionsFromSource(const ir::Module &mod,
                  const std::vector<text::Pragma> &pragmas,
                  std::vector<ir::Diagnostic> &diags)
{
    core::RegionTable table;

    // Region skeletons from the reuse instructions.
    std::map<RegionId, core::ReuseRegion> regions;
    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        const auto fid = static_cast<FuncId>(f);
        const auto &func = mod.function(fid);
        for (const auto &bb : func.blocks()) {
            for (const auto &inst : bb.insts()) {
                if (inst.op != Opcode::Reuse)
                    continue;
                if (regions.count(inst.regionId))
                    continue; // duplicate: the lint reports it
                core::ReuseRegion r;
                r.id = inst.regionId;
                r.func = fid;
                r.inception = bb.id();
                r.bodyEntry = inst.target2;
                r.join = inst.target;
                if (r.bodyEntry < func.numBlocks()) {
                    const auto &body = func.block(r.bodyEntry);
                    if (!body.empty() && body.isTerminated()) {
                        const Inst &term = body.terminator();
                        r.functionLevel = term.op == Opcode::Call &&
                                          term.ext.regionEnd;
                    }
                    if (!r.functionLevel) {
                        const Traversal t = traverseRegion(
                            func, r.bodyEntry, r.join);
                        r.cyclic = t.cyclic();
                        for (const auto b : t.members) {
                            for (const auto &bi :
                                 func.block(b).insts()) {
                                if (bi.isLoad())
                                    r.usesMemory = true;
                            }
                        }
                    }
                }
                regions.emplace(r.id, std::move(r));
            }
        }
    }

    // Claims from `;! region` pragmas.
    std::set<RegionId> claimed_ids;
    for (const auto &p : pragmas) {
        if (text::directiveKey(p.text) != "region")
            continue;
        std::istringstream is{std::string(p.text)};
        std::string kw, tok;
        is >> kw; // "region"
        RegionId id = kNoRegion;
        if (!(is >> tok) ||
            tok.find_first_not_of("0123456789") != std::string::npos) {
            diags.push_back(ir::makeError(
                "lint.claims.syntax",
                "';! region' directive needs a numeric region id",
                p.loc));
            continue;
        }
        id = static_cast<RegionId>(std::stoul(tok));
        const auto it = regions.find(id);
        if (it == regions.end()) {
            diags.push_back(ir::makeWarn(
                "lint.claims.unused",
                "';! region " + tok +
                    "' names a region with no reuse instruction",
                p.loc));
            continue;
        }
        core::ReuseRegion &r = it->second;
        claimed_ids.insert(id);
        bool bad = false;
        while (is >> tok) {
            const std::size_t eq = tok.find('=');
            const std::string key = tok.substr(0, eq);
            const std::string val =
                eq == std::string::npos ? "" : tok.substr(eq + 1);
            std::string err;
            bool ok = true;
            if (key == "livein" && eq != std::string::npos) {
                r.liveIns.clear();
                ok = parseRegList(mod, val, r.liveIns, err);
            } else if (key == "liveout" && eq != std::string::npos) {
                r.liveOuts.clear();
                ok = parseRegList(mod, val, r.liveOuts, err);
            } else if (key == "mem" && eq != std::string::npos) {
                r.memStructs.clear();
                r.memRanges.clear();
                ok = parseGlobalList(mod, val, r.memStructs,
                                     r.memRanges, err);
            } else {
                ok = false;
                err = "unknown field '" + tok + "'";
            }
            if (!ok) {
                diags.push_back(ir::makeError(
                    "lint.claims.syntax",
                    "';! region " + std::to_string(id) + "': " + err,
                    p.loc));
                bad = true;
                break;
            }
        }
        (void)bad;
    }

    for (auto &[id, r] : regions) {
        if (!claimed_ids.count(id)) {
            diags.push_back(ir::makeNote(
                "lint.claims.default",
                "region #" + std::to_string(id) +
                    " has no ';! region' claim directive; assuming "
                    "empty live-in/live-out/memory claims"));
        }
        table.add(std::move(r));
    }
    return table;
}

} // namespace ccr::lint
