/**
 * @file
 * Region lint: an independent re-derivation of every legality property
 * the region former claims about a formed Reusable Computation Region
 * (paper §4 region formation constraints), cross-checked against the
 * RegionTable. The lint shares the structured Diagnostic type with
 * ir::Verifier; every finding carries a stable "lint.*" rule id (see
 * docs/STATIC_ANALYSIS.md for the full catalogue).
 *
 * The checks are deliberately implemented from scratch against
 * ccr_analysis (dominators, liveness, loops, alias) rather than by
 * calling into src/core/former*: a former bug that mis-states a live-in
 * set or forgets an invalidation must show up here, not be re-derived
 * the same wrong way.
 */

#ifndef CCR_LINT_LINT_HH
#define CCR_LINT_LINT_HH

#include <vector>

#include "core/region.hh"
#include "ir/diagnostic.hh"
#include "ir/module.hh"
#include "text/source.hh"

namespace ccr::lint
{

/** Per-instruction source locations, addressable as
 *  locs[funcId][inst.uid] (text::ParseResult::instLocs layout). */
using SourceMap = std::vector<std::vector<ir::SourceLoc>>;

struct LintResult
{
    std::vector<ir::Diagnostic> diagnostics;

    bool ok() const { return !ir::hasErrors(diagnostics); }
    std::size_t numErrors() const
    {
        return ir::countErrors(diagnostics);
    }
};

/**
 * Statically audit @p mod against the region claims in @p table:
 * single-entry (every region block dominated by the inception guard),
 * claimed live-ins == region-restricted liveness at the body entry,
 * claimed live-outs cover all region definitions live across the
 * exit, no unsummarized side effects (loads outside the determinable
 * memory set, aliasing stores without invalidation), acyclic
 * back-edge freedom / cyclic natural-loop well-formedness, and CCR
 * marker-bit consistency (reuse/invalidate/region-end pairing).
 *
 * @p locs optionally anchors diagnostics to `.lc` source lines when
 * the module came from text (text::ParseResult::instLocs).
 */
LintResult lintModule(const ir::Module &mod,
                      const core::RegionTable &table,
                      const SourceMap *locs = nullptr);

/**
 * Reconstruct a RegionTable for a module parsed from `.lc` text: the
 * region skeletons come from the `reuse` instructions (inception =
 * holding block, body entry = miss target, join = hit target;
 * cyclic/function-level derived from the IR), the claim sets from
 * `;! region` pragmas:
 *
 *     ;! region <id> [livein=r1,r2|livein=] [liveout=...]
 *                    [mem=g,g2[lo..hi],...]
 *
 * A mem= item may carry a `[lo..hi]` byte-range suffix narrowing the
 * claim from the whole structure to that inclusive range: only stores
 * overlapping the claimed bytes must invalidate the region, and every
 * region load into the structure must provably fit inside the range
 * (rule lint.region.mem.range). Items without a suffix claim the
 * whole structure. Ranges must be non-empty and within the global's
 * size.
 *
 * Claim-syntax problems append Error diagnostics; a pragma naming a
 * region with no reuse instruction appends a Warn; a reuse
 * instruction with no pragma gets empty claim sets plus a Note.
 */
core::RegionTable
regionsFromSource(const ir::Module &mod,
                  const std::vector<text::Pragma> &pragmas,
                  std::vector<ir::Diagnostic> &diags);

} // namespace ccr::lint

#endif // CCR_LINT_LINT_HH
