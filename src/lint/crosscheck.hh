/**
 * @file
 * Dynamic cross-check (translation validation) for formed regions: replay
 * a workload on the functional emulator with *no* reuse hardware attached
 * and watch every region execution, flagging any behaviour that escapes
 * the former's static claims — a register read before definition that is
 * not a claimed live-in, a load outside the claimed memory structures, or
 * a live-out-marked write outside the claimed live-out set. Any such
 * escape means a CRB hit could replay stale or wrong state, so each one
 * is an Error-severity diagnostic.
 */

#ifndef CCR_LINT_CROSSCHECK_HH
#define CCR_LINT_CROSSCHECK_HH

#include <cstdint>
#include <vector>

#include "core/region.hh"
#include "emu/machine.hh"
#include "ir/diagnostic.hh"

namespace ccr::lint
{

struct CrossCheckResult
{
    std::vector<ir::Diagnostic> diagnostics;

    /** Dynamic instructions replayed. */
    std::uint64_t instsExecuted = 0;

    /** Region executions (reuse instructions reaching their body)
     *  observed during the replay. */
    std::uint64_t regionEntries = 0;

    bool ok() const { return !ir::hasErrors(diagnostics); }
};

/**
 * Replay @p machine (already prepared with workload inputs, and with
 * NO ReuseHandler installed, so every `reuse` falls through to the
 * body) for up to @p max_insts instructions, mirroring the CRB's
 * memoization-mode bookkeeping in a passive observer and checking each
 * observed region execution against the claims in @p table.
 *
 * Violations are deduplicated per (rule, region, register/address
 * class). The observer is attached for the duration of the run and
 * detached before returning (machine.clearObservers() is called, so
 * attach any profiling observers after, not before, this call).
 */
CrossCheckResult crossCheck(emu::Machine &machine,
                            const core::RegionTable &table,
                            std::uint64_t max_insts = 50'000'000);

} // namespace ccr::lint

#endif // CCR_LINT_CROSSCHECK_HH
