#include "reuse/dtm.hh"

#include "obs/report.hh"
#include "support/logging.hh"

namespace ccr::reuse
{

DynamicTraceMemo::DynamicTraceMemo(DtmParams params)
    : params_(params),
      cQueries_(metrics_.counter("dtm.queries")),
      cHits_(metrics_.counter("dtm.hits")),
      cMisses_(metrics_.counter("dtm.misses")),
      cInvalidates_(metrics_.counter("dtm.invalidates")),
      cMemoStarts_(metrics_.counter("dtm.memoStarts")),
      cMemoCommits_(metrics_.counter("dtm.memoCommits")),
      cMemoAborts_(metrics_.counter("dtm.memoAborts")),
      cEvictions_(metrics_.counter("dtm.evictions"))
{
    ccr_assert(params_.maxTraces >= 1, "DTM needs >= 1 trace");
    ccr_assert(params_.tracesPerRegion >= 1,
               "DTM needs >= 1 trace per region");
    ccr_assert(params_.maxRegInputs >= 1 && params_.maxOutputs >= 1,
               "DTM bank capacities must be >= 1");
    ccr_assert(params_.maxMemInputs >= 0,
               "DTM load-signature capacity must be >= 0");
}

emu::ReuseOutcome
DynamicTraceMemo::onReuse(ir::RegionId region, emu::Machine &machine)
{
    if (memo_.active) {
        // Reaching another reuse point while recording means the
        // region was left without a marked end; drop the recording.
        abortMemo();
    }

    ++cQueries_;
    ++queriesByRegion_[region];
    emu::ReuseOutcome outcome;

    auto it = traces_.find(region);
    std::vector<DtmTrace> *candidates =
        it == traces_.end() ? nullptr : &it->second;

    // The register summary set — distinct use-before-def registers
    // across all cached traces for this anchor — is what validation
    // reads from the register file (interlock modeling, mirroring the
    // CRB's summary-set contract).
    if (candidates) {
        for (const DtmTrace &t : *candidates) {
            for (const auto &[reg, value] : t.regIns) {
                (void)value;
                bool dup = false;
                for (std::size_t i = 0; i < outcome.inputRegs.size();
                     ++i) {
                    if (outcome.inputRegs[i] == reg) {
                        dup = true;
                        break;
                    }
                }
                if (!dup)
                    outcome.inputRegs.push_back(reg);
            }
        }
    }

    // Validate candidate traces in cache order: registers first, then
    // the recorded loads re-probed against current memory in capture
    // order. Every probe performed is reported in outcome.memProbes so
    // the timing model can charge it as a data-cache access.
    if (candidates) {
        for (DtmTrace &t : *candidates) {
            bool match = true;
            for (const auto &[reg, value] : t.regIns) {
                if (machine.readReg(reg) != value) {
                    match = false;
                    break;
                }
            }
            if (!match)
                continue;
            for (const DtmMemInput &m : t.memIns) {
                outcome.memProbes.push_back(m.addr);
                if (machine.memory().read(m.addr, m.size,
                                          m.unsignedLoad)
                    != m.value) {
                    match = false;
                    break;
                }
            }
            if (!match)
                continue;

            // Hit: commit the recorded outputs to architectural state.
            for (const auto &[reg, value] : t.outs) {
                machine.writeReg(reg, value);
                outcome.outputRegs.push_back(reg);
            }
            outcome.hit = true;
            t.lruStamp = ++stamp_;
            ++cHits_;
            ++hitsByRegion_[region];
            if (trace_) {
                trace_->emit(obs::TraceEventKind::ReuseHit, region,
                             static_cast<std::uint64_t>(
                                 outcome.numInputsRead()),
                             static_cast<std::uint64_t>(t.outs.size()));
            }
            return outcome;
        }
    }

    // Miss: begin trace capture for this anchor.
    ++cMisses_;
    if (trace_) {
        trace_->emit(obs::TraceEventKind::ReuseMiss, region,
                     static_cast<std::uint64_t>(
                         outcome.numInputsRead()));
    }
    memo_.active = true;
    memo_.region = region;
    memo_.scratch = DtmTrace{};
    memo_.defined.clear();
    memo_.callDepth = 0;
    memo_.fnRetDst = ir::kNoReg;
    ++cMemoStarts_;

    return outcome;
}

void
DynamicTraceMemo::observe(const emu::ExecInfo &info)
{
    if (!memo_.active)
        return;

    const ir::Inst &inst = *info.inst;
    DtmTrace &t = memo_.scratch;

    auto recordLoad = [&]() -> bool {
        if (static_cast<int>(t.memIns.size()) >= params_.maxMemInputs) {
            abortMemo();
            return false;
        }
        t.memIns.push_back(DtmMemInput{info.memAddr, inst.size,
                                       inst.unsignedLoad, info.result});
        return true;
    };

    // Inside a memoized call (function-level region): callee-frame
    // registers are not architecturally visible, but the callee's
    // loads join the trace signature — DTM re-validates them at query
    // time instead of relying on `invalidate`.
    if (memo_.callDepth > 0) {
        if (inst.isLoad() && !recordLoad())
            return;
        if (inst.op == ir::Opcode::Call) {
            ++memo_.callDepth;
        } else if (inst.op == ir::Opcode::Ret) {
            if (--memo_.callDepth == 0) {
                // The memoized call returned: its result is the
                // region's only live-out.
                if (memo_.fnRetDst != ir::kNoReg)
                    t.outs.emplace_back(memo_.fnRetDst, info.result);
                commitMemo();
            }
        }
        return;
    }

    // A region-end-marked call begins a function-level recording: the
    // arguments are the register inputs, the return value the output.
    if (inst.op == ir::Opcode::Call) {
        if (!inst.ext.regionEnd) {
            abortMemo();
            return;
        }
        for (int i = 0; i < inst.numArgs; ++i) {
            const ir::Reg r = inst.args[i];
            if (memo_.defined.count(r))
                continue;
            bool present = false;
            for (const auto &[reg, value] : t.regIns) {
                (void)value;
                if (reg == r) {
                    present = true;
                    break;
                }
            }
            if (present)
                continue;
            if (static_cast<int>(t.regIns.size())
                >= params_.maxRegInputs) {
                abortMemo();
                return;
            }
            t.regIns.emplace_back(
                r, info.argVals[static_cast<std::size_t>(i)]);
        }
        memo_.fnRetDst = inst.dst;
        memo_.callDepth = 1;
        return;
    }

    // Use-before-def registers join the signature with the value they
    // held at first read.
    const int nsrc = info.numSrcRegs;
    for (int s = 0; s < nsrc; ++s) {
        const ir::Reg r = inst.regSource(s);
        if (memo_.defined.count(r))
            continue;
        bool present = false;
        for (const auto &[reg, value] : t.regIns) {
            (void)value;
            if (reg == r) {
                present = true;
                break;
            }
        }
        if (present)
            continue;
        if (static_cast<int>(t.regIns.size()) >= params_.maxRegInputs) {
            abortMemo();
            return;
        }
        t.regIns.emplace_back(r,
                              info.srcVals[static_cast<std::size_t>(s)]);
    }

    if (inst.isLoad() && !recordLoad())
        return;

    if (inst.hasDst()) {
        memo_.defined.insert(inst.dst);
        if (inst.ext.liveOut) {
            // Record (or update) the output slot for this register
            // with the latest defined value.
            int slot = -1;
            for (std::size_t i = 0; i < t.outs.size(); ++i) {
                if (t.outs[i].first == inst.dst) {
                    slot = static_cast<int>(i);
                    break;
                }
            }
            if (slot < 0) {
                if (static_cast<int>(t.outs.size())
                    >= params_.maxOutputs) {
                    abortMemo();
                    return;
                }
                t.outs.emplace_back(inst.dst, info.result);
            } else {
                t.outs[static_cast<std::size_t>(slot)].second =
                    info.result;
            }
        }
    }

    if (inst.isControlInst()) {
        if (inst.ext.regionEnd)
            commitMemo();
        else if (inst.ext.regionExit)
            abortMemo();
    }
}

void
DynamicTraceMemo::onInvalidate(ir::RegionId region, emu::Addr /*store_addr*/,
                               unsigned /*store_size*/)
{
    // Architectural no-op: DTM establishes memory freshness by
    // re-probing load addresses at query time, so compiler-placed
    // store notifications (and their range refinements) carry no state
    // change. Counted for the record; an in-flight capture of the same
    // region is still dropped (the store may precede the region end).
    ++cInvalidates_;
    if (trace_)
        trace_->emit(obs::TraceEventKind::Invalidate, region);
    if (memo_.active && memo_.region == region)
        abortMemo();
}

void
DynamicTraceMemo::commitMemo()
{
    ccr_assert(memo_.active, "commit without active memo");
    const ir::RegionId region = memo_.region;
    DtmTrace t = std::move(memo_.scratch);
    memo_ = MemoState{};

    t.lruStamp = ++stamp_;
    std::vector<DtmTrace> &slot = traces_[region];
    if (static_cast<int>(slot.size()) >= params_.tracesPerRegion) {
        // Per-anchor associativity exhausted: replace the LRU trace.
        std::size_t lru = 0;
        for (std::size_t i = 1; i < slot.size(); ++i) {
            if (slot[i].lruStamp < slot[lru].lruStamp)
                lru = i;
        }
        slot[lru] = std::move(t);
        ++cEvictions_;
    } else {
        if (static_cast<int>(totalTraces_) >= params_.maxTraces)
            evictGlobalLru();
        traces_[region].push_back(std::move(t));
        ++totalTraces_;
    }
    ++cMemoCommits_;
    if (trace_)
        trace_->emit(obs::TraceEventKind::MemoCommit, region);
}

void
DynamicTraceMemo::abortMemo()
{
    ccr_assert(memo_.active, "abort without active memo");
    const ir::RegionId region = memo_.region;
    memo_ = MemoState{};
    ++cMemoAborts_;
    if (trace_)
        trace_->emit(obs::TraceEventKind::MemoAbort, region);
}

void
DynamicTraceMemo::evictGlobalLru()
{
    // Stamps are unique and strictly increasing, so the global LRU
    // trace is unique — eviction is deterministic regardless of
    // unordered_map iteration order.
    ir::RegionId victim_region = ir::kNoRegion;
    std::size_t victim_index = 0;
    std::uint64_t victim_stamp = UINT64_MAX;
    for (auto &[region, slot] : traces_) {
        for (std::size_t i = 0; i < slot.size(); ++i) {
            if (slot[i].lruStamp < victim_stamp) {
                victim_stamp = slot[i].lruStamp;
                victim_region = region;
                victim_index = i;
            }
        }
    }
    ccr_assert(victim_region != ir::kNoRegion,
               "global eviction with no cached traces");
    std::vector<DtmTrace> &slot = traces_[victim_region];
    slot.erase(slot.begin()
               + static_cast<std::ptrdiff_t>(victim_index));
    if (slot.empty())
        traces_.erase(victim_region);
    --totalTraces_;
    ++cEvictions_;
    if (trace_) {
        trace_->emit(obs::TraceEventKind::Evict,
                     static_cast<std::uint32_t>(victim_region));
    }
}

void
DynamicTraceMemo::reset()
{
    traces_.clear();
    totalTraces_ = 0;
    stamp_ = 0;
    memo_ = MemoState{};
    hitsByRegion_.clear();
    queriesByRegion_.clear();
    metrics_.reset();
}

void
DynamicTraceMemo::snapshotOccupancy()
{
    Histogram &per_region = metrics_.histogram(
        "dtm.occupancy.tracesPerRegion", 0, params_.tracesPerRegion + 1,
        static_cast<std::size_t>(params_.tracesPerRegion) + 1);
    Histogram &reg_ins = metrics_.histogram(
        "dtm.occupancy.regInputs", 0, params_.maxRegInputs + 1,
        static_cast<std::size_t>(params_.maxRegInputs) + 1);
    Histogram &mem_ins = metrics_.histogram(
        "dtm.occupancy.memInputs", 0, params_.maxMemInputs + 1,
        static_cast<std::size_t>(params_.maxMemInputs) + 1);
    for (const auto &[region, slot] : traces_) {
        (void)region;
        per_region.record(static_cast<std::int64_t>(slot.size()));
        for (const DtmTrace &t : slot) {
            reg_ins.record(static_cast<std::int64_t>(t.regIns.size()));
            mem_ins.record(static_cast<std::int64_t>(t.memIns.size()));
        }
    }
    metrics_.gauge("dtm.occupancy.capacityFraction")
        .set(obs::ratio(static_cast<double>(totalTraces_),
                        static_cast<double>(params_.maxTraces)));
}

} // namespace ccr::reuse
