/**
 * @file
 * Dynamic trace memoization (DTM): a second reuse scheme behind the
 * ReuseScheme interface, after "Dynamic Trace Memoization" (da Costa,
 * Franca & Chaves Filho, and the trace-decanting follow-up work named
 * in PAPERS.md).
 *
 * Where the CRB keys a computation instance purely on an input
 * *register* bank and relies on compiler-placed `invalidate`
 * instructions to kill memory-dependent instances, DTM records a
 * load-anchored *trace* of the region's execution over the decoded
 * instruction stream: the use-before-def register values plus the
 * ordered sequence of (address, size, signedness, value) tuples its
 * loads observed. A query validates a candidate trace by re-reading
 * the live registers and then re-probing each recorded load address
 * against current memory contents, in capture order. Because formed
 * regions are store-free (and function-level callees purity-checked),
 * matching register inputs plus matching in-order load values imply
 * the replay is deterministic and the recorded outputs are correct —
 * by induction, load k's address is a function of the register inputs
 * and loads 0..k-1.
 *
 * Timing consequences (SchemeTraits): queries charge validation reads
 * AND one data-cache probe per recorded load (validatesMemoryAtQuery);
 * `invalidate` instructions are architectural no-ops for DTM
 * (usesInvalidate == false) — memory freshness is established at the
 * query itself.
 */

#ifndef CCR_REUSE_DTM_HH
#define CCR_REUSE_DTM_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "reuse/scheme.hh"
#include "support/stats.hh"

namespace ccr::reuse
{

/** DTM capacity knobs. Defaults give a hardware budget comparable to
 *  the default 128x8 CRB (512 traces, 4-way per region anchor). */
struct DtmParams
{
    /** Total traces cached across all regions. */
    int maxTraces = 512;

    /** Traces retained per region anchor (per-anchor associativity). */
    int tracesPerRegion = 4;

    /** Register-input signature capacity; captures exceeding it
     *  abort. */
    int maxRegInputs = 8;

    /** Load-tuple signature capacity; captures exceeding it abort.
     *  Also bounds query-time memory probes per candidate trace. */
    int maxMemInputs = 16;

    /** Output-bank capacity; captures exceeding it abort. */
    int maxOutputs = 8;
};

/** One recorded load: address, access shape, and observed value. */
struct DtmMemInput
{
    emu::Addr addr = 0;
    ir::MemSize size = ir::MemSize::Dword;
    bool unsignedLoad = false;
    ir::Value value = 0;
};

/** One memoized trace of a region execution. */
struct DtmTrace
{
    std::vector<std::pair<ir::Reg, ir::Value>> regIns;
    std::vector<DtmMemInput> memIns;
    std::vector<std::pair<ir::Reg, ir::Value>> outs;
    std::uint64_t lruStamp = 0;
};

class DynamicTraceMemo : public ReuseScheme
{
  public:
    explicit DynamicTraceMemo(DtmParams params = {});

    // -- emu::ReuseHandler --------------------------------------------
    emu::ReuseOutcome onReuse(ir::RegionId region,
                              emu::Machine &machine) override;
    void observe(const emu::ExecInfo &info) override;
    void onInvalidate(ir::RegionId region, emu::Addr store_addr,
                      unsigned store_size) override;
    bool memoActive() const override { return memo_.active; }

    // -- reuse::ReuseScheme -------------------------------------------
    const char *name() const override { return "dtm"; }

    /** DTM validates registers and memory at query time; a miss still
     *  flushes into the region body; `invalidate` is ignored. */
    SchemeTraits traits() const override
    {
        return SchemeTraits{/*chargesValidation=*/true,
                            /*validatesMemoryAtQuery=*/true,
                            /*chargesMissFlush=*/true,
                            /*usesInvalidate=*/false};
    }

    void reset() override;

    /** Histograms "dtm.occupancy.tracesPerRegion" / "...regInputs" /
     *  "...memInputs" and the capacity-fraction gauge. */
    void snapshotOccupancy() override;

    const DtmParams &params() const { return params_; }

    /** Traces currently cached (all regions). */
    std::size_t traceCount() const { return totalTraces_; }

  private:
    /** Trace-capture controller state (miss-triggered recording). */
    struct MemoState
    {
        bool active = false;
        ir::RegionId region = ir::kNoRegion;
        DtmTrace scratch;
        std::unordered_set<ir::Reg> defined;

        /** Function-level recording: >0 while inside the memoized
         *  call; the matching return commits the trace. */
        int callDepth = 0;
        ir::Reg fnRetDst = ir::kNoReg;
    };

    DtmParams params_;
    std::unordered_map<ir::RegionId, std::vector<DtmTrace>> traces_;
    std::size_t totalTraces_ = 0;
    std::uint64_t stamp_ = 0;
    MemoState memo_;

    Counter &cQueries_;
    Counter &cHits_;
    Counter &cMisses_;
    Counter &cInvalidates_;
    Counter &cMemoStarts_;
    Counter &cMemoCommits_;
    Counter &cMemoAborts_;
    Counter &cEvictions_;

    void commitMemo();
    void abortMemo();
    void evictGlobalLru();
};

} // namespace ccr::reuse

#endif // CCR_REUSE_DTM_HH
