/**
 * @file
 * Scheme selection: the one place that knows every concrete
 * ReuseScheme. RunConfig carries a SchemeConfig; the harness, benches
 * (`--scheme crb|dtm|none`), and differential tester all construct
 * schemes through makeScheme().
 */

#ifndef CCR_REUSE_FACTORY_HH
#define CCR_REUSE_FACTORY_HH

#include <memory>
#include <optional>
#include <string_view>

#include "reuse/dtm.hh"
#include "reuse/scheme.hh"
#include "uarch/crb.hh"

namespace ccr::reuse
{

enum class SchemeKind
{
    /** The paper's Computation Reuse Buffer (default). */
    Crb,

    /** Dynamic trace memoization (reuse/dtm.hh). */
    Dtm,

    /** No reuse hardware: the module is left untransformed and the
     *  run is cycle-identical to the base machine. */
    None,
};

/** Lowercase identifier: "crb" / "dtm" / "none". */
const char *schemeKindName(SchemeKind kind);

/** Parse a --scheme value; nullopt if unrecognized. */
std::optional<SchemeKind> parseSchemeKind(std::string_view text);

/** Everything needed to build any scheme (only the selected kind's
 *  params are read). */
struct SchemeConfig
{
    SchemeKind kind = SchemeKind::Crb;
    uarch::CrbParams crb;
    DtmParams dtm;
};

/** Build the selected scheme; nullptr for SchemeKind::None. */
std::unique_ptr<ReuseScheme> makeScheme(const SchemeConfig &config);

} // namespace ccr::reuse

#endif // CCR_REUSE_FACTORY_HH
