/**
 * @file
 * The reuse-scheme interface: the seam between the timing model and
 * any dynamic computation-reuse mechanism.
 *
 * A ReuseScheme is the architectural half of a reuse mechanism. It
 * plugs into the emulator as an emu::ReuseHandler (query / memoize /
 * invalidate lifecycle driven by the committed instruction stream) and
 * into the timing model through two additions on top of that hook
 * contract:
 *
 *  - the ReuseOutcome returned from onReuse() is the *complete*
 *    architectural record of a query — which registers were read to
 *    validate, which memory addresses were probed, and which registers
 *    a hit wrote — so the pipeline can charge operand interlocks,
 *    cache-port occupancy, and output-write bandwidth without knowing
 *    the scheme's internals; and
 *  - SchemeTraits capability flags tell the pipeline *which* of those
 *    charges apply to this scheme at all.
 *
 * Schemes own their observability state: a MetricRegistry (all metric
 * names prefixed "<name()>.", e.g. "crb.hits" / "dtm.hits"), an
 * optional TraceSink for event telemetry, and per-region hit/query
 * attribution maps. The lifecycle metric contract every scheme must
 * keep is the counter algebra
 *
 *      <name>.hits + <name>.misses == <name>.queries
 *
 * and per-region sums equal to the totals; tests/test_properties.cc
 * enforces it for every registered scheme. See docs/REUSE_SCHEMES.md
 * for the full contract and a guide to adding a scheme.
 */

#ifndef CCR_REUSE_SCHEME_HH
#define CCR_REUSE_SCHEME_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "emu/machine.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace ccr::reuse
{

/**
 * One absolute byte range [lo, hi] (inclusive) a region claims to
 * read. The harness resolves the former's per-global `g[lo..hi]`
 * claims against the machine's global layout before a run, so schemes
 * compare raw addresses without knowing about globals.
 */
struct MemClaim
{
    emu::Addr lo = 0;
    emu::Addr hi = 0;
};

/**
 * Capability flags describing what the timing model must charge for
 * this scheme. The pipeline reads these once at run start; everything
 * else it learns per-query from the ReuseOutcome.
 */
struct SchemeTraits
{
    /** Queries read live registers before resolving: the pipeline
     *  interlocks the reuse instruction on outcome.inputRegs and
     *  charges the validation latency. */
    bool chargesValidation = true;

    /** Queries re-read memory to validate (outcome.memProbes): the
     *  pipeline charges each probe as a data-cache access. */
    bool validatesMemoryAtQuery = false;

    /** A miss redirects fetch into the region body: charge the
     *  reuse-fail flush penalty. */
    bool chargesMissFlush = true;

    /** The scheme consumes `invalidate` instructions (compiler-placed
     *  store notifications). Schemes that validate memory at query
     *  time can ignore them. */
    bool usesInvalidate = true;
};

/**
 * Abstract base for reuse mechanisms. Derives the emulator hook
 * interface and owns the observability surface common to all schemes.
 */
class ReuseScheme : public emu::ReuseHandler
{
  public:
    ~ReuseScheme() override = default;

    /** Short lowercase identifier ("crb", "dtm"); used as the metric
     *  prefix and in scheme-namespaced stall keys. */
    virtual const char *name() const = 0;

    /** Timing-model capability flags (constant per scheme). */
    virtual SchemeTraits traits() const = 0;

    /** Drop all cached computation state and zero all metrics. */
    virtual void reset() = 0;

    /**
     * Record occupancy telemetry into the scheme registry (histograms
     * and gauges under "<name>.occupancy.*"). Call at a sampling point
     * (typically end of run); each call accumulates one sample per
     * tracked structure.
     */
    virtual void snapshotOccupancy() = 0;

    /** The scheme's metric registry ("<name>.*" keys) — the source of
     *  truth for all scheme accounting. */
    obs::MetricRegistry &metrics() { return metrics_; }
    const obs::MetricRegistry &metrics() const { return metrics_; }

    /** Export (merge) the scheme metrics into an aggregate registry. */
    void exportMetrics(obs::MetricRegistry &into,
                       const std::string &prefix = "") const
    {
        into.merge(metrics_, prefix);
    }

    /** Attach (or detach with nullptr) an event-trace sink; schemes
     *  emit hit/miss/invalidate/evict/memo events into it. */
    void setTraceSink(obs::TraceSink *sink) { trace_ = sink; }

    /** Per-region hit counts (Figure 10 attribution). */
    const std::unordered_map<ir::RegionId, std::uint64_t> &
    hitsByRegion() const
    {
        return hitsByRegion_;
    }

    /** Per-region query counts; with hitsByRegion() this yields the
     *  measured per-region hit rate the static predictor (ccr_gen)
     *  validates against. */
    const std::unordered_map<ir::RegionId, std::uint64_t> &
    queriesByRegion() const
    {
        return queriesByRegion_;
    }

    /**
     * Register the byte ranges region @p region claims to read.
     * A scheme receiving an invalidate whose triggering store misses
     * every claim of the region may keep the entry alive
     * (claimsDisjoint()). Regions without registered claims always
     * invalidate — claims are an opt-in refinement, absence means
     * "reads the whole structure" exactly as before.
     */
    void
    setMemClaims(ir::RegionId region, std::vector<MemClaim> claims)
    {
        memClaims_[region] = std::move(claims);
    }

    /** Drop all registered claims (scheme reset / module swap). */
    void clearMemClaims() { memClaims_.clear(); }

  protected:
    /**
     * True when region @p region has registered claims and the store
     * of @p size bytes at @p addr overlaps none of them — the
     * invalidate may be skipped. size == 0 (unknown store) or an
     * unregistered region always returns false: invalidate.
     */
    bool
    claimsDisjoint(ir::RegionId region, emu::Addr addr,
                   unsigned size) const
    {
        if (size == 0)
            return false;
        const auto it = memClaims_.find(region);
        if (it == memClaims_.end())
            return false;
        const emu::Addr last = addr + size - 1;
        for (const MemClaim &c : it->second) {
            if (c.lo <= last && addr <= c.hi)
                return false;
        }
        return true;
    }

    obs::MetricRegistry metrics_;
    obs::TraceSink *trace_ = nullptr;
    std::unordered_map<ir::RegionId, std::uint64_t> hitsByRegion_;
    std::unordered_map<ir::RegionId, std::uint64_t> queriesByRegion_;

  private:
    std::unordered_map<ir::RegionId, std::vector<MemClaim>> memClaims_;
};

} // namespace ccr::reuse

#endif // CCR_REUSE_SCHEME_HH
