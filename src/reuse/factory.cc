#include "reuse/factory.hh"

#include "support/logging.hh"

namespace ccr::reuse
{

const char *
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Crb:
        return "crb";
      case SchemeKind::Dtm:
        return "dtm";
      case SchemeKind::None:
        return "none";
    }
    return "?";
}

std::optional<SchemeKind>
parseSchemeKind(std::string_view text)
{
    if (text == "crb")
        return SchemeKind::Crb;
    if (text == "dtm")
        return SchemeKind::Dtm;
    if (text == "none")
        return SchemeKind::None;
    return std::nullopt;
}

std::unique_ptr<ReuseScheme>
makeScheme(const SchemeConfig &config)
{
    switch (config.kind) {
      case SchemeKind::Crb:
        return uarch::makeCrbScheme(config.crb);
      case SchemeKind::Dtm:
        return std::make_unique<DynamicTraceMemo>(config.dtm);
      case SchemeKind::None:
        return nullptr;
    }
    ccr_fatal("unknown scheme kind");
}

} // namespace ccr::reuse
