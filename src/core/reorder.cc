#include "core/reorder.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ccr::core
{

bool
clusterReorder(ir::Function &func, ir::BlockId block,
               const std::function<bool(const ir::Inst &)> &eligible)
{
    auto &insts = func.block(block).insts();
    if (insts.size() < 3)
        return false;

    // The terminator always stays last.
    const std::size_t n = insts.size() - 1;

    // Build the block-local dependence relation: flow (read after
    // write), anti (write after read), output (write after write), and
    // conservative memory ordering (stores are barriers against all
    // memory operations; loads may pass loads).
    std::vector<std::vector<std::size_t>> deps(n);
    {
        const auto nregs = static_cast<std::size_t>(func.numRegs());
        std::vector<int> last_writer(nregs, -1);
        std::vector<std::vector<std::size_t>> readers_since(nregs);
        int last_store = -1;
        std::vector<std::size_t> mem_since_store;

        for (std::size_t i = 0; i < n; ++i) {
            const ir::Inst &inst = insts[i];
            const int nsrc = inst.numRegSources();
            for (int s = 0; s < nsrc; ++s) {
                const ir::Reg r = inst.regSource(s);
                if (last_writer[r] >= 0) {
                    deps[i].push_back(
                        static_cast<std::size_t>(last_writer[r]));
                }
                readers_since[r].push_back(i);
            }
            if (inst.hasDst()) {
                const ir::Reg d = inst.dst;
                if (last_writer[d] >= 0) {
                    deps[i].push_back(
                        static_cast<std::size_t>(last_writer[d]));
                }
                for (const auto rd : readers_since[d]) {
                    if (rd != i)
                        deps[i].push_back(rd);
                }
                readers_since[d].clear();
                last_writer[d] = static_cast<int>(i);
            }
            if (inst.isLoad()) {
                if (last_store >= 0) {
                    deps[i].push_back(
                        static_cast<std::size_t>(last_store));
                }
                mem_since_store.push_back(i);
            } else if (inst.isStore() || inst.op == ir::Opcode::Alloc) {
                for (const auto m : mem_since_store)
                    deps[i].push_back(m);
                if (last_store >= 0) {
                    deps[i].push_back(
                        static_cast<std::size_t>(last_store));
                }
                mem_since_store.clear();
                last_store = static_cast<int>(i);
            }
        }
    }

    std::vector<bool> elig(n);
    for (std::size_t i = 0; i < n; ++i)
        elig[i] = eligible(insts[i]);

    // tainted[i]: i transitively depends on an eligible instruction.
    std::vector<bool> tainted(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        for (const auto d : deps[i]) {
            if (elig[d] || tainted[d]) {
                tainted[i] = true;
                break;
            }
        }
    }

    // Group 1: non-eligible, untainted (safe to hoist above the
    // cluster). Group 2: eligible instructions whose deps are all in
    // groups 1/2. Group 3: the rest.
    std::vector<std::uint8_t> group(n, 3);
    for (std::size_t i = 0; i < n; ++i) {
        if (!elig[i] && !tainted[i])
            group[i] = 1;
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (!elig[i])
            continue;
        bool ok = true;
        for (const auto d : deps[i]) {
            if (group[d] != 1 && group[d] != 2) {
                ok = false;
                break;
            }
        }
        if (ok)
            group[i] = 2;
    }

    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::uint8_t g = 1; g <= 3; ++g) {
        for (std::size_t i = 0; i < n; ++i) {
            if (group[i] == g)
                order.push_back(i);
        }
    }

    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
        if (order[i] != i) {
            changed = true;
            break;
        }
    }
    if (!changed)
        return false;

    std::vector<ir::Inst> reordered;
    reordered.reserve(insts.size());
    for (const auto i : order)
        reordered.push_back(std::move(insts[i]));
    reordered.push_back(std::move(insts[n])); // terminator
    insts = std::move(reordered);
    return true;
}

} // namespace ccr::core
