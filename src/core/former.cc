#include "core/former.hh"

#include <algorithm>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"
#include "analysis/liveness.hh"
#include "analysis/loops.hh"
#include "core/transform.hh"
#include "ir/verifier.hh"
#include "support/logging.hh"

namespace ccr::core
{

RegionFormer::RegionFormer(ir::Module &mod,
                           const profile::ProfileData &prof,
                           const analysis::AliasAnalysis &alias,
                           ReusePolicy policy)
    : mod_(mod), prof_(prof), alias_(alias), policy_(policy),
      elig_(mod, prof, alias, policy_)
{
    claimed_.resize(mod.numFunctions());
    rejected_.resize(mod.numFunctions());
}

bool
RegionFormer::isClaimed(ir::FuncId f, ir::InstUid uid) const
{
    return claimed_[f].count(uid) != 0;
}

void
RegionFormer::claim(ir::FuncId f, ir::InstUid uid)
{
    claimed_[f].insert(uid);
}

RegionTable
RegionFormer::formAll()
{
    // Function-level regions claim whole callee trees, so they form
    // first; cyclic and acyclic formation then work on what remains.
    if (policy_.enableFunctionLevel) {
        for (std::size_t f = 0; f < mod_.numFunctions(); ++f) {
            auto &func = mod_.function(static_cast<ir::FuncId>(f));
            formFunctionLevelRegions(func);
        }
    }
    for (std::size_t f = 0; f < mod_.numFunctions(); ++f) {
        auto &func = mod_.function(static_cast<ir::FuncId>(f));
        if (policy_.enableCyclic)
            formCyclicRegions(func);
    }
    for (std::size_t f = 0; f < mod_.numFunctions(); ++f) {
        auto &func = mod_.function(static_cast<ir::FuncId>(f));
        if (policy_.enableAcyclic)
            formAcyclicRegions(func);
    }
    renumberByWeight();
    annotateMemRanges();
    placeInvalidations();
    annotateRegionStats();
    ir::verifyOrDie(mod_);
    return std::move(table_);
}

void
RegionFormer::annotateRegionStats()
{
    const auto bucket = [](std::array<int, 4> &mix, ir::Opcode op) {
        if (op == ir::Opcode::Reuse || op == ir::Opcode::Invalidate)
            return;
        const ir::FuClass cls = ir::fuClass(op);
        if (cls == ir::FuClass::None)
            return;
        ++mix[static_cast<std::size_t>(cls)];
    };

    for (auto &region : table_.mutableRegions()) {
        const ir::Function &func = mod_.function(region.func);
        const analysis::Cfg cfg(func);
        const analysis::Dominators dom(cfg);
        const analysis::LoopInfo loops(cfg, dom);
        // Depth of the region body, not the inception: the former
        // places the inception block outside any loop it wraps.
        region.loopDepth = 0;
        if (const auto *loop = loops.loopFor(region.bodyEntry))
            region.loopDepth = loop->depth;

        region.instMix = {};
        if (region.functionLevel) {
            // The skipped execution spans the whole callee call tree
            // of the marked call (mirrors the staticInsts convention).
            const ir::BasicBlock &bb = func.block(region.bodyEntry);
            for (const auto &inst : bb.insts()) {
                if (inst.op != ir::Opcode::Call || !inst.ext.regionEnd)
                    continue;
                bucket(region.instMix, inst.op);
                std::unordered_set<ir::FuncId> tree;
                std::vector<ir::FuncId> work{inst.callee};
                while (!work.empty()) {
                    const ir::FuncId fid = work.back();
                    work.pop_back();
                    if (!tree.insert(fid).second)
                        continue;
                    const auto &callee = mod_.function(fid);
                    for (const auto &cb : callee.blocks()) {
                        for (const auto &ci : cb.insts()) {
                            bucket(region.instMix, ci.op);
                            if (ci.op == ir::Opcode::Call)
                                work.push_back(ci.callee);
                        }
                    }
                }
                break;
            }
        } else {
            for (const ir::BlockId b : region.memberBlocks) {
                for (const auto &inst : func.block(b).insts())
                    bucket(region.instMix, inst.op);
            }
        }
    }
}

void
RegionFormer::renumberByWeight()
{
    // The reuse instruction's identifier indexes the CRB directly, and
    // the compiler chooses it (paper §3.1: "indexed by an identifier
    // number which is specified by the proposed ISA extensions").
    // Assigning identifiers in descending profile weight keeps the
    // hottest regions free of index conflicts in small CRBs; only cold
    // regions share entries.
    std::vector<std::size_t> order(table_.regions().size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                  return table_.regions()[a].profileWeight
                         > table_.regions()[b].profileWeight;
              });

    std::unordered_map<ir::RegionId, ir::RegionId> remap;
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        remap[table_.regions()[order[rank]].id] =
            static_cast<ir::RegionId>(rank);
    }

    for (std::size_t f = 0; f < mod_.numFunctions(); ++f) {
        auto &func = mod_.function(static_cast<ir::FuncId>(f));
        for (auto &bb : func.blocks()) {
            for (auto &inst : bb.insts()) {
                if ((inst.op == ir::Opcode::Reuse
                     || inst.op == ir::Opcode::Invalidate)
                    && inst.regionId != ir::kNoRegion) {
                    inst.regionId = remap.at(inst.regionId);
                }
            }
        }
    }
    table_.remapIds(remap);
}

namespace
{

/** Opcodes permitted inside any region body. */
bool
regionOpcodeAllowed(ir::Opcode op)
{
    switch (op) {
      case ir::Opcode::Store:
      case ir::Opcode::Call:
      case ir::Opcode::Alloc:
      case ir::Opcode::Ret:
      case ir::Opcode::Halt:
      case ir::Opcode::Reuse:
      case ir::Opcode::Invalidate:
        return false;
      default:
        return true;
    }
}

} // namespace

void
RegionFormer::formCyclicRegions(ir::Function &func)
{
    const ir::FuncId fid = func.id();

    bool formed = true;
    while (formed) {
        formed = false;

        const analysis::Cfg cfg(func);
        const analysis::Dominators dom(cfg);
        const analysis::LoopInfo loops(cfg, dom);
        const analysis::Liveness live(cfg);

        for (const auto *loop : loops.innermostLoops()) {
            // -- Static determinism checks (paper §4.1, §4.4) --------
            bool ok = true;
            bool uses_memory = false;
            std::vector<ir::GlobalId> structs;
            int static_insts = 0;

            for (const auto b : loop->blocks) {
                for (const auto &inst : func.block(b).insts()) {
                    ++static_insts;
                    if (isClaimed(fid, inst.uid)
                        || !regionOpcodeAllowed(inst.op)) {
                        ok = false;
                        break;
                    }
                    if (inst.isLoad()) {
                        uses_memory = true;
                        if (!alias_.loadDeterminable(fid, inst)) {
                            ok = false;
                            break;
                        }
                        for (const auto g :
                             alias_.memAccess(fid, inst).globals) {
                            if (mod_.global(g).isConst)
                                continue;
                            if (std::find(structs.begin(), structs.end(),
                                          g)
                                == structs.end()) {
                                structs.push_back(g);
                            }
                        }
                    }
                }
                if (!ok)
                    break;
            }
            if (!ok)
                continue;
            if (!structs.empty() && !policy_.enableMemoryDependent)
                continue;
            if (static_cast<int>(structs.size())
                > policy_.maxMemStructs) {
                continue;
            }

            // -- Profile thresholds (paper §4.4) ----------------------
            const auto *lp = prof_.loopProfile(fid, loop->header);
            if (lp == nullptr || lp->invocations == 0)
                continue;
            if (lp->reuseFraction() < policy_.cyclicReuseMin)
                continue;
            if (lp->multiIterFraction() < policy_.cyclicMultiIterMin)
                continue;

            // -- Live-in limit ---------------------------------------
            analysis::RegSet used(
                static_cast<std::size_t>(func.numRegs()));
            analysis::RegSet defs(
                static_cast<std::size_t>(func.numRegs()));
            for (const auto b : loop->blocks) {
                for (const auto &inst : func.block(b).insts()) {
                    analysis::Liveness::addUses(inst, used);
                    if (inst.hasDst())
                        defs.set(inst.dst);
                }
            }
            std::vector<ir::Reg> live_ins;
            for (const auto r : live.liveIn(loop->header).toVector()) {
                if (used.test(r))
                    live_ins.push_back(r);
            }
            if (static_cast<int>(live_ins.size()) > policy_.maxLiveIns)
                continue;

            // -- Exit edges and the join ------------------------------
            std::vector<bool> member(func.numBlocks(), false);
            for (const auto b : loop->blocks)
                member[b] = true;

            // (exit block, outside target) edges with estimated weight.
            struct ExitEdge
            {
                ir::BlockId from;
                ir::BlockId to;
                double weight;
            };
            std::vector<ExitEdge> exits;
            for (const auto b : loop->blocks) {
                const auto &term = func.block(b).terminator();
                const auto *p = prof_.instProfile(fid, term.uid);
                const double exec =
                    p ? static_cast<double>(p->exec) : 0.0;
                const double taken = p ? p->takenFraction() : 0.5;
                auto addExit = [&](ir::BlockId t, double w) {
                    if (t != ir::kNoBlock && !member[t])
                        exits.push_back({b, t, w});
                };
                if (term.op == ir::Opcode::Br) {
                    addExit(term.target, exec * taken);
                    addExit(term.target2, exec * (1.0 - taken));
                } else if (term.op == ir::Opcode::Jump) {
                    addExit(term.target, exec);
                }
            }
            if (exits.empty())
                continue;

            // Join = heaviest exit destination.
            ir::BlockId join = ir::kNoBlock;
            double best_weight = -1.0;
            for (const auto &e : exits) {
                double w = 0.0;
                for (const auto &e2 : exits) {
                    if (e2.to == e.to)
                        w += e2.weight;
                }
                if (w > best_weight) {
                    best_weight = w;
                    join = e.to;
                }
            }

            // -- Live-out limit (values live into the join) -----------
            std::vector<ir::Reg> live_outs;
            for (const auto r : live.liveIn(join).toVector()) {
                if (defs.test(r))
                    live_outs.push_back(r);
            }
            if (static_cast<int>(live_outs.size())
                > policy_.maxLiveOuts) {
                continue;
            }

            // -- Transform --------------------------------------------
            const ir::RegionId rid = mod_.newRegionId();
            const ir::BlockId header = loop->header;

            // Inception block: created first so the redirect can skip
            // it, filled after the redirect runs.
            const ir::BlockId inception = func.newBlock();
            std::vector<bool> exclude = member;
            exclude.resize(func.numBlocks(), false);
            exclude[inception] = true;
            redirectTarget(func, header, inception, &exclude);
            table_.retargetJoins(fid, header, inception);

            {
                ir::Inst r;
                r.op = ir::Opcode::Reuse;
                r.regionId = rid;
                r.target = join;
                r.target2 = header;
                r.uid = func.newUid();
                claim(fid, r.uid);
                func.block(inception).insts().push_back(r);
            }

            // Exit trampolines: edges to the join commit the CI; all
            // other loop exits abort memoization.
            std::unordered_map<ir::BlockId, ir::BlockId> tramp;
            for (const auto &e : exits) {
                auto it = tramp.find(e.to);
                if (it == tramp.end()) {
                    const ir::BlockId t = makeTrampoline(
                        func, e.to, e.to == join, e.to != join);
                    claim(fid, func.block(t).terminator().uid);
                    it = tramp.emplace(e.to, t).first;
                }
                retargetInst(func.block(e.from).terminator(), e.to,
                             it->second);
            }

            // Live-out markers and claims.
            analysis::RegSet lo_set(
                static_cast<std::size_t>(func.numRegs()));
            for (const auto r : live_outs)
                lo_set.set(r);
            for (const auto b : loop->blocks) {
                for (auto &inst : func.block(b).insts()) {
                    if (inst.hasDst() && lo_set.test(inst.dst))
                        inst.ext.liveOut = true;
                    claim(fid, inst.uid);
                }
            }

            ReuseRegion region;
            region.id = rid;
            region.func = fid;
            region.cyclic = true;
            region.inception = inception;
            region.bodyEntry = header;
            region.join = join;
            for (const auto b : loop->blocks)
                region.memberBlocks.push_back(b);
            for (const auto &[to, t] : tramp)
                region.memberBlocks.push_back(t);
            std::sort(region.memberBlocks.begin(),
                      region.memberBlocks.end());
            region.liveIns = live_ins;
            region.liveOuts = live_outs;
            region.memStructs = structs;
            region.usesMemory = uses_memory;
            region.staticInsts = static_insts;
            region.profileWeight = lp->invocations;
            table_.add(std::move(region));
            ++stats_.cyclicFormed;

            formed = true;
            break; // analyses are stale; restart the scan
        }
    }
}

std::vector<ir::Reg>
RegionFormer::planLiveIns(const ir::Function &func,
                          const std::vector<Segment> &segs) const
{
    analysis::RegSet defined(static_cast<std::size_t>(func.numRegs()));
    std::vector<ir::Reg> inputs;
    analysis::RegSet seen(static_cast<std::size_t>(func.numRegs()));
    for (const auto &seg : segs) {
        const auto &bb = func.block(seg.block);
        for (std::size_t i = seg.begin; i < seg.end; ++i) {
            const auto &inst = bb.inst(i);
            const int nsrc = inst.numRegSources();
            for (int s = 0; s < nsrc; ++s) {
                const ir::Reg r = inst.regSource(s);
                if (!defined.test(r) && !seen.test(r)) {
                    seen.set(r);
                    inputs.push_back(r);
                }
            }
            if (inst.hasDst())
                defined.set(inst.dst);
        }
    }
    return inputs;
}

std::vector<ir::GlobalId>
RegionFormer::planMemStructs(const ir::Function &func,
                             const std::vector<Segment> &segs) const
{
    std::vector<ir::GlobalId> structs;
    for (const auto &seg : segs) {
        const auto &bb = func.block(seg.block);
        for (std::size_t i = seg.begin; i < seg.end; ++i) {
            const auto &inst = bb.inst(i);
            if (!inst.isLoad())
                continue;
            for (const auto g :
                 alias_.memAccess(func.id(), inst).globals) {
                if (mod_.global(g).isConst)
                    continue;
                if (std::find(structs.begin(), structs.end(), g)
                    == structs.end()) {
                    structs.push_back(g);
                }
            }
        }
    }
    return structs;
}

std::vector<ir::Reg>
RegionFormer::planLiveOuts(const ir::Function &func,
                           const std::vector<Segment> &segs) const
{
    const analysis::Cfg cfg(func);
    const analysis::Liveness live(cfg);

    const Segment &last = segs.back();
    const auto &lb = func.block(last.block);
    ccr_assert(last.end <= lb.size(), "segment overruns block");

    // Live registers at the finish point: start from the block's
    // live-out and walk backward over the instructions after the
    // region's last instruction.
    analysis::RegSet at_finish = live.liveOut(last.block);
    for (std::size_t i = lb.size(); i > last.end; --i) {
        const auto &inst = lb.inst(i - 1);
        if (inst.hasDst())
            at_finish.clear(inst.dst);
        analysis::Liveness::addUses(inst, at_finish);
    }

    analysis::RegSet defs(static_cast<std::size_t>(func.numRegs()));
    for (const auto &seg : segs) {
        const auto &bb = func.block(seg.block);
        for (std::size_t i = seg.begin; i < seg.end; ++i) {
            if (bb.inst(i).hasDst())
                defs.set(bb.inst(i).dst);
        }
    }

    std::vector<ir::Reg> outs;
    for (const auto r : at_finish.toVector()) {
        if (defs.test(r))
            outs.push_back(r);
    }
    return outs;
}

const analysis::RangeAnalysis &
RegionFormer::rangesFor(ir::FuncId f)
{
    auto it = rangeCache_.find(f);
    if (it == rangeCache_.end()) {
        it = rangeCache_
                 .emplace(f, std::make_unique<analysis::RangeAnalysis>(
                                 mod_, mod_.function(f)))
                 .first;
    }
    return *it->second;
}

void
RegionFormer::annotateMemRanges()
{
    if (!policy_.rangeMemClaims)
        return;

    // Per-struct accumulator while sweeping the region's loads.
    struct Acc
    {
        bool touched = false;
        bool whole = false;
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
    };

    for (auto &region : table_.mutableRegions()) {
        if (region.memStructs.empty())
            continue;
        const std::size_t n = region.memStructs.size();
        std::vector<Acc> acc(n);

        const auto indexOf = [&](ir::GlobalId g) -> int {
            for (std::size_t i = 0; i < n; ++i) {
                if (region.memStructs[i] == g)
                    return static_cast<int>(i);
            }
            return -1;
        };
        const auto feedLoad = [&](ir::FuncId f, const ir::Inst &inst) {
            if (!inst.isLoad())
                return;
            const analysis::AccessRange ar =
                rangesFor(f).accessRange(inst);
            if (ar.known) {
                // The address is pinned to one global: only that
                // struct's claim grows, by exactly the inferred bytes.
                const int idx = indexOf(ar.global);
                if (idx < 0)
                    return; // const table or struct outside the claim
                Acc &a = acc[static_cast<std::size_t>(idx)];
                if (!a.touched) {
                    a.touched = true;
                    a.lo = ar.lo;
                    a.hi = ar.hi;
                } else {
                    analysis::unionRange(a.lo, a.hi, ar.lo, ar.hi);
                }
            } else {
                // Unbounded address: every struct Andersen allows for
                // this load must stay claimed whole.
                for (const auto g : alias_.memAccess(f, inst).globals) {
                    const int idx = indexOf(g);
                    if (idx >= 0) {
                        acc[static_cast<std::size_t>(idx)].touched =
                            true;
                        acc[static_cast<std::size_t>(idx)].whole = true;
                    }
                }
            }
        };

        if (region.functionLevel) {
            // The claimed reads live in the callee call tree of the
            // region-end-marked call.
            const ir::Function &func = mod_.function(region.func);
            std::unordered_set<ir::FuncId> tree;
            std::vector<ir::FuncId> work;
            for (const auto &inst :
                 func.block(region.bodyEntry).insts()) {
                if (inst.op == ir::Opcode::Call && inst.ext.regionEnd)
                    work.push_back(inst.callee);
            }
            while (!work.empty()) {
                const ir::FuncId cfid = work.back();
                work.pop_back();
                if (!tree.insert(cfid).second)
                    continue;
                for (const auto &cb : mod_.function(cfid).blocks()) {
                    for (const auto &inst : cb.insts()) {
                        feedLoad(cfid, inst);
                        if (inst.op == ir::Opcode::Call)
                            work.push_back(inst.callee);
                    }
                }
            }
        } else {
            const ir::Function &func = mod_.function(region.func);
            for (const ir::BlockId b : region.memberBlocks) {
                for (const auto &inst : func.block(b).insts())
                    feedLoad(region.func, inst);
            }
        }

        region.memRanges.clear();
        region.memRanges.reserve(n);
        bool any_narrow = false;
        for (std::size_t i = 0; i < n; ++i) {
            MemRange mr; // whole by default
            const Acc &a = acc[i];
            const ir::Global &g = mod_.global(region.memStructs[i]);
            // An untouched struct (no region load resolves into it)
            // stays claimed whole: membership is Andersen's claim and
            // remains authoritative. A ranged claim that happens to
            // span the whole struct also stays in the compact form.
            if (a.touched && !a.whole
                && !(a.lo == 0 && g.sizeBytes != 0
                     && a.hi == g.sizeBytes - 1)) {
                mr.whole = false;
                mr.lo = a.lo;
                mr.hi = a.hi;
                any_narrow = true;
            }
            region.memRanges.push_back(mr);
        }
        if (!any_narrow)
            region.memRanges.clear();
    }
}

void
RegionFormer::placeInvalidations()
{
    std::vector<const ReuseRegion *> md;
    for (const auto &r : table_.regions()) {
        if (!r.memStructs.empty())
            md.push_back(&r);
    }
    if (md.empty())
        return;

    for (std::size_t f = 0; f < mod_.numFunctions(); ++f) {
        const auto fid = static_cast<ir::FuncId>(f);
        auto &func = mod_.function(fid);
        for (auto &bb : func.blocks()) {
            auto &insts = bb.insts();
            for (std::size_t i = 0; i < insts.size(); ++i) {
                if (!insts[i].isStore())
                    continue;
                const analysis::PtSet &t =
                    alias_.memAccess(fid, insts[i]);
                analysis::AccessRange sr;
                if (policy_.rangeMemClaims)
                    sr = rangesFor(fid).accessRange(insts[i]);
                std::vector<ir::RegionId> affected;
                for (const auto *r : md) {
                    bool andersen_hit = t.unknown;
                    if (!andersen_hit) {
                        for (const auto g : r->memStructs) {
                            if (t.globals.count(g)) {
                                andersen_hit = true;
                                break;
                            }
                        }
                    }
                    bool hit = andersen_hit;
                    if (sr.known) {
                        // The store's address is pinned to one global:
                        // it needs an invalidation only for regions
                        // whose claimed range of that global overlaps
                        // the written bytes.
                        hit = false;
                        for (std::size_t gi = 0;
                             gi < r->memStructs.size(); ++gi) {
                            if (r->memStructs[gi] == sr.global
                                && r->memRange(gi).overlaps(sr.lo,
                                                            sr.hi)) {
                                hit = true;
                                break;
                            }
                        }
                        if (andersen_hit && !hit)
                            ++stats_.invalidationsElided;
                    }
                    if (hit)
                        affected.push_back(r->id);
                }
                for (const auto rid : affected) {
                    ir::Inst inv;
                    inv.op = ir::Opcode::Invalidate;
                    inv.regionId = rid;
                    inv.uid = func.newUid();
                    claim(fid, inv.uid);
                    ++i;
                    insts.insert(insts.begin()
                                     + static_cast<std::ptrdiff_t>(i),
                                 inv);
                    ++stats_.invalidationsPlaced;
                }
            }
        }
    }
}

} // namespace ccr::core
