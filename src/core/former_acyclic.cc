/**
 * @file
 * Acyclic RCR formation: seed selection, successor/predecessor path
 * growth, constraint trimming, and the code transformation (paper
 * §4.4, steps 1-5).
 */

#include <algorithm>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"
#include "analysis/liveness.hh"
#include "analysis/loops.hh"
#include "core/former.hh"
#include "core/reorder.hh"
#include "core/transform.hh"
#include "support/logging.hh"

namespace ccr::core
{

void
RegionFormer::formAcyclicRegions(ir::Function &func)
{
    const ir::FuncId fid = func.id();

    // Cluster reusable instructions within each block once, so runs of
    // eligible instructions are as long as dependences permit.
    if (policy_.allowReorder) {
        for (auto &bb : func.blocks()) {
            bool any_claimed = false;
            for (const auto &inst : bb.insts()) {
                if (isClaimed(fid, inst.uid)) {
                    any_claimed = true;
                    break;
                }
            }
            if (any_claimed)
                continue;
            const bool moved = clusterReorder(
                func, bb.id(), [&](const ir::Inst &inst) {
                    return elig_.eligible(fid, inst);
                });
            if (moved)
                ++stats_.blocksReordered;
        }
    }

    while (formOneAcyclic(func)) {
        // Each formed region restructures the function; repeat until no
        // further profitable seed exists.
    }
}

bool
RegionFormer::formOneAcyclic(ir::Function &func)
{
    const ir::FuncId fid = func.id();

    struct Candidate
    {
        ir::BlockId block;
        std::size_t idx;
        ir::InstUid uid;
        double score;
    };
    std::vector<Candidate> seeds;

    // Blocks inside natural loops consume loop-carried values; unless
    // the policy says otherwise, leave them to cyclic formation.
    std::vector<bool> in_loop(func.numBlocks(), false);
    if (!policy_.seedInsideLoops) {
        const analysis::Cfg cfg(func);
        const analysis::Dominators dom(cfg);
        const analysis::LoopInfo loops(cfg, dom);
        for (const auto &loop : loops.loops()) {
            for (const auto b : loop.blocks)
                in_loop[b] = true;
        }
    }

    for (const auto &bb : func.blocks()) {
        if (bb.id() < in_loop.size() && in_loop[bb.id()])
            continue;
        for (std::size_t i = 0; i < bb.size(); ++i) {
            const auto &inst = bb.inst(i);
            if (inst.isControlInst())
                continue;
            // Seeds must do real computation; moves and constants only
            // join regions as glue.
            if (inst.op == ir::Opcode::MovI
                || inst.op == ir::Opcode::MovGA
                || inst.op == ir::Opcode::Mov
                || inst.op == ir::Opcode::Nop) {
                continue;
            }
            if (isClaimed(fid, inst.uid)
                || rejected_[fid].count(inst.uid)) {
                continue;
            }
            if (elig_.execWeight(fid, inst) < policy_.minSeedWeight)
                continue;
            if (!elig_.eligible(fid, inst))
                continue;
            const double score = elig_.seedScore(fid, inst);
            if (score <= 0.0)
                continue;
            seeds.push_back({bb.id(), i, inst.uid, score});
        }
    }
    std::sort(seeds.begin(), seeds.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.score > b.score;
              });

    for (const auto &seed : seeds) {
        auto segs = growFromSeed(func, seed.block, seed.idx);
        if (segs.empty()) {
            rejected_[fid].insert(seed.uid);
            ++stats_.seedsRejected;
            continue;
        }
        applyAcyclic(func, std::move(segs));
        return true;
    }
    return false;
}

std::vector<RegionFormer::Segment>
RegionFormer::growFromSeed(const ir::Function &func,
                           ir::BlockId seed_block, std::size_t seed_idx)
{
    const ir::FuncId fid = func.id();
    const analysis::Cfg cfg(func);

    auto usable = [&](const ir::Inst &inst) {
        return !isClaimed(fid, inst.uid) && elig_.eligible(fid, inst);
    };

    const auto &b0 = func.block(seed_block);
    ccr_assert(seed_idx < b0.size(), "bad seed index");

    // Successor/predecessor growth within the seed block.
    std::size_t start = seed_idx;
    while (start > 0 && usable(b0.inst(start - 1))
           && !b0.inst(start - 1).isControlInst()) {
        --start;
    }
    std::size_t end = seed_idx + 1;
    while (end < b0.size() - 1 && usable(b0.inst(end)))
        ++end;

    std::vector<Segment> segs{{seed_block, start, end}};
    auto inRegion = [&](ir::BlockId b) {
        return std::any_of(segs.begin(), segs.end(),
                           [b](const Segment &s) { return s.block == b; });
    };

    // Successor path formation across likely edges.
    while (true) {
        const Segment &cur = segs.back();
        const auto &cb = func.block(cur.block);
        if (cur.end != cb.size() - 1)
            break; // region ended before the terminator
        const auto &term = cb.terminator();
        if (!usable(term))
            break;

        ir::BlockId next = ir::kNoBlock;
        if (term.op == ir::Opcode::Jump) {
            next = term.target;
        } else if (term.op == ir::Opcode::Br) {
            bool taken = false;
            if (!elig_.likelyDirection(fid, term, taken))
                break;
            next = taken ? term.target : term.target2;
        } else {
            break;
        }
        if (inRegion(next) || cfg.preds(next).size() != 1)
            break;

        const auto &nb = func.block(next);
        std::size_t k = 0;
        while (k < nb.size() - 1 && usable(nb.inst(k)))
            ++k;
        if (k == 0)
            break;

        segs.back().end = cb.size(); // absorb the terminator
        segs.push_back({next, 0, k});
    }

    // Predecessor path formation.
    while (segs.front().begin == 0) {
        const ir::BlockId fb = segs.front().block;
        const auto &preds = cfg.preds(fb);
        if (preds.size() != 1)
            break;
        const ir::BlockId p = preds.front();
        if (inRegion(p))
            break;
        const auto &pb = func.block(p);
        const auto &pterm = pb.terminator();
        if (!usable(pterm))
            break;
        if (pterm.op == ir::Opcode::Br) {
            bool taken = false;
            if (!elig_.likelyDirection(fid, pterm, taken))
                break;
            const ir::BlockId likely =
                taken ? pterm.target : pterm.target2;
            if (likely != fb)
                break;
        } else if (pterm.op != ir::Opcode::Jump) {
            break;
        }
        std::size_t lo = pb.size() - 1;
        while (lo > 0 && usable(pb.inst(lo - 1))
               && !pb.inst(lo - 1).isControlInst()) {
            --lo;
        }
        segs.insert(segs.begin(), {p, lo, pb.size()});
    }

    auto totalInsts = [&]() {
        std::size_t n = 0;
        for (const auto &s : segs)
            n += s.end - s.begin;
        return n;
    };

    // Trim the region tail until every capacity constraint holds.
    auto shrinkTail = [&]() -> bool {
        while (!segs.empty()) {
            Segment &last = segs.back();
            if (last.end > last.begin) {
                --last.end;
                const auto &lb = func.block(last.block);
                // Never end a multi-block region on a terminator: if
                // the shrink exposed one, drop it too.
                if (last.end > last.begin && last.end == lb.size()
                    && lb.inst(last.end - 1).isControlInst()) {
                    --last.end;
                }
            }
            if (last.end == last.begin)
                segs.pop_back();
            else
                return true;
        }
        return false;
    };

    while (true) {
        if (segs.empty()
            || totalInsts()
                   < static_cast<std::size_t>(policy_.minRegionInsts)) {
            return {};
        }
        const auto live_ins = planLiveIns(func, segs);
        const auto structs = planMemStructs(func, segs);
        const auto live_outs = planLiveOuts(func, segs);
        const bool ok =
            static_cast<int>(live_ins.size()) <= policy_.maxLiveIns
            && static_cast<int>(live_outs.size()) <= policy_.maxLiveOuts
            && static_cast<int>(structs.size()) <= policy_.maxMemStructs
            && (structs.empty() || policy_.enableMemoryDependent)
            && totalInsts()
                   <= static_cast<std::size_t>(policy_.maxRegionInsts);
        if (ok)
            break;
        if (!shrinkTail())
            return {};
    }

    return segs;
}

void
RegionFormer::applyAcyclic(ir::Function &func, std::vector<Segment> segs)
{
    const ir::FuncId fid = func.id();
    const ir::RegionId rid = mod_.newRegionId();

    const auto live_ins = planLiveIns(func, segs);
    const auto structs = planMemStructs(func, segs);

    bool uses_memory = false;
    std::uint64_t weight = 0;
    for (const auto &seg : segs) {
        const auto &bb = func.block(seg.block);
        for (std::size_t i = seg.begin; i < seg.end; ++i) {
            if (bb.inst(i).isLoad())
                uses_memory = true;
            weight = std::max(weight,
                              elig_.execWeight(fid, bb.inst(i)));
        }
    }

    // Phase A: isolate the body entry.
    const ir::BlockId inception = func.newBlock();
    ir::BlockId body_entry;
    if (segs.front().begin > 0) {
        const ir::BlockId prefix = segs.front().block;
        const std::size_t cut = segs.front().begin;
        body_entry = splitBlock(func, prefix, cut);
        ir::Inst j;
        j.op = ir::Opcode::Jump;
        j.target = inception;
        j.uid = func.newUid();
        func.block(prefix).insts().push_back(j);
        // Rebase the (single) leading segment onto the new block.
        segs.front().block = body_entry;
        segs.front().begin = 0;
        segs.front().end -= cut;
    } else {
        body_entry = segs.front().block;
        redirectTarget(func, body_entry, inception);
        table_.retargetJoins(fid, body_entry, inception);
    }

    // Phase B: isolate the join after the finish instruction.
    const Segment last_before_split = segs.back();
    const ir::BlockId join =
        splitBlock(func, last_before_split.block, last_before_split.end);
    {
        ir::Inst j;
        j.op = ir::Opcode::Jump;
        j.target = join;
        j.ext.regionEnd = true;
        j.uid = func.newUid();
        claim(fid, j.uid);
        func.block(last_before_split.block).insts().push_back(j);
    }

    // Phase C: the reuse instruction at the inception point.
    {
        ir::Inst r;
        r.op = ir::Opcode::Reuse;
        r.regionId = rid;
        r.target = join;
        r.target2 = body_entry;
        r.uid = func.newUid();
        claim(fid, r.uid);
        func.block(inception).insts().push_back(r);
    }

    // Phase D: side-exit trampolines for in-region branches whose other
    // direction leaves the region.
    std::vector<ir::BlockId> trampolines;
    std::vector<bool> in_region(func.numBlocks(), false);
    for (const auto &seg : segs)
        in_region[seg.block] = true;
    for (std::size_t s = 0; s + 1 < segs.size(); ++s) {
        const ir::BlockId sb = segs[s].block;
        ir::BlockId t1 = ir::kNoBlock;
        ir::BlockId t2 = ir::kNoBlock;
        {
            const auto &term = func.block(sb).terminator();
            if (term.op != ir::Opcode::Br)
                continue;
            t1 = term.target;
            t2 = term.target2;
        }
        for (const ir::BlockId t : {t1, t2}) {
            if (t == ir::kNoBlock)
                continue;
            const bool outside =
                t >= in_region.size() || !in_region[t];
            if (outside) {
                // makeTrampoline may reallocate the block vector, so
                // re-fetch the terminator for the retarget.
                const ir::BlockId tramp =
                    makeTrampoline(func, t, false, true);
                claim(fid, func.block(tramp).terminator().uid);
                trampolines.push_back(tramp);
                retargetInst(func.block(sb).terminator(), t, tramp);
            }
            if (t1 == t2)
                break;
        }
    }

    // Phase E: live-out markers, computed on the final structure.
    {
        const analysis::Cfg cfg(func);
        const analysis::Liveness live(cfg);
        analysis::RegSet defs(static_cast<std::size_t>(func.numRegs()));
        for (const auto &seg : segs) {
            const auto &bb = func.block(seg.block);
            for (std::size_t i = seg.begin; i < seg.end; ++i) {
                if (bb.inst(i).hasDst())
                    defs.set(bb.inst(i).dst);
            }
        }
        std::vector<ir::Reg> live_outs;
        analysis::RegSet lo_set(
            static_cast<std::size_t>(func.numRegs()));
        for (const auto r : live.liveIn(join).toVector()) {
            if (defs.test(r)) {
                live_outs.push_back(r);
                lo_set.set(r);
            }
        }
        ccr_assert(static_cast<int>(live_outs.size())
                       <= policy_.maxLiveOuts,
                   "live-out overflow after transform in ", func.name());

        int static_insts = 1; // the region-end jump
        for (auto &seg : segs) {
            auto &bb = func.block(seg.block);
            for (std::size_t i = seg.begin; i < seg.end; ++i) {
                auto &inst = bb.inst(i);
                if (inst.hasDst() && lo_set.test(inst.dst))
                    inst.ext.liveOut = true;
                claim(fid, inst.uid);
                ++static_insts;
            }
        }

        ReuseRegion region;
        region.id = rid;
        region.func = fid;
        region.cyclic = false;
        region.inception = inception;
        region.bodyEntry = body_entry;
        region.join = join;
        for (const auto &seg : segs)
            region.memberBlocks.push_back(seg.block);
        region.memberBlocks.insert(region.memberBlocks.end(),
                                   trampolines.begin(),
                                   trampolines.end());
        std::sort(region.memberBlocks.begin(),
                  region.memberBlocks.end());
        region.liveIns = live_ins;
        region.liveOuts = live_outs;
        region.memStructs = structs;
        region.usesMemory = uses_memory;
        region.staticInsts = static_insts;
        region.profileWeight = weight;
        table_.add(std::move(region));
        ++stats_.acyclicFormed;
    }
}

} // namespace ccr::core
