/**
 * @file
 * Reusable Computation Region metadata: what the compiler communicates
 * to the hardware (scope + live-out information) plus bookkeeping used
 * by the evaluation harnesses.
 */

#ifndef CCR_CORE_REGION_HH
#define CCR_CORE_REGION_HH

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/types.hh"

namespace ccr::core
{

/** Classification of a region's inputs (paper §5.2). */
enum class RegionClass : std::uint8_t
{
    Stateless,       ///< SL: register inputs only (const-table loads OK)
    MemoryDependent  ///< MD: reads compile-time-determinable memory
};

/**
 * Byte range claimed within one memory structure: offsets [lo, hi]
 * inclusive, or the whole structure when `whole` is set (in which case
 * lo/hi are ignored). Produced by the range-inference pass
 * (analysis/ranges.hh); `reads g[lo..hi]` in the region-claim grammar.
 */
struct MemRange
{
    bool whole = true;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    /** True when this claim overlaps byte range [lo, hi] inclusive. */
    bool
    overlaps(std::uint64_t other_lo, std::uint64_t other_hi) const
    {
        return whole || (lo <= other_hi && other_lo <= hi);
    }

    bool operator==(const MemRange &) const = default;
};

/** One formed reusable computation region. */
struct ReuseRegion
{
    ir::RegionId id = ir::kNoRegion;
    ir::FuncId func = ir::kNoFunc;
    bool cyclic = false;

    /** Region wraps a whole call (paper §6 function-level reuse). */
    bool functionLevel = false;

    /** Block holding the `reuse` instruction (inception point). */
    ir::BlockId inception = ir::kNoBlock;

    /** First block of the region body (reuse-miss target). */
    ir::BlockId bodyEntry = ir::kNoBlock;

    /** Join block (reuse-hit target / finish continuation). */
    ir::BlockId join = ir::kNoBlock;

    /** Region live-in registers (static external reads, <= 8). */
    std::vector<ir::Reg> liveIns;

    /** Region live-out registers (recorded by the CI output bank). */
    std::vector<ir::Reg> liveOuts;

    /** Non-const memory structures the region reads; empty => SL. */
    std::vector<ir::GlobalId> memStructs;

    /**
     * Claimed byte range within the matching memStructs entry
     * (index-aligned with memStructs). `whole` means the claim covers
     * the entire structure — the pre-range behavior. An empty vector
     * means every claim is whole; tables built outside RegionFormer
     * (tests, text reconstruction without range suffixes) stay valid
     * without change.
     */
    std::vector<MemRange> memRanges;

    /** Claimed range of memStructs[i]; whole when memRanges is empty. */
    MemRange
    memRange(std::size_t i) const
    {
        return i < memRanges.size() ? memRanges[i] : MemRange{};
    }

    /**
     * Every block claimed to belong to the region body (body blocks
     * plus the end/exit trampolines carrying the marker bits; for
     * function-level regions just the block holding the marked call).
     * Exposed so the lint (ccr_lint) can audit the former's claims
     * against an independent traversal. Empty on tables not produced
     * by RegionFormer (e.g. reconstructed from `.lc` text).
     */
    std::vector<ir::BlockId> memberBlocks;

    /** True when the region contains any load (including const). */
    bool usesMemory = false;

    /** Static instruction count inside the region body. */
    int staticInsts = 0;

    /**
     * Static instruction mix of the region body, indexed by
     * ir::FuClass (IntAlu, Mem, FpAlu, Branch); glue/marker opcodes
     * with no functional unit are not counted. For function-level
     * regions the mix spans the whole callee call tree. Annotated by
     * RegionFormer::formAll (zero on tables built elsewhere); feeds
     * the per-instruction-type decanting in the scheme bake-off.
     */
    std::array<int, 4> instMix{};

    /**
     * Loop-nesting depth of the region body's entry block within its
     * function (0 = not inside any loop). For cyclic regions this is
     * the depth of the memoized loop itself; annotated alongside
     * instMix.
     */
    int loopDepth = 0;

    /** Profile-estimated dynamic weight (executions of the region). */
    std::uint64_t profileWeight = 0;

    RegionClass
    regionClass() const
    {
        return memStructs.empty() ? RegionClass::Stateless
                                  : RegionClass::MemoryDependent;
    }

    /**
     * Computation-group label per the paper's Figure 9 convention:
     * SL_{inputs} for stateless, MD_{inputs}_{structs} for memory
     * dependent, with the paper's bucket boundaries (SL_4, SL_6, SL_8,
     * MD_3_1, MD_6_1, MD_2_2, MD_2_3, OTHER).
     */
    std::string group() const;
};

/** Table of all regions formed for a module, indexed by RegionId. */
class RegionTable
{
  public:
    void add(ReuseRegion region);

    const ReuseRegion *find(ir::RegionId id) const;

    const std::vector<ReuseRegion> &regions() const { return regions_; }

    /** Mutable view for post-formation annotation passes
     *  (RegionFormer statistics stamping). */
    std::vector<ReuseRegion> &mutableRegions() { return regions_; }
    std::size_t size() const { return regions_.size(); }
    bool empty() const { return regions_.empty(); }

    /** Rewrite region ids per @p remap (compiler id reassignment). */
    void remapIds(
        const std::unordered_map<ir::RegionId, ir::RegionId> &remap);

    /**
     * Re-point every region of @p func whose claimed join is
     * @p old_join at @p new_join. Used by the former when a later
     * formation redirects the predecessors of an existing region's
     * join block into a freshly inserted inception block: the earlier
     * region's hit edge and end trampolines are physically retargeted
     * by that redirect, so its claim record must follow.
     */
    void retargetJoins(ir::FuncId func, ir::BlockId old_join,
                       ir::BlockId new_join);

  private:
    std::vector<ReuseRegion> regions_;
};

} // namespace ccr::core

#endif // CCR_CORE_REGION_HH
