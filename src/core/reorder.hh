/**
 * @file
 * Dependence-safe instruction clustering within a basic block. The
 * selection process "attempts to reorder instructions to create larger
 * reuse sequences" (paper §4.4); this pass moves reuse-eligible
 * instructions into one contiguous run when dependences allow.
 */

#ifndef CCR_CORE_REORDER_HH
#define CCR_CORE_REORDER_HH

#include <functional>
#include <vector>

#include "ir/function.hh"

namespace ccr::core
{

/**
 * Reorder the non-terminator instructions of @p block so that the
 * instructions for which @p eligible returns true form one contiguous
 * cluster, preceded by their non-eligible dependence sources and
 * followed by everything else. All register (flow, anti, output) and
 * memory dependences are preserved; relative order within each group
 * is the original program order. Returns true when the order changed.
 */
bool clusterReorder(
    ir::Function &func, ir::BlockId block,
    const std::function<bool(const ir::Inst &)> &eligible);

} // namespace ccr::core

#endif // CCR_CORE_REORDER_HH
