#include "core/region.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ccr::core
{

std::string
ReuseRegion::group() const
{
    const auto inputs = static_cast<int>(liveIns.size());
    const auto mem = static_cast<int>(memStructs.size());

    if (memStructs.empty()) {
        // Paper buckets are cumulative-with-exclusion: SL_8 includes
        // SL_7 but not SL_6 when SL_6 is also reported.
        if (inputs <= 4)
            return "SL_4";
        if (inputs <= 6)
            return "SL_6";
        if (inputs <= 8)
            return "SL_8";
        return "OTHER";
    }
    if (mem == 1) {
        if (inputs <= 3)
            return "MD_3_1";
        if (inputs <= 6)
            return "MD_6_1";
        return "OTHER";
    }
    if (mem == 2 && inputs <= 2)
        return "MD_2_2";
    if (mem == 3 && inputs <= 2)
        return "MD_2_3";
    return "OTHER";
}

void
RegionTable::add(ReuseRegion region)
{
    ccr_assert(region.id != ir::kNoRegion, "region without id");
    regions_.push_back(std::move(region));
}

void
RegionTable::remapIds(
    const std::unordered_map<ir::RegionId, ir::RegionId> &remap)
{
    for (auto &r : regions_)
        r.id = remap.at(r.id);
}

void
RegionTable::retargetJoins(ir::FuncId func, ir::BlockId old_join,
                           ir::BlockId new_join)
{
    for (auto &r : regions_) {
        if (r.func == func && r.join == old_join)
            r.join = new_join;
    }
}

const ReuseRegion *
RegionTable::find(ir::RegionId id) const
{
    const auto it = std::find_if(
        regions_.begin(), regions_.end(),
        [id](const ReuseRegion &r) { return r.id == id; });
    return it == regions_.end() ? nullptr : &*it;
}

} // namespace ccr::core
