#include "core/eligibility.hh"

namespace ccr::core
{

namespace
{

/** Opcodes that may never appear inside a reuse region. */
bool
opcodeAllowed(ir::Opcode op)
{
    switch (op) {
      case ir::Opcode::Store:
      case ir::Opcode::Call:
      case ir::Opcode::Alloc:
      case ir::Opcode::Ret:
      case ir::Opcode::Halt:
      case ir::Opcode::Reuse:
      case ir::Opcode::Invalidate:
        return false;
      default:
        return true;
    }
}

/** Glue instructions are always value-invariant. */
bool
isGlue(const ir::Inst &inst)
{
    return inst.op == ir::Opcode::MovI || inst.op == ir::Opcode::MovGA
           || inst.op == ir::Opcode::Nop;
}

} // namespace

Ineligible
Eligibility::classify(ir::FuncId f, const ir::Inst &inst) const
{
    if (!opcodeAllowed(inst.op))
        return Ineligible::BadOpcode;
    if (isGlue(inst))
        return Ineligible::Eligible;

    if (inst.isLoad()) {
        if (!alias_.loadDeterminable(f, inst))
            return Ineligible::NotDeterminable;
    }

    const auto *p = prof_.instProfile(f, inst.uid);
    if (p == nullptr || p->exec == 0) {
        // Never executed during training: including it costs nothing
        // and lets cold side paths stay inside regions.
        return Ineligible::Eligible;
    }

    // Eq. (1): top-k input tuples must cover fraction R of executions.
    if (p->invarianceTopK(policy_.invariantValues)
        < policy_.instReuseThreshold) {
        return Ineligible::LowInvariance;
    }

    // Eq. (2) for loads: the loaded locations must be mostly unmodified
    // between accesses.
    if (inst.isLoad()
        && p->memReuseFraction() < policy_.memReuseThreshold) {
        return Ineligible::LowMemReuse;
    }

    return Ineligible::Eligible;
}

double
Eligibility::seedScore(ir::FuncId f, const ir::Inst &inst) const
{
    const auto *p = prof_.instProfile(f, inst.uid);
    if (p == nullptr || p->exec == 0)
        return 0.0;
    return static_cast<double>(p->exec)
           * p->invarianceTopK(policy_.invariantValues);
}

std::uint64_t
Eligibility::execWeight(ir::FuncId f, const ir::Inst &inst) const
{
    const auto *p = prof_.instProfile(f, inst.uid);
    return p == nullptr ? 0 : p->exec;
}

bool
Eligibility::likelyDirection(ir::FuncId f, const ir::Inst &inst,
                             bool &taken_out) const
{
    const auto *p = prof_.instProfile(f, inst.uid);
    if (p == nullptr || p->exec == 0)
        return false;
    const double taken = p->takenFraction();
    if (taken >= policy_.likelyEdgeMin) {
        taken_out = true;
        return true;
    }
    if (1.0 - taken >= policy_.likelyEdgeMin) {
        taken_out = false;
        return true;
    }
    return false;
}

} // namespace ccr::core
