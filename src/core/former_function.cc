/**
 * @file
 * Function-level RCR formation — the paper's §6 compiler-domain future
 * work: "directing the CCR architecture at the function level could
 * potentially reduce a significant amount of time spent executing
 * calling convention and spill codes."
 *
 * A call site qualifies when the callee is pure (no stores, no
 * allocation, only determinable loads, transitively), the argument
 * tuple recurs per the instruction-level invariance heuristic, and the
 * callee reads at most the policy's number of memory structures. The
 * transformation wraps the *call instruction itself* in a region: the
 * `reuse` instruction guards a block holding only the call, the call
 * carries the region-end marker, and the hardware commits the CI when
 * the matching return retires — skipping the call, the callee body,
 * and the return on every hit.
 */

#include <unordered_set>

#include "core/former.hh"
#include "core/transform.hh"
#include "support/logging.hh"

namespace ccr::core
{

namespace
{

/** All functions reachable through calls from @p root, including it. */
void
collectCallTree(const ir::Module &mod, ir::FuncId root,
                std::unordered_set<ir::FuncId> &out)
{
    if (!out.insert(root).second)
        return;
    const auto &func = mod.function(root);
    for (const auto &bb : func.blocks()) {
        for (const auto &inst : bb.insts()) {
            if (inst.op == ir::Opcode::Call)
                collectCallTree(mod, inst.callee, out);
        }
    }
}

} // namespace

void
RegionFormer::formFunctionLevelRegions(ir::Function &func)
{
    const ir::FuncId fid = func.id();

    // Block count grows as we transform; only scan the original span.
    const std::size_t original_blocks = func.numBlocks();
    for (std::size_t b = 0; b < original_blocks; ++b) {
        const auto block_id = static_cast<ir::BlockId>(b);
        ir::Inst call = func.block(block_id).terminator();
        if (call.op != ir::Opcode::Call || isClaimed(fid, call.uid))
            continue;
        const ir::FuncId callee = call.callee;

        // -- Callee-side conditions -----------------------------------
        if (!alias_.funcPure(callee))
            continue;
        const auto &reads = alias_.funcReads(callee);
        if (!reads.empty() && !reads.onlyNamedGlobals())
            continue;
        std::vector<ir::GlobalId> structs;
        for (const auto g : reads.globals) {
            if (!mod_.global(g).isConst)
                structs.push_back(g);
        }
        if (static_cast<int>(structs.size()) > policy_.maxMemStructs)
            continue;
        if (!structs.empty() && !policy_.enableMemoryDependent)
            continue;
        const auto &cf = mod_.function(callee);
        if (cf.numInsts()
            < static_cast<std::size_t>(policy_.minRegionInsts)) {
            continue;
        }

        // -- Call-site conditions -------------------------------------
        const auto *p = prof_.instProfile(fid, call.uid);
        if (p == nullptr || p->exec < policy_.minSeedWeight)
            continue;
        if (p->invarianceTopK(policy_.invariantValues)
            < policy_.instReuseThreshold) {
            continue;
        }

        // -- Transform -------------------------------------------------
        const ir::RegionId rid = mod_.newRegionId();
        const ir::BlockId cont = call.target;

        const ir::BlockId inception = func.newBlock();
        ir::BlockId body_entry;
        if (func.block(block_id).size() > 1) {
            body_entry = splitBlock(func, block_id,
                                    func.block(block_id).size() - 1);
            ir::Inst j;
            j.op = ir::Opcode::Jump;
            j.target = inception;
            j.uid = func.newUid();
            func.block(block_id).insts().push_back(j);
        } else {
            body_entry = block_id;
            redirectTarget(func, body_entry, inception);
            table_.retargetJoins(fid, body_entry, inception);
        }

        {
            ir::Inst r;
            r.op = ir::Opcode::Reuse;
            r.regionId = rid;
            r.target = cont;
            r.target2 = body_entry;
            r.uid = func.newUid();
            claim(fid, r.uid);
            func.block(inception).insts().push_back(r);
        }

        // Mark the call as the region end: the CRB controller commits
        // the CI when the matching return retires.
        {
            ir::Inst &marked = func.block(body_entry).terminator();
            ccr_assert(marked.op == ir::Opcode::Call,
                       "function-level body is not a call");
            marked.ext.regionEnd = true;
            claim(fid, marked.uid);
        }

        // The callee tree belongs to this region now: no inner regions.
        std::unordered_set<ir::FuncId> tree;
        collectCallTree(mod_, callee, tree);
        std::size_t callee_insts = 0;
        for (const auto cfid : tree) {
            const auto &tf = mod_.function(cfid);
            callee_insts += tf.numInsts();
            for (const auto &bb2 : tf.blocks()) {
                for (const auto &inst : bb2.insts())
                    claim(cfid, inst.uid);
            }
        }

        ReuseRegion region;
        region.id = rid;
        region.func = fid;
        region.cyclic = false;
        region.functionLevel = true;
        region.inception = inception;
        region.bodyEntry = body_entry;
        region.join = cont;
        region.memberBlocks.push_back(body_entry);
        for (int i = 0; i < call.numArgs; ++i)
            region.liveIns.push_back(call.args[i]);
        if (call.dst != ir::kNoReg)
            region.liveOuts.push_back(call.dst);
        region.memStructs = structs;
        region.usesMemory = !reads.empty();
        // The skipped execution includes call, body, and return.
        region.staticInsts = static_cast<int>(callee_insts) + 1;
        region.profileWeight = p->exec;
        table_.add(std::move(region));
        ++stats_.functionLevelFormed;
    }
}

} // namespace ccr::core
