/**
 * @file
 * CFG surgery primitives used by region formation: block splitting,
 * target redirection, and exit/end trampolines.
 */

#ifndef CCR_CORE_TRANSFORM_HH
#define CCR_CORE_TRANSFORM_HH

#include "ir/function.hh"

namespace ccr::core
{

/**
 * Move instructions [idx, end) of @p block into a fresh block and
 * return its id. The original block is left *unterminated*; the caller
 * must append a terminator. Existing branches to @p block still enter
 * the retained prefix.
 */
ir::BlockId splitBlock(ir::Function &func, ir::BlockId block,
                       std::size_t idx);

/**
 * Rewrite every control-flow reference to @p from (branch targets,
 * call continuations, reuse targets, and the function entry) so it
 * points to @p to. Blocks for which @p exclude is true are skipped
 * (used to preserve loop back edges).
 */
void redirectTarget(ir::Function &func, ir::BlockId from, ir::BlockId to,
                    const std::vector<bool> *exclude = nullptr);

/**
 * Create a block containing a single `jump @p dest` carrying the given
 * region end/exit markers, and return its id.
 */
ir::BlockId makeTrampoline(ir::Function &func, ir::BlockId dest,
                           bool region_end, bool region_exit);

/** Replace occurrences of target @p from with @p to in @p term only. */
void retargetInst(ir::Inst &term, ir::BlockId from, ir::BlockId to);

} // namespace ccr::core

#endif // CCR_CORE_TRANSFORM_HH
