#include "core/transform.hh"

#include "support/logging.hh"

namespace ccr::core
{

ir::BlockId
splitBlock(ir::Function &func, ir::BlockId block, std::size_t idx)
{
    const ir::BlockId fresh = func.newBlock();
    auto &src = func.block(block).insts();
    ccr_assert(idx <= src.size(), "split index out of range");
    auto &dst = func.block(fresh).insts();
    dst.assign(std::make_move_iterator(src.begin()
                                       + static_cast<std::ptrdiff_t>(idx)),
               std::make_move_iterator(src.end()));
    src.erase(src.begin() + static_cast<std::ptrdiff_t>(idx), src.end());
    return fresh;
}

void
retargetInst(ir::Inst &term, ir::BlockId from, ir::BlockId to)
{
    switch (term.op) {
      case ir::Opcode::Br:
      case ir::Opcode::Reuse:
        if (term.target == from)
            term.target = to;
        if (term.target2 == from)
            term.target2 = to;
        break;
      case ir::Opcode::Jump:
      case ir::Opcode::Call:
        if (term.target == from)
            term.target = to;
        break;
      default:
        break;
    }
}

void
redirectTarget(ir::Function &func, ir::BlockId from, ir::BlockId to,
               const std::vector<bool> *exclude)
{
    for (auto &bb : func.blocks()) {
        if (bb.id() == to)
            continue;
        if (exclude && bb.id() < exclude->size() && (*exclude)[bb.id()])
            continue;
        if (!bb.empty())
            retargetInst(bb.terminator(), from, to);
    }
    if (func.entry() == from)
        func.setEntry(to);
}

ir::BlockId
makeTrampoline(ir::Function &func, ir::BlockId dest, bool region_end,
               bool region_exit)
{
    const ir::BlockId tramp = func.newBlock();
    ir::Inst jump;
    jump.op = ir::Opcode::Jump;
    jump.target = dest;
    jump.ext.regionEnd = region_end;
    jump.ext.regionExit = region_exit;
    jump.uid = func.newUid();
    func.block(tramp).insts().push_back(jump);
    return tramp;
}

} // namespace ccr::core
