/**
 * @file
 * Reusable Computation Region formation (paper §4.3-4.4).
 *
 * The RegionFormer consumes RPS profiles, alias information, and a
 * ReusePolicy, selects cyclic (inner-loop) and acyclic (path) regions,
 * and rewrites the module in place: it inserts `reuse` instructions at
 * inception points, region-end/exit trampolines, live-out markers, and
 * `invalidate` instructions after aliasing stores. The returned
 * RegionTable describes every formed region for the hardware model and
 * the evaluation harnesses.
 */

#ifndef CCR_CORE_FORMER_HH
#define CCR_CORE_FORMER_HH

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/alias.hh"
#include "analysis/ranges.hh"
#include "core/eligibility.hh"
#include "core/policy.hh"
#include "core/region.hh"
#include "ir/module.hh"
#include "profile/profiles.hh"

namespace ccr::core
{

/** Aggregate statistics about one formation run. */
struct FormationStats
{
    int cyclicFormed = 0;
    int acyclicFormed = 0;
    int functionLevelFormed = 0;
    int seedsRejected = 0;
    int invalidationsPlaced = 0;

    /** Invalidations the Andersen path would have placed but the
     *  range claims proved unnecessary (store misses every claimed
     *  byte range). */
    int invalidationsElided = 0;
    int blocksReordered = 0;
};

/** Forms RCRs over a module. One-shot: construct, call formAll(). */
class RegionFormer
{
  public:
    RegionFormer(ir::Module &mod, const profile::ProfileData &prof,
                 const analysis::AliasAnalysis &alias,
                 ReusePolicy policy = {});

    /** Run cyclic + acyclic formation and invalidation placement.
     *  Mutates the module; returns the region table. */
    RegionTable formAll();

    const FormationStats &stats() const { return stats_; }

  private:
    /** One contiguous piece of a planned acyclic region. */
    struct Segment
    {
        ir::BlockId block = ir::kNoBlock;
        std::size_t begin = 0;
        std::size_t end = 0; // exclusive
    };

    ir::Module &mod_;
    const profile::ProfileData &prof_;
    const analysis::AliasAnalysis &alias_;
    ReusePolicy policy_;
    Eligibility elig_;
    RegionTable table_;
    FormationStats stats_;

    /** Instructions already inside a region (or inserted by one). */
    std::vector<std::unordered_set<ir::InstUid>> claimed_;
    /** Seeds that failed to grow into a profitable region. */
    std::vector<std::unordered_set<ir::InstUid>> rejected_;

    bool isClaimed(ir::FuncId f, ir::InstUid uid) const;
    void claim(ir::FuncId f, ir::InstUid uid);

    void formCyclicRegions(ir::Function &func);
    void formAcyclicRegions(ir::Function &func);
    void formFunctionLevelRegions(ir::Function &func);
    void renumberByWeight();
    void placeInvalidations();

    /**
     * Refine each memory-dependent region's claims from whole
     * structures to `g[lo..hi]` byte ranges using the access-range
     * inference (policy.rangeMemClaims). Runs after formation (the
     * CFG is final) and before placeInvalidations, which consumes the
     * ranges to elide provably non-overlapping invalidations. Struct
     * *membership* stays exactly Andersen's answer; only the claimed
     * extent within each struct narrows.
     */
    void annotateMemRanges();

    /** Lazily built per-function access-range analysis over the
     *  post-formation IR (cache valid because placeInvalidations only
     *  inserts register-free Invalidate instructions). */
    const analysis::RangeAnalysis &rangesFor(ir::FuncId f);
    std::unordered_map<ir::FuncId,
                       std::unique_ptr<analysis::RangeAnalysis>>
        rangeCache_;

    /** Stamp each formed region with its static instruction mix (by
     *  FuClass) and the loop depth of its body entry — evaluation
     *  metadata for per-type / per-structure decanting. */
    void annotateRegionStats();

    /** Try to grow and apply one acyclic region in @p func.
     *  Returns true when a region was formed. */
    bool formOneAcyclic(ir::Function &func);

    /** Grow the segment plan from a seed; empty result = rejected. */
    std::vector<Segment> growFromSeed(const ir::Function &func,
                                      ir::BlockId seed_block,
                                      std::size_t seed_idx);

    /** Gather distinct external-read registers of a segment plan. */
    std::vector<ir::Reg> planLiveIns(const ir::Function &func,
                                     const std::vector<Segment> &segs)
        const;

    /** Distinct non-const memory structures read by the plan. */
    std::vector<ir::GlobalId> planMemStructs(
        const ir::Function &func,
        const std::vector<Segment> &segs) const;

    /** Live-out registers of the plan on the current CFG. */
    std::vector<ir::Reg> planLiveOuts(const ir::Function &func,
                                      const std::vector<Segment> &segs)
        const;

    /** Apply the transformation for an acyclic plan. */
    void applyAcyclic(ir::Function &func, std::vector<Segment> segs);
};

} // namespace ccr::core

#endif // CCR_CORE_FORMER_HH
