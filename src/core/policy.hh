/**
 * @file
 * Reuse selection policy: the heuristic thresholds of paper §4.4. The
 * defaults are the published values; benches ablate them.
 */

#ifndef CCR_CORE_POLICY_HH
#define CCR_CORE_POLICY_HH

#include <cstdint>

namespace ccr::core
{

/** Knobs of the RCR formation heuristics. */
struct ReusePolicy
{
    /** R in eq. (1): minimum fraction of an instruction's executions
     *  covered by its top-k input tuples ("empirical evaluation found
     *  setting R and Rm to .65 ... produces good instances"). */
    double instReuseThreshold = 0.65;

    /** Rm in eq. (2): minimum memory-reuse fraction for loads. */
    double memReuseThreshold = 0.65;

    /** k: "the number of invariant values to five". */
    int invariantValues = 5;

    /** "the total number of live-in and live-out registers within a
     *  computation region are limited to eight" — also the CI register
     *  bank capacity (paper §5.1). */
    int maxLiveIns = 8;
    int maxLiveOuts = 8;

    /** Accordance heuristic: "limits the number of distinguishable
     *  memory elements to four". */
    int maxMemStructs = 4;

    /** Cyclic thresholds: "greater than 40% opportunity to reuse
     *  results" and "greater than 60% of the loop invocations have
     *  multiple loop iterations". */
    double cyclicReuseMin = 0.40;
    double cyclicMultiIterMin = 0.60;

    /** Control-flow edge considered likely when its weight is >= 60%
     *  of Exec(i). */
    double likelyEdgeMin = 0.60;

    /** Minimum profile weight for a seed instruction (ignore cold
     *  code; not in the paper, standard profile-guided practice). */
    std::uint64_t minSeedWeight = 64;

    /** Minimum static instructions for an acyclic region to be worth a
     *  reuse instruction (the paper reports ~10 replaced on average). */
    int minRegionInsts = 4;

    /** Practical upper bound on region size. */
    int maxRegionInsts = 128;

    /** Enable the instruction-reordering step that clusters reusable
     *  instructions ("the selection process attempts to reorder
     *  instructions to create larger reuse sequences"). */
    bool allowReorder = true;

    /** Enable cyclic (inner-loop) region formation. */
    bool enableCyclic = true;

    /** Enable acyclic region formation. */
    bool enableAcyclic = true;

    /**
     * Permit acyclic seeds inside natural loops. Loop bodies tend to
     * consume loop-carried registers (induction variables,
     * accumulators) whose values never recur, producing regions that
     * thrash the CRB; cyclic formation owns loops instead. Off by
     * default; the heuristics ablation flips it.
     */
    bool seedInsideLoops = false;

    /** Enable memory-dependent regions (ablation: SL-only). */
    bool enableMemoryDependent = true;

    /**
     * Enable function-level regions (paper §6 future work): memoize
     * whole calls to pure functions whose argument tuples recur,
     * skipping calling convention and body alike on a hit. Off by
     * default to match the paper's evaluated configuration.
     */
    bool enableFunctionLevel = false;

    /**
     * Use symbolic access-range inference (analysis/ranges.hh) to
     * refine memory-dependent claims to `g[lo..hi]` byte ranges:
     * stores provably outside every claimed range elide their
     * invalidation statically, and the reuse schemes skip invalidates
     * whose store misses the claims dynamically. Off reverts to
     * whole-structure claims everywhere.
     */
    bool rangeMemClaims = true;
};

} // namespace ccr::core

#endif // CCR_CORE_POLICY_HH
