/**
 * @file
 * Per-instruction reuse eligibility: the Reuse(i) / MemReuse(i)
 * heuristic functions of paper §4.4 (eqs. 1 and 2), evaluated from RPS
 * profiles against a ReusePolicy.
 */

#ifndef CCR_CORE_ELIGIBILITY_HH
#define CCR_CORE_ELIGIBILITY_HH

#include "analysis/alias.hh"
#include "core/policy.hh"
#include "ir/module.hh"
#include "profile/profiles.hh"

namespace ccr::core
{

/** Why an instruction is not eligible (for diagnostics). */
enum class Ineligible : std::uint8_t
{
    Eligible,
    BadOpcode,        ///< store/call/alloc/ret/halt/reuse/invalidate
    LowInvariance,    ///< fails eq. (1)
    LowMemReuse,      ///< load fails eq. (2)
    NotDeterminable,  ///< load from anonymous memory
};

/** Evaluates instruction-level reuse heuristics. */
class Eligibility
{
  public:
    Eligibility(const ir::Module &mod,
                const profile::ProfileData &prof,
                const analysis::AliasAnalysis &alias,
                const ReusePolicy &policy)
        : mod_(mod), prof_(prof), alias_(alias), policy_(policy)
    {}

    /**
     * Full eligibility check for including @p inst of function @p f in
     * an acyclic region. Control instructions are judged by their
     * operand invariance only; the likely-edge criterion is applied by
     * the path extender.
     */
    Ineligible classify(ir::FuncId f, const ir::Inst &inst) const;

    bool
    eligible(ir::FuncId f, const ir::Inst &inst) const
    {
        return classify(f, inst) == Ineligible::Eligible;
    }

    /** Reuse potential score used for seed ordering: invariance
     *  fraction weighted by execution count. */
    double seedScore(ir::FuncId f, const ir::Inst &inst) const;

    /** Exec(i) from the profile (0 when never executed). */
    std::uint64_t execWeight(ir::FuncId f, const ir::Inst &inst) const;

    /** True when the likelier direction of branch @p inst satisfies the
     *  60% edge criterion; @p taken_out receives that direction. */
    bool likelyDirection(ir::FuncId f, const ir::Inst &inst,
                         bool &taken_out) const;

    const ReusePolicy &policy() const { return policy_; }
    const analysis::AliasAnalysis &alias() const { return alias_; }

  private:
    const ir::Module &mod_;
    const profile::ProfileData &prof_;
    const analysis::AliasAnalysis &alias_;
    const ReusePolicy &policy_;
};

} // namespace ccr::core

#endif // CCR_CORE_ELIGIBILITY_HH
