/**
 * @file
 * Experiment harness: the canonical CCR evaluation flow used by the
 * examples, tests, and figure-reproduction benches.
 *
 * Flow (matching paper §5.1): build the workload, train-profile it
 * with the RPS, run region formation with the given policy, then
 * measure base and CCR cycle counts with the timing model and check
 * that both runs produced identical program output.
 */

#ifndef CCR_WORKLOADS_HARNESS_HH
#define CCR_WORKLOADS_HARNESS_HH

#include <memory>

#include "core/former.hh"
#include "lint/crosscheck.hh"
#include "lint/lint.hh"
#include "obs/report.hh"
#include "obs/trace.hh"
#include "profile/reuse_potential.hh"
#include "reuse/factory.hh"
#include "uarch/pipeline.hh"
#include "workloads/workload.hh"

namespace ccr::workloads
{

/** Everything configurable about one experiment run. */
struct RunConfig
{
    core::ReusePolicy policy;
    uarch::CrbParams crb;
    uarch::PipelineParams pipe;

    /**
     * Which reuse mechanism to attach to the timed CCR run (built via
     * reuse::makeScheme). SchemeKind::None skips profiling and region
     * formation entirely and runs the untransformed module with no
     * handler — cycle-identical to the base machine.
     */
    reuse::SchemeKind scheme = reuse::SchemeKind::Crb;

    /** DTM geometry (read only when scheme == SchemeKind::Dtm). */
    reuse::DtmParams dtm;

    /** Input set used for the training/profiling pass. */
    InputSet profileInput = InputSet::Train;

    /** Input set used for the timed base and CCR runs. */
    InputSet measureInput = InputSet::Train;

    /** Run the classic optimizer (inlining, unrolling, folding, CSE,
     *  DCE) on both the base and the CCR module before measuring —
     *  the paper's "best base code" baseline. */
    bool optimizeBase = false;

    /** Safety cap on emulated instructions per run. */
    std::uint64_t maxInsts = 200'000'000ULL;

    /**
     * What happens when a run exhausts maxInsts before halting:
     * fatal (the offline driver's historical behavior — a bench
     * sweep with too small a budget should stop loudly) or, when
     * false, a structured result with RunResult::completed == false
     * and the offending stage named. The `ccrd` server runs
     * untrusted budgets and always turns this off: budget
     * exhaustion there is sandbox containment, not operator error.
     */
    bool budgetFatal = true;

    /**
     * Observability knob: when enabled, the CCR run carries an
     * event-trace ring buffer (CRB hit/miss/invalidate/evict/memo
     * events plus pipeline interval snapshots) exposed via
     * RunResult::trace. Off by default — the fast path then performs
     * no tracing work and no allocations. The SimReport metric
     * snapshot (RunResult::report) is always produced; it does not
     * affect simulated results either way.
     */
    obs::TelemetryOptions telemetry;
};

/**
 * Results of one experiment run.
 *
 * The machine-readable surface is `report` (an obs::RunReport feeding
 * SimReport JSON/CSV): every event count — CRB queries/hits, cache
 * misses, mispredicts, per-region attribution — lives in
 * `report.metrics` and `report.regions` under the names documented in
 * obs/metrics.hh. Only the cycle/instruction headlines and the
 * structural results (regions, formation stats) are mirrored as
 * struct fields for convenience.
 */
struct RunResult
{
    uarch::TimingResult base;
    uarch::TimingResult ccr;
    core::RegionTable regions;
    core::FormationStats formation;

    /** SimReport entry for this run: config snapshot, merged metric
     *  registry, derived metrics, per-region attribution. */
    obs::RunReport report;

    /** Event trace of the CCR run; non-null only when
     *  RunConfig::telemetry.enabled was set. */
    std::shared_ptr<obs::TraceSink> trace;

    bool outputsMatch = false;

    /** False when a stage ran out of instruction budget before
     *  halting (only possible with RunConfig::budgetFatal off).
     *  The timed numbers and report are then partial and
     *  outputsMatch is meaningless. */
    bool completed = true;

    /** Which stage hit the budget: "base", "profile", or "ccr"
     *  (empty when completed). */
    std::string incompleteStage;

    /** Delegates to the obs derived-metric conventions (0 when the
     *  CCR run recorded no cycles). */
    double speedup() const
    {
        return obs::speedup(base.cycles, ccr.cycles);
    }

    /** Fraction of base dynamic instructions eliminated by reuse;
     *  obs conventions (clamped to [0, 1], 0 on empty base). */
    double instsEliminated() const
    {
        return obs::fractionEliminated(base.insts, ccr.insts);
    }
};

class ExperimentCache;

/** Run the full CCR experiment for one workload. */
RunResult runCcrExperiment(const std::string &workload_name,
                           const RunConfig &config);

/**
 * Cache-aware variant: the module build (+ optional classic
 * optimization), the RPS training profile, and the base-machine timed
 * run are fetched from @p cache, so repeated runs of the same
 * workload under different CRB geometries or reuse policies pay those
 * stages once. Results are bit-identical to the uncached flow — every
 * cached stage is a deterministic function of its key. A null
 * @p cache falls back to the uncached flow.
 */
RunResult runCcrExperiment(const std::string &workload_name,
                           const RunConfig &config,
                           ExperimentCache *cache);

/** Result of lintWorkload(): the formed regions plus the static
 *  audit and (optionally) the dynamic replay cross-check. */
struct WorkloadLintResult
{
    core::RegionTable regions;
    core::FormationStats formation;
    lint::LintResult lint;

    /** Populated only when the cross-check ran. */
    lint::CrossCheckResult cross;
    bool ranCrossCheck = false;

    bool
    ok() const
    {
        return lint.ok() && (!ranCrossCheck || cross.ok());
    }
};

/**
 * Build + train-profile + form regions for @p workload_name (the same
 * compilation flow as runCcrExperiment, minus the timed runs), then
 * statically lint the transformed module against the former's claims.
 * With @p run_crosscheck the workload is additionally replayed on the
 * emulator with no reuse hardware, validating every observed region
 * execution against the claims (lint::crossCheck).
 */
WorkloadLintResult lintWorkload(const std::string &workload_name,
                                const core::ReusePolicy &policy = {},
                                bool run_crosscheck = false,
                                std::uint64_t max_insts
                                = 200'000'000ULL);

/**
 * Instance form of lintWorkload, for workloads that exist only in
 * memory and must be audited *before* they are registered anywhere —
 * the `ccrd` server's admission gate for untrusted inline `.lc`
 * submissions. @p workload's module is profiled and transformed in
 * place; pass a throwaway build.
 */
WorkloadLintResult lintWorkload(const Workload &workload,
                                const core::ReusePolicy &policy = {},
                                bool run_crosscheck = false,
                                std::uint64_t max_insts
                                = 200'000'000ULL);

/** Profile-only helper: the RPS profile of a training run. */
profile::ProfileData profileWorkload(const Workload &workload,
                                     InputSet set,
                                     std::uint64_t max_insts
                                     = 200'000'000ULL);

/** Figure 4 helper: the block/region reuse-potential limit study. */
profile::PotentialResult measurePotential(const std::string &name,
                                          InputSet set,
                                          profile::PotentialParams params
                                          = {});

} // namespace ccr::workloads

#endif // CCR_WORKLOADS_HARNESS_HH
