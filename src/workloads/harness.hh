/**
 * @file
 * Experiment harness: the canonical CCR evaluation flow used by the
 * examples, tests, and figure-reproduction benches.
 *
 * Flow (matching paper §5.1): build the workload, train-profile it
 * with the RPS, run region formation with the given policy, then
 * measure base and CCR cycle counts with the timing model and check
 * that both runs produced identical program output.
 */

#ifndef CCR_WORKLOADS_HARNESS_HH
#define CCR_WORKLOADS_HARNESS_HH

#include <unordered_map>

#include "core/former.hh"
#include "profile/reuse_potential.hh"
#include "uarch/crb.hh"
#include "uarch/pipeline.hh"
#include "workloads/workload.hh"

namespace ccr::workloads
{

/** Everything configurable about one experiment run. */
struct RunConfig
{
    core::ReusePolicy policy;
    uarch::CrbParams crb;
    uarch::PipelineParams pipe;

    /** Input set used for the training/profiling pass. */
    InputSet profileInput = InputSet::Train;

    /** Input set used for the timed base and CCR runs. */
    InputSet measureInput = InputSet::Train;

    /** Run the classic optimizer (inlining, unrolling, folding, CSE,
     *  DCE) on both the base and the CCR module before measuring —
     *  the paper's "best base code" baseline. */
    bool optimizeBase = false;

    /** Safety cap on emulated instructions per run. */
    std::uint64_t maxInsts = 200'000'000ULL;
};

/** Results of one experiment run. */
struct RunResult
{
    uarch::TimingResult base;
    uarch::TimingResult ccr;
    core::RegionTable regions;
    core::FormationStats formation;

    std::uint64_t crbQueries = 0;
    std::uint64_t crbHits = 0;
    std::uint64_t crbInvalidates = 0;
    std::unordered_map<ir::RegionId, std::uint64_t> hitsByRegion;

    bool outputsMatch = false;

    double
    speedup() const
    {
        return ccr.cycles == 0
                   ? 0.0
                   : static_cast<double>(base.cycles)
                         / static_cast<double>(ccr.cycles);
    }

    /** Fraction of base dynamic instructions eliminated by reuse. */
    double
    instsEliminated() const
    {
        if (base.insts == 0)
            return 0.0;
        const double removed =
            static_cast<double>(base.insts)
            - static_cast<double>(ccr.insts);
        return removed <= 0.0
                   ? 0.0
                   : removed / static_cast<double>(base.insts);
    }
};

class ExperimentCache;

/** Run the full CCR experiment for one workload. */
RunResult runCcrExperiment(const std::string &workload_name,
                           const RunConfig &config);

/**
 * Cache-aware variant: the module build (+ optional classic
 * optimization), the RPS training profile, and the base-machine timed
 * run are fetched from @p cache, so repeated runs of the same
 * workload under different CRB geometries or reuse policies pay those
 * stages once. Results are bit-identical to the uncached flow — every
 * cached stage is a deterministic function of its key. A null
 * @p cache falls back to the uncached flow.
 */
RunResult runCcrExperiment(const std::string &workload_name,
                           const RunConfig &config,
                           ExperimentCache *cache);

/** Profile-only helper: the RPS profile of a training run. */
profile::ProfileData profileWorkload(const Workload &workload,
                                     InputSet set,
                                     std::uint64_t max_insts
                                     = 200'000'000ULL);

/** Figure 4 helper: the block/region reuse-potential limit study. */
profile::PotentialResult measurePotential(const std::string &name,
                                          InputSet set,
                                          profile::PotentialParams params
                                          = {});

} // namespace ccr::workloads

#endif // CCR_WORKLOADS_HARNESS_HH
