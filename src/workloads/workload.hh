/**
 * @file
 * The synthetic benchmark suite. Each workload is an IR module built
 * against the public IRBuilder API plus an input generator, mirroring
 * the structure and value-locality behaviour of the paper's SPECINT92,
 * SPECINT95, UNIX, and MediaBench programs (DESIGN.md §4 documents the
 * correspondence).
 *
 * The same builder is called once for the base run and once for the
 * CCR run (modules are transformed in place), and the prepare()
 * callback fills the module's input globals for the selected input
 * set. Train and Ref sets differ in seed and in distribution shape so
 * that profile-guided decisions generalize imperfectly, as in the
 * paper's Figure 11 experiment.
 */

#ifndef CCR_WORKLOADS_WORKLOAD_HH
#define CCR_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "emu/machine.hh"
#include "ir/module.hh"

namespace ccr::workloads
{

/** Which input data set to run. */
enum class InputSet
{
    Train,
    Ref
};

/** A buildable benchmark. */
struct Workload
{
    std::string name;
    std::shared_ptr<ir::Module> module;

    /** Write the input data for @p set into the machine's memory. */
    std::function<void(emu::Machine &, InputSet)> prepare;

    /** Globals whose final contents define program output (used for
     *  base-vs-CCR equivalence checking). */
    std::vector<std::string> outputGlobals;
};

/** All benchmark names, in the paper's presentation order. */
std::vector<std::string> workloadNames();

/** Build a fresh instance of the named workload. Fatal on unknown
 *  names. */
Workload buildWorkload(const std::string &name);

/** Read the output globals of @p workload from @p machine (for
 *  correctness comparison between runs). */
std::vector<ir::Value> readOutputs(const emu::Machine &machine,
                                   const Workload &workload);

// -- individual builders (one per benchmark) --------------------------

Workload buildEspresso();
Workload buildSc();
Workload buildGo();
Workload buildM88ksim();
Workload buildGcc();
Workload buildCompress();
Workload buildLi();
Workload buildIjpeg();
Workload buildVortex();
Workload buildLex();
Workload buildYacc();
Workload buildMpeg2enc();
Workload buildPgpencode();

} // namespace ccr::workloads

#endif // CCR_WORKLOADS_WORKLOAD_HH
