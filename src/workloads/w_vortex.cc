/**
 * @file
 * `vortex` — models SPEC95 147.vortex (object-oriented database).
 * Transactions repeatedly validate the same objects: a validation
 * kernel chases type and bounds fields through two mutable tables
 * (an MD region over two distinguishable structures), while inserts
 * and updates are sparse. A stateless key-encode kernel rounds out the
 * mix.
 */

#include "workloads/heapscan.hh"
#include "workloads/support.hh"
#include "workloads/workload.hh"

#include "ir/builder.hh"

namespace ccr::workloads
{

namespace
{

constexpr std::size_t kMaxRequests = 16384;
constexpr int kObjects = 48;

using namespace ccr::ir;

/**
 * validate(obj): t = types[obj]; lim = limits[t & 7];
 * ok-chain with branches; returns a validation code.
 * Reads two distinguishable memory structures (MD_x_2 group).
 */
void
buildValidate(Module &mod, GlobalId types, GlobalId limits)
{
    Function &f = mod.addFunction("validate", 1);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId has_type = b.newBlock();
    const BlockId bad = b.newBlock();
    const BlockId tail = b.newBlock();
    f.setEntry(entry);

    const Reg obj = 0;
    const Reg code = b.reg();

    b.setInsertPoint(entry);
    const Reg tb = b.movGA(types);
    const Reg idx = b.andI(obj, kObjects - 1);
    const Reg t = b.load(b.add(tb, b.shlI(idx, 3)), 0);
    const Reg has = b.cmpNeI(t, 0);
    b.br(has, has_type, bad);

    b.setInsertPoint(has_type);
    const Reg lb = b.movGA(limits);
    const Reg lim = b.load(b.add(lb, b.shlI(b.andI(t, 7), 3)), 0);
    const Reg within = b.cmpLt(idx, lim);
    const Reg t9 = b.mulI(t, 9);
    b.binOpTo(code, Opcode::Add, t9, within);
    b.jump(tail);

    b.setInsertPoint(bad);
    b.movITo(code, -1);
    b.jump(tail);

    b.setInsertPoint(tail);
    const Reg folded = b.andI(code, 0xff);
    b.ret(folded);
}

/**
 * audit(obj, txn, flags, depth): transaction audit consulting the
 * object type table — a memory-dependent region with four register
 * inputs over one structure (the paper's MD_6_1 group).
 */
void
buildAudit(Module &mod, GlobalId types)
{
    Function &f = mod.addFunction("audit", 4);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg obj = 0;
    const Reg txn = 1;
    const Reg flags = 2;
    const Reg depth = 3;
    const Reg tb = b.movGA(types);
    const Reg t = b.load(
        b.add(tb, b.shlI(b.andI(obj, kObjects - 1), 3)), 0);
    const Reg m1 = b.mulI(t, 41);
    const Reg m2 = b.add(m1, b.mul(txn, depth));
    const Reg m3 = b.xorR(m2, b.shlI(flags, 3));
    const Reg m4 = b.xorR(m3, b.shrI(m3, 9));
    b.ret(b.andI(m4, 0xffff));
}

/** key_encode(key): stateless key hashing (Vortex's Chunk keys). */
void
buildKeyEncode(Module &mod)
{
    Function &f = mod.addFunction("key_encode", 1);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg key = 0;
    const Reg k1 = b.xorR(key, b.shrI(key, 11));
    const Reg k2 = b.mulI(k1, 0x45D9F3B);
    const Reg k3 = b.xorR(k2, b.shrI(k2, 9));
    const Reg k4 = b.andI(k3, 0xfffff);
    const Reg k5 = b.orR(k4, b.shlI(b.andI(key, 7), 20));
    b.ret(k5);
}

/** update_object(obj, t): re-types an object (mutator). */
void
buildUpdateObject(Module &mod, GlobalId types)
{
    Function &f = mod.addFunction("update_object", 2);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg obj = 0;
    const Reg t = 1;
    const Reg tb = b.movGA(types);
    const Reg idx = b.andI(obj, kObjects - 1);
    b.store(b.add(tb, b.shlI(idx, 3)), 0, t);
    b.ret();
}

void
buildMain(Module &mod, GlobalId objs, GlobalId nreq, GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);

    const BlockId entry = b.newBlock();
    const BlockId setup = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId c1 = b.newBlock();
    const BlockId c2 = b.newBlock();
    const BlockId c3 = b.newBlock();
    const BlockId c3b = b.newBlock();
    const BlockId do_upd = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId exit = b.newBlock();
    f.setEntry(entry);

    const Reg i = b.reg();
    const Reg acc = b.reg();

    b.setInsertPoint(entry);
    b.callVoid(mod.findFunction("chunk_init")->id(), {}, setup);

    b.setInsertPoint(setup);
    const Reg n = b.load(b.movGA(nreq), 0);
    const Reg obase = b.movGA(objs);
    b.movITo(i, 0);
    b.movITo(acc, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLt(i, n);
    b.br(more, body, exit);

    b.setInsertPoint(body);
    const Reg off = b.shlI(i, 3);
    const Reg req = b.load(b.add(obase, off), 0);
    const Reg obj = b.andI(req, 0xffff);
    const Reg code = b.call(mod.findFunction("validate")->id(), {obj},
                            c1);

    b.setInsertPoint(c1);
    const Reg enc = b.call(mod.findFunction("key_encode")->id(), {req},
                           c2);

    // Chunk-memory traversal: Vortex's object store lives on the
    // heap, invisible to the region former.
    b.setInsertPoint(c2);
    const Reg chunk = b.call(mod.findFunction("chunk_scan")->id(),
                             {obj}, c3);

    b.setInsertPoint(c3);
    const Reg txn = b.andI(b.shrI(req, 16), 3);
    const Reg flags = b.andI(b.shrI(req, 18), 7);
    const Reg depth = b.addI(b.andI(b.shrI(req, 21), 3), 1);
    const Reg au = b.call(mod.findFunction("audit")->id(),
                          {obj, txn, flags, depth}, c3b);

    b.setInsertPoint(c3b);
    b.binOpTo(acc, Opcode::Add, acc, au);
    b.binOpTo(acc, Opcode::Add, acc, chunk);
    const Reg d0 = b.mulI(i, 0x61C88647);
    b.binOpTo(acc, Opcode::Add, acc, b.andI(d0, 0x1f));
    b.binOpTo(acc, Opcode::Add, acc,
              b.add(code, b.andI(enc, 0xfff)));
    // ~2.5% of transactions mutate an object's type.
    const Reg updp = b.cmpEqI(b.andI(req, 0x7f0000), 0x130000);
    b.br(updp, do_upd, latch);

    b.setInsertPoint(do_upd);
    const Reg t = b.addI(b.andI(req, 7), 1);
    b.callVoid(mod.findFunction("update_object")->id(), {obj, t},
               latch);

    b.setInsertPoint(latch);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    b.store(b.movGA(out), 0, acc);
    b.halt();
}

} // namespace

Workload
buildVortex()
{
    auto mod = std::make_shared<ir::Module>("vortex");

    const GlobalId types = mod->addGlobal("obj_types", kObjects * 8).id;
    const GlobalId limits = mod->addGlobal("type_limits", 8 * 8).id;
    const GlobalId objs =
        mod->addGlobal("txn_stream", kMaxRequests * 8).id;
    const GlobalId nreq = mod->addGlobal("n_requests", 8).id;
    const GlobalId out = mod->addGlobal("out_sum", 8).id;

    buildValidate(*mod, types, limits);
    buildAudit(*mod, types);
    buildKeyEncode(*mod);
    buildUpdateObject(*mod, types);
    addHeapScan(*mod, "chunk", 256, 10, 0xF0AC1ULL);
    buildMain(*mod, objs, nreq, out);
    mod->setEntryFunction(mod->findFunction("main")->id());

    Workload w;
    w.name = "vortex";
    w.module = mod;
    w.outputGlobals = {"out_sum"};
    w.prepare = [](emu::Machine &machine, InputSet set) {
        const bool train = set == InputSet::Train;
        Rng rng(train ? 0xF0'0001 : 0xF0'0002);
        const std::size_t n = train ? 5200 : 6800;
        // Transactions revisit a small hot set of objects.
        const auto txns = zipfRequests(
            rng, n, train ? 16 : 22, train ? 1.5 : 1.4, [](Rng &r) {
                return static_cast<std::int64_t>(r.nextBelow(1 << 23));
            });
        std::vector<std::int64_t> types(kObjects);
        for (auto &t : types)
            t = static_cast<std::int64_t>(rng.nextBelow(8));
        std::vector<std::int64_t> limits(8);
        for (auto &l : limits)
            l = static_cast<std::int64_t>(8 + rng.nextBelow(40));
        fillGlobal64(machine, "obj_types", types);
        fillGlobal64(machine, "type_limits", limits);
        fillGlobal64(machine, "txn_stream", txns);
        setGlobal64(machine, "n_requests",
                    static_cast<std::int64_t>(n));
    };
    return w;
}

} // namespace ccr::workloads
