#include "workloads/workload.hh"

#include "support/logging.hh"
#include "workloads/corpus.hh"

namespace ccr::workloads
{

std::vector<std::string>
workloadNames()
{
    return {"espresso", "sc",     "go",     "m88ksim",  "gcc",
            "compress", "li",     "ijpeg",  "vortex",   "lex",
            "yacc",     "mpeg2enc", "pgpencode"};
}

Workload
buildWorkload(const std::string &name)
{
    if (name == "espresso")
        return buildEspresso();
    if (name == "sc")
        return buildSc();
    if (name == "go")
        return buildGo();
    if (name == "m88ksim")
        return buildM88ksim();
    if (name == "gcc")
        return buildGcc();
    if (name == "compress")
        return buildCompress();
    if (name == "li")
        return buildLi();
    if (name == "ijpeg")
        return buildIjpeg();
    if (name == "vortex")
        return buildVortex();
    if (name == "lex")
        return buildLex();
    if (name == "yacc")
        return buildYacc();
    if (name == "mpeg2enc")
        return buildMpeg2enc();
    if (name == "pgpencode")
        return buildPgpencode();
    if (isCorpusWorkload(name))
        return buildCorpusWorkload(name);
    ccr_fatal("unknown workload '", name, "'");
}

std::vector<ir::Value>
readOutputs(const emu::Machine &machine, const Workload &workload)
{
    std::vector<ir::Value> values;
    const auto &mod = machine.module();
    for (const auto &name : workload.outputGlobals) {
        for (std::size_t i = 0; i < mod.numGlobals(); ++i) {
            const auto &g = mod.global(static_cast<ir::GlobalId>(i));
            if (g.name != name)
                continue;
            const emu::Addr base = machine.globalAddr(g.id);
            for (std::uint64_t off = 0; off + 8 <= g.sizeBytes;
                 off += 8) {
                values.push_back(machine.memory().read(
                    base + off, ir::MemSize::Dword, false));
            }
        }
    }
    return values;
}

} // namespace ccr::workloads
