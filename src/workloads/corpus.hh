/**
 * @file
 * The on-disk workload corpus: `.lc` files parsed by the ccr_text
 * frontend and registered as workloads, so new benchmarks are a file
 * drop instead of a C++ rebuild.
 *
 * A corpus file is a complete `.lc` module plus `;!` pragma directives
 * describing its inputs and outputs (see docs/WORKLOADS.md):
 *
 *     ;! workload <name>
 *     ;! output <global>
 *     ;! set <train|ref|both> <global> <int>
 *     ;! fill <train|ref|both> <global> zipf seed=<u64> n=<u64>
 *     ;!      distinct=<u64> theta=<float> max=<int>   (one line)
 *     ;! fill <train|ref|both> <global> uniform seed=<u64> n=<u64>
 *     ;!      max=<int>                                (one line)
 *
 * Corpus workloads are deliberately kept out of workloadNames(): the
 * figure benches reproduce the paper's fixed 13-benchmark suite.
 * Everything else (harness, parallel driver, ExperimentCache,
 * SimReport) treats them identically to built-in workloads.
 */

#ifndef CCR_WORKLOADS_CORPUS_HH
#define CCR_WORKLOADS_CORPUS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/diagnostic.hh"
#include "workloads/workload.hh"

namespace ccr::workloads
{

/** Directory `.lc` files are discovered in: $CCR_CORPUS_DIR when set,
 *  else the compiled-in repo default (<source>/corpus). */
std::string corpusDir();

/** Sorted names of all corpus workloads, discovered lazily (and
 *  validated) from corpusDir() plus any explicitly registered files.
 *  Fatal if a file under corpusDir() fails to load — the checked-in
 *  corpus must always be valid. */
std::vector<std::string> corpusWorkloadNames();

/** workloadNames() followed by corpusWorkloadNames(). */
std::vector<std::string> allWorkloadNames();

/** True when @p name resolves to a registered corpus workload. */
bool isCorpusWorkload(const std::string &name);

/** Build a fresh instance of a corpus workload by re-parsing its
 *  file (the harness mutates modules in place, so every build must
 *  return an independent module). Fatal on unknown names. */
Workload buildCorpusWorkload(const std::string &name);

/**
 * Build a workload from in-memory `.lc` source (directives included)
 * without touching the global registry — the path used by the
 * generative engine (ccr_gen), where thousands of kernels exist only
 * as strings. @p display prefixes error strings and doubles as the
 * fallback workload name when no `;! workload` directive is present.
 * Returns std::nullopt after appending errors.
 */
std::optional<Workload>
buildWorkloadFromText(const std::string &source,
                      const std::string &display,
                      std::vector<std::string> &errors);

/**
 * Parse, verify, and directive-check one `.lc` file, then register it
 * under its workload name (the `;! workload` directive, defaulting to
 * the file stem). Returns the name, or std::nullopt after appending
 * human-readable "file:line:col: message" strings to @p errors.
 * Re-registering the same path is idempotent.
 */
std::optional<std::string>
tryRegisterWorkloadFile(const std::string &path,
                        std::vector<std::string> &errors);

/** Fatal-on-error convenience wrapper around tryRegisterWorkloadFile. */
std::string registerWorkloadFile(const std::string &path);

/**
 * Register in-memory `.lc` source under its workload name, so callers
 * that synthesize kernels (generator-driven benches) can run them
 * through every name-keyed path — RunPlan, ExperimentCache, the
 * parallel driver — without touching disk. Each buildCorpusWorkload
 * re-parses the stored source, keeping module instances independent.
 * Returns the name, or std::nullopt after appending errors.
 */
std::optional<std::string>
tryRegisterWorkloadText(const std::string &source,
                        const std::string &display,
                        std::vector<std::string> &errors);

/** Fatal-on-error convenience wrapper around tryRegisterWorkloadText. */
std::string registerWorkloadText(const std::string &source,
                                 const std::string &display);

/** Outcome kinds of a structured in-memory registration attempt. */
enum class RegisterStatus
{
    /** The source was validated and registered under `name`. */
    Registered,

    /** `name` was already registered with byte-identical source; the
     *  call is an idempotent no-op (the multi-tenant case: many
     *  clients submitting the same kernel). */
    AlreadyRegistered,

    /** The source failed to parse, verify, or directive-check. */
    Invalid,

    /** The name is taken by a built-in, an on-disk corpus file, or an
     *  in-memory registration with different source. */
    Conflict,
};

/** "registered" / "already-registered" / "invalid" / "conflict". */
const char *registerStatusName(RegisterStatus status);

/** Structured result of registerWorkloadTextStructured(). */
struct RegisterTextResult
{
    RegisterStatus status = RegisterStatus::Invalid;

    /** Set when ok(): the registered workload name. */
    std::string name;

    /** Findings explaining an Invalid/Conflict outcome: parser and
     *  verifier diagnostics keep their own rule ids ("parse.*",
     *  "ir.*"); loader and registry findings use "workload.load" /
     *  "workload.register.*". */
    std::vector<ir::Diagnostic> diagnostics;

    bool
    ok() const
    {
        return status == RegisterStatus::Registered
               || status == RegisterStatus::AlreadyRegistered;
    }
};

/**
 * Structured-diagnostic form of tryRegisterWorkloadText, and the
 * primary implementation behind it. Safe under concurrent
 * registration of the same name from many threads: validation runs
 * outside the registry lock, the publish step is atomic under it, and
 * identical (name, source) pairs are idempotent whichever thread wins
 * the race — losers observe AlreadyRegistered, never a partial entry.
 * Conflicting source under a taken name yields Conflict with a
 * "workload.register.conflict" diagnostic.
 */
RegisterTextResult
registerWorkloadTextStructured(const std::string &source,
                               const std::string &display);

/**
 * Stable 64-bit content key for shard routing (the `ccrd` server
 * hashes this to pick a worker shard, so identical kernels land on
 * the same single-flight cache). Corpus workloads hash their `.lc`
 * source bytes (on-disk file or registered in-memory text); built-ins
 * hash their name, which uniquely identifies the compiled-in builder.
 * Unknown names hash the name too — resolution fails later with the
 * usual unknown-workload error.
 */
std::uint64_t workloadContentKey(const std::string &name);

} // namespace ccr::workloads

#endif // CCR_WORKLOADS_CORPUS_HH
