#include "workloads/heapscan.hh"

#include "ir/builder.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace ccr::workloads
{

using namespace ccr::ir;

void
addHeapScan(ir::Module &mod, const std::string &prefix, int words,
            int iters, std::uint64_t seed)
{
    ccr_assert(isPowerOf2(static_cast<std::uint64_t>(words)),
               "heap scan size must be a power of two");
    const GlobalId ptr_global =
        mod.addGlobal(prefix + "_ptr", 8).id;

    // <prefix>_init(): allocate and fill the anonymous table.
    {
        Function &f = mod.addFunction(prefix + "_init", 0);
        IRBuilder b(f);
        const BlockId entry = b.newBlock();
        const BlockId header = b.newBlock();
        const BlockId body = b.newBlock();
        const BlockId done = b.newBlock();
        const Reg j = b.reg();
        const Reg p = b.reg();

        b.setInsertPoint(entry);
        {
            Inst a;
            a.op = Opcode::Alloc;
            a.dst = p;
            a.srcImm = true;
            a.imm = words * 8;
            b.emit(a);
        }
        b.movITo(j, 0);
        b.jump(header);

        b.setInsertPoint(header);
        const Reg more = b.cmpLtI(j, words);
        b.br(more, body, done);

        b.setInsertPoint(body);
        // Deterministic pseudo-random fill derived from the seed.
        const Reg s0 = b.addI(j, static_cast<std::int64_t>(seed));
        const Reg s1 = b.mulI(s0, 0x9E3779B1);
        const Reg s2 = b.xorR(s1, b.shrI(s1, 11));
        const Reg addr = b.add(p, b.shlI(j, 3));
        b.store(addr, 0, s2);
        b.binOpITo(j, Opcode::Add, j, 1);
        b.jump(header);

        b.setInsertPoint(done);
        const Reg g = b.movGA(ptr_global);
        b.store(g, 0, p);
        b.ret();
    }

    // <prefix>_scan(x): fold a slice of the anonymous table.
    {
        Function &f = mod.addFunction(prefix + "_scan", 1);
        IRBuilder b(f);
        const BlockId entry = b.newBlock();
        const BlockId header = b.newBlock();
        const BlockId body = b.newBlock();
        const BlockId done = b.newBlock();
        const Reg x = 0;
        const Reg j = b.reg();
        const Reg s = b.reg();
        const Reg p = b.reg();

        b.setInsertPoint(entry);
        const Reg g = b.movGA(ptr_global);
        // Loading the pointer makes everything reached through it
        // anonymous to the points-to analysis.
        b.loadTo(p, g, 0);
        b.movITo(j, 0);
        b.movITo(s, 0);
        b.jump(header);

        b.setInsertPoint(header);
        const Reg more = b.cmpLtI(j, iters);
        b.br(more, body, done);

        b.setInsertPoint(body);
        const Reg idx = b.andI(b.add(x, j), words - 1);
        const Reg v = b.load(b.add(p, b.shlI(idx, 3)), 0);
        const Reg s3 = b.mulI(s, 3);
        b.binOpTo(s, Opcode::Add, s3, v);
        b.binOpITo(j, Opcode::Add, j, 1);
        b.jump(header);

        b.setInsertPoint(done);
        const Reg folded = b.andI(s, 0xffffff);
        b.ret(folded);
    }
}

} // namespace ccr::workloads
