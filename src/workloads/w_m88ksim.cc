/**
 * @file
 * `m88ksim` — models SPEC95 124.m88ksim. The hot computation is the
 * paper's Figure 3 example: ckbrkpts() scans the 16-entry breakpoint
 * table, whose contents change only when one of four update routines
 * runs. The scan loop is a memory-dependent *cyclic* reuse region: its
 * live-in (the probed address) recurs heavily and the table is stored
 * to rarely, so whole loop invocations (~100 dynamic instructions)
 * are skipped on a CRB hit. Updates run through settmpbrk()/
 * rsttmpbrk(), whose stores trigger compiler-placed invalidations.
 */

#include "workloads/heapscan.hh"
#include "workloads/support.hh"
#include "workloads/workload.hh"

#include "ir/builder.hh"

namespace ccr::workloads
{

namespace
{

constexpr std::size_t kMaxRequests = 16384;
constexpr int kBrkEntries = 16;

using namespace ccr::ir;

/**
 * ckbrkpts(addr): for (cnt = 0; cnt < 16; cnt++) {
 *     if (brktable[cnt].code && ((brktable[cnt].adr & ~3) == addr))
 *         break;
 * } return cnt;
 * Layout: brktable[i] = { code: dword, adr: dword } => stride 16.
 */
void
buildCkbrkpts(Module &mod, GlobalId brktable)
{
    Function &f = mod.addFunction("ckbrkpts", 1);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId check_adr = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId found = b.newBlock();
    const BlockId out = b.newBlock();
    f.setEntry(entry);

    const Reg addr = 0;
    const Reg cnt = b.reg();
    const Reg result = b.reg();

    b.setInsertPoint(entry);
    const Reg base = b.movGA(brktable);
    b.movITo(cnt, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLtI(cnt, kBrkEntries);
    b.br(more, check_adr, out);

    b.setInsertPoint(check_adr);
    const Reg off = b.shlI(cnt, 4);
    const Reg ep = b.add(base, off);
    const Reg code = b.load(ep, 0);
    const Reg adr = b.load(ep, 8);
    const Reg masked = b.andI(adr, ~3LL);
    const Reg same = b.cmpEq(masked, addr);
    const Reg codeNz = b.cmpNeI(code, 0);
    const Reg hit = b.andR(codeNz, same);
    b.br(hit, found, latch);

    b.setInsertPoint(latch);
    b.binOpITo(cnt, Opcode::Add, cnt, 1);
    b.jump(header);

    b.setInsertPoint(found);
    b.jump(out);

    b.setInsertPoint(out);
    b.movTo(result, cnt);
    b.ret(result);
}

/** settmpbrk(slot, addr): store into brktable (mutator). */
void
buildSettmpbrk(Module &mod, GlobalId brktable)
{
    Function &f = mod.addFunction("settmpbrk", 2);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    b.setInsertPoint(entry);
    const Reg slot = 0;
    const Reg addr = 1;
    const Reg base = b.movGA(brktable);
    const Reg off = b.shlI(slot, 4);
    const Reg ep = b.add(base, off);
    const Reg one = b.movI(1);
    b.store(ep, 0, one);
    b.store(ep, 8, addr);
    b.ret();
}

/** rsttmpbrk(slot): clear a breakpoint slot (mutator). */
void
buildRsttmpbrk(Module &mod, GlobalId brktable)
{
    Function &f = mod.addFunction("rsttmpbrk", 1);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    b.setInsertPoint(entry);
    const Reg slot = 0;
    const Reg base = b.movGA(brktable);
    const Reg off = b.shlI(slot, 4);
    const Reg ep = b.add(base, off);
    const Reg zero = b.movI(0);
    b.store(ep, 0, zero);
    b.ret();
}

/** alignfault(addr): small stateless decode helper (extra SL region). */
void
buildAlignfault(Module &mod)
{
    Function &f = mod.addFunction("alignfault", 1);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    b.setInsertPoint(entry);
    const Reg addr = 0;
    const Reg lo = b.andI(addr, 7);
    const Reg sz = b.andI(b.shrI(addr, 3), 3);
    const Reg bad = b.andR(lo, sz);
    const Reg word = b.shrI(addr, 2);
    const Reg tagv = b.xorR(word, bad);
    const Reg folded = b.andI(tagv, 0xff);
    b.ret(folded);
}

void
buildMain(Module &mod, GlobalId addrs, GlobalId muts, GlobalId nreq,
          GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);

    const BlockId entry = b.newBlock();
    const BlockId setup = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId cont1 = b.newBlock();
    const BlockId cont2 = b.newBlock();
    const BlockId cont3 = b.newBlock();
    const BlockId maybe_mut = b.newBlock();
    const BlockId do_set = b.newBlock();
    const BlockId after_set = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId exit = b.newBlock();
    f.setEntry(entry);

    const Reg i = b.reg();
    const Reg acc = b.reg();
    const Reg addr = b.reg();

    b.setInsertPoint(entry);
    b.callVoid(mod.findFunction("memimage_init")->id(), {}, setup);

    b.setInsertPoint(setup);
    const Reg nbase = b.movGA(nreq);
    const Reg n = b.load(nbase, 0);
    const Reg abase = b.movGA(addrs);
    const Reg mbase = b.movGA(muts);
    b.movITo(i, 0);
    b.movITo(acc, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLt(i, n);
    b.br(more, body, exit);

    b.setInsertPoint(body);
    const Reg off = b.shlI(i, 3);
    b.loadTo(addr, b.add(abase, off), 0);
    const FuncId ck = mod.findFunction("ckbrkpts")->id();
    const Reg cnt = b.call(ck, {addr}, cont1);

    b.setInsertPoint(cont1);
    const FuncId af = mod.findFunction("alignfault")->id();
    const Reg fault = b.call(af, {addr}, cont2);

    // Simulated-memory image walk: heap-resident, so the compiler
    // cannot capture it even though the addresses recur.
    b.setInsertPoint(cont2);
    const FuncId mi = mod.findFunction("memimage_scan")->id();
    const Reg img = b.call(mi, {addr}, cont3);

    b.setInsertPoint(cont3);
    b.binOpTo(acc, Opcode::Add, acc, img);
    const Reg d0 = b.mulI(i, 0x2545F491);
    b.binOpTo(acc, Opcode::Add, acc, b.andI(b.shrI(d0, 7), 0x7f));
    const Reg t1 = b.mulI(cnt, 251);
    const Reg t2 = b.add(t1, fault);
    b.binOpTo(acc, Opcode::Add, acc, t2);
    const Reg moff = b.shlI(i, 3);
    const Reg mut = b.load(b.add(mbase, moff), 0);
    b.br(mut, maybe_mut, latch);

    b.setInsertPoint(maybe_mut);
    // mut encodes: 1 => set a breakpoint, 2 => reset one.
    const Reg slot = b.andI(addr, kBrkEntries - 1);
    const Reg is_set = b.cmpEqI(mut, 1);
    b.br(is_set, do_set, after_set);

    b.setInsertPoint(do_set);
    const FuncId st = mod.findFunction("settmpbrk")->id();
    b.callVoid(st, {slot, addr}, latch);

    b.setInsertPoint(after_set);
    const FuncId rs = mod.findFunction("rsttmpbrk")->id();
    b.callVoid(rs, {slot}, latch);

    b.setInsertPoint(latch);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    const Reg obase = b.movGA(out);
    b.store(obase, 0, acc);
    b.halt();
}

} // namespace

Workload
buildM88ksim()
{
    auto mod = std::make_shared<ir::Module>("m88ksim");

    const GlobalId brktable =
        mod->addGlobal("brktable", kBrkEntries * 16).id;
    const GlobalId addrs =
        mod->addGlobal("addr_stream", kMaxRequests * 8).id;
    const GlobalId muts =
        mod->addGlobal("mut_stream", kMaxRequests * 8).id;
    const GlobalId nreq = mod->addGlobal("n_requests", 8).id;
    const GlobalId out = mod->addGlobal("out_sum", 8).id;

    buildCkbrkpts(*mod, brktable);
    buildSettmpbrk(*mod, brktable);
    buildRsttmpbrk(*mod, brktable);
    buildAlignfault(*mod);
    addHeapScan(*mod, "memimage", 512, 10, 0x88551ULL);
    buildMain(*mod, addrs, muts, nreq, out);
    mod->setEntryFunction(mod->findFunction("main")->id());

    Workload w;
    w.name = "m88ksim";
    w.module = mod;
    w.outputGlobals = {"out_sum"};
    w.prepare = [](emu::Machine &machine, InputSet set) {
        const bool train = set == InputSet::Train;
        Rng rng(train ? 0x88'0001 : 0x88'0002);
        const std::size_t n = train ? 4500 : 6000;
        // Probed addresses recur heavily: the simulated program keeps
        // touching the same few code addresses.
        const auto addrs = zipfRequests(
            rng, n, train ? 10 : 14, train ? 1.6 : 1.5, [](Rng &r) {
                return static_cast<std::int64_t>(
                    (r.nextBelow(1 << 20) << 2) | 0x40000000);
            });
        // Breakpoint updates are rare (~1.5% of requests).
        std::vector<std::int64_t> muts(n, 0);
        for (auto &m : muts) {
            if (rng.nextBool(0.015))
                m = rng.nextBool(0.5) ? 1 : 2;
        }
        fillGlobal64(machine, "addr_stream", addrs);
        fillGlobal64(machine, "mut_stream", muts);
        setGlobal64(machine, "n_requests",
                    static_cast<std::int64_t>(n));
    };
    return w;
}

} // namespace ccr::workloads
