/**
 * @file
 * `compress` — models SPEC95 129.compress. LZW-style compression is a
 * collection of small, similarly-hot kernels: the code hash, prefix
 * probing arithmetic, output bit packing, and the ratio check. Each
 * kernel sees a moderately skewed symbol stream, so many regions
 * contribute comparable amounts of reuse — the paper singles compress
 * out in Figure 10 for exactly this flat distribution.
 */

#include "workloads/dispatch.hh"
#include "workloads/heapscan.hh"
#include "workloads/support.hh"
#include "workloads/workload.hh"

#include "ir/builder.hh"

namespace ccr::workloads
{

namespace
{

constexpr std::size_t kMaxRequests = 16384;

using namespace ccr::ir;

/** Build one small straight-line mixing kernel; `variant` perturbs the
 *  constants so each kernel is a distinct static region. */
void
buildMixKernel(Module &mod, const std::string &name, int variant)
{
    Function &f = mod.addFunction(name, 2);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg code = 0;
    const Reg prefix = 1;
    const Reg k1 = b.shlI(code, (variant % 5) + 1);
    const Reg h0 = b.xorR(k1, prefix);
    const Reg h1 = b.mulI(h0, 0x9E3779B1 + 2 * variant);
    const Reg h2 = b.xorR(h1, b.shrI(h1, 15));
    const Reg h3 = b.andI(h2, (1 << 16) - 1);
    b.ret(h3);
}

/** Output bit-packer: branchy accumulation (region with control). */
void
buildPackBits(Module &mod)
{
    Function &f = mod.addFunction("pack_bits", 2);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId spill = b.newBlock();
    const BlockId keep = b.newBlock();
    const BlockId join = b.newBlock();
    f.setEntry(entry);

    const Reg val = 0;
    const Reg nbits = 1;
    const Reg outv = b.reg();

    b.setInsertPoint(entry);
    const Reg w = b.andI(nbits, 31);
    const Reg shifted = b.shlI(val, 3);
    const Reg merged = b.orR(shifted, w);
    const Reg big = b.cmpGtI(merged, 1 << 20);
    b.br(big, spill, keep);

    b.setInsertPoint(spill);
    b.binOpITo(outv, Opcode::And, merged, (1 << 20) - 1);
    b.jump(join);

    b.setInsertPoint(keep);
    b.movTo(outv, merged);
    b.jump(join);

    b.setInsertPoint(join);
    const Reg folded = b.xorR(outv, b.shrI(outv, 9));
    b.ret(folded);
}

void
buildMain(Module &mod, GlobalId syms, GlobalId nreq, GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);

    const BlockId entry = b.newBlock();
    const BlockId setup = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    std::vector<BlockId> conts;
    for (int k = 0; k < 8; ++k)
        conts.push_back(b.newBlock());
    const BlockId latch = b.newBlock();
    const BlockId exit = b.newBlock();
    f.setEntry(entry);

    const Reg i = b.reg();
    const Reg acc = b.reg();
    const Reg sym = b.reg();
    const Reg prefix = b.reg();

    b.setInsertPoint(entry);
    b.callVoid(mod.findFunction("dict_init")->id(), {}, setup);

    b.setInsertPoint(setup);
    const Reg n = b.load(b.movGA(nreq), 0);
    const Reg sbase = b.movGA(syms);
    b.movITo(i, 0);
    b.movITo(acc, 0);
    // The LZW prefix context is stable for a whole (re)compression
    // pass; it is set up by the input generator.
    b.loadTo(prefix, b.movGA(mod.findGlobal("prefix_init")->id), 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLt(i, n);
    b.br(more, body, exit);

    // Five hash variants plus the packer, invoked evenly so reuse is
    // spread across many regions.
    b.setInsertPoint(body);
    const Reg off = b.shlI(i, 3);
    b.loadTo(sym, b.add(sbase, off), 0);
    const Reg r0 = b.call(mod.findFunction("hash_probe0")->id(),
                          {sym, prefix}, conts[0]);
    b.setInsertPoint(conts[0]);
    const Reg r1 = b.call(mod.findFunction("hash_probe1")->id(),
                          {sym, prefix}, conts[1]);
    b.setInsertPoint(conts[1]);
    const Reg r2 = b.call(mod.findFunction("hash_probe2")->id(),
                          {sym, prefix}, conts[2]);
    b.setInsertPoint(conts[2]);
    const Reg r3 = b.call(mod.findFunction("hash_probe3")->id(),
                          {sym, prefix}, conts[3]);
    b.setInsertPoint(conts[3]);
    const Reg r4 = b.call(mod.findFunction("hash_probe4")->id(),
                          {sym, prefix}, conts[4]);
    b.setInsertPoint(conts[4]);
    const Reg packed = b.call(mod.findFunction("pack_bits")->id(),
                              {sym, r0}, conts[5]);

    // The dictionary chain walk itself is a heap traversal: the
    // compiler cannot capture it.
    b.setInsertPoint(conts[5]);
    const Reg chain = b.call(mod.findFunction("dict_scan")->id(),
                             {sym}, conts[6]);

    // Per-symbol code-table maintenance: one of 32 distinct paths.
    b.setInsertPoint(conts[6]);
    const Reg tbl = b.call(mod.findFunction("code_update")->id(),
                           {sym, prefix}, conts[7]);

    b.setInsertPoint(conts[7]);
    Reg t = b.add(r0, r1);
    t = b.add(t, tbl);
    t = b.add(t, r2);
    t = b.add(t, r3);
    t = b.add(t, r4);
    t = b.add(t, packed);
    t = b.add(t, chain);
    b.binOpTo(acc, Opcode::Add, acc, t);
    const Reg d0 = b.mulI(i, 0x45D9F3B);
    b.binOpTo(acc, Opcode::Add, acc, b.andI(d0, 0x3f));
    b.jump(latch);

    b.setInsertPoint(latch);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    b.store(b.movGA(out), 0, acc);
    b.halt();
}

} // namespace

Workload
buildCompress()
{
    auto mod = std::make_shared<ir::Module>("compress");

    mod->addGlobal("prefix_init", 8);
    const GlobalId syms =
        mod->addGlobal("symbol_stream", kMaxRequests * 8).id;
    const GlobalId nreq = mod->addGlobal("n_requests", 8).id;
    const GlobalId out = mod->addGlobal("out_sum", 8).id;

    for (int k = 0; k < 5; ++k)
        buildMixKernel(*mod, "hash_probe" + std::to_string(k), k);
    buildPackBits(*mod);
    addHeapScan(*mod, "dict", 512, 12, 0xC0DE5ULL);
    addDispatchKernel(*mod, "code_update", 5, 1, 0xC0DE9ULL);
    buildMain(*mod, syms, nreq, out);
    mod->setEntryFunction(mod->findFunction("main")->id());

    Workload w;
    w.name = "compress";
    w.module = mod;
    w.outputGlobals = {"out_sum"};
    w.prepare = [](emu::Machine &machine, InputSet set) {
        const bool train = set == InputSet::Train;
        Rng rng(train ? 0xC0'0001 : 0xC0'0002);
        const std::size_t n = train ? 5500 : 7000;
        // Text-like symbol stream: strong recurrence of common bytes.
        const auto syms = zipfRequests(
            rng, n, train ? 24 : 30, train ? 1.5 : 1.4, [](Rng &r) {
                return static_cast<std::int64_t>(r.nextBelow(256));
            });
        fillGlobal64(machine, "symbol_stream", syms);
        setGlobal64(machine, "prefix_init",
                    train ? 0x1234 : 0x2461);
        setGlobal64(machine, "n_requests",
                    static_cast<std::int64_t>(n));
    };
    return w;
}

} // namespace ccr::workloads
