/**
 * @file
 * `lex` — models UNIX lex. Lexing is a table-driven DFA: classify the
 * character through a const class table, step the state through the
 * const transition table, and fold accept information. (state, char)
 * pairs recur heavily in real source text, making the per-character
 * step a dense stateless (const-table) region.
 */

#include "workloads/heapscan.hh"
#include "workloads/support.hh"
#include "workloads/workload.hh"

#include "ir/builder.hh"

namespace ccr::workloads
{

namespace
{

constexpr std::size_t kMaxRequests = 16384;
constexpr int kStates = 24;
constexpr int kClasses = 12;

using namespace ccr::ir;

/**
 * dfa_step(state, cls): transition + accept fold keyed on the
 * character *class*. Keying the memoizable kernel on the class rather
 * than the raw character keeps its input working set small — exactly
 * what makes table-driven lexers such strong reuse targets.
 */
void
buildDfaStep(Module &mod, GlobalId delta, GlobalId accept)
{
    Function &f = mod.addFunction("dfa_step", 2);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg state = 0;
    const Reg cls = 1;
    const Reg db = b.movGA(delta);
    const Reg row = b.mulI(b.andI(state, kStates - 1), kClasses);
    const Reg cell = b.add(row, b.andI(cls, kClasses - 1));
    const Reg next = b.load(b.add(db, cell), 0, MemSize::Byte, true);
    const Reg ab = b.movGA(accept);
    const Reg acc = b.load(b.add(ab, next), 0, MemSize::Byte, true);
    const Reg packed = b.orR(b.shlI(acc, 8), next);
    b.ret(packed);
}

/** token_fold(tok, len): stateless token-value summary. */
void
buildTokenFold(Module &mod)
{
    Function &f = mod.addFunction("token_fold", 2);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg tok = 0;
    const Reg len = 1;
    const Reg l = b.andI(len, 63);
    const Reg t1 = b.mulI(tok, 131);
    const Reg t2 = b.add(t1, l);
    const Reg t3 = b.xorR(t2, b.shrI(t2, 7));
    b.ret(b.andI(t3, 0xffff));
}

void
buildMain(Module &mod, GlobalId classes, GlobalId text, GlobalId nreq,
          GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);

    const BlockId entry = b.newBlock();
    const BlockId setup = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId c1 = b.newBlock();
    const BlockId tok_end = b.newBlock();
    const BlockId c2 = b.newBlock();
    const BlockId c3 = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId exit = b.newBlock();
    f.setEntry(entry);

    const Reg i = b.reg();
    const Reg acc = b.reg();
    const Reg state = b.reg();
    const Reg toklen = b.reg();

    b.setInsertPoint(entry);
    b.callVoid(mod.findFunction("yybuf_init")->id(), {}, setup);

    b.setInsertPoint(setup);
    const Reg n = b.load(b.movGA(nreq), 0);
    const Reg tbase = b.movGA(text);
    const Reg cbase = b.movGA(classes);
    b.movITo(i, 0);
    b.movITo(acc, 0);
    b.movITo(state, 0);
    b.movITo(toklen, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLt(i, n);
    b.br(more, body, exit);

    b.setInsertPoint(body);
    const Reg ch = b.load(b.add(tbase, i), 0, MemSize::Byte, true);
    const Reg cls = b.load(b.add(cbase, ch), 0, MemSize::Byte, true);
    const Reg packed = b.call(mod.findFunction("dfa_step")->id(),
                              {state, cls}, c1);

    b.setInsertPoint(c1);
    b.binOpITo(state, Opcode::And, packed, 0xff);
    b.binOpITo(toklen, Opcode::Add, toklen, 1);
    const Reg accflag = b.andI(b.shrI(packed, 8), 0xff);
    b.br(accflag, tok_end, latch);

    b.setInsertPoint(tok_end);
    const Reg tv = b.call(mod.findFunction("token_fold")->id(),
                          {accflag, toklen}, c2);

    // Copy-out into the malloc'd yytext buffer region: anonymous.
    b.setInsertPoint(c2);
    const Reg buf = b.call(mod.findFunction("yybuf_scan")->id(),
                           {accflag}, c3);

    b.setInsertPoint(c3);
    b.binOpTo(acc, Opcode::Add, acc, buf);
    const Reg d0 = b.mulI(i, 0x6C62272E);
    b.binOpTo(acc, Opcode::Add, acc, b.andI(d0, 0x1f));
    b.binOpTo(acc, Opcode::Add, acc, tv);
    b.movITo(state, 0);
    b.movITo(toklen, 0);
    b.jump(latch);

    b.setInsertPoint(latch);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    b.store(b.movGA(out), 0, acc);
    b.halt();
}

} // namespace

Workload
buildLex()
{
    auto mod = std::make_shared<ir::Module>("lex");

    // Character classes: letters, digits, whitespace, operators, ...
    std::vector<std::uint8_t> classes(256);
    for (int c = 0; c < 256; ++c) {
        std::uint8_t cls = 11;
        if (c >= 'a' && c <= 'z')
            cls = 0;
        else if (c >= 'A' && c <= 'Z')
            cls = 1;
        else if (c >= '0' && c <= '9')
            cls = 2;
        else if (c == ' ' || c == '\t')
            cls = 3;
        else if (c == '\n')
            cls = 4;
        else if (c == '_')
            cls = 5;
        else if (c == '+' || c == '-' || c == '*' || c == '/')
            cls = 6;
        else if (c == '(' || c == ')' || c == '{' || c == '}')
            cls = 7;
        else if (c == '"')
            cls = 8;
        else if (c == ';' || c == ',')
            cls = 9;
        else if (c == '=' || c == '<' || c == '>')
            cls = 10;
        classes[static_cast<std::size_t>(c)] = cls;
    }

    // A plausible identifier/number/operator DFA.
    std::vector<std::uint8_t> delta(
        static_cast<std::size_t>(kStates * kClasses), 0);
    auto set = [&](int s, int c, int t) {
        delta[static_cast<std::size_t>(s * kClasses + c)] =
            static_cast<std::uint8_t>(t);
    };
    for (int c = 0; c < kClasses; ++c) {
        set(0, c, 0);
        set(1, c, 12); // ident end
        set(2, c, 13); // number end
    }
    set(0, 0, 1);
    set(0, 1, 1);
    set(0, 5, 1); // start ident
    set(1, 0, 1);
    set(1, 1, 1);
    set(1, 2, 1);
    set(1, 5, 1); // continue ident
    set(0, 2, 2);
    set(2, 2, 2); // number
    set(0, 6, 14);
    set(0, 10, 15);
    set(0, 9, 16);
    set(0, 7, 17);

    // Accept flags: states 12+ emit a token code.
    std::vector<std::uint8_t> accept(256, 0);
    for (int s = 12; s < kStates; ++s)
        accept[static_cast<std::size_t>(s)] =
            static_cast<std::uint8_t>(s - 11);

    const GlobalId cg = addConstTable8(*mod, "char_classes",
                                       classes).id;
    const GlobalId dg = addConstTable8(*mod, "dfa_delta", delta).id;
    const GlobalId ag = addConstTable8(*mod, "dfa_accept", accept).id;
    const GlobalId text = mod->addGlobal("text", kMaxRequests).id;
    const GlobalId nreq = mod->addGlobal("n_requests", 8).id;
    const GlobalId out = mod->addGlobal("out_sum", 8).id;

    buildDfaStep(*mod, dg, ag);
    buildTokenFold(*mod);
    addHeapScan(*mod, "yybuf", 64, 6, 0x1EAF1ULL);
    buildMain(*mod, cg, text, nreq, out);
    mod->setEntryFunction(mod->findFunction("main")->id());

    Workload w;
    w.name = "lex";
    w.module = mod;
    w.outputGlobals = {"out_sum"};
    w.prepare = [](emu::Machine &machine, InputSet set) {
        const bool train = set == InputSet::Train;
        Rng rng(train ? 0x1E'0001 : 0x1E'0002);
        const std::size_t n = train ? 9000 : 12000;
        // Source-code-like text: words from a small vocabulary.
        static const char *const words_train[] = {
            "int ",  "x = ", "sum;\n", "for(", "i++)", "a + b",
            "ret ",  "val,", "if(",    "){\n", "tmp ", "0;\n"};
        static const char *const words_ref[] = {
            "long ", "y = ", "acc;\n", "while(", "j--)", "c * d",
            "out ",  "arg,", "else",   "}\n",    "buf ", "1;\n",
            "ptr ",  "idx("};
        const std::size_t nw = train ? 12 : 14;
        const ZipfSampler zipf(nw, train ? 1.65 : 1.55);
        std::string text;
        while (text.size() < n) {
            text += train ? words_train[zipf.sample(rng)]
                          : words_ref[zipf.sample(rng)];
        }
        text.resize(n);
        // Write the text bytes directly.
        const auto &mod2 = machine.module();
        for (std::size_t g = 0; g < mod2.numGlobals(); ++g) {
            if (mod2.global(static_cast<ir::GlobalId>(g)).name
                == "text") {
                machine.memory().writeBytes(
                    machine.globalAddr(static_cast<ir::GlobalId>(g)),
                    reinterpret_cast<const std::uint8_t *>(text.data()),
                    text.size());
            }
        }
        setGlobal64(machine, "n_requests",
                    static_cast<std::int64_t>(n));
    };
    return w;
}

} // namespace ccr::workloads
