#include "workloads/driver.hh"

#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "workloads/cache.hh"

namespace ccr::workloads
{

namespace
{

RunResult
runPoint(const RunPlan::Point &point, ExperimentCache *cache,
         bool check_outputs)
{
    RunResult r = runCcrExperiment(point.workload, point.config, cache);
    if (check_outputs && !r.completed)
        ccr_fatal(point.workload, ": ", r.incompleteStage,
                  " run did not complete within its budget");
    if (check_outputs && !r.outputsMatch)
        ccr_fatal("output mismatch for ", point.workload);
    return r;
}

} // namespace

std::vector<RunResult>
runPlan(const RunPlan &plan, const DriverOptions &options)
{
    return runPlan(plan, options, PointCallback{});
}

std::vector<RunResult>
runPlan(const RunPlan &plan, const DriverOptions &options,
        const PointCallback &on_point)
{
    ExperimentCache *cache =
        options.useCache
            ? (options.cache ? options.cache
                             : &ExperimentCache::global())
            : nullptr;

    std::vector<RunResult> results(plan.size());
    if (plan.empty())
        return results;

    int jobs = options.jobs > 0 ? options.jobs : defaultJobs();
    jobs = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs),
                              plan.size()));

    if (jobs <= 1) {
        for (std::size_t i = 0; i < plan.size(); ++i) {
            results[i] = runPoint(plan.points()[i], cache,
                                  options.checkOutputs);
            if (on_point)
                on_point(i, results[i]);
        }
        return results;
    }

    ThreadPool pool(jobs, options.seed);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        pool.submit([&, i] {
            results[i] = runPoint(plan.points()[i], cache,
                                  options.checkOutputs);
            if (on_point)
                on_point(i, results[i]);
        });
    }
    pool.wait();
    return results;
}

obs::SimReport
buildSimReport(const RunPlan &plan,
               const std::vector<RunResult> &results)
{
    ccr_assert(plan.size() == results.size(),
               "plan/result size mismatch");
    obs::SimReport report;
    report.runs.reserve(results.size());
    for (const auto &result : results)
        report.runs.push_back(result.report);
    return report;
}

int
defaultJobs()
{
    return ThreadPool::defaultThreads();
}

} // namespace ccr::workloads
