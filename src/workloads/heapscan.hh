/**
 * @file
 * Anonymous-memory scan kernels shared by the workloads.
 *
 * Every real program in the paper's suite spends much of its time in
 * computation the CCR compiler cannot capture: loads from heap-
 * allocated ("anonymous") structures are not determinable at compile
 * time, so regions containing them are rejected (§4.1: "anonymous data
 * structures are the subject of ongoing research"). The reuse
 * *potential* of such code is still visible to the Figure 4 limit
 * study, which is exactly the gap between potential (~55%) and
 * realized speedup (~25%) in the paper.
 *
 * addHeapScan() gives each workload such a component: an init function
 * that heap-allocates and fills a table, and a scan kernel that loops
 * over a slice of it selected by a (recurring) input value.
 */

#ifndef CCR_WORKLOADS_HEAPSCAN_HH
#define CCR_WORKLOADS_HEAPSCAN_HH

#include <cstdint>
#include <string>

#include "ir/module.hh"

namespace ccr::workloads
{

/**
 * Add `<prefix>_init()` and `<prefix>_scan(x)` to @p mod, backed by a
 * heap allocation of @p words 64-bit words (must be a power of two)
 * reachable only through the pointer global `<prefix>_ptr`.
 * The scan walks @p iters consecutive words starting at an offset
 * derived from x and folds them; its inner loop is pure (a cyclic
 * reuse candidate for the limit study) but its loads are anonymous, so
 * region formation must reject it.
 */
void addHeapScan(ir::Module &mod, const std::string &prefix, int words,
                 int iters, std::uint64_t seed);

} // namespace ccr::workloads

#endif // CCR_WORKLOADS_HEAPSCAN_HH
