#include "workloads/support.hh"

#include <functional>

#include "support/bits.hh"
#include "support/logging.hh"

namespace ccr::workloads
{

ir::Global &
addConstTable64(ir::Module &mod, const std::string &name,
                const std::vector<std::int64_t> &values)
{
    ir::Global &g = mod.addGlobal(name, values.size() * 8, true);
    g.init.resize(values.size() * 8);
    for (std::size_t i = 0; i < values.size(); ++i) {
        const auto raw = static_cast<std::uint64_t>(values[i]);
        for (int b = 0; b < 8; ++b)
            g.init[i * 8 + static_cast<std::size_t>(b)] =
                static_cast<std::uint8_t>(raw >> (8 * b));
    }
    return g;
}

ir::Global &
addConstTable8(ir::Module &mod, const std::string &name,
               const std::vector<std::uint8_t> &bytes)
{
    ir::Global &g = mod.addGlobal(name, bytes.size(), true);
    g.init = bytes;
    return g;
}

std::vector<std::uint8_t>
bitCountTable()
{
    std::vector<std::uint8_t> t(256);
    for (int i = 0; i < 256; ++i) {
        t[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
            popCount(static_cast<std::uint64_t>(i)));
    }
    return t;
}

void
fillGlobal64(emu::Machine &machine, const std::string &name,
             const std::vector<std::int64_t> &values)
{
    const auto &mod = machine.module();
    const ir::Global *g = nullptr;
    for (std::size_t i = 0; i < mod.numGlobals(); ++i) {
        if (mod.global(static_cast<ir::GlobalId>(i)).name == name) {
            g = &mod.global(static_cast<ir::GlobalId>(i));
            break;
        }
    }
    ccr_assert(g != nullptr, "no global named ", name);
    ccr_assert(g->sizeBytes >= values.size() * 8, "global ", name,
               " too small");
    const emu::Addr base = machine.globalAddr(g->id);
    for (std::size_t i = 0; i < values.size(); ++i) {
        machine.memory().write(base + i * 8, ir::MemSize::Dword,
                               values[i]);
    }
}

void
setGlobal64(emu::Machine &machine, const std::string &name,
            std::int64_t value)
{
    fillGlobal64(machine, name, {value});
}

std::int64_t
getGlobal64(const emu::Machine &machine, const std::string &name)
{
    const auto &mod = machine.module();
    for (std::size_t i = 0; i < mod.numGlobals(); ++i) {
        const auto &g = mod.global(static_cast<ir::GlobalId>(i));
        if (g.name == name) {
            return machine.memory().read(machine.globalAddr(g.id),
                                         ir::MemSize::Dword, false);
        }
    }
    ccr_fatal("no global named ", name);
}

std::vector<std::int64_t>
zipfRequests(Rng &rng, std::size_t n, std::size_t distinct, double theta,
             const std::function<std::int64_t(Rng &)> &gen)
{
    std::vector<std::int64_t> pool(distinct);
    for (auto &v : pool)
        v = gen(rng);
    const ZipfSampler zipf(distinct, theta);
    std::vector<std::int64_t> out(n);
    for (auto &v : out)
        v = pool[zipf.sample(rng)];
    return out;
}

} // namespace ccr::workloads
