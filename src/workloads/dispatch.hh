/**
 * @file
 * Generated dispatch-tree kernels. Real programs in the paper's suite
 * (gcc's insn patterns, yacc's productions, compress's probe variants)
 * contain dozens of distinct small computations, which is what makes
 * the number of CRB computation *entries* matter (Figure 8(b)) and
 * gives the static-computation distribution its long tail (Figure 10).
 *
 * addDispatchKernel() builds `name(sel, x)`: a binary decision tree
 * over `bits` bits of `sel` whose 2^bits leaves each perform a
 * distinct short fold of `x`. Every hot leaf becomes its own acyclic
 * reuse region.
 */

#ifndef CCR_WORKLOADS_DISPATCH_HH
#define CCR_WORKLOADS_DISPATCH_HH

#include <cstdint>
#include <string>

#include "ir/module.hh"

namespace ccr::workloads
{

/**
 * Add the two-argument dispatch function `name` to @p mod.
 * @param bits  Tree depth (2^bits leaves), 1..8.
 * @param shift Selector = (arg0 >> shift) & (2^bits - 1).
 * @param seed  Varies the per-leaf constants.
 */
void addDispatchKernel(ir::Module &mod, const std::string &name,
                       int bits, int shift, std::uint64_t seed);

} // namespace ccr::workloads

#endif // CCR_WORKLOADS_DISPATCH_HH
