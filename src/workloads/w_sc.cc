/**
 * @file
 * `sc` — models SPEC92 072.sc (spreadsheet). Recalculation repeatedly
 * re-evaluates cell formulas whose operand cells rarely change between
 * recalcs: an eval kernel loads two operand cells from the mutable
 * cell table (memory-dependent region) and combines them; cell edits
 * are sparse stores that invalidate recorded computations. Address
 * arithmetic (row/col encoding) provides stateless regions.
 */

#include "workloads/heapscan.hh"
#include "workloads/support.hh"
#include "workloads/workload.hh"

#include "ir/builder.hh"

namespace ccr::workloads
{

namespace
{

constexpr std::size_t kMaxRequests = 16384;
constexpr int kCells = 64;

using namespace ccr::ir;

/** cell_addr(row, col): stateless coordinate encoding. */
void
buildCellAddr(Module &mod)
{
    Function &f = mod.addFunction("cell_addr", 2);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg row = 0;
    const Reg col = 1;
    const Reg r = b.andI(row, 7);
    const Reg c = b.andI(col, 7);
    const Reg idx = b.orR(b.shlI(r, 3), c);
    const Reg tag = b.add(b.mulI(r, 13), b.mulI(c, 7));
    const Reg enc = b.orR(b.shlI(tag, 8), idx);
    b.ret(enc);
}

/**
 * eval_formula(ia, ib, kind): v = cells[ia] (op kind) cells[ib],
 * clamped — a memory-dependent acyclic region over the cell table.
 */
void
buildEvalFormula(Module &mod, GlobalId cells)
{
    Function &f = mod.addFunction("eval_formula", 3);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId arm_sum = b.newBlock();
    const BlockId arm_prod = b.newBlock();
    const BlockId tail = b.newBlock();
    f.setEntry(entry);

    const Reg ia = 0;
    const Reg ib = 1;
    const Reg kind = 2;
    const Reg v = b.reg();

    b.setInsertPoint(entry);
    const Reg base = b.movGA(cells);
    const Reg va = b.load(b.add(base, b.shlI(b.andI(ia, kCells - 1),
                                             3)), 0);
    const Reg vb = b.load(b.add(base, b.shlI(b.andI(ib, kCells - 1),
                                             3)), 0);
    const Reg is_sum = b.cmpEqI(kind, 0);
    b.br(is_sum, arm_sum, arm_prod);

    b.setInsertPoint(arm_sum);
    b.binOpTo(v, Opcode::Add, va, vb);
    b.jump(tail);

    b.setInsertPoint(arm_prod);
    const Reg p = b.mul(va, vb);
    b.binOpTo(v, Opcode::Sra, p, b.movI(4));
    b.jump(tail);

    b.setInsertPoint(tail);
    const Reg clamped = b.andI(v, (1 << 24) - 1);
    b.ret(clamped);
}

/** set_cell(idx, value): spreadsheet edit (mutator). */
void
buildSetCell(Module &mod, GlobalId cells)
{
    Function &f = mod.addFunction("set_cell", 2);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg idx = 0;
    const Reg value = 1;
    const Reg base = b.movGA(cells);
    const Reg off = b.shlI(b.andI(idx, kCells - 1), 3);
    b.store(b.add(base, off), 0, value);
    b.ret();
}

void
buildMain(Module &mod, GlobalId formulas, GlobalId edits, GlobalId nreq,
          GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);

    const BlockId entry = b.newBlock();
    const BlockId setup = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId c1 = b.newBlock();
    const BlockId c2 = b.newBlock();
    const BlockId c3 = b.newBlock();
    const BlockId do_edit = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId exit = b.newBlock();
    f.setEntry(entry);

    const Reg i = b.reg();
    const Reg acc = b.reg();

    b.setInsertPoint(entry);
    b.callVoid(mod.findFunction("deptree_init")->id(), {}, setup);

    b.setInsertPoint(setup);
    const Reg n = b.load(b.movGA(nreq), 0);
    const Reg fbase = b.movGA(formulas);
    const Reg ebase = b.movGA(edits);
    b.movITo(i, 0);
    b.movITo(acc, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLt(i, n);
    b.br(more, body, exit);

    b.setInsertPoint(body);
    const Reg off = b.shlI(i, 3);
    const Reg fm = b.load(b.add(fbase, off), 0);
    // Formula encoding: [ia:8][ib:8][kind:1].
    const Reg ia = b.andI(b.shrI(fm, 9), 0xff);
    const Reg ib = b.andI(b.shrI(fm, 1), 0xff);
    const Reg kind = b.andI(fm, 1);
    const Reg val = b.call(mod.findFunction("eval_formula")->id(),
                           {ia, ib, kind}, c1);

    b.setInsertPoint(c1);
    const Reg enc = b.call(mod.findFunction("cell_addr")->id(),
                           {ia, ib}, c2);

    // Dependency-tree walk over the heap-resident expression graph.
    b.setInsertPoint(c2);
    const Reg dep = b.call(mod.findFunction("deptree_scan")->id(),
                           {ia}, c3);

    b.setInsertPoint(c3);
    b.binOpTo(acc, Opcode::Add, acc, dep);
    const Reg d0 = b.mulI(i, 0x1B873593);
    b.binOpTo(acc, Opcode::Add, acc, b.andI(d0, 0x3f));
    b.binOpTo(acc, Opcode::Add, acc, b.add(val, enc));
    const Reg ed = b.load(b.add(ebase, off), 0);
    b.br(ed, do_edit, latch);

    b.setInsertPoint(do_edit);
    b.callVoid(mod.findFunction("set_cell")->id(), {ed, acc}, latch);

    b.setInsertPoint(latch);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    b.store(b.movGA(out), 0, acc);
    b.halt();
}

} // namespace

Workload
buildSc()
{
    auto mod = std::make_shared<ir::Module>("sc");

    const GlobalId cells = mod->addGlobal("cells", kCells * 8).id;
    const GlobalId formulas =
        mod->addGlobal("formula_stream", kMaxRequests * 8).id;
    const GlobalId edits =
        mod->addGlobal("edit_stream", kMaxRequests * 8).id;
    const GlobalId nreq = mod->addGlobal("n_requests", 8).id;
    const GlobalId out = mod->addGlobal("out_sum", 8).id;

    buildCellAddr(*mod);
    buildEvalFormula(*mod, cells);
    buildSetCell(*mod, cells);
    addHeapScan(*mod, "deptree", 128, 8, 0x5CDE1ULL);
    buildMain(*mod, formulas, edits, nreq, out);
    mod->setEntryFunction(mod->findFunction("main")->id());

    Workload w;
    w.name = "sc";
    w.module = mod;
    w.outputGlobals = {"out_sum"};
    w.prepare = [](emu::Machine &machine, InputSet set) {
        const bool train = set == InputSet::Train;
        Rng rng(train ? 0x5C'0001 : 0x5C'0002);
        const std::size_t n = train ? 5200 : 6800;
        // A recalc revisits the same formulas; edits touch ~2% of
        // requests.
        const auto formulas = zipfRequests(
            rng, n, train ? 22 : 28, train ? 1.5 : 1.4, [](Rng &r) {
                return static_cast<std::int64_t>(r.nextBelow(1 << 17));
            });
        std::vector<std::int64_t> edits(n, 0);
        for (auto &e : edits) {
            if (rng.nextBool(0.02))
                e = static_cast<std::int64_t>(1
                                              + rng.nextBelow(kCells - 1));
        }
        // Initial cell contents.
        std::vector<std::int64_t> init(kCells);
        for (auto &v : init)
            v = static_cast<std::int64_t>(rng.nextBelow(1 << 16));
        fillGlobal64(machine, "cells", init);
        fillGlobal64(machine, "formula_stream", formulas);
        fillGlobal64(machine, "edit_stream", edits);
        setGlobal64(machine, "n_requests",
                    static_cast<std::int64_t>(n));
    };
    return w;
}

} // namespace ccr::workloads
