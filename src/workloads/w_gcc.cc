/**
 * @file
 * `gcc` — models SPEC95 126.gcc. A compiler's hot paths are dominated
 * by small table-driven classification kernels over a skewed stream of
 * rtx/token codes: rtx_class lookups (const tables), mode-size
 * arithmetic, and a register-note scan over a small mutable table
 * (memory-dependent). Many distinct lukewarm kernels => many static
 * regions with moderate individual reuse, keeping gcc's speedup at the
 * low end, as in the paper.
 */

#include "workloads/dispatch.hh"
#include "workloads/heapscan.hh"
#include "workloads/support.hh"
#include "workloads/workload.hh"

#include "ir/builder.hh"

namespace ccr::workloads
{

namespace
{

constexpr std::size_t kMaxRequests = 16384;
constexpr int kRegNotes = 12;

using namespace ccr::ir;

/**
 * insn_cost(code): consults the three small mutable tuning tables
 * (cost, length, delay) — a memory-dependent region over three
 * distinguishable structures (the paper's MD_2_3 group).
 */
void
buildInsnCost(Module &mod, GlobalId cost_tab, GlobalId len_tab,
              GlobalId delay_tab)
{
    Function &f = mod.addFunction("insn_cost", 1);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg code = 0;
    const Reg idx = b.shlI(b.andI(code, 15), 3);
    const Reg c = b.load(b.add(b.movGA(cost_tab), idx), 0);
    const Reg l = b.load(b.add(b.movGA(len_tab), idx), 0);
    const Reg d = b.load(b.add(b.movGA(delay_tab), idx), 0);
    const Reg t = b.add(b.mulI(c, 4), b.add(l, b.shlI(d, 1)));
    b.ret(b.andI(t, 0xffff));
}

/** rtx_class(code): two chained const-table lookups plus a fixup. */
void
buildRtxClass(Module &mod, GlobalId class_tab, GlobalId fmt_tab)
{
    Function &f = mod.addFunction("rtx_class", 1);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg code = 0;
    const Reg idx = b.andI(code, 127);
    const Reg ct = b.movGA(class_tab);
    const Reg cls = b.load(b.add(ct, idx), 0, MemSize::Byte, true);
    const Reg ft = b.movGA(fmt_tab);
    const Reg fmt_off = b.shlI(cls, 0);
    const Reg fmt = b.load(b.add(ft, fmt_off), 0, MemSize::Byte, true);
    const Reg mix = b.add(b.shlI(cls, 4), fmt);
    b.ret(mix);
}

/** mode_bits(mode): branchy arithmetic (acyclic region w/ control). */
void
buildModeBits(Module &mod)
{
    Function &f = mod.addFunction("mode_bits", 1);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId wide = b.newBlock();
    const BlockId narrow = b.newBlock();
    const BlockId join = b.newBlock();
    f.setEntry(entry);

    const Reg mode = 0;
    const Reg bits = b.reg();

    b.setInsertPoint(entry);
    const Reg m = b.andI(mode, 15);
    const Reg isw = b.cmpGeI(m, 8);
    b.br(isw, wide, narrow);

    b.setInsertPoint(wide);
    const Reg w = b.shlI(m, 3);
    b.binOpITo(bits, Opcode::Add, w, 64);
    b.jump(join);

    b.setInsertPoint(narrow);
    const Reg nv = b.shlI(m, 2);
    b.binOpITo(bits, Opcode::Add, nv, 8);
    b.jump(join);

    b.setInsertPoint(join);
    const Reg capped = b.andI(bits, 255);
    b.ret(capped);
}

/**
 * find_reg_note(reg): scans the small mutable reg_notes table — an
 * MD cyclic region invalidated by note updates.
 */
void
buildFindRegNote(Module &mod, GlobalId notes_ptr)
{
    Function &f = mod.addFunction("find_reg_note", 1);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId out = b.newBlock();
    f.setEntry(entry);

    const Reg reg = 0;
    const Reg i = b.reg();
    const Reg found = b.reg();

    b.setInsertPoint(entry);
    // The note list hangs off an insn object: the compiler only sees a
    // loaded pointer, so this scan stays anonymous (not formable).
    const Reg base = b.load(b.movGA(notes_ptr), 0);
    b.movITo(i, 0);
    b.movITo(found, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLtI(i, kRegNotes);
    b.br(more, body, out);

    b.setInsertPoint(body);
    const Reg off = b.shlI(i, 3);
    const Reg note = b.load(b.add(base, off), 0);
    const Reg match = b.cmpEq(note, reg);
    b.binOpTo(found, Opcode::Or, found,
              b.andR(match, b.addI(i, 1)));
    b.jump(latch);

    b.setInsertPoint(latch);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(out);
    b.ret(found);
}

/** set_reg_note(slot, reg): mutates the notes table. */
void
buildSetRegNote(Module &mod, GlobalId notes_ptr)
{
    Function &f = mod.addFunction("set_reg_note", 2);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg slot = 0;
    const Reg reg = 1;
    const Reg base = b.load(b.movGA(notes_ptr), 0);
    const Reg idx = b.andI(slot, kRegNotes - 1);
    const Reg off = b.shlI(idx, 3);
    b.store(b.add(base, off), 0, reg);
    b.ret();
}

void
buildMain(Module &mod, GlobalId codes, GlobalId regs, GlobalId nreq,
          GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);

    const BlockId entry = b.newBlock();
    const BlockId setup = b.newBlock();
    const BlockId setup2 = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId c1 = b.newBlock();
    const BlockId c2 = b.newBlock();
    const BlockId c3 = b.newBlock();
    const BlockId c4 = b.newBlock();
    const BlockId c5 = b.newBlock();
    const BlockId c6 = b.newBlock();
    const BlockId c7 = b.newBlock();
    const BlockId mutate = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId exit = b.newBlock();
    f.setEntry(entry);

    const Reg i = b.reg();
    const Reg acc = b.reg();
    const Reg code = b.reg();
    const Reg reg = b.reg();

    b.setInsertPoint(entry);
    b.callVoid(mod.findFunction("notes_init")->id(), {}, setup);

    b.setInsertPoint(setup);
    b.callVoid(mod.findFunction("rtlpool_init")->id(), {}, setup2);

    b.setInsertPoint(setup2);
    const Reg n = b.load(b.movGA(nreq), 0);
    const Reg cbase = b.movGA(codes);
    const Reg rbase = b.movGA(regs);
    b.movITo(i, 0);
    b.movITo(acc, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLt(i, n);
    b.br(more, body, exit);

    b.setInsertPoint(body);
    const Reg off = b.shlI(i, 3);
    b.loadTo(code, b.add(cbase, off), 0);
    b.loadTo(reg, b.add(rbase, off), 0);
    const Reg cls = b.call(mod.findFunction("rtx_class")->id(), {code},
                           c1);

    b.setInsertPoint(c1);
    const Reg bits = b.call(mod.findFunction("mode_bits")->id(), {code},
                            c2);

    b.setInsertPoint(c2);
    const Reg note = b.call(mod.findFunction("find_reg_note")->id(),
                            {reg}, c3);

    b.setInsertPoint(c3);
    const Reg pool = b.call(mod.findFunction("rtlpool_scan")->id(),
                            {code}, c4);

    // One of 64 insn patterns and one of 32 addressing modes per
    // request: gcc's long tail of small distinct computations.
    b.setInsertPoint(c4);
    const Reg im = b.call(mod.findFunction("insn_match")->id(),
                          {code, reg}, c5);

    b.setInsertPoint(c5);
    const Reg am = b.call(mod.findFunction("addr_mode")->id(),
                          {reg, code}, c6);

    b.setInsertPoint(c6);
    const Reg ic = b.call(mod.findFunction("insn_cost")->id(), {code},
                          c7);

    b.setInsertPoint(c7);
    b.binOpTo(acc, Opcode::Add, acc, b.add(im, b.add(am, ic)));
    b.binOpTo(acc, Opcode::Add, acc, pool);
    const Reg d0 = b.mulI(i, 0x9E3779B1);
    b.binOpTo(acc, Opcode::Add, acc, b.andI(b.shrI(d0, 5), 0x7f));
    const Reg t = b.add(b.mulI(cls, 7), b.add(bits, note));
    b.binOpTo(acc, Opcode::Add, acc, t);
    // ~3% of requests rewrite a register note.
    const Reg mutp = b.cmpEqI(b.andI(code, 31), 7);
    b.br(mutp, mutate, latch);

    b.setInsertPoint(mutate);
    b.callVoid(mod.findFunction("set_reg_note")->id(), {i, reg}, latch);

    b.setInsertPoint(latch);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    b.store(b.movGA(out), 0, acc);
    b.halt();
}

} // namespace

Workload
buildGcc()
{
    auto mod = std::make_shared<ir::Module>("gcc");

    std::vector<std::uint8_t> class_tab(128);
    std::vector<std::uint8_t> fmt_tab(256);
    for (std::size_t i = 0; i < class_tab.size(); ++i)
        class_tab[i] = static_cast<std::uint8_t>((i * 37 + 11) & 15);
    for (std::size_t i = 0; i < fmt_tab.size(); ++i)
        fmt_tab[i] = static_cast<std::uint8_t>((i * 13 + 5) & 7);

    const GlobalId class_g =
        addConstTable8(*mod, "rtx_class_tab", class_tab).id;
    const GlobalId fmt_g = addConstTable8(*mod, "rtx_fmt_tab", fmt_tab).id;
    mod->addGlobal("reg_notes", kRegNotes * 8);
    mod->addGlobal("cost_tab", 16 * 8);
    mod->addGlobal("len_tab", 16 * 8);
    mod->addGlobal("delay_tab", 16 * 8);
    const GlobalId codes =
        mod->addGlobal("code_stream", kMaxRequests * 8).id;
    const GlobalId regs =
        mod->addGlobal("reg_stream", kMaxRequests * 8).id;
    const GlobalId nreq = mod->addGlobal("n_requests", 8).id;
    const GlobalId out = mod->addGlobal("out_sum", 8).id;

    buildRtxClass(*mod, class_g, fmt_g);
    buildModeBits(*mod);
    addHeapScan(*mod, "notes", 16, 2, 0x6CCF1ULL);
    // find/set_reg_note reuse the anonymous notes table through its
    // pointer global.
    buildFindRegNote(*mod, mod->findGlobal("notes_ptr")->id);
    buildSetRegNote(*mod, mod->findGlobal("notes_ptr")->id);
    addHeapScan(*mod, "rtlpool", 256, 12, 0x6CC77ULL);
    addDispatchKernel(*mod, "insn_match", 6, 0, 0x6CC01ULL);
    addDispatchKernel(*mod, "addr_mode", 5, 0, 0x6CC02ULL);
    buildInsnCost(*mod, mod->findGlobal("cost_tab")->id,
                  mod->findGlobal("len_tab")->id,
                  mod->findGlobal("delay_tab")->id);
    buildMain(*mod, codes, regs, nreq, out);
    mod->setEntryFunction(mod->findFunction("main")->id());

    Workload w;
    w.name = "gcc";
    w.module = mod;
    w.outputGlobals = {"out_sum"};
    w.prepare = [](emu::Machine &machine, InputSet set) {
        const bool train = set == InputSet::Train;
        Rng rng(train ? 0x6CC'0001 : 0x6CC'0002);
        const std::size_t n = train ? 9500 : 11500;
        // A compiler sees a moderately wide distribution of codes.
        const auto codes = zipfRequests(
            rng, n, train ? 64 : 72, train ? 1.2 : 1.15, [](Rng &r) {
                return static_cast<std::int64_t>(r.nextBelow(1 << 14));
            });
        const auto regs = zipfRequests(
            rng, n, 28, 1.25, [](Rng &r) {
                return static_cast<std::int64_t>(r.nextBelow(64));
            });
        fillGlobal64(machine, "code_stream", codes);
        fillGlobal64(machine, "reg_stream", regs);
        // Tuning tables: fixed for a compilation, so reads stay valid.
        std::vector<std::int64_t> cost(16), len(16), delay(16);
        for (int k = 0; k < 16; ++k) {
            cost[static_cast<std::size_t>(k)] =
                static_cast<std::int64_t>(1 + rng.nextBelow(12));
            len[static_cast<std::size_t>(k)] =
                static_cast<std::int64_t>(1 + rng.nextBelow(6));
            delay[static_cast<std::size_t>(k)] =
                static_cast<std::int64_t>(rng.nextBelow(4));
        }
        fillGlobal64(machine, "cost_tab", cost);
        fillGlobal64(machine, "len_tab", len);
        fillGlobal64(machine, "delay_tab", delay);
        setGlobal64(machine, "n_requests",
                    static_cast<std::int64_t>(n));
    };
    return w;
}

} // namespace ccr::workloads
