/**
 * @file
 * `mpeg2enc` — models the MediaBench MPEG-2 encoder. In low-motion
 * video the motion estimator keeps evaluating the same small vectors
 * and the quantizer keeps seeing the same coefficient magnitudes.
 * Kernels: motion-vector cost (const rate table over (dx,dy)),
 * coefficient quantize/clip through the const clip table, a 5-input
 * prediction select, and an 8-pixel SAD row loop over the malloc'd
 * frame buffer — the SAD walk is anonymous memory, so the compiler
 * cannot capture it (only the limit study sees its recurrence).
 */

#include "workloads/support.hh"
#include "workloads/workload.hh"

#include "ir/builder.hh"

namespace ccr::workloads
{

namespace
{

constexpr std::size_t kMaxRequests = 16384;
constexpr int kFramePixels = 1024;

using namespace ccr::ir;

/** mv_cost(dx, dy): rate-table lookup + quadratic penalty. */
void
buildMvCost(Module &mod, GlobalId rate)
{
    Function &f = mod.addFunction("mv_cost", 2);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg dx = 0;
    const Reg dy = 1;
    const Reg ax = b.andI(dx, 31);
    const Reg ay = b.andI(dy, 31);
    const Reg rb = b.movGA(rate);
    const Reg rx = b.load(b.add(rb, ax), 0, MemSize::Byte, true);
    const Reg ry = b.load(b.add(rb, ay), 0, MemSize::Byte, true);
    const Reg lin = b.add(rx, ry);
    const Reg quad = b.mul(ax, ay);
    const Reg cost = b.add(b.shlI(lin, 2), b.shrI(quad, 1));
    b.ret(cost);
}

/**
 * predict(dx, dy, cx, cy, mode): motion-compensated prediction
 * select — five correlated register inputs, stateless (SL_6 group).
 */
void
buildPredict(Module &mod)
{
    Function &f = mod.addFunction("predict", 5);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg dx = 0;
    const Reg dy = 1;
    const Reg cx = 2;
    const Reg cy = 3;
    const Reg mode = 4;
    const Reg vx = b.add(b.shlI(dx, 1), cx);
    const Reg vy = b.add(b.shlI(dy, 1), cy);
    const Reg mag = b.add(b.mul(vx, vx), b.mul(vy, vy));
    const Reg sel = b.mulI(mode, 13);
    const Reg t = b.xorR(mag, sel);
    const Reg folded = b.xorR(t, b.shrI(t, 7));
    b.ret(b.andI(folded, 0x3fff));
}

/** coef_quant(c, q): quantize + clip through the const clip table. */
void
buildCoefQuant(Module &mod, GlobalId clip)
{
    Function &f = mod.addFunction("coef_quant", 2);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg c = 0;
    const Reg q = 1;
    const Reg qq = b.orI(b.andI(q, 30), 2);
    const Reg scaled = b.div(b.mulI(c, 16), qq);
    const Reg biased = b.addI(scaled, 512);
    const Reg idx = b.andI(biased, 1023);
    const Reg cb = b.movGA(clip);
    const Reg clipped = b.load(b.add(cb, idx), 0, MemSize::Byte, true);
    const Reg packed = b.add(b.shlI(clipped, 1), b.andI(c, 1));
    b.ret(packed);
}

/** sad_row(off_a, off_b): 8-pixel SAD over the frame buffer. */
void
buildSadRow(Module &mod, GlobalId frame_ptr)
{
    Function &f = mod.addFunction("sad_row", 2);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId neg = b.newBlock();
    const BlockId acc_bb = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId out = b.newBlock();
    f.setEntry(entry);

    const Reg off_a = 0;
    const Reg off_b = 1;
    const Reg k = b.reg();
    const Reg sad = b.reg();
    const Reg diff = b.reg();

    b.setInsertPoint(entry);
    // Frame buffers are malloc'd: the SAD walk stays anonymous and the
    // compiler cannot form a region over it, exactly like real video
    // data.
    const Reg base = b.load(b.movGA(frame_ptr), 0);
    const Reg pa = b.add(base, b.andI(off_a, kFramePixels - 8));
    const Reg pb = b.add(base, b.andI(off_b, kFramePixels - 8));
    b.movITo(k, 0);
    b.movITo(sad, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLtI(k, 8);
    b.br(more, body, out);

    b.setInsertPoint(body);
    const Reg va = b.load(b.add(pa, k), 0, MemSize::Byte, true);
    const Reg vb = b.load(b.add(pb, k), 0, MemSize::Byte, true);
    b.binOpTo(diff, Opcode::Sub, va, vb);
    const Reg isneg = b.cmpLtI(diff, 0);
    b.br(isneg, neg, acc_bb);

    b.setInsertPoint(neg);
    b.binOpTo(diff, Opcode::Sub, b.movI(0), diff);
    b.jump(acc_bb);

    b.setInsertPoint(acc_bb);
    b.binOpTo(sad, Opcode::Add, sad, diff);
    b.jump(latch);

    b.setInsertPoint(latch);
    b.binOpITo(k, Opcode::Add, k, 1);
    b.jump(header);

    b.setInsertPoint(out);
    b.ret(sad);
}

/** touch_frame(off, v): frame update between pictures (mutator). */
void
buildTouchFrame(Module &mod, GlobalId frame_ptr)
{
    Function &f = mod.addFunction("touch_frame", 2);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg off = 0;
    const Reg v = 1;
    const Reg base = b.load(b.movGA(frame_ptr), 0);
    const Reg p = b.add(base, b.andI(off, kFramePixels - 1));
    b.store(p, 0, v, MemSize::Byte);
    b.ret();
}

/** frame_init(): heap-allocate the frame and copy the initial image
 *  from the setup global. */
void
buildFrameInit(Module &mod, GlobalId frame_setup, GlobalId frame_ptr)
{
    Function &f = mod.addFunction("frame_init", 0);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId done = b.newBlock();
    const Reg j = b.reg();
    const Reg p = b.reg();

    b.setInsertPoint(entry);
    {
        Inst a;
        a.op = Opcode::Alloc;
        a.dst = p;
        a.srcImm = true;
        a.imm = kFramePixels;
        b.emit(a);
    }
    b.movITo(j, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLtI(j, kFramePixels / 8);
    b.br(more, body, done);

    b.setInsertPoint(body);
    const Reg off = b.shlI(j, 3);
    const Reg v = b.load(b.add(b.movGA(frame_setup), off), 0);
    b.store(b.add(p, off), 0, v);
    b.binOpITo(j, Opcode::Add, j, 1);
    b.jump(header);

    b.setInsertPoint(done);
    b.store(b.movGA(frame_ptr), 0, p);
    b.ret();
}

void
buildMain(Module &mod, GlobalId reqs, GlobalId nreq, GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);

    const BlockId entry = b.newBlock();
    const BlockId setup = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId c1 = b.newBlock();
    const BlockId c2 = b.newBlock();
    const BlockId c3 = b.newBlock();
    const BlockId c3b = b.newBlock();
    const BlockId do_touch = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId exit = b.newBlock();
    f.setEntry(entry);

    const Reg i = b.reg();
    const Reg acc = b.reg();

    b.setInsertPoint(entry);
    b.callVoid(mod.findFunction("frame_init")->id(), {}, setup);

    b.setInsertPoint(setup);
    const Reg n = b.load(b.movGA(nreq), 0);
    const Reg rbase = b.movGA(reqs);
    b.movITo(i, 0);
    b.movITo(acc, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLt(i, n);
    b.br(more, body, exit);

    b.setInsertPoint(body);
    const Reg off = b.shlI(i, 3);
    const Reg req = b.load(b.add(rbase, off), 0);
    // req: [dx:5][dy:5][coef:10][q:5][blk:10]
    const Reg dx = b.andI(req, 31);
    const Reg dy = b.andI(b.shrI(req, 5), 31);
    const Reg cost = b.call(mod.findFunction("mv_cost")->id(),
                            {dx, dy}, c1);

    b.setInsertPoint(c1);
    const Reg coef = b.subI(b.andI(b.shrI(req, 10), 1023), 512);
    const Reg q = b.andI(b.shrI(req, 20), 31);
    const Reg cq = b.call(mod.findFunction("coef_quant")->id(),
                          {coef, q}, c2);

    b.setInsertPoint(c2);
    const Reg blk = b.andI(b.shrI(req, 25), 1023);
    const Reg blk2 = b.addI(blk, 128);
    const Reg sad = b.call(mod.findFunction("sad_row")->id(),
                           {blk, blk2}, c3);

    b.setInsertPoint(c3);
    const Reg cx = b.andI(b.shrI(req, 2), 15);
    const Reg cy = b.andI(b.shrI(req, 7), 15);
    const Reg mode = b.andI(b.shrI(req, 30), 3);
    const Reg pred = b.call(mod.findFunction("predict")->id(),
                            {dx, dy, cx, cy, mode}, c3b);

    b.setInsertPoint(c3b);
    b.binOpTo(acc, Opcode::Add, acc, pred);
    const Reg d0 = b.mulI(i, 0xCC9E2D51);
    b.binOpTo(acc, Opcode::Add, acc, b.andI(d0, 0x3f));
    b.binOpTo(acc, Opcode::Add, acc,
              b.add(cost, b.add(cq, sad)));
    // Frame updates at picture boundaries (~1% of requests).
    const Reg touchp = b.cmpEqI(b.andI(i, 127), 127);
    b.br(touchp, do_touch, latch);

    b.setInsertPoint(do_touch);
    b.callVoid(mod.findFunction("touch_frame")->id(), {req, i}, latch);

    b.setInsertPoint(latch);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    b.store(b.movGA(out), 0, acc);
    b.halt();
}

} // namespace

Workload
buildMpeg2enc()
{
    auto mod = std::make_shared<ir::Module>("mpeg2enc");

    std::vector<std::uint8_t> rate(32);
    for (std::size_t i = 0; i < rate.size(); ++i)
        rate[i] = static_cast<std::uint8_t>(2 * i + 1);
    const GlobalId rg = addConstTable8(*mod, "mv_rate_tab", rate).id;

    std::vector<std::uint8_t> clip(1024);
    for (std::size_t i = 0; i < clip.size(); ++i) {
        const int c = static_cast<int>(i) - 512;
        clip[i] = static_cast<std::uint8_t>(
            c < -128 ? 0 : (c > 127 ? 255 : c + 128));
    }
    const GlobalId cg = addConstTable8(*mod, "clip_tab", clip).id;
    const GlobalId frame = mod->addGlobal("frame", kFramePixels).id;
    const GlobalId frame_ptr = mod->addGlobal("frame_ptr", 8).id;
    const GlobalId reqs =
        mod->addGlobal("req_stream", kMaxRequests * 8).id;
    const GlobalId nreq = mod->addGlobal("n_requests", 8).id;
    const GlobalId out = mod->addGlobal("out_sum", 8).id;

    buildMvCost(*mod, rg);
    buildPredict(*mod);
    buildCoefQuant(*mod, cg);
    buildSadRow(*mod, frame_ptr);
    buildTouchFrame(*mod, frame_ptr);
    buildFrameInit(*mod, frame, frame_ptr);
    buildMain(*mod, reqs, nreq, out);
    mod->setEntryFunction(mod->findFunction("main")->id());

    Workload w;
    w.name = "mpeg2enc";
    w.module = mod;
    w.outputGlobals = {"out_sum"};
    w.prepare = [](emu::Machine &machine, InputSet set) {
        const bool train = set == InputSet::Train;
        Rng rng(train ? 0x3E6'0001 : 0x3E6'0002);
        const std::size_t n = train ? 4200 : 5400;
        // Low-motion video: small vectors and coefficients recur.
        const auto reqs = zipfRequests(
            rng, n, train ? 24 : 30, train ? 1.45 : 1.35, [](Rng &r) {
                const std::uint64_t dx = r.nextBelow(8);
                const std::uint64_t dy = r.nextBelow(8);
                const std::uint64_t coef = 512 + r.nextBelow(64) - 32;
                const std::uint64_t q = 2 + r.nextBelow(8);
                const std::uint64_t blk = r.nextBelow(32) * 8;
                return static_cast<std::int64_t>(
                    dx | (dy << 5) | (coef << 10) | (q << 20)
                    | (blk << 25));
            });
        std::vector<std::int64_t> frame_words(kFramePixels / 8);
        for (auto &wd : frame_words)
            wd = static_cast<std::int64_t>(rng.next());
        fillGlobal64(machine, "frame", frame_words);
        fillGlobal64(machine, "req_stream", reqs);
        setGlobal64(machine, "n_requests",
                    static_cast<std::int64_t>(n));
    };
    return w;
}

} // namespace ccr::workloads
