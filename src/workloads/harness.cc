#include "workloads/harness.hh"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "analysis/alias.hh"
#include "ir/verifier.hh"
#include "opt/passes.hh"
#include "profile/value_profiler.hh"
#include "support/logging.hh"
#include "workloads/cache.hh"

namespace ccr::workloads
{

namespace
{

const char *
inputSetName(InputSet set)
{
    return set == InputSet::Train ? "train" : "ref";
}

/** Flattened configuration snapshot for the SimReport. */
obs::Json
configJson(const RunConfig &config)
{
    obs::Json c = obs::Json::object();
    c["scheme"] = obs::Json(reuse::schemeKindName(config.scheme));
    if (config.scheme == reuse::SchemeKind::Dtm) {
        c["dtm.maxTraces"] = obs::Json(config.dtm.maxTraces);
        c["dtm.tracesPerRegion"] = obs::Json(config.dtm.tracesPerRegion);
        c["dtm.maxRegInputs"] = obs::Json(config.dtm.maxRegInputs);
        c["dtm.maxMemInputs"] = obs::Json(config.dtm.maxMemInputs);
        c["dtm.maxOutputs"] = obs::Json(config.dtm.maxOutputs);
    }
    c["crb.entries"] = obs::Json(config.crb.entries);
    c["crb.instances"] = obs::Json(config.crb.instances);
    c["crb.assoc"] = obs::Json(config.crb.assoc);
    c["crb.bankSize"] = obs::Json(config.crb.bankSize);
    c["crb.memCapableFraction"] =
        obs::Json(config.crb.memCapableFraction);
    c["crb.nonuniformSplit"] = obs::Json(config.crb.nonuniformSplit);
    c["pipe.issueWidth"] = obs::Json(config.pipe.issueWidth);
    c["pipe.speculativeValidation"] =
        obs::Json(config.pipe.speculativeValidation);
    c["profileInput"] = obs::Json(inputSetName(config.profileInput));
    c["measureInput"] = obs::Json(inputSetName(config.measureInput));
    c["optimizeBase"] = obs::Json(config.optimizeBase);
    c["maxInsts"] = obs::Json(config.maxInsts);
    c["telemetry.enabled"] = obs::Json(config.telemetry.enabled);
    return c;
}

/**
 * A stage ran out of instruction budget before halting. Fatal under
 * the offline driver's strict default; otherwise a structured
 * incomplete result with a minimal (but schema-shaped) report, so
 * servers running untrusted budgets can report the containment
 * instead of dying.
 */
RunResult
incompleteResult(RunResult result, const std::string &workload_name,
                 const RunConfig &config, const char *stage)
{
    if (config.budgetFatal)
        ccr_fatal(workload_name, ": ", stage,
                  " run did not halt within maxInsts=",
                  config.maxInsts);
    result.completed = false;
    result.incompleteStage = stage;
    result.outputsMatch = false;
    result.report.workload = workload_name;
    result.report.config = configJson(config);
    result.report.metrics = obs::Json::object();
    result.report.metrics["run.completed"] =
        obs::Json(std::uint64_t{0});
    return result;
}

/**
 * Assemble the RunReport from the run's registries. @p ccr_pipe
 * carries the timed CCR run's full registry (stall attribution,
 * caches, predictor); the base run contributes the counter snapshots
 * carried by @p base, which are identical whether or not the base
 * stage came from the experiment cache. @p scheme may be null
 * (SchemeKind::None): the report then carries no scheme counters.
 */
void
buildRunReport(RunResult &result, const std::string &workload_name,
               const RunConfig &config, const BaseRunData &base,
               reuse::ReuseScheme *scheme, uarch::Pipeline &ccr_pipe)
{
    if (scheme != nullptr)
        scheme->snapshotOccupancy();

    obs::MetricRegistry agg;
    agg.counter("base.pipe.cycles") += result.base.cycles;
    agg.counter("base.pipe.insts") += result.base.insts;
    agg.counter("base.icache.misses") += base.icacheMisses;
    agg.counter("base.dcache.misses") += base.dcacheMisses;
    agg.counter("base.bpred.mispredicts") += base.branchMispredicts;
    agg.merge(ccr_pipe.metrics(), "ccr");
    if (scheme != nullptr)
        scheme->exportMetrics(agg);
    agg.counter("formation.cyclicFormed") += static_cast<std::uint64_t>(
        result.formation.cyclicFormed);
    agg.counter("formation.acyclicFormed") +=
        static_cast<std::uint64_t>(result.formation.acyclicFormed);
    agg.counter("formation.functionLevelFormed") +=
        static_cast<std::uint64_t>(result.formation.functionLevelFormed);
    agg.counter("formation.seedsRejected") +=
        static_cast<std::uint64_t>(result.formation.seedsRejected);
    agg.counter("formation.invalidationsPlaced") +=
        static_cast<std::uint64_t>(result.formation.invalidationsPlaced);
    // Emitted only when nonzero: the key appears exactly on workloads
    // where range claims elided an invalidation, keeping pre-range
    // reports byte-identical.
    if (result.formation.invalidationsElided != 0) {
        agg.counter("formation.invalidationsElided") +=
            static_cast<std::uint64_t>(
                result.formation.invalidationsElided);
    }
    agg.counter("formation.blocksReordered") +=
        static_cast<std::uint64_t>(result.formation.blocksReordered);
    agg.counter("regions.formed") +=
        static_cast<std::uint64_t>(result.regions.size());

    // The scheme and the pipeline count reuse events independently;
    // they must agree before the report is published.
    const std::string prefix =
        scheme != nullptr ? std::string(scheme->name()) + "." : "";
    const std::uint64_t scheme_queries =
        scheme != nullptr ? agg.get(prefix + "queries") : 0;
    const std::uint64_t scheme_hits =
        scheme != nullptr ? agg.get(prefix + "hits") : 0;
    const std::uint64_t pipe_hits = agg.get("ccr.reuse.hits");
    const std::uint64_t pipe_misses = agg.get("ccr.reuse.misses");
    ccr_assert(scheme_hits == pipe_hits
                   && scheme_queries == pipe_hits + pipe_misses,
               "telemetry registries disagree: the scheme counted ",
               scheme_hits, "/", scheme_queries,
               " hits/queries but the pipeline observed ", pipe_hits,
               " hits and ", pipe_misses, " misses");

    obs::RunReport &report = result.report;
    report.workload = workload_name;
    report.config = configJson(config);
    report.metrics = agg.toJson();

    report.derived["speedup"] =
        obs::Json(obs::speedup(result.base.cycles, result.ccr.cycles));
    report.derived["baseIpc"] = obs::Json(result.base.ipc());
    report.derived["ccrIpc"] = obs::Json(result.ccr.ipc());
    report.derived["instsEliminated"] =
        obs::Json(result.instsEliminated());
    const obs::Json hit_rate(
        obs::ratio(static_cast<double>(scheme_hits),
                   static_cast<double>(scheme_queries)));
    // "crbHitRate" predates the scheme interface and is kept as an
    // alias of "schemeHitRate" for one release.
    report.derived["crbHitRate"] = hit_rate;
    report.derived["schemeHitRate"] = hit_rate;
    report.derived["outputsMatch"] = obs::Json(result.outputsMatch);

    // Per-region attribution, sorted by region id for determinism.
    static const std::unordered_map<ir::RegionId, std::uint64_t>
        kNoHits;
    const auto &hits_by_region =
        scheme != nullptr ? scheme->hitsByRegion() : kNoHits;
    std::vector<const core::ReuseRegion *> regions;
    regions.reserve(result.regions.size());
    for (const auto &region : result.regions.regions())
        regions.push_back(&region);
    std::sort(regions.begin(), regions.end(),
              [](const auto *a, const auto *b) { return a->id < b->id; });
    for (const auto *region : regions) {
        std::uint64_t hits = 0;
        const auto it = hits_by_region.find(region->id);
        if (it != hits_by_region.end())
            hits = it->second;
        obs::Json r = obs::Json::object();
        r["id"] = obs::Json(static_cast<std::uint64_t>(region->id));
        r["staticInsts"] = obs::Json(region->staticInsts);
        r["cyclic"] = obs::Json(region->cyclic);
        r["functionLevel"] = obs::Json(region->functionLevel);
        r["loopDepth"] = obs::Json(region->loopDepth);
        r["mix.intAlu"] = obs::Json(region->instMix[0]);
        r["mix.mem"] = obs::Json(region->instMix[1]);
        r["mix.fpAlu"] = obs::Json(region->instMix[2]);
        r["mix.branch"] = obs::Json(region->instMix[3]);
        r["hits"] = obs::Json(hits);
        r["eliminatedInsts"] = obs::Json(
            hits * static_cast<std::uint64_t>(region->staticInsts));
        // Key present only on regions whose memory claims narrowed to
        // byte ranges (report stability for whole-structure regions).
        if (!region->memRanges.empty())
            r["memRanged"] = obs::Json(true);
        report.regions.push(std::move(r));
    }
}

/**
 * Translation-validation hook on the formation output: re-derive the
 * regions' legality properties with ccr_lint and panic on any Error.
 * On by default in debug builds; CCR_LINT=1 forces it on in release
 * builds and CCR_LINT=0 forces it off.
 */
void
maybeLintFormedRegions(const ir::Module &mod,
                       const core::RegionTable &regions)
{
#ifdef NDEBUG
    bool enabled = false;
#else
    bool enabled = true;
#endif
    if (const char *env = std::getenv("CCR_LINT"))
        enabled = env[0] != '0';
    if (!enabled)
        return;
    const lint::LintResult res = lint::lintModule(mod, regions);
    for (const auto &d : res.diagnostics) {
        if (d.severity == ir::Severity::Error)
            std::cerr << ir::formatDiagnostic(d) << "\n";
    }
    ccr_assert(res.ok(), "region lint found ", res.numErrors(),
               " error(s) in the former's output");
}

} // namespace

void
snapshotBaseCounters(BaseRunData &data, const uarch::Pipeline &pipe)
{
    const obs::MetricRegistry &m = pipe.metrics();
    data.icacheMisses = m.get("icache.misses");
    data.dcacheMisses = m.get("dcache.misses");
    data.branchMispredicts = m.get("pipe.branchMispredicts");
}

profile::ProfileData
profileWorkload(const Workload &workload, InputSet set,
                std::uint64_t max_insts)
{
    emu::Machine machine(*workload.module);
    workload.prepare(machine, set);
    profile::ValueProfiler profiler(machine);
    machine.addObserver(&profiler);
    machine.run(max_insts);
    profile::ProfileData prof = profiler.takeProfile();
    prof.completed = machine.halted();
    return prof;
}

WorkloadLintResult
lintWorkload(const std::string &workload_name,
             const core::ReusePolicy &policy, bool run_crosscheck,
             std::uint64_t max_insts)
{
    return lintWorkload(buildWorkload(workload_name), policy,
                        run_crosscheck, max_insts);
}

WorkloadLintResult
lintWorkload(const Workload &w, const core::ReusePolicy &policy,
             bool run_crosscheck, std::uint64_t max_insts)
{
    WorkloadLintResult out;
    const profile::ProfileData prof =
        profileWorkload(w, InputSet::Train, max_insts);
    if (!prof.completed) {
        // A workload that can't finish its training run inside the
        // budget is unauditable; report it as a lint error rather
        // than forming regions from a partial profile.
        out.lint.diagnostics.push_back(ir::makeError(
            "lint.budget.exhausted",
            w.name
                + ": training run did not halt within the "
                  "instruction budget ("
                + std::to_string(max_insts) + " insts)"));
        return out;
    }

    analysis::AliasAnalysis alias(*w.module);
    alias.annotateDeterminableLoads(*w.module);
    core::RegionFormer former(*w.module, prof, alias, policy);
    out.regions = former.formAll();
    out.formation = former.stats();
    out.lint = lint::lintModule(*w.module, out.regions);

    if (run_crosscheck) {
        emu::Machine machine(*w.module);
        w.prepare(machine, InputSet::Train);
        out.cross = lint::crossCheck(machine, out.regions, max_insts);
        out.ranCrossCheck = true;
    }
    return out;
}

profile::PotentialResult
measurePotential(const std::string &name, InputSet set,
                 profile::PotentialParams params)
{
    const Workload w = buildWorkload(name);
    emu::Machine machine(*w.module);
    w.prepare(machine, set);
    profile::ReusePotentialStudy study(machine, params);
    machine.addObserver(&study);
    machine.run();
    return study.result();
}

RunResult
runCcrExperiment(const std::string &workload_name,
                 const RunConfig &config)
{
    return runCcrExperiment(workload_name, config, nullptr);
}

RunResult
runCcrExperiment(const std::string &workload_name,
                 const RunConfig &config, ExperimentCache *cache)
{
    RunResult result;

    // -- Base machine: untransformed code, no CRB ----------------------
    std::shared_ptr<const BaseRunData> base_data;
    if (cache) {
        base_data = cache->baseRun(workload_name, config.optimizeBase,
                                   config.measureInput, config.pipe,
                                   config.maxInsts);
    } else {
        const Workload base = buildWorkload(workload_name);
        if (config.optimizeBase) {
            opt::runStandardPipeline(*base.module);
        }
        ir::verifyOrDie(*base.module);
        emu::Machine machine(*base.module);
        base.prepare(machine, config.measureInput);
        uarch::Pipeline pipe(config.pipe);
        auto data = std::make_shared<BaseRunData>();
        data->timing = pipe.run(machine, config.maxInsts);
        data->completed = machine.halted();
        snapshotBaseCounters(*data, pipe);
        if (data->completed)
            data->outputs = readOutputs(machine, base);
        base_data = std::move(data);
    }
    result.base = base_data->timing;
    if (!base_data->completed)
        return incompleteResult(std::move(result), workload_name,
                                config, "base");

    // -- CCR machine: profile, form regions, run with the scheme -------
    {
        Workload ccr = cache
                           ? cache->workload(workload_name,
                                             config.optimizeBase)
                           : buildWorkload(workload_name);
        if (!cache && config.optimizeBase) {
            opt::runStandardPipeline(*ccr.module);
            ir::verifyOrDie(*ccr.module);
        }

        std::unique_ptr<reuse::ReuseScheme> scheme =
            reuse::makeScheme(reuse::SchemeConfig{
                config.scheme, config.crb, config.dtm});

        // With no reuse hardware (SchemeKind::None) the compilation
        // stages are skipped entirely: the module stays untransformed
        // and the timed run below is cycle-identical to the base
        // machine.
        if (scheme != nullptr) {
            // Training pass (RPS). Cached profiles come from a sibling
            // clone of the same module template; instruction uids
            // agree.
            std::shared_ptr<const profile::ProfileData> cached_prof;
            profile::ProfileData local_prof;
            const profile::ProfileData *prof;
            if (cache) {
                cached_prof =
                    cache->profile(workload_name, config.optimizeBase,
                                   config.profileInput, config.maxInsts);
                prof = cached_prof.get();
            } else {
                emu::Machine machine(*ccr.module);
                ccr.prepare(machine, config.profileInput);
                profile::ValueProfiler profiler(machine);
                machine.addObserver(&profiler);
                machine.run(config.maxInsts);
                local_prof = profiler.takeProfile();
                local_prof.completed = machine.halted();
                prof = &local_prof;
            }
            if (!prof->completed)
                return incompleteResult(std::move(result),
                                        workload_name, config,
                                        "profile");

            // Compilation: alias analysis + region formation.
            analysis::AliasAnalysis alias(*ccr.module);
            alias.annotateDeterminableLoads(*ccr.module);
            core::RegionFormer former(*ccr.module, *prof, alias,
                                      config.policy);
            result.regions = former.formAll();
            result.formation = former.stats();
            maybeLintFormedRegions(*ccr.module, result.regions);
        }

        // Timed CCR run.
        emu::Machine machine(*ccr.module);
        ccr.prepare(machine, config.measureInput);
        uarch::Pipeline pipe(config.pipe);
        pipe.setScheme(scheme.get());

        // Resolve the former's per-global range claims against this
        // machine's data layout and register them with the scheme:
        // invalidates whose store misses every claimed byte range are
        // then skipped dynamically.
        if (scheme != nullptr && config.policy.rangeMemClaims) {
            for (const auto &region : result.regions.regions()) {
                if (region.memStructs.empty())
                    continue;
                std::vector<reuse::MemClaim> claims;
                claims.reserve(region.memStructs.size());
                for (std::size_t i = 0; i < region.memStructs.size();
                     ++i) {
                    const ir::GlobalId g = region.memStructs[i];
                    const emu::Addr base = machine.globalAddr(g);
                    const core::MemRange mr = region.memRange(i);
                    const std::uint64_t size =
                        ccr.module->global(g).sizeBytes;
                    reuse::MemClaim c;
                    if (mr.whole) {
                        c.lo = base;
                        c.hi = base + (size != 0 ? size - 1 : 0);
                    } else {
                        c.lo = base + mr.lo;
                        c.hi = base + mr.hi;
                    }
                    claims.push_back(c);
                }
                scheme->setMemClaims(region.id, std::move(claims));
            }
        }
        if (config.telemetry.enabled) {
            result.trace = std::make_shared<obs::TraceSink>(
                config.telemetry.traceCapacity);
            if (scheme != nullptr)
                scheme->setTraceSink(result.trace.get());
            pipe.setTelemetry(result.trace.get(),
                              config.telemetry.intervalInsts);
        }
        result.ccr = pipe.run(machine, config.maxInsts);
        if (!machine.halted())
            return incompleteResult(std::move(result),
                                    workload_name, config, "ccr");

        const auto ccr_outputs = readOutputs(machine, ccr);
        result.outputsMatch = ccr_outputs == base_data->outputs;

        buildRunReport(result, workload_name, config, *base_data,
                       scheme.get(), pipe);
    }

    return result;
}

} // namespace ccr::workloads
