#include "workloads/harness.hh"

#include "analysis/alias.hh"
#include "ir/verifier.hh"
#include "opt/passes.hh"
#include "profile/value_profiler.hh"
#include "support/logging.hh"
#include "workloads/cache.hh"

namespace ccr::workloads
{

profile::ProfileData
profileWorkload(const Workload &workload, InputSet set,
                std::uint64_t max_insts)
{
    emu::Machine machine(*workload.module);
    workload.prepare(machine, set);
    profile::ValueProfiler profiler(machine);
    machine.addObserver(&profiler);
    machine.run(max_insts);
    ccr_assert(machine.halted(),
               "workload did not halt within the instruction budget");
    return profiler.takeProfile();
}

profile::PotentialResult
measurePotential(const std::string &name, InputSet set,
                 profile::PotentialParams params)
{
    const Workload w = buildWorkload(name);
    emu::Machine machine(*w.module);
    w.prepare(machine, set);
    profile::ReusePotentialStudy study(machine, params);
    machine.addObserver(&study);
    machine.run();
    return study.result();
}

RunResult
runCcrExperiment(const std::string &workload_name,
                 const RunConfig &config)
{
    return runCcrExperiment(workload_name, config, nullptr);
}

RunResult
runCcrExperiment(const std::string &workload_name,
                 const RunConfig &config, ExperimentCache *cache)
{
    RunResult result;

    // -- Base machine: untransformed code, no CRB ----------------------
    std::vector<ir::Value> base_outputs;
    if (cache) {
        const auto base =
            cache->baseRun(workload_name, config.optimizeBase,
                           config.measureInput, config.pipe,
                           config.maxInsts);
        result.base = base->timing;
        base_outputs = base->outputs;
    } else {
        const Workload base = buildWorkload(workload_name);
        if (config.optimizeBase) {
            opt::runStandardPipeline(*base.module);
        }
        ir::verifyOrDie(*base.module);
        emu::Machine machine(*base.module);
        base.prepare(machine, config.measureInput);
        uarch::Pipeline pipe(config.pipe);
        result.base = pipe.run(machine, config.maxInsts);
        ccr_assert(machine.halted(), "base run did not complete");
        base_outputs = readOutputs(machine, base);
    }

    // -- CCR machine: profile, form regions, run with the CRB ----------
    {
        Workload ccr = cache
                           ? cache->workload(workload_name,
                                             config.optimizeBase)
                           : buildWorkload(workload_name);
        if (!cache && config.optimizeBase) {
            opt::runStandardPipeline(*ccr.module);
            ir::verifyOrDie(*ccr.module);
        }

        // Training pass (RPS). Cached profiles come from a sibling
        // clone of the same module template; instruction uids agree.
        std::shared_ptr<const profile::ProfileData> cached_prof;
        profile::ProfileData local_prof;
        const profile::ProfileData *prof;
        if (cache) {
            cached_prof =
                cache->profile(workload_name, config.optimizeBase,
                               config.profileInput, config.maxInsts);
            prof = cached_prof.get();
        } else {
            emu::Machine machine(*ccr.module);
            ccr.prepare(machine, config.profileInput);
            profile::ValueProfiler profiler(machine);
            machine.addObserver(&profiler);
            machine.run(config.maxInsts);
            ccr_assert(machine.halted(), "profile run did not complete");
            local_prof = profiler.takeProfile();
            prof = &local_prof;
        }

        // Compilation: alias analysis + region formation.
        analysis::AliasAnalysis alias(*ccr.module);
        alias.annotateDeterminableLoads(*ccr.module);
        core::RegionFormer former(*ccr.module, *prof, alias,
                                  config.policy);
        result.regions = former.formAll();
        result.formation = former.stats();

        // Timed CCR run.
        emu::Machine machine(*ccr.module);
        ccr.prepare(machine, config.measureInput);
        uarch::Crb crb(config.crb);
        uarch::Pipeline pipe(config.pipe);
        pipe.setCrb(&crb);
        result.ccr = pipe.run(machine, config.maxInsts);
        ccr_assert(machine.halted(), "CCR run did not complete");

        result.crbQueries = crb.stats().get("queries");
        result.crbHits = crb.stats().get("hits");
        result.crbInvalidates = crb.stats().get("invalidates");
        result.hitsByRegion = crb.hitsByRegion();

        const auto ccr_outputs = readOutputs(machine, ccr);
        result.outputsMatch = ccr_outputs == base_outputs;
    }

    return result;
}

} // namespace ccr::workloads
