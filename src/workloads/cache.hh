/**
 * @file
 * Experiment cache: memoizes the expensive, config-independent stages
 * of the CCR evaluation flow so that an N-point sweep pays them once
 * per workload instead of N times.
 *
 * Three stages are cached:
 *
 *  1. built (and optionally classic-optimized) workload modules,
 *     keyed by (workload, optimizeBase). The cached module is an
 *     immutable template; every consumer receives a fresh deep clone,
 *     because region formation and the optimizer rewrite modules in
 *     place. Clones preserve instruction uids, so profiles taken on
 *     one clone apply to any sibling.
 *  2. RPS training profiles, keyed by (workload, optimizeBase,
 *     profileInput, instruction budget).
 *  3. base-machine timed runs (timing result + program outputs),
 *     keyed additionally by the measured input set and the full
 *     pipeline configuration — the base machine has no CRB, so the
 *     result is independent of the CRB geometry and reuse policy
 *     being swept.
 *
 * All entries are computed single-flight: concurrent requests for the
 * same key block on one computation instead of duplicating it. The
 * maps are guarded by std::shared_mutex; the values themselves are
 * immutable once published, so readers share them lock-free.
 */

#ifndef CCR_WORKLOADS_CACHE_HH
#define CCR_WORKLOADS_CACHE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "profile/profiles.hh"
#include "uarch/pipeline.hh"
#include "workloads/workload.hh"

namespace ccr::workloads
{

/** A cached base-machine run: timing, the event counts the SimReport
 *  publishes under "base.*", and the program outputs used for
 *  base-vs-CCR equivalence checking. */
struct BaseRunData
{
    uarch::TimingResult timing;

    /** Snapshots of the base pipeline's registry counters
     *  "icache.misses", "dcache.misses" and "pipe.branchMispredicts"
     *  (conditional branches only). */
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheMisses = 0;
    std::uint64_t branchMispredicts = 0;

    std::vector<ir::Value> outputs;

    /** False when the run hit its instruction budget before halting;
     *  outputs are then unset and the timing is partial. The harness
     *  decides whether that is fatal (RunConfig::budgetFatal). */
    bool completed = true;
};

/** Fill a BaseRunData's counter snapshots from a just-finished base
 *  pipeline's registry (defined in harness.cc; shared by the cache's
 *  builder and the uncached experiment flow). */
void snapshotBaseCounters(BaseRunData &data,
                          const uarch::Pipeline &pipe);

class ExperimentCache
{
  public:
    ExperimentCache() = default;
    ExperimentCache(const ExperimentCache &) = delete;
    ExperimentCache &operator=(const ExperimentCache &) = delete;

    /**
     * A ready-to-run instance of @p name: built, verified, and — when
     * @p optimized — passed through the classic optimizer pipeline.
     * The returned Workload owns a private clone of the cached module.
     */
    Workload workload(const std::string &name, bool optimized);

    /** RPS training profile of (name, optimized) on @p set. */
    std::shared_ptr<const profile::ProfileData>
    profile(const std::string &name, bool optimized, InputSet set,
            std::uint64_t max_insts);

    /** Timed base-machine (no CRB) run of (name, optimized) on
     *  @p set under @p pipe. */
    std::shared_ptr<const BaseRunData>
    baseRun(const std::string &name, bool optimized, InputSet set,
            const uarch::PipelineParams &pipe, std::uint64_t max_insts);

    /** Drop every cached entry. */
    void clear();

    /** Hit/miss counters (misses count one per computed key, not per
     *  waiter). */
    struct Stats
    {
        std::uint64_t moduleHits = 0;
        std::uint64_t moduleMisses = 0;
        std::uint64_t profileHits = 0;
        std::uint64_t profileMisses = 0;
        std::uint64_t baseRunHits = 0;
        std::uint64_t baseRunMisses = 0;
    };
    Stats stats() const;

    /** The process-wide cache shared by the driver and benches. */
    static ExperimentCache &global();

  private:
    template <typename T>
    using Slot = std::shared_future<std::shared_ptr<const T>>;

    /** The immutable (template) form of a built workload. */
    std::shared_ptr<const Workload> moduleTemplate(
        const std::string &name, bool optimized);

    mutable std::shared_mutex mu_;
    std::unordered_map<std::string, Slot<Workload>> modules_;
    std::unordered_map<std::string, Slot<profile::ProfileData>> profiles_;
    std::unordered_map<std::string, Slot<BaseRunData>> baseRuns_;

    std::atomic<std::uint64_t> moduleHits_{0}, moduleMisses_{0};
    std::atomic<std::uint64_t> profileHits_{0}, profileMisses_{0};
    std::atomic<std::uint64_t> baseRunHits_{0}, baseRunMisses_{0};
};

} // namespace ccr::workloads

#endif // CCR_WORKLOADS_CACHE_HH
