/**
 * @file
 * Parallel experiment driver: executes a RunPlan — a list of
 * (workload, RunConfig) points — on a fixed-size worker pool, with the
 * config-independent stages (module build, RPS profile, base timed
 * run) shared through an ExperimentCache.
 *
 * Determinism contract: results are returned in plan order and every
 * point's computation is a pure function of its (workload, config)
 * pair, so the result vector is bit-identical for any worker count —
 * `runPlan(plan, {.jobs = 1})` and `{.jobs = 8}` agree exactly, and a
 * table built by iterating the results serially is byte-identical
 * regardless of completion order. Worker threads carry deterministic
 * per-worker RNGs (ThreadPool::currentWorkerRng) so even scheduling
 * randomness, if a policy ever wants it, stays reproducible.
 */

#ifndef CCR_WORKLOADS_DRIVER_HH
#define CCR_WORKLOADS_DRIVER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "workloads/harness.hh"

namespace ccr::workloads
{

class ExperimentCache;

/** An ordered list of experiment points to run. */
class RunPlan
{
  public:
    struct Point
    {
        std::string workload;
        RunConfig config;
    };

    /** Append one point; returns its index into the result vector. */
    std::size_t
    add(std::string workload, const RunConfig &config)
    {
        points_.push_back({std::move(workload), config});
        return points_.size() - 1;
    }

    /** Append one point per named workload with the same config. */
    void
    addSweep(const std::vector<std::string> &workloads,
             const RunConfig &config)
    {
        for (const auto &name : workloads)
            add(name, config);
    }

    const std::vector<Point> &points() const { return points_; }

    /** Override the reuse scheme of every queued point (the benches'
     *  `--scheme crb|dtm|none` switch). */
    void
    setScheme(reuse::SchemeKind kind)
    {
        for (auto &point : points_)
            point.config.scheme = kind;
    }

    std::size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

  private:
    std::vector<Point> points_;
};

/** Driver knobs. */
struct DriverOptions
{
    /** Worker threads; <= 0 means defaultJobs(). 1 runs inline on the
     *  calling thread. */
    int jobs = 0;

    /** Base seed for the per-worker RNGs. */
    std::uint64_t seed = 0x5EED'0001ULL;

    /**
     * Share module builds, profiles, and base runs across points.
     * When null and useCache is true, the process-wide
     * ExperimentCache::global() is used. Results do not depend on
     * this setting — only wall-clock does.
     */
    bool useCache = true;
    ExperimentCache *cache = nullptr;

    /** Require every point's base and CCR outputs to match; a
     *  mismatch is fatal (the benches' historical behavior). */
    bool checkOutputs = true;

    /**
     * When set, bench harnesses override every plan point's reuse
     * scheme before running (see bench/common.hh;
     * `--scheme crb|dtm|none` / CCR_SCHEME). runPlan itself ignores
     * it.
     */
    std::optional<reuse::SchemeKind> scheme;

    /**
     * When non-empty, bench harnesses write the aggregated SimReport
     * JSON here after the plan completes (see bench/common.hh;
     * `--report <path>` / CCR_REPORT). runPlan itself ignores it.
     */
    std::string reportPath;
};

/**
 * Execute every point of @p plan and return the results in plan
 * order.
 */
std::vector<RunResult> runPlan(const RunPlan &plan,
                               const DriverOptions &options = {});

/**
 * Per-point completion hook for the streaming overload below:
 * invoked once per plan point, as soon as that point's result is
 * ready — possibly concurrently from several worker threads and in
 * arbitrary completion order (the index identifies the point). The
 * `ccrd` server streams each run's SimReport frame to its client
 * from here instead of waiting for the whole batch.
 */
using PointCallback =
    std::function<void(std::size_t index, const RunResult &result)>;

/** Streaming variant: like runPlan, plus @p on_point fires per
 *  completed point. The returned vector is identical to the
 *  non-streaming overload's. */
std::vector<RunResult> runPlan(const RunPlan &plan,
                               const DriverOptions &options,
                               const PointCallback &on_point);

/**
 * Aggregate the per-point RunReports of a completed plan into one
 * SimReport (runs in plan order). The report is a pure function of
 * the plan and results — independent of worker count and caching.
 */
obs::SimReport buildSimReport(const RunPlan &plan,
                              const std::vector<RunResult> &results);

/** The job count used when none is specified: the CCR_JOBS
 *  environment variable, else the hardware thread count. */
int defaultJobs();

} // namespace ccr::workloads

#endif // CCR_WORKLOADS_DRIVER_HH
