/**
 * @file
 * `ijpeg` — models SPEC95 132.ijpeg. JPEG quantization and descaling
 * operate on DCT coefficients that are mostly zero or drawn from a few
 * small magnitudes, a textbook value-locality source. Kernels:
 * quantize (const reciprocal table + saturating clamp with control),
 * descale (stateless rounding arithmetic), and a range-limit lookup
 * through the classic const sample table.
 */

#include "workloads/heapscan.hh"
#include "workloads/support.hh"
#include "workloads/workload.hh"

#include "ir/builder.hh"

namespace ccr::workloads
{

namespace
{

constexpr std::size_t kMaxRequests = 16384;

using namespace ccr::ir;

/** quantize(coef, q): (coef * recip[q]) >> 16, clamped to +-255. */
void
buildQuantize(Module &mod, GlobalId recip)
{
    Function &f = mod.addFunction("quantize", 2);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId clamp_hi = b.newBlock();
    const BlockId check_lo = b.newBlock();
    const BlockId clamp_lo = b.newBlock();
    const BlockId tail = b.newBlock();
    f.setEntry(entry);

    const Reg coef = 0;
    const Reg q = 1;
    const Reg v = b.reg();

    b.setInsertPoint(entry);
    const Reg rbase = b.movGA(recip);
    const Reg rq = b.load(b.add(rbase, b.shlI(b.andI(q, 63), 3)), 0);
    const Reg prod = b.mul(coef, rq);
    b.binOpTo(v, Opcode::Sra, prod, b.movI(16));
    const Reg hi = b.cmpGtI(v, 255);
    b.br(hi, clamp_hi, check_lo);

    b.setInsertPoint(clamp_hi);
    b.movITo(v, 255);
    b.jump(tail);

    b.setInsertPoint(check_lo);
    const Reg lo = b.cmpLtI(v, -255);
    b.br(lo, clamp_lo, tail);

    b.setInsertPoint(clamp_lo);
    b.movITo(v, -255);
    b.jump(tail);

    b.setInsertPoint(tail);
    const Reg biased = b.addI(v, 256);
    b.ret(biased);
}

/** descale(x): x' = (x + 2^(s-1)) >> s with fixed s, then re-center —
 *  pure register arithmetic. */
void
buildDescale(Module &mod)
{
    Function &f = mod.addFunction("descale", 1);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg x = 0;
    const Reg rounded = b.addI(x, 1 << 12);
    const Reg scaled = b.sraI(rounded, 13);
    const Reg sq = b.mul(scaled, scaled);
    const Reg centered = b.sub(sq, b.shlI(scaled, 2));
    const Reg lim = b.andI(centered, 0x3ff);
    b.ret(lim);
}

/** range_limit(s): the const 1KB sample range-limit table lookup. */
void
buildRangeLimit(Module &mod, GlobalId table)
{
    Function &f = mod.addFunction("range_limit", 1);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg s = 0;
    const Reg idx = b.andI(s, 1023);
    const Reg t = b.movGA(table);
    const Reg r = b.load(b.add(t, idx), 0, MemSize::Byte, true);
    const Reg widened = b.add(b.shlI(r, 2), idx);
    b.ret(widened);
}

void
buildMain(Module &mod, GlobalId coefs, GlobalId quals, GlobalId nreq,
          GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);

    const BlockId entry = b.newBlock();
    const BlockId setup = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId c1 = b.newBlock();
    const BlockId c2 = b.newBlock();
    const BlockId c3 = b.newBlock();
    const BlockId c4 = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId exit = b.newBlock();
    f.setEntry(entry);

    const Reg i = b.reg();
    const Reg acc = b.reg();

    b.setInsertPoint(entry);
    b.callVoid(mod.findFunction("mcu_init")->id(), {}, setup);

    b.setInsertPoint(setup);
    const Reg n = b.load(b.movGA(nreq), 0);
    const Reg cbase = b.movGA(coefs);
    const Reg qbase = b.movGA(quals);
    b.movITo(i, 0);
    b.movITo(acc, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLt(i, n);
    b.br(more, body, exit);

    b.setInsertPoint(body);
    const Reg off = b.shlI(i, 3);
    const Reg coef = b.load(b.add(cbase, off), 0);
    const Reg qv = b.load(b.add(qbase, off), 0);
    const Reg quant = b.call(mod.findFunction("quantize")->id(),
                             {coef, qv}, c1);

    b.setInsertPoint(c1);
    const Reg desc = b.call(mod.findFunction("descale")->id(), {coef},
                            c2);

    b.setInsertPoint(c2);
    const Reg rl = b.call(mod.findFunction("range_limit")->id(),
                          {quant}, c3);

    // Sample rows live in malloc'd MCU buffers — anonymous memory.
    b.setInsertPoint(c3);
    const Reg mcu = b.call(mod.findFunction("mcu_scan")->id(), {quant},
                           c4);

    b.setInsertPoint(c4);
    b.binOpTo(acc, Opcode::Add, acc, mcu);
    const Reg d0 = b.mulI(i, 0x7FEB352D);
    b.binOpTo(acc, Opcode::Add, acc, b.andI(d0, 0x3f));
    b.binOpTo(acc, Opcode::Add, acc, b.add(desc, rl));
    b.jump(latch);

    b.setInsertPoint(latch);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    b.store(b.movGA(out), 0, acc);
    b.halt();
}

} // namespace

Workload
buildIjpeg()
{
    auto mod = std::make_shared<ir::Module>("ijpeg");

    std::vector<std::int64_t> recip(64);
    for (std::size_t i = 0; i < recip.size(); ++i)
        recip[i] = static_cast<std::int64_t>(65536 / (i + 1));
    const GlobalId rg = addConstTable64(*mod, "quant_recip", recip).id;

    std::vector<std::uint8_t> range(1024);
    for (std::size_t i = 0; i < range.size(); ++i) {
        const int centered = static_cast<int>(i) - 512;
        range[i] = static_cast<std::uint8_t>(
            centered < 0 ? 0 : (centered > 255 ? 255 : centered));
    }
    const GlobalId rl = addConstTable8(*mod, "range_limit_tab",
                                       range).id;

    const GlobalId coefs =
        mod->addGlobal("coef_stream", kMaxRequests * 8).id;
    const GlobalId quals =
        mod->addGlobal("qual_stream", kMaxRequests * 8).id;
    const GlobalId nreq = mod->addGlobal("n_requests", 8).id;
    const GlobalId out = mod->addGlobal("out_sum", 8).id;

    buildQuantize(*mod, rg);
    buildDescale(*mod);
    buildRangeLimit(*mod, rl);
    addHeapScan(*mod, "mcu", 128, 8, 0x193A7ULL);
    buildMain(*mod, coefs, quals, nreq, out);
    mod->setEntryFunction(mod->findFunction("main")->id());

    Workload w;
    w.name = "ijpeg";
    w.module = mod;
    w.outputGlobals = {"out_sum"};
    w.prepare = [](emu::Machine &machine, InputSet set) {
        const bool train = set == InputSet::Train;
        Rng rng(train ? 0x19'0001 : 0x19'0002);
        const std::size_t n = train ? 5600 : 7200;
        // DCT coefficients: dominated by zero and small magnitudes.
        std::vector<std::int64_t> coefs(n);
        for (auto &c : coefs) {
            if (rng.nextBool(0.55)) {
                c = 0;
            } else if (rng.nextBool(0.8)) {
                c = rng.nextRange(-7, 7);
            } else {
                c = rng.nextRange(-160, 160);
            }
        }
        // Few distinct quantizer steps per image.
        const auto quals = zipfRequests(
            rng, n, 6, 1.2, [](Rng &r) {
                return static_cast<std::int64_t>(r.nextBelow(32) + 1);
            });
        fillGlobal64(machine, "coef_stream", coefs);
        fillGlobal64(machine, "qual_stream", quals);
        setGlobal64(machine, "n_requests",
                    static_cast<std::int64_t>(n));
    };
    return w;
}

} // namespace ccr::workloads
