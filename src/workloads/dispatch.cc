#include "workloads/dispatch.hh"

#include <functional>

#include "ir/builder.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace ccr::workloads
{

using namespace ccr::ir;

void
addDispatchKernel(ir::Module &mod, const std::string &name, int bits,
                  int shift, std::uint64_t seed)
{
    ccr_assert(bits >= 1 && bits <= 8, "dispatch tree depth 1..8");

    Function &f = mod.addFunction(name, 2);
    IRBuilder b(f);
    Rng rng(seed);

    const BlockId entry = b.newBlock();
    const BlockId join = b.newBlock();
    f.setEntry(entry);

    const Reg x = 1;
    const Reg result = b.reg();
    Reg sel = kNoReg;

    b.setInsertPoint(entry);
    sel = b.andI(b.shrI(0, shift), (1 << bits) - 1);

    // Build one leaf: a distinct short fold of x.
    auto buildLeaf = [&](int leaf_index) {
        const BlockId leaf = b.newBlock();
        b.setInsertPoint(leaf);
        const auto c1 = static_cast<std::int64_t>(
            (rng.next() | 1) & 0xffffffff);
        const auto c2 = static_cast<std::int64_t>(
            rng.nextBelow(1 << 20));
        const int s = 5 + leaf_index % 9;
        const Reg t1 = b.mulI(x, c1);
        const Reg t2 = b.xorR(t1, b.shrI(t1, s));
        const Reg t3 = b.addI(t2, c2);
        const Reg t4 = b.xorR(t3, b.shlI(b.andI(x, 15), leaf_index % 5));
        b.movTo(result, b.andI(t4, 0xffffff));
        b.jump(join);
        return leaf;
    };

    // Build the decision tree bottom-up: level 0 tests the lowest
    // selector bit.
    std::function<BlockId(int, int)> buildNode =
        [&](int level, int prefix) -> BlockId {
        if (level == bits)
            return buildLeaf(prefix);
        const BlockId on = buildNode(level + 1, prefix | (1 << level));
        const BlockId off = buildNode(level + 1, prefix);
        const BlockId node = b.newBlock();
        b.setInsertPoint(node);
        const Reg bit = b.andI(b.shrI(sel, level), 1);
        b.br(bit, on, off);
        return node;
    };

    const BlockId root = buildNode(0, 0);
    b.setInsertPoint(entry);
    b.jump(root);

    b.setInsertPoint(join);
    b.ret(result);
}

} // namespace ccr::workloads
