/**
 * @file
 * `pgpencode` — models MediaBench PGP encryption. The byte-folding /
 * CRC-style kernels are long straight-line stateless regions whose
 * inputs recur, but with *considerable dynamic variation*: the input
 * pool is wide and only mildly skewed, so a computation entry needs
 * many computation instances to capture the working set. This is the
 * benchmark the paper calls out as most sensitive to the CI count in
 * Figure 8(a); the input distribution here is tuned to reproduce that
 * sensitivity.
 */

#include "workloads/support.hh"
#include "workloads/workload.hh"

#include "ir/builder.hh"

namespace ccr::workloads
{

namespace
{

constexpr std::size_t kMaxRequests = 16384;

using namespace ccr::ir;

/** crc_fold(v): 4-step table-driven CRC over the word's bytes. */
void
buildCrcFold(Module &mod, GlobalId crc_tab)
{
    Function &f = mod.addFunction("crc_fold", 1);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg v = 0;
    const Reg tb = b.movGA(crc_tab);

    Reg crc = b.movI(0xffff);
    for (int step = 0; step < 6; ++step) {
        const Reg byte = b.andI(b.shrI(v, 8 * step), 255);
        const Reg mixed = b.xorR(crc, byte);
        const Reg idx = b.andI(mixed, 255);
        const Reg te = b.load(b.add(tb, b.shlI(idx, 3)), 0);
        crc = b.xorR(b.shrI(crc, 8), te);
    }
    b.ret(crc);
}

/**
 * cipher_round(a..f, key): one block-cipher round over seven
 * correlated register inputs — a wide stateless region (SL_8 group).
 */
void
buildCipherRound(Module &mod)
{
    Function &f = mod.addFunction("cipher_round", 7);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    // Consume all seven inputs up front so the whole round stays in
    // one region with the full live-in set.
    const Reg p0 = b.xorR(0, 6); // a ^ key
    const Reg p1 = b.add(1, 2);
    const Reg p2 = b.xorR(3, 4);
    const Reg p3 = b.mulI(5, 43);
    Reg st = b.add(b.mulI(p0, 17), p1);
    st = b.xorR(st, b.shlI(p2, 3));
    st = b.add(st, p3);
    const Reg spread = b.xorR(st, b.shrI(st, 13));
    b.ret(b.andI(spread, 0xffffff));
}

/** mix_block(v, key): one round of a toy Feistel-ish mixer. */
void
buildMixBlock(Module &mod)
{
    Function &f = mod.addFunction("mix_block", 2);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg v = 0;
    const Reg key = 1;
    const Reg lo = b.andI(v, 0xffffffffLL);
    const Reg hi = b.shrI(v, 32);
    const Reg r1 = b.xorR(lo, key);
    const Reg r2 = b.mulI(r1, 0x85EBCA6B);
    const Reg r3 = b.xorR(r2, b.shrI(r2, 13));
    const Reg r4 = b.add(hi, r3);
    const Reg r5 = b.mulI(r4, 0xC2B2AE35);
    const Reg r6 = b.xorR(r5, b.shrI(r5, 16));
    const Reg joined = b.orR(b.shlI(b.andI(r6, 0xffff), 16),
                             b.andI(r3, 0xffff));
    b.ret(joined);
}

void
buildMain(Module &mod, GlobalId words, GlobalId keys, GlobalId nreq,
          GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);

    const BlockId entry = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId c1 = b.newBlock();
    const BlockId c2 = b.newBlock();
    const BlockId c2b = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId exit = b.newBlock();
    f.setEntry(entry);

    const Reg i = b.reg();
    const Reg acc = b.reg();

    b.setInsertPoint(entry);
    const Reg n = b.load(b.movGA(nreq), 0);
    const Reg wbase = b.movGA(words);
    const Reg kbase = b.movGA(keys);
    b.movITo(i, 0);
    b.movITo(acc, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLt(i, n);
    b.br(more, body, exit);

    b.setInsertPoint(body);
    const Reg off = b.shlI(i, 3);
    const Reg v = b.load(b.add(wbase, off), 0);
    const Reg crc = b.call(mod.findFunction("crc_fold")->id(), {v},
                           c1);

    b.setInsertPoint(c1);
    const Reg key = b.load(b.add(kbase, off), 0);
    const Reg mixed = b.call(mod.findFunction("mix_block")->id(),
                             {v, key}, c2);

    b.setInsertPoint(c2);
    const Reg ba = b.andI(v, 0xff);
    const Reg bb2 = b.andI(b.shrI(v, 8), 0xff);
    const Reg bc = b.andI(b.shrI(v, 16), 0xff);
    const Reg bd = b.andI(b.shrI(v, 24), 0xff);
    const Reg be = b.andI(b.shrI(v, 32), 0xff);
    const Reg bf = b.andI(b.shrI(v, 40), 0xff);
    const Reg round = b.call(mod.findFunction("cipher_round")->id(),
                             {ba, bb2, bc, bd, be, bf, key}, c2b);

    b.setInsertPoint(c2b);
    b.binOpTo(acc, Opcode::Add, acc, round);
    const Reg d0 = b.mulI(i, 0x165667B1);
    const Reg d1 = b.xorR(d0, b.shrI(d0, 11));
    b.binOpTo(acc, Opcode::Add, acc, b.andI(d1, 0xff));
    b.binOpTo(acc, Opcode::Add, acc, b.add(crc, mixed));
    b.jump(latch);

    b.setInsertPoint(latch);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    b.store(b.movGA(out), 0, acc);
    b.halt();
}

} // namespace

Workload
buildPgpencode()
{
    auto mod = std::make_shared<ir::Module>("pgpencode");

    std::vector<std::int64_t> crc_tab(256);
    for (std::size_t i = 0; i < crc_tab.size(); ++i) {
        std::uint64_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c >> 1) ^ ((c & 1) ? 0xEDB88320ULL : 0);
        crc_tab[i] = static_cast<std::int64_t>(c);
    }
    const GlobalId ct = addConstTable64(*mod, "crc_tab", crc_tab).id;
    const GlobalId words =
        mod->addGlobal("word_stream", kMaxRequests * 8).id;
    const GlobalId keys =
        mod->addGlobal("key_stream", kMaxRequests * 8).id;
    const GlobalId nreq = mod->addGlobal("n_requests", 8).id;
    const GlobalId out = mod->addGlobal("out_sum", 8).id;

    buildCrcFold(*mod, ct);
    buildMixBlock(*mod);
    buildCipherRound(*mod);
    buildMain(*mod, words, keys, nreq, out);
    mod->setEntryFunction(mod->findFunction("main")->id());

    Workload w;
    w.name = "pgpencode";
    w.module = mod;
    w.outputGlobals = {"out_sum"};
    w.prepare = [](emu::Machine &machine, InputSet set) {
        const bool train = set == InputSet::Train;
        Rng rng(train ? 0x969'0001 : 0x969'0002);
        const std::size_t n = train ? 5000 : 6500;
        // Mild skew over a wide pool: per-instruction invariance just
        // clears the formation threshold, but capturing the working
        // set takes many CIs (the CI-count-sensitivity driver).
        const auto words = zipfRequests(
            rng, n, 16, train ? 1.05 : 1.0, [](Rng &r) {
                return static_cast<std::int64_t>(r.next() >> 16);
            });
        // One session key per encryption run.
        const auto session_key =
            static_cast<std::int64_t>(rng.next() & 0xffffffff);
        std::vector<std::int64_t> keys(n, session_key);
        fillGlobal64(machine, "word_stream", words);
        fillGlobal64(machine, "key_stream", keys);
        setGlobal64(machine, "n_requests",
                    static_cast<std::int64_t>(n));
    };
    return w;
}

} // namespace ccr::workloads
