#include "workloads/cache.hh"

#include <sstream>

#include "ir/verifier.hh"
#include "opt/passes.hh"
#include "support/logging.hh"
#include "workloads/harness.hh"

namespace ccr::workloads
{

namespace
{

std::string
moduleKey(const std::string &name, bool optimized)
{
    return name + (optimized ? "|opt" : "|plain");
}

std::string
inputKey(InputSet set)
{
    return set == InputSet::Train ? "train" : "ref";
}

/** Every PipelineParams field, flattened; two configs with the same
 *  key time identically. */
std::string
pipeKey(const uarch::PipelineParams &p)
{
    std::ostringstream os;
    os << p.issueWidth << ',' << p.intAlus << ',' << p.memPorts << ','
       << p.fpAlus << ',' << p.branchUnits << ','
       << p.icache.sizeBytes << ',' << p.icache.lineBytes << ','
       << p.icache.assoc << ',' << p.icache.missPenalty << ','
       << p.dcache.sizeBytes << ',' << p.dcache.lineBytes << ','
       << p.dcache.assoc << ',' << p.dcache.missPenalty << ','
       << p.bpred.btbEntries << ',' << p.bpred.mispredictPenalty << ','
       << p.reuseFailPenalty << ',' << p.reuseValidateLatency << ','
       << p.reuseOutputWritesPerCycle << ','
       << (p.speculativeValidation ? 1 : 0);
    return os.str();
}

/**
 * Single-flight lookup: the first requester of @p key installs a
 * future and computes the value; concurrent requesters block on that
 * future instead of recomputing.
 */
template <typename T, typename Map, typename Build>
std::shared_ptr<const T>
lookupOrBuild(std::shared_mutex &mu, Map &map, const std::string &key,
              std::atomic<std::uint64_t> &hits,
              std::atomic<std::uint64_t> &misses, Build &&build)
{
    {
        std::shared_lock lock(mu);
        const auto it = map.find(key);
        if (it != map.end()) {
            auto fut = it->second;
            lock.unlock();
            ++hits;
            return fut.get();
        }
    }

    std::promise<std::shared_ptr<const T>> promise;
    std::shared_future<std::shared_ptr<const T>> fut;
    bool builder = false;
    {
        std::unique_lock lock(mu);
        const auto it = map.find(key);
        if (it != map.end()) {
            fut = it->second;
        } else {
            fut = promise.get_future().share();
            map.emplace(key, fut);
            builder = true;
        }
    }

    if (!builder) {
        ++hits;
        return fut.get();
    }

    ++misses;
    try {
        promise.set_value(build());
    } catch (...) {
        promise.set_exception(std::current_exception());
    }
    return fut.get();
}

} // namespace

std::shared_ptr<const Workload>
ExperimentCache::moduleTemplate(const std::string &name, bool optimized)
{
    return lookupOrBuild<Workload>(
        mu_, modules_, moduleKey(name, optimized), moduleHits_,
        moduleMisses_, [&] {
            auto w = std::make_shared<Workload>(buildWorkload(name));
            if (optimized)
                opt::runStandardPipeline(*w->module);
            ir::verifyOrDie(*w->module);
            return std::shared_ptr<const Workload>(std::move(w));
        });
}

Workload
ExperimentCache::workload(const std::string &name, bool optimized)
{
    const auto tmpl = moduleTemplate(name, optimized);
    Workload w;
    w.name = tmpl->name;
    w.module = tmpl->module->clone();
    w.prepare = tmpl->prepare;
    w.outputGlobals = tmpl->outputGlobals;
    return w;
}

std::shared_ptr<const profile::ProfileData>
ExperimentCache::profile(const std::string &name, bool optimized,
                         InputSet set, std::uint64_t max_insts)
{
    const std::string key = moduleKey(name, optimized) + "|"
                            + inputKey(set) + "|"
                            + std::to_string(max_insts);
    return lookupOrBuild<profile::ProfileData>(
        mu_, profiles_, key, profileHits_, profileMisses_, [&] {
            const Workload w = workload(name, optimized);
            return std::make_shared<const profile::ProfileData>(
                profileWorkload(w, set, max_insts));
        });
}

std::shared_ptr<const BaseRunData>
ExperimentCache::baseRun(const std::string &name, bool optimized,
                         InputSet set,
                         const uarch::PipelineParams &pipe,
                         std::uint64_t max_insts)
{
    const std::string key = moduleKey(name, optimized) + "|"
                            + inputKey(set) + "|"
                            + std::to_string(max_insts) + "|"
                            + pipeKey(pipe);
    return lookupOrBuild<BaseRunData>(
        mu_, baseRuns_, key, baseRunHits_, baseRunMisses_, [&] {
            const Workload w = workload(name, optimized);
            emu::Machine machine(*w.module);
            w.prepare(machine, set);
            uarch::Pipeline timing(pipe);
            auto data = std::make_shared<BaseRunData>();
            data->timing = timing.run(machine, max_insts);
            data->completed = machine.halted();
            snapshotBaseCounters(*data, timing);
            if (data->completed)
                data->outputs = readOutputs(machine, w);
            return std::shared_ptr<const BaseRunData>(std::move(data));
        });
}

void
ExperimentCache::clear()
{
    std::unique_lock lock(mu_);
    modules_.clear();
    profiles_.clear();
    baseRuns_.clear();
}

ExperimentCache::Stats
ExperimentCache::stats() const
{
    Stats s;
    s.moduleHits = moduleHits_.load();
    s.moduleMisses = moduleMisses_.load();
    s.profileHits = profileHits_.load();
    s.profileMisses = profileMisses_.load();
    s.baseRunHits = baseRunHits_.load();
    s.baseRunMisses = baseRunMisses_.load();
    return s;
}

ExperimentCache &
ExperimentCache::global()
{
    static ExperimentCache cache;
    return cache;
}

} // namespace ccr::workloads
