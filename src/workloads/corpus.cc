#include "workloads/corpus.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "ir/verifier.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "text/parser.hh"
#include "workloads/support.hh"

#ifndef CCR_CORPUS_DIR
#define CCR_CORPUS_DIR "corpus"
#endif

namespace ccr::workloads
{

namespace
{

/** Cap on fill sizes so a typo in a directive cannot allocate wild
 *  amounts of host memory. */
constexpr std::uint64_t kMaxFillWords = 1u << 20;

/** One input-preparation directive, replayed by prepare(). */
struct Action
{
    enum class Kind
    {
        Set,
        FillZipf,
        FillUniform
    };

    Kind kind = Kind::Set;
    bool onTrain = true;
    bool onRef = true;
    std::string global;
    std::int64_t value = 0; // Set

    std::uint64_t seed = 0; // fills
    std::uint64_t n = 0;
    std::uint64_t distinct = 1;
    double theta = 0.0;
    std::int64_t max = 0;

    bool
    appliesTo(InputSet set) const
    {
        return set == InputSet::Train ? onTrain : onRef;
    }
};

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    const auto *first = s.data();
    const auto *last = s.data() + s.size();
    const auto r = std::from_chars(first, last, out);
    return r.ec == std::errc{} && r.ptr == last;
}

bool
parseI64(const std::string &s, std::int64_t &out)
{
    const auto *first = s.data();
    const auto *last = s.data() + s.size();
    const auto r = std::from_chars(first, last, out);
    return r.ec == std::errc{} && r.ptr == last;
}

bool
parseF64(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size();
}

std::vector<std::string>
splitWs(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t'))
            ++i;
        std::size_t j = i;
        while (j < s.size() && s[j] != ' ' && s[j] != '\t')
            ++j;
        if (j > i)
            out.push_back(s.substr(i, j - i));
        i = j;
    }
    return out;
}

bool
validName(const std::string &name)
{
    if (name.empty())
        return false;
    for (const char c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '-' && c != '.')
            return false;
    return true;
}

/** Interprets one file's pragmas; appends "line:col: message" style
 *  errors (without the file prefix — the caller adds it). */
class DirectiveReader
{
  public:
    DirectiveReader(const ir::Module &mod, std::vector<std::string> &errors)
        : mod_(mod), errors_(errors)
    {}

    std::string workloadName;
    std::vector<std::string> outputs;
    std::vector<Action> actions;

    void
    read(const std::vector<text::Pragma> &pragmas)
    {
        for (const auto &p : pragmas)
            readOne(p);
    }

  private:
    void
    error(const text::Pragma &p, const std::string &msg)
    {
        errors_.push_back(std::to_string(p.loc.line) + ":" +
                          std::to_string(p.loc.col) + ": " + msg);
    }

    const ir::Global *
    findGlobal(const text::Pragma &p, const std::string &name)
    {
        for (std::size_t i = 0; i < mod_.numGlobals(); ++i) {
            const auto &g = mod_.global(static_cast<ir::GlobalId>(i));
            if (g.name == name)
                return &g;
        }
        error(p, "directive names unknown global '" + name + "'");
        return nullptr;
    }

    bool
    parseSets(const text::Pragma &p, const std::string &word, Action &a)
    {
        if (word == "train") {
            a.onTrain = true;
            a.onRef = false;
        } else if (word == "ref") {
            a.onTrain = false;
            a.onRef = true;
        } else if (word == "both") {
            a.onTrain = a.onRef = true;
        } else {
            error(p, "expected train|ref|both, got '" + word + "'");
            return false;
        }
        return true;
    }

    void
    readOne(const text::Pragma &p)
    {
        const auto words = splitWs(p.text);
        if (words.empty()) {
            error(p, "empty ;! directive");
            return;
        }
        const std::string &kind = words[0];

        if (kind == "workload") {
            if (words.size() != 2 || !validName(words[1])) {
                error(p, "usage: ;! workload <name>");
                return;
            }
            if (!workloadName.empty()) {
                error(p, "duplicate workload directive");
                return;
            }
            workloadName = words[1];
            return;
        }
        if (kind == "output") {
            if (words.size() != 2) {
                error(p, "usage: ;! output <global>");
                return;
            }
            if (findGlobal(p, words[1]))
                outputs.push_back(words[1]);
            return;
        }
        if (kind == "set") {
            Action a;
            a.kind = Action::Kind::Set;
            if (words.size() != 4 || !parseSets(p, words[1], a) ||
                !parseI64(words[3], a.value)) {
                error(p, "usage: ;! set <train|ref|both> <global> <int>");
                return;
            }
            a.global = words[2];
            const ir::Global *g = findGlobal(p, a.global);
            if (!g)
                return;
            if (g->sizeBytes < 8) {
                error(p, "global '" + a.global +
                             "' too small for a 64-bit set");
                return;
            }
            actions.push_back(std::move(a));
            return;
        }
        if (kind == "fill") {
            readFill(p, words);
            return;
        }
        if (kind == "region") {
            // Region claim directives are consumed by the lint
            // (lint::regionsFromSource), not the corpus loader.
            return;
        }
        error(p, "unknown directive '" + kind + "'");
    }

    void
    readFill(const text::Pragma &p, const std::vector<std::string> &words)
    {
        Action a;
        if (words.size() < 4 || !parseSets(p, words[1], a)) {
            error(p, "usage: ;! fill <train|ref|both> <global> "
                     "<zipf|uniform> key=value...");
            return;
        }
        a.global = words[2];
        const std::string &dist = words[3];
        if (dist == "zipf")
            a.kind = Action::Kind::FillZipf;
        else if (dist == "uniform")
            a.kind = Action::Kind::FillUniform;
        else {
            error(p, "unknown fill distribution '" + dist + "'");
            return;
        }

        bool haveSeed = false, haveN = false, haveDistinct = false,
             haveTheta = false, haveMax = false;
        for (std::size_t i = 4; i < words.size(); ++i) {
            const auto eq = words[i].find('=');
            if (eq == std::string::npos) {
                error(p, "expected key=value, got '" + words[i] + "'");
                return;
            }
            const std::string key = words[i].substr(0, eq);
            const std::string val = words[i].substr(eq + 1);
            for (std::size_t j = 4; j < i; ++j) {
                if (words[j].compare(0, eq + 1, key + "=") == 0) {
                    error(p, "duplicate fill key '" + key + "' ('" +
                                 words[j] + "' vs '" + words[i] + "')");
                    return;
                }
            }
            bool ok = true;
            if (key == "seed")
                ok = parseU64(val, a.seed), haveSeed = ok;
            else if (key == "n")
                ok = parseU64(val, a.n), haveN = ok;
            else if (key == "distinct")
                ok = parseU64(val, a.distinct), haveDistinct = ok;
            else if (key == "theta")
                ok = parseF64(val, a.theta), haveTheta = ok;
            else if (key == "max")
                ok = parseI64(val, a.max), haveMax = ok;
            else {
                error(p, "unknown fill key '" + key + "'");
                return;
            }
            if (!ok) {
                error(p, "bad value in '" + words[i] + "'");
                return;
            }
        }

        const bool zipf = a.kind == Action::Kind::FillZipf;
        if (!zipf && (haveDistinct || haveTheta)) {
            error(p, std::string("uniform fill does not take '") +
                         (haveDistinct ? "distinct" : "theta") +
                         "=' (zipf-only key contradicts the "
                         "distribution)");
            return;
        }
        if (!haveSeed || !haveN || !haveMax ||
            (zipf && (!haveDistinct || !haveTheta))) {
            error(p, zipf ? "zipf fill needs seed= n= distinct= theta= max="
                          : "uniform fill needs seed= n= max=");
            return;
        }
        // n == 0 is a legal no-op fill: generated workloads with
        // zero-iteration driver loops declare empty input streams.
        if (a.n > kMaxFillWords) {
            error(p, "fill n out of range (0.." +
                         std::to_string(kMaxFillWords) + ")");
            return;
        }
        if (zipf && a.n != 0 && (a.distinct == 0 || a.distinct > a.n)) {
            error(p, "fill distinct must be in 1..n");
            return;
        }
        if (a.max < 0) {
            error(p, "fill max must be non-negative");
            return;
        }
        const ir::Global *g = findGlobal(p, a.global);
        if (!g)
            return;
        if (a.n * 8 > g->sizeBytes) {
            error(p, "fill of " + std::to_string(a.n) +
                         " words overflows global '" + a.global + "' (" +
                         std::to_string(g->sizeBytes) + " bytes)");
            return;
        }
        actions.push_back(std::move(a));
    }

    const ir::Module &mod_;
    std::vector<std::string> &errors_;
};

void
applyAction(emu::Machine &machine, const Action &a)
{
    switch (a.kind) {
      case Action::Kind::Set:
        setGlobal64(machine, a.global, a.value);
        return;
      case Action::Kind::FillZipf: {
        if (a.n == 0)
            return; // declared-empty stream: nothing to write
        Rng rng(a.seed);
        const std::int64_t max = a.max;
        const auto values =
            zipfRequests(rng, a.n, a.distinct, a.theta, [max](Rng &r) {
                return r.nextRange(0, max);
            });
        fillGlobal64(machine, a.global, values);
        return;
      }
      case Action::Kind::FillUniform: {
        if (a.n == 0)
            return; // declared-empty stream: nothing to write
        Rng rng(a.seed);
        std::vector<std::int64_t> values;
        values.reserve(a.n);
        for (std::uint64_t i = 0; i < a.n; ++i)
            values.push_back(rng.nextRange(0, a.max));
        fillGlobal64(machine, a.global, values);
        return;
      }
    }
}

/**
 * Shared back half of loading: verify a parsed module, interpret its
 * directives, and assemble the Workload. @p display prefixes error
 * strings (a file path, or a synthetic name for in-memory sources);
 * @p fallback_name names the workload when no `;! workload` directive
 * is present.
 */
std::optional<Workload>
fromParsed(text::ParseResult &&parsed, const std::string &display,
           const std::string &fallback_name,
           std::vector<std::string> &errors)
{
    const auto verifyDiags = ir::verifyModule(*parsed.module);
    if (ir::hasErrors(verifyDiags)) {
        for (const auto &d : verifyDiags)
            errors.push_back(display + ": verify: " + d.message);
        return std::nullopt;
    }

    DirectiveReader reader(*parsed.module, errors);
    const std::size_t before = errors.size();
    reader.read(parsed.pragmas);
    for (std::size_t i = before; i < errors.size(); ++i)
        errors[i] = display + ":" + errors[i];
    if (errors.size() != before)
        return std::nullopt;

    if (parsed.module->entryFunction() == ir::kNoFunc) {
        errors.push_back(display + ": no entry function (add 'entry "
                                   "@\"main\"' to the module)");
        return std::nullopt;
    }
    if (reader.outputs.empty()) {
        errors.push_back(display + ": corpus workload declares no "
                                   "outputs (add ';! output <global>')");
        return std::nullopt;
    }

    Workload w;
    w.name = reader.workloadName.empty() ? fallback_name
                                         : reader.workloadName;
    w.module = std::shared_ptr<ir::Module>(std::move(parsed.module));
    w.outputGlobals = reader.outputs;
    w.prepare = [actions = reader.actions](emu::Machine &machine,
                                           InputSet set) {
        for (const auto &a : actions)
            if (a.appliesTo(set))
                applyAction(machine, a);
    };
    if (!validName(w.name)) {
        errors.push_back(display + ": invalid workload name '" + w.name +
                         "'");
        return std::nullopt;
    }
    return w;
}

/** Split formatted diagnostics into one error string per line. */
void
appendDiagnosticLines(const text::ParseResult &parsed,
                      const std::string &display,
                      std::vector<std::string> &errors)
{
    const std::string formatted =
        text::formatDiagnostics(parsed.errors, display);
    std::size_t start = 0;
    while (start < formatted.size()) {
        const auto nl = formatted.find('\n', start);
        errors.push_back(formatted.substr(start, nl - start));
        start = nl == std::string::npos ? formatted.size() : nl + 1;
    }
}

/** Full load: parse, verify, interpret directives, build the
 *  Workload. Error strings carry the file-path prefix. */
std::optional<Workload>
loadFile(const std::string &path, std::vector<std::string> &errors)
{
    auto parsed = text::parseModuleFile(path);
    if (!parsed.ok()) {
        appendDiagnosticLines(parsed, path, errors);
        return std::nullopt;
    }
    return fromParsed(std::move(parsed), path,
                      std::filesystem::path(path).stem().string(),
                      errors);
}

struct Registry
{
    std::mutex mutex;
    bool scanned = false;
    std::map<std::string, std::string> pathByName;   // sorted names
    std::map<std::string, std::string> sourceByName; // in-memory .lc
    std::map<std::string, std::uint64_t> contentKeys; // memoized hashes
};

std::uint64_t
fnv1a(std::string_view bytes)
{
    std::uint64_t h = 0xcbf2'9ce4'8422'2325ULL; // FNV offset basis
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100'0000'01b3ULL; // FNV prime
    }
    return h;
}

Registry &
registry()
{
    static Registry r;
    return r;
}

bool
isBuiltinName(const std::string &name)
{
    const auto names = workloadNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

/** Registration with the registry lock held. */
std::optional<std::string>
registerLocked(Registry &reg, const std::string &path,
               std::vector<std::string> &errors)
{
    const auto loaded = loadFile(path, errors);
    if (!loaded)
        return std::nullopt;
    const std::string &name = loaded->name;
    if (isBuiltinName(name)) {
        errors.push_back(path + ": workload name '" + name +
                         "' collides with a built-in workload");
        return std::nullopt;
    }
    // Same file under a different spelling (relative vs absolute) is
    // an idempotent re-registration, not a collision.
    std::error_code ec;
    std::string canonical =
        std::filesystem::weakly_canonical(path, ec).string();
    if (ec)
        canonical = std::filesystem::absolute(path).string();
    const auto it = reg.pathByName.find(name);
    if (it != reg.pathByName.end()) {
        if (it->second == canonical)
            return name; // idempotent re-registration
        errors.push_back(path + ": workload name '" + name +
                         "' already registered from " + it->second);
        return std::nullopt;
    }
    if (reg.sourceByName.count(name)) {
        errors.push_back(path + ": workload name '" + name +
                         "' already registered from in-memory source");
        return std::nullopt;
    }
    reg.pathByName.emplace(name, canonical);
    return name;
}

void
scanLocked(Registry &reg)
{
    if (reg.scanned)
        return;
    reg.scanned = true;
    const std::filesystem::path dir = corpusDir();
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec))
        return; // no corpus — empty set, not an error
    std::vector<std::string> files;
    for (const auto &e : std::filesystem::directory_iterator(dir, ec)) {
        if (e.path().extension() == ".lc")
            files.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());
    std::vector<std::string> errors;
    for (const auto &f : files)
        registerLocked(reg, f, errors);
    if (!errors.empty()) {
        std::string msg = "corpus scan failed:\n";
        for (const auto &e : errors)
            msg += "  " + e + "\n";
        ccr_fatal(msg);
    }
}

} // namespace

std::string
corpusDir()
{
    if (const char *env = std::getenv("CCR_CORPUS_DIR"))
        return env;
    return CCR_CORPUS_DIR;
}

std::vector<std::string>
corpusWorkloadNames()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    scanLocked(reg);
    std::vector<std::string> names;
    names.reserve(reg.pathByName.size() + reg.sourceByName.size());
    for (const auto &[name, path] : reg.pathByName)
        names.push_back(name);
    for (const auto &[name, source] : reg.sourceByName)
        names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
}

std::vector<std::string>
allWorkloadNames()
{
    auto names = workloadNames();
    const auto corpus = corpusWorkloadNames();
    names.insert(names.end(), corpus.begin(), corpus.end());
    return names;
}

bool
isCorpusWorkload(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    scanLocked(reg);
    return reg.pathByName.count(name) != 0
           || reg.sourceByName.count(name) != 0;
}

Workload
buildCorpusWorkload(const std::string &name)
{
    std::string path;
    std::string source;
    bool fromText = false;
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        scanLocked(reg);
        const auto it = reg.pathByName.find(name);
        if (it != reg.pathByName.end()) {
            path = it->second;
        } else {
            const auto st = reg.sourceByName.find(name);
            if (st == reg.sourceByName.end())
                ccr_fatal("unknown corpus workload '", name, "'");
            source = st->second;
            fromText = true;
        }
    }
    // Re-parse outside the lock: parallel driver workers build
    // concurrently, and each experiment needs an independent module.
    std::vector<std::string> errors;
    auto loaded = fromText ? buildWorkloadFromText(source, name, errors)
                           : loadFile(path, errors);
    if (!loaded) {
        std::string msg = "corpus workload '" + name + "' failed to load:\n";
        for (const auto &e : errors)
            msg += "  " + e + "\n";
        ccr_fatal(msg);
    }
    return std::move(*loaded);
}

std::optional<Workload>
buildWorkloadFromText(const std::string &source,
                      const std::string &display,
                      std::vector<std::string> &errors)
{
    auto parsed = text::parseModule(source);
    if (!parsed.ok()) {
        appendDiagnosticLines(parsed, display, errors);
        return std::nullopt;
    }
    return fromParsed(std::move(parsed), display, display, errors);
}

std::optional<std::string>
tryRegisterWorkloadFile(const std::string &path,
                        std::vector<std::string> &errors)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    scanLocked(reg);
    return registerLocked(reg, path, errors);
}

std::string
registerWorkloadFile(const std::string &path)
{
    std::vector<std::string> errors;
    const auto name = tryRegisterWorkloadFile(path, errors);
    if (!name) {
        std::string msg = "cannot register workload file:\n";
        for (const auto &e : errors)
            msg += "  " + e + "\n";
        ccr_fatal(msg);
    }
    return *name;
}

const char *
registerStatusName(RegisterStatus status)
{
    switch (status) {
      case RegisterStatus::Registered:
        return "registered";
      case RegisterStatus::AlreadyRegistered:
        return "already-registered";
      case RegisterStatus::Invalid:
        return "invalid";
      case RegisterStatus::Conflict:
        return "conflict";
    }
    return "invalid";
}

RegisterTextResult
registerWorkloadTextStructured(const std::string &source,
                               const std::string &display)
{
    RegisterTextResult out;

    // Validate the full load path (parse, verify, directives) outside
    // the registry lock — building is the expensive part, and holding
    // the lock across it would serialize every concurrent submitter.
    auto parsed = text::parseModule(source);
    if (!parsed.ok()) {
        out.status = RegisterStatus::Invalid;
        out.diagnostics = parsed.errors;
        return out;
    }
    std::vector<std::string> errors;
    auto loaded = fromParsed(std::move(parsed), display, display, errors);
    if (!loaded) {
        out.status = RegisterStatus::Invalid;
        for (const auto &e : errors)
            out.diagnostics.push_back(ir::makeError("workload.load", e));
        return out;
    }
    const std::string name = loaded->name;
    if (isBuiltinName(name)) {
        out.status = RegisterStatus::Conflict;
        out.diagnostics.push_back(ir::makeError(
            "workload.register.builtin",
            "workload name '" + name +
                "' collides with a built-in workload"));
        return out;
    }

    // Publish atomically. Whichever thread wins a same-(name, source)
    // race registers; every loser takes the AlreadyRegistered branch.
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    scanLocked(reg);
    const auto it = reg.pathByName.find(name);
    if (it != reg.pathByName.end()) {
        out.status = RegisterStatus::Conflict;
        out.diagnostics.push_back(ir::makeError(
            "workload.register.conflict",
            "workload name '" + name + "' already registered from " +
                it->second));
        return out;
    }
    const auto st = reg.sourceByName.find(name);
    if (st != reg.sourceByName.end()) {
        if (st->second == source) {
            out.status = RegisterStatus::AlreadyRegistered;
            out.name = name;
            return out;
        }
        out.status = RegisterStatus::Conflict;
        out.diagnostics.push_back(ir::makeError(
            "workload.register.conflict",
            "workload name '" + name +
                "' already registered with different source"));
        return out;
    }
    reg.sourceByName.emplace(name, source);
    out.status = RegisterStatus::Registered;
    out.name = name;
    return out;
}

std::optional<std::string>
tryRegisterWorkloadText(const std::string &source,
                        const std::string &display,
                        std::vector<std::string> &errors)
{
    const auto res = registerWorkloadTextStructured(source, display);
    if (res.ok())
        return res.name;
    for (const auto &d : res.diagnostics) {
        // "workload.load" messages already carry the display prefix
        // (they come from the string-based loader); everything else
        // is formatted with it.
        if (d.rule == "workload.load")
            errors.push_back(d.message);
        else
            errors.push_back(ir::formatDiagnostic(d, display));
    }
    return std::nullopt;
}

std::uint64_t
workloadContentKey(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    scanLocked(reg);
    const auto cached = reg.contentKeys.find(name);
    if (cached != reg.contentKeys.end())
        return cached->second;

    std::uint64_t key = 0;
    const auto st = reg.sourceByName.find(name);
    if (st != reg.sourceByName.end()) {
        key = fnv1a(st->second);
    } else if (const auto it = reg.pathByName.find(name);
               it != reg.pathByName.end()) {
        std::ifstream is(it->second, std::ios::binary);
        std::ostringstream bytes;
        bytes << is.rdbuf();
        key = fnv1a(bytes.str());
    } else {
        // Built-in (or unknown — resolution fails later with the
        // usual unknown-workload error): the name identifies the
        // compiled-in builder.
        key = fnv1a(name);
    }
    reg.contentKeys.emplace(name, key);
    return key;
}

std::string
registerWorkloadText(const std::string &source,
                     const std::string &display)
{
    std::vector<std::string> errors;
    const auto name = tryRegisterWorkloadText(source, display, errors);
    if (!name) {
        std::string msg = "cannot register workload text:\n";
        for (const auto &e : errors)
            msg += "  " + e + "\n";
        ccr_fatal(msg);
    }
    return *name;
}

} // namespace ccr::workloads
