/**
 * @file
 * `go` — models SPEC95 099.go. Position evaluation recomputes local
 * pattern scores at board points; the board mutates every move, so
 * memory-dependent reuse is frequently invalidated and overall benefit
 * is modest (go sits at the low end of the paper's Figure 8, as here).
 * Kernels: neighbor pattern score over the mutable board, a stateless
 * influence function, and a liberty-scan loop.
 */

#include "workloads/support.hh"
#include "workloads/workload.hh"

#include "ir/builder.hh"

namespace ccr::workloads
{

namespace
{

constexpr std::size_t kMaxRequests = 16384;
constexpr int kBoard = 361; // 19x19

using namespace ccr::ir;

/** pattern_score(pos): loads the 4 neighbors from the board and folds
 *  them with const pattern weights. The board is reached through a
 *  pointer (go's board lives inside a dynamically allocated game
 *  state), so the scan is anonymous to the region former. */
void
buildPatternScore(Module &mod, GlobalId board_ptr, GlobalId weights)
{
    Function &f = mod.addFunction("pattern_score", 1);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg pos = 0;
    const Reg base = b.load(b.movGA(board_ptr), 0);
    const Reg wt = b.movGA(weights);
    const Reg p = b.andI(pos, 511);

    Reg score = kNoReg;
    const int offs[4] = {-19, -1, 1, 19};
    for (int k = 0; k < 4; ++k) {
        const Reg np = b.addI(p, offs[k] + 32); // bias keeps it positive
        const Reg idx = b.andI(np, 511);
        const Reg stone = b.load(b.add(base, b.shlI(idx, 3)), 0);
        const Reg wsel =
            b.load(b.add(wt, b.shlI(b.andI(stone, 3), 3)), 0);
        const Reg part = b.mulI(wsel, k + 3);
        score = k == 0 ? part : b.add(score, part);
    }
    const Reg folded = b.andI(score, 0xffff);
    b.ret(folded);
}

/** influence(dist): stateless decay curve via shifts and adds. */
void
buildInfluence(Module &mod)
{
    Function &f = mod.addFunction("influence", 1);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg dist = 0;
    const Reg d = b.andI(dist, 31);
    const Reg inv = b.subI(b.movI(32), d);
    const Reg sq = b.mul(inv, inv);
    const Reg damp = b.shrI(sq, 2);
    const Reg mixed = b.add(damp, b.mulI(d, 5));
    b.ret(mixed);
}

/** liberty_scan(pos): bounded scan over a board row. Reached through
 *  the board pointer, so it is anonymous to the region former — its
 *  recurrence shows up in the Figure 4 limit study only. */
void
buildLibertyScan(Module &mod, GlobalId board_ptr)
{
    Function &f = mod.addFunction("liberty_scan", 1);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId out = b.newBlock();
    f.setEntry(entry);

    const Reg pos = 0;
    const Reg j = b.reg();
    const Reg libs = b.reg();
    const Reg row = b.reg();

    b.setInsertPoint(entry);
    const Reg base = b.load(b.movGA(board_ptr), 0);
    const Reg r = b.mulI(b.andI(pos, 15), 19);
    b.movTo(row, r);
    b.movITo(j, 0);
    b.movITo(libs, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLtI(j, 19);
    b.br(more, body, out);

    b.setInsertPoint(body);
    const Reg idx = b.add(row, j);
    const Reg stone = b.load(b.add(base, b.shlI(idx, 3)), 0);
    const Reg empty = b.cmpEqI(stone, 0);
    b.binOpTo(libs, Opcode::Add, libs, empty);
    b.jump(latch);

    b.setInsertPoint(latch);
    b.binOpITo(j, Opcode::Add, j, 1);
    b.jump(header);

    b.setInsertPoint(out);
    b.ret(libs);
}

/** play(pos, color): board mutation. */
void
buildPlay(Module &mod, GlobalId board_ptr)
{
    Function &f = mod.addFunction("play", 2);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg pos = 0;
    const Reg color = 1;
    const Reg base = b.load(b.movGA(board_ptr), 0);
    const Reg idx = b.andI(pos, 511);
    b.store(b.add(base, b.shlI(idx, 3)), 0, color);
    b.ret();
}

/** board_init(): heap-allocate the board and copy the initial
 *  position from the (named) setup array. */
void
buildBoardInit(Module &mod, GlobalId board_setup, GlobalId board_ptr)
{
    Function &f = mod.addFunction("board_init", 0);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId done = b.newBlock();
    const Reg j = b.reg();
    const Reg p = b.reg();

    b.setInsertPoint(entry);
    {
        Inst a;
        a.op = Opcode::Alloc;
        a.dst = p;
        a.srcImm = true;
        a.imm = 512 * 8;
        b.emit(a);
    }
    b.movITo(j, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLtI(j, 512);
    b.br(more, body, done);

    b.setInsertPoint(body);
    const Reg off = b.shlI(j, 3);
    const Reg v = b.load(b.add(b.movGA(board_setup), off), 0);
    b.store(b.add(p, off), 0, v);
    b.binOpITo(j, Opcode::Add, j, 1);
    b.jump(header);

    b.setInsertPoint(done);
    b.store(b.movGA(board_ptr), 0, p);
    b.ret();
}

void
buildMain(Module &mod, GlobalId moves, GlobalId nreq, GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);

    const BlockId entry = b.newBlock();
    const BlockId setup = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId c1 = b.newBlock();
    const BlockId c2 = b.newBlock();
    const BlockId c3 = b.newBlock();
    const BlockId do_play = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId exit = b.newBlock();
    f.setEntry(entry);

    const Reg i = b.reg();
    const Reg acc = b.reg();

    b.setInsertPoint(entry);
    b.callVoid(mod.findFunction("board_init")->id(), {}, setup);

    b.setInsertPoint(setup);
    const Reg n = b.load(b.movGA(nreq), 0);
    const Reg mbase = b.movGA(moves);
    b.movITo(i, 0);
    b.movITo(acc, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLt(i, n);
    b.br(more, body, exit);

    b.setInsertPoint(body);
    const Reg off = b.shlI(i, 3);
    const Reg mv = b.load(b.add(mbase, off), 0);
    const Reg pos = b.andI(mv, 0x1ff);
    const Reg sc = b.call(mod.findFunction("pattern_score")->id(),
                          {pos}, c1);

    b.setInsertPoint(c1);
    const Reg infl = b.call(mod.findFunction("influence")->id(), {pos},
                            c2);

    b.setInsertPoint(c2);
    const Reg libs = b.call(mod.findFunction("liberty_scan")->id(),
                            {pos}, c3);

    b.setInsertPoint(c3);
    const Reg d0 = b.mulI(i, 0x85EBCA77);
    b.binOpTo(acc, Opcode::Add, acc, b.andI(b.shrI(d0, 3), 0x3f));
    b.binOpTo(acc, Opcode::Add, acc,
              b.add(sc, b.add(infl, libs)));
    // ~8% of evaluated positions result in an actual play.
    const Reg playp = b.cmpEqI(b.andI(mv, 0xf000), 0x3000);
    b.br(playp, do_play, latch);

    b.setInsertPoint(do_play);
    const Reg color = b.addI(b.andI(mv, 1), 1);
    b.callVoid(mod.findFunction("play")->id(), {pos, color}, latch);

    b.setInsertPoint(latch);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    b.store(b.movGA(out), 0, acc);
    b.halt();
}

} // namespace

Workload
buildGo()
{
    auto mod = std::make_shared<ir::Module>("go");

    std::vector<std::int64_t> weights{0, 17, -9, 4};
    const GlobalId wt =
        addConstTable64(*mod, "pattern_weights", weights).id;
    const GlobalId board = mod->addGlobal("board", 512 * 8).id;
    const GlobalId board_ptr = mod->addGlobal("board_ptr", 8).id;
    const GlobalId moves =
        mod->addGlobal("move_stream", kMaxRequests * 8).id;
    const GlobalId nreq = mod->addGlobal("n_requests", 8).id;
    const GlobalId out = mod->addGlobal("out_sum", 8).id;

    buildPatternScore(*mod, board_ptr, wt);
    buildInfluence(*mod);
    buildLibertyScan(*mod, board_ptr);
    buildPlay(*mod, board_ptr);
    buildBoardInit(*mod, board, board_ptr);
    buildMain(*mod, moves, nreq, out);
    mod->setEntryFunction(mod->findFunction("main")->id());

    Workload w;
    w.name = "go";
    w.module = mod;
    w.outputGlobals = {"out_sum"};
    w.prepare = [](emu::Machine &machine, InputSet set) {
        const bool train = set == InputSet::Train;
        Rng rng(train ? 0x60'0001 : 0x60'0002);
        const std::size_t n = train ? 4000 : 5200;
        // Go evaluates a fairly wide set of candidate points, and the
        // board changes under it: weaker value locality overall.
        const auto moves = zipfRequests(
            rng, n, train ? 48 : 56, train ? 1.05 : 1.0, [](Rng &r) {
                return static_cast<std::int64_t>(r.nextBelow(1 << 16));
            });
        std::vector<std::int64_t> init(512, 0);
        for (int k = 0; k < kBoard; ++k) {
            if (rng.nextBool(0.3))
                init[static_cast<std::size_t>(k)] =
                    static_cast<std::int64_t>(1 + rng.nextBelow(2));
        }
        fillGlobal64(machine, "board", init);
        fillGlobal64(machine, "move_stream", moves);
        setGlobal64(machine, "n_requests",
                    static_cast<std::int64_t>(n));
    };
    return w;
}

} // namespace ccr::workloads
