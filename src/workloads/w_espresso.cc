/**
 * @file
 * `espresso` — models SPEC92 008.espresso. The hot computation is the
 * paper's own motivating example (Figure 2): the `count_ones` macro
 * over cube words using the static 256-entry `bit_count` table, plus a
 * signature fold. Cube words recur heavily (logic-minimization cubes
 * are drawn from a small working set), so the straight-line kernels
 * are prime stateless (const-table) acyclic reuse regions.
 */

#include "workloads/heapscan.hh"
#include "workloads/support.hh"
#include "workloads/workload.hh"

#include "ir/builder.hh"

namespace ccr::workloads
{

namespace
{

constexpr std::size_t kMaxRequests = 16384;

using namespace ccr::ir;

void
buildCountOnes(Module &mod, GlobalId bit_count)
{
    Function &f = mod.addFunction("count_ones", 1);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    b.setInsertPoint(entry);

    const Reg v = 0;
    const Reg tab = b.movGA(bit_count);

    // bit_count[v & 255] + bit_count[(v >> 8) & 255]
    //   + bit_count[(v >> 16) & 255] + bit_count[(v >> 24) & 255]
    Reg sum = kNoReg;
    for (int byte = 0; byte < 4; ++byte) {
        Reg part = v;
        if (byte > 0)
            part = b.shrI(v, 8 * byte);
        const Reg idx = b.andI(part, 255);
        const Reg addr = b.add(tab, idx);
        const Reg bits = b.load(addr, 0, MemSize::Byte, true);
        sum = byte == 0 ? bits : b.add(sum, bits);
    }
    b.ret(sum);
}

void
buildCubeSig(Module &mod)
{
    Function &f = mod.addFunction("cube_sig", 1);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    b.setInsertPoint(entry);

    // A register-only mixing kernel: xor-shift fold down to 16 bits.
    const Reg v = 0;
    const Reg s1 = b.shrI(v, 17);
    const Reg x1 = b.xorR(v, s1);
    const Reg m1 = b.mulI(x1, 0x2545F491);
    const Reg s2 = b.shrI(m1, 13);
    const Reg x2 = b.xorR(m1, s2);
    const Reg lo = b.andI(x2, 0xffff);
    const Reg hi = b.andI(b.shrI(x2, 16), 0xffff);
    const Reg out = b.xorR(lo, hi);
    b.ret(out);
}

void
buildMain(Module &mod, GlobalId words, GlobalId nreq, GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);

    const BlockId entry = b.newBlock();
    const BlockId setup = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId cont1 = b.newBlock();
    const BlockId cont2 = b.newBlock();
    const BlockId cont3 = b.newBlock();
    const BlockId exit = b.newBlock();
    f.setEntry(entry);

    const Reg i = b.reg();
    const Reg acc = b.reg();
    const Reg v = b.reg();

    b.setInsertPoint(entry);
    b.callVoid(mod.findFunction("cubelist_init")->id(), {}, setup);

    b.setInsertPoint(setup);
    const Reg nbase = b.movGA(nreq);
    const Reg n = b.load(nbase, 0);
    const Reg wbase = b.movGA(words);
    b.movITo(i, 0);
    b.movITo(acc, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg cond = b.cmpLt(i, n);
    b.br(cond, body, exit);

    b.setInsertPoint(body);
    const Reg off = b.shlI(i, 3);
    const Reg addr = b.add(wbase, off);
    b.loadTo(v, addr, 0);
    const FuncId co = mod.findFunction("count_ones")->id();
    const Reg ones = b.call(co, {v}, cont1);

    b.setInsertPoint(cont1);
    const FuncId cs = mod.findFunction("cube_sig")->id();
    const Reg sig = b.call(cs, {v}, cont2);

    // Cube containment check against the heap-resident cube list —
    // reusable in principle but anonymous to the compiler.
    b.setInsertPoint(cont2);
    const FuncId sc = mod.findFunction("cubelist_scan")->id();
    const Reg contain = b.call(sc, {v}, cont3);

    b.setInsertPoint(cont3);
    const Reg w = b.mulI(ones, 37);
    const Reg mix = b.add(w, sig);
    b.binOpTo(acc, Opcode::Add, acc, mix);
    b.binOpTo(acc, Opcode::Add, acc, contain);
    // Per-request bookkeeping keyed on the request index: never
    // reusable (the index is unique).
    const Reg d0 = b.mulI(i, 0x5851F42D);
    const Reg d1 = b.xorR(d0, b.shrI(d0, 9));
    b.binOpTo(acc, Opcode::Add, acc, b.andI(d1, 0xff));
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    const Reg obase = b.movGA(out);
    b.store(obase, 0, acc);
    b.halt();
}

} // namespace

Workload
buildEspresso()
{
    auto mod = std::make_shared<ir::Module>("espresso");

    const GlobalId bit_count =
        addConstTable8(*mod, "bit_count", bitCountTable()).id;
    const GlobalId words =
        mod->addGlobal("cube_words", kMaxRequests * 8).id;
    const GlobalId nreq = mod->addGlobal("n_requests", 8).id;
    const GlobalId out = mod->addGlobal("out_sum", 8).id;

    buildCountOnes(*mod, bit_count);
    buildCubeSig(*mod);
    addHeapScan(*mod, "cubelist", 256, 12, 0xE5901ULL);
    buildMain(*mod, words, nreq, out);
    mod->setEntryFunction(mod->findFunction("main")->id());

    Workload w;
    w.name = "espresso";
    w.module = mod;
    w.outputGlobals = {"out_sum"};
    w.prepare = [](emu::Machine &machine, InputSet set) {
        const bool train = set == InputSet::Train;
        Rng rng(train ? 0xE59'0001 : 0xE59'0002);
        const std::size_t n = train ? 6000 : 8000;
        // Cube words come from a small, heavily recurring pool.
        const auto reqs = zipfRequests(
            rng, n, train ? 20 : 26, train ? 1.7 : 1.6,
            [](Rng &r) {
                return static_cast<std::int64_t>(
                    r.nextBelow(1ULL << 32));
            });
        fillGlobal64(machine, "cube_words", reqs);
        setGlobal64(machine, "n_requests",
                    static_cast<std::int64_t>(n));
    };
    return w;
}

} // namespace ccr::workloads
