/**
 * @file
 * `li` — models SPEC95 130.li (xlisp). An interpreter's hot loop
 * dispatches on a small set of operator tags and evaluates recurring
 * expression shapes. The eval kernel is a multi-block acyclic region:
 * control decisions (the dispatch) sit inside the reusable path, and
 * the (op, a, b) triples recur heavily because programs evaluate the
 * same expressions over and over.
 */

#include "workloads/heapscan.hh"
#include "workloads/support.hh"
#include "workloads/workload.hh"

#include "ir/builder.hh"

namespace ccr::workloads
{

namespace
{

constexpr std::size_t kMaxRequests = 16384;

using namespace ccr::ir;

/**
 * eval_node(op, a, b): dispatch on op (0..3 common, others rare) with
 * a short computation per arm, then a shared normalization tail.
 */
void
buildEvalNode(Module &mod, GlobalId small_ints)
{
    Function &f = mod.addFunction("eval_node", 3);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId not_add = b.newBlock();
    const BlockId not_sub = b.newBlock();
    const BlockId arm_add = b.newBlock();
    const BlockId arm_sub = b.newBlock();
    const BlockId arm_mul = b.newBlock();
    const BlockId arm_rare = b.newBlock();
    const BlockId tail = b.newBlock();
    f.setEntry(entry);

    const Reg op = 0;
    const Reg a = 1;
    const Reg bb = 2;
    const Reg v = b.reg();

    b.setInsertPoint(entry);
    const Reg is_add = b.cmpEqI(op, 0);
    b.br(is_add, arm_add, not_add);

    b.setInsertPoint(not_add);
    const Reg is_sub = b.cmpEqI(op, 1);
    b.br(is_sub, arm_sub, not_sub);

    b.setInsertPoint(not_sub);
    const Reg is_mul = b.cmpEqI(op, 2);
    b.br(is_mul, arm_mul, arm_rare);

    b.setInsertPoint(arm_add);
    b.binOpTo(v, Opcode::Add, a, bb);
    b.jump(tail);

    b.setInsertPoint(arm_sub);
    b.binOpTo(v, Opcode::Sub, a, bb);
    b.jump(tail);

    b.setInsertPoint(arm_mul);
    b.binOpTo(v, Opcode::Mul, a, bb);
    b.jump(tail);

    b.setInsertPoint(arm_rare);
    const Reg q = b.div(a, b.orI(bb, 1));
    b.binOpTo(v, Opcode::Xor, q, op);
    b.jump(tail);

    // Shared tail: xlisp-style fixnum boxing via the small-int cache.
    b.setInsertPoint(tail);
    const Reg clampidx = b.andI(v, 127);
    const Reg si = b.movGA(small_ints);
    const Reg boxed = b.load(b.add(si, b.shlI(clampidx, 3)), 0);
    const Reg tagged = b.orR(b.shlI(boxed, 2), b.andI(v, 3));
    b.ret(tagged);
}

/** symbol_hash(name): stateless string-hash-like fold. */
void
buildSymbolHash(Module &mod)
{
    Function &f = mod.addFunction("symbol_hash", 1);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg name = 0;
    const Reg b0 = b.andI(name, 0xff);
    const Reg b1 = b.andI(b.shrI(name, 8), 0xff);
    const Reg b2 = b.andI(b.shrI(name, 16), 0xff);
    const Reg h0 = b.addI(b.mulI(b0, 31), 7);
    const Reg h1 = b.add(b.mulI(h0, 31), b1);
    const Reg h2 = b.add(b.mulI(h1, 31), b2);
    const Reg h = b.andI(h2, 1023);
    b.ret(h);
}

void
buildMain(Module &mod, GlobalId ops, GlobalId lhs, GlobalId rhs,
          GlobalId nreq, GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);

    const BlockId entry = b.newBlock();
    const BlockId setup = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId c1 = b.newBlock();
    const BlockId c2 = b.newBlock();
    const BlockId c3 = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId exit = b.newBlock();
    f.setEntry(entry);

    const Reg i = b.reg();
    const Reg acc = b.reg();

    b.setInsertPoint(entry);
    b.callVoid(mod.findFunction("env_init")->id(), {}, setup);

    b.setInsertPoint(setup);
    const Reg n = b.load(b.movGA(nreq), 0);
    const Reg obase = b.movGA(ops);
    const Reg lbase = b.movGA(lhs);
    const Reg rbase = b.movGA(rhs);
    b.movITo(i, 0);
    b.movITo(acc, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLt(i, n);
    b.br(more, body, exit);

    b.setInsertPoint(body);
    const Reg off = b.shlI(i, 3);
    const Reg op = b.load(b.add(obase, off), 0);
    const Reg a = b.load(b.add(lbase, off), 0);
    const Reg c = b.load(b.add(rbase, off), 0);
    const Reg val = b.call(mod.findFunction("eval_node")->id(),
                           {op, a, c}, c1);

    b.setInsertPoint(c1);
    const Reg sym = b.call(mod.findFunction("symbol_hash")->id(), {a},
                           c2);

    // Environment (association-list) lookup on the heap: an xlisp
    // staple the compiler cannot form a region over.
    b.setInsertPoint(c2);
    const Reg env = b.call(mod.findFunction("env_scan")->id(), {a},
                           c3);

    b.setInsertPoint(c3);
    b.binOpTo(acc, Opcode::Add, acc, b.add(val, sym));
    b.binOpTo(acc, Opcode::Add, acc, env);
    const Reg d0 = b.mulI(i, 0x27220A95);
    b.binOpTo(acc, Opcode::Add, acc, b.andI(d0, 0x3f));
    b.jump(latch);

    b.setInsertPoint(latch);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    b.store(b.movGA(out), 0, acc);
    b.halt();
}

} // namespace

Workload
buildLi()
{
    auto mod = std::make_shared<ir::Module>("li");

    std::vector<std::int64_t> small_ints(128);
    for (std::size_t i = 0; i < small_ints.size(); ++i)
        small_ints[i] = static_cast<std::int64_t>(i) * 2 + 1;
    const GlobalId si = addConstTable64(*mod, "small_ints",
                                        small_ints).id;
    const GlobalId ops = mod->addGlobal("op_stream",
                                        kMaxRequests * 8).id;
    const GlobalId lhs = mod->addGlobal("lhs_stream",
                                        kMaxRequests * 8).id;
    const GlobalId rhs = mod->addGlobal("rhs_stream",
                                        kMaxRequests * 8).id;
    const GlobalId nreq = mod->addGlobal("n_requests", 8).id;
    const GlobalId out = mod->addGlobal("out_sum", 8).id;

    buildEvalNode(*mod, si);
    buildSymbolHash(*mod);
    addHeapScan(*mod, "env", 128, 8, 0x71AB3ULL);
    buildMain(*mod, ops, lhs, rhs, nreq, out);
    mod->setEntryFunction(mod->findFunction("main")->id());

    Workload w;
    w.name = "li";
    w.module = mod;
    w.outputGlobals = {"out_sum"};
    w.prepare = [](emu::Machine &machine, InputSet set) {
        const bool train = set == InputSet::Train;
        Rng rng(train ? 0x71'0001 : 0x71'0002);
        const std::size_t n = train ? 5200 : 6800;
        // Interpreted programs re-evaluate the same expression shapes:
        // whole (op, a, b) triples recur. Draw a small pool of triples
        // and replay them with Zipf weighting.
        const std::size_t distinct = train ? 20 : 26;
        std::vector<std::int64_t> pop(distinct), pa(distinct),
            pb(distinct);
        for (std::size_t k = 0; k < distinct; ++k) {
            const auto r = rng.next();
            pop[k] = static_cast<std::int64_t>(
                (r & 7) < 5 ? (r & 3) : (r & 7)); // ops 0-2 common
            pa[k] = static_cast<std::int64_t>((r >> 8) & 0xffff);
            pb[k] = static_cast<std::int64_t>((r >> 24) & 0xffff) + 1;
        }
        const ZipfSampler zipf(distinct, train ? 1.5 : 1.35);
        std::vector<std::int64_t> ops(n), lhs(n), rhs(n);
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t pick = zipf.sample(rng);
            ops[k] = pop[pick];
            lhs[k] = pa[pick];
            rhs[k] = pb[pick];
        }
        fillGlobal64(machine, "op_stream", ops);
        fillGlobal64(machine, "lhs_stream", lhs);
        fillGlobal64(machine, "rhs_stream", rhs);
        setGlobal64(machine, "n_requests",
                    static_cast<std::int64_t>(n));
    };
    return w;
}

} // namespace ccr::workloads
