/**
 * @file
 * `yacc` — models UNIX yacc. LALR parsing walks const action and goto
 * tables over (state, token) pairs; grammars hit the same few
 * productions constantly. The action-resolution kernel includes the
 * default-reduction fallback branch, so regions span control, and a
 * production-length kernel adds a second const-table region.
 */

#include "workloads/dispatch.hh"
#include "workloads/heapscan.hh"
#include "workloads/support.hh"
#include "workloads/workload.hh"

#include "ir/builder.hh"

namespace ccr::workloads
{

namespace
{

constexpr std::size_t kMaxRequests = 16384;
constexpr int kStates = 32;
constexpr int kTokens = 16;

using namespace ccr::ir;

/**
 * parse_action(state, tok): a = action[state*kTokens + tok]; if a == 0
 * use defred[state]; fold shift/reduce decision.
 */
void
buildParseAction(Module &mod, GlobalId action, GlobalId defred)
{
    Function &f = mod.addFunction("parse_action", 2);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId use_def = b.newBlock();
    const BlockId tail = b.newBlock();
    f.setEntry(entry);

    const Reg state = 0;
    const Reg tok = 1;
    const Reg act = b.reg();

    b.setInsertPoint(entry);
    const Reg ab = b.movGA(action);
    const Reg row = b.mulI(b.andI(state, kStates - 1), kTokens);
    const Reg cell = b.add(row, b.andI(tok, kTokens - 1));
    const Reg raw = b.load(b.add(ab, cell), 0, MemSize::Byte, true);
    b.movTo(act, raw);
    const Reg none = b.cmpEqI(raw, 0);
    b.br(none, use_def, tail);

    b.setInsertPoint(use_def);
    const Reg db = b.movGA(defred);
    const Reg def = b.load(b.add(db, b.andI(state, kStates - 1)), 0,
                           MemSize::Byte, true);
    b.movTo(act, def);
    b.jump(tail);

    b.setInsertPoint(tail);
    const Reg kindbit = b.andI(act, 0x80);
    const Reg packed = b.orR(b.shlI(kindbit, 1), b.andI(act, 0x7f));
    b.ret(packed);
}

/** rule_info(rule): const lhs/len tables + stack-delta arithmetic. */
void
buildRuleInfo(Module &mod, GlobalId lhs, GlobalId len)
{
    Function &f = mod.addFunction("rule_info", 1);
    IRBuilder b(f);
    b.setInsertPoint(b.newBlock());
    const Reg rule = 0;
    const Reg r = b.andI(rule, 63);
    const Reg lb = b.movGA(lhs);
    const Reg l = b.load(b.add(lb, r), 0, MemSize::Byte, true);
    const Reg nb = b.movGA(len);
    const Reg ln = b.load(b.add(nb, r), 0, MemSize::Byte, true);
    const Reg delta = b.sub(b.movI(1), ln);
    const Reg packed = b.add(b.shlI(l, 8), b.andI(delta, 0xff));
    b.ret(packed);
}

void
buildMain(Module &mod, GlobalId toks, GlobalId nreq, GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);

    const BlockId entry = b.newBlock();
    const BlockId setup = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId c1 = b.newBlock();
    const BlockId c1b = b.newBlock();
    const BlockId reduce = b.newBlock();
    const BlockId c2 = b.newBlock();
    const BlockId c2b = b.newBlock();
    const BlockId shift = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId exit = b.newBlock();
    f.setEntry(entry);

    const Reg i = b.reg();
    const Reg acc = b.reg();
    const Reg state = b.reg();

    b.setInsertPoint(entry);
    b.callVoid(mod.findFunction("valstack_init")->id(), {}, setup);

    b.setInsertPoint(setup);
    const Reg n = b.load(b.movGA(nreq), 0);
    const Reg tbase = b.movGA(toks);
    b.movITo(i, 0);
    b.movITo(acc, 0);
    b.movITo(state, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLt(i, n);
    b.br(more, body, exit);

    b.setInsertPoint(body);
    const Reg off = b.shlI(i, 3);
    const Reg tok = b.load(b.add(tbase, off), 0);
    const Reg act = b.call(mod.findFunction("parse_action")->id(),
                           {state, tok}, c1);

    // Semantic value stack manipulation on the heap: anonymous.
    b.setInsertPoint(c1);
    const Reg vs = b.call(mod.findFunction("valstack_scan")->id(),
                          {tok}, c1b);

    b.setInsertPoint(c1b);
    b.binOpTo(acc, Opcode::Add, acc, vs);
    const Reg d0 = b.mulI(i, 0x2D51E995);
    b.binOpTo(acc, Opcode::Add, acc, b.andI(d0, 0x1f));
    const Reg is_reduce = b.andI(act, 0x100);
    b.br(is_reduce, reduce, shift);

    b.setInsertPoint(reduce);
    const Reg rule = b.andI(act, 0x7f);
    const Reg info = b.call(mod.findFunction("rule_info")->id(),
                            {rule}, c2);

    // Each production has its own semantic action.
    b.setInsertPoint(c2);
    const Reg action = b.call(mod.findFunction("rule_action")->id(),
                              {rule, tok}, c2b);

    b.setInsertPoint(c2b);
    b.binOpTo(acc, Opcode::Add, acc, action);
    b.binOpTo(acc, Opcode::Add, acc, info);
    // Real parsers revisit a handful of hot states.
    b.binOpITo(state, Opcode::And, b.shrI(info, 8), 7);
    b.jump(latch);

    b.setInsertPoint(shift);
    b.binOpTo(acc, Opcode::Add, acc, act);
    b.binOpITo(state, Opcode::And, act, 7);
    b.jump(latch);

    b.setInsertPoint(latch);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    b.store(b.movGA(out), 0, acc);
    b.halt();
}

} // namespace

Workload
buildYacc()
{
    auto mod = std::make_shared<ir::Module>("yacc");

    Rng tab_rng(0xA11CE);
    std::vector<std::uint8_t> action(
        static_cast<std::size_t>(kStates * kTokens));
    for (auto &a : action) {
        // ~40% explicit entries; bit 7 marks reductions.
        if (tab_rng.nextBool(0.4)) {
            a = static_cast<std::uint8_t>(
                (tab_rng.nextBool(0.5) ? 0x80 : 0)
                | (1 + tab_rng.nextBelow(60)));
        } else {
            a = 0;
        }
    }
    std::vector<std::uint8_t> defred(kStates);
    for (auto &d : defred)
        d = static_cast<std::uint8_t>(0x80 | (1 + tab_rng.nextBelow(60)));
    std::vector<std::uint8_t> lhs(64), len(64);
    for (std::size_t r = 0; r < 64; ++r) {
        lhs[r] = static_cast<std::uint8_t>(tab_rng.nextBelow(kStates));
        len[r] = static_cast<std::uint8_t>(1 + tab_rng.nextBelow(5));
    }

    const GlobalId ag = addConstTable8(*mod, "yy_action", action).id;
    const GlobalId dg = addConstTable8(*mod, "yy_defred", defred).id;
    const GlobalId lg = addConstTable8(*mod, "yy_lhs", lhs).id;
    const GlobalId ng = addConstTable8(*mod, "yy_len", len).id;
    const GlobalId toks =
        mod->addGlobal("token_stream", kMaxRequests * 8).id;
    const GlobalId nreq = mod->addGlobal("n_requests", 8).id;
    const GlobalId out = mod->addGlobal("out_sum", 8).id;

    buildParseAction(*mod, ag, dg);
    buildRuleInfo(*mod, lg, ng);
    addHeapScan(*mod, "valstack", 64, 10, 0xACC01ULL);
    addDispatchKernel(*mod, "rule_action", 5, 0, 0xACC77ULL);
    buildMain(*mod, toks, nreq, out);
    mod->setEntryFunction(mod->findFunction("main")->id());

    Workload w;
    w.name = "yacc";
    w.module = mod;
    w.outputGlobals = {"out_sum"};
    w.prepare = [](emu::Machine &machine, InputSet set) {
        const bool train = set == InputSet::Train;
        Rng rng(train ? 0xAC'0001 : 0xAC'0002);
        const std::size_t n = train ? 7000 : 9000;
        // Grammar token streams are extremely skewed: identifiers
        // and a few operators dominate real source text.
        const auto toks = zipfRequests(
            rng, n, train ? 8 : 10, train ? 2.0 : 1.9, [](Rng &r) {
                return static_cast<std::int64_t>(r.nextBelow(kTokens));
            });
        fillGlobal64(machine, "token_stream", toks);
        setGlobal64(machine, "n_requests",
                    static_cast<std::int64_t>(n));
    };
    return w;
}

} // namespace ccr::workloads
