#include "support/stats.hh"

#include "support/logging.hh"

namespace ccr
{

Histogram::Histogram(std::int64_t lo, std::int64_t hi, std::size_t nbuckets)
    : lo_(lo), hi_(hi), buckets_(nbuckets, 0)
{
    ccr_assert(hi > lo && nbuckets > 0, "bad histogram shape");
}

void
Histogram::record(std::int64_t value, std::uint64_t weight)
{
    samples_ += weight;
    weightedSum_ += static_cast<double>(value) * weight;
    if (value < lo_) {
        underflow_ += weight;
    } else if (value >= hi_) {
        overflow_ += weight;
    } else {
        const auto span = static_cast<double>(hi_ - lo_);
        const auto idx = static_cast<std::size_t>(
            static_cast<double>(value - lo_) / span * buckets_.size());
        buckets_[idx] += weight;
    }
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0 : weightedSum_ / samples_;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    overflow_ = underflow_ = samples_ = 0;
    weightedSum_ = 0.0;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

std::uint64_t
StatGroup::get(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name_ << "." << name << " " << c.value() << "\n";
}

void
StatGroup::reset()
{
    for (auto &[name, c] : counters_)
        c.reset();
}

} // namespace ccr
