/**
 * @file
 * SmallVec: a fixed-capacity inline buffer that spills to the heap,
 * for small hot-path collections whose common size is bounded but
 * whose worst case is not (e.g. CRB summary sets sized by
 * CrbParams::bankSize). Value semantics; indexable; no iterator
 * invalidation concerns because access is by index.
 */

#ifndef CCR_SUPPORT_SMALLVEC_HH
#define CCR_SUPPORT_SMALLVEC_HH

#include <array>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace ccr
{

template <typename T, std::size_t N>
class SmallVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVec is for small trivially-copyable elements");

  public:
    SmallVec() = default;

    void
    push_back(const T &v)
    {
        if (size_ < N)
            inline_[size_] = v;
        else
            spill_.push_back(v);
        ++size_;
    }

    void
    clear()
    {
        size_ = 0;
        spill_.clear();
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &
    operator[](std::size_t i)
    {
        return i < N ? inline_[i] : spill_[i - N];
    }

    const T &
    operator[](std::size_t i) const
    {
        return i < N ? inline_[i] : spill_[i - N];
    }

    bool
    operator==(const SmallVec &other) const
    {
        if (size_ != other.size_)
            return false;
        for (std::size_t i = 0; i < size_; ++i) {
            if ((*this)[i] != other[i])
                return false;
        }
        return true;
    }

  private:
    std::size_t size_ = 0;
    std::array<T, N> inline_{};
    std::vector<T> spill_; // elements N.. when size_ > N
};

} // namespace ccr

#endif // CCR_SUPPORT_SMALLVEC_HH
