#include "support/logging.hh"

#include <cstdlib>
#include <stdexcept>

namespace ccr
{

namespace
{
bool verboseFlag = true;
} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (verboseFlag)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (verboseFlag)
        std::cerr << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace ccr
