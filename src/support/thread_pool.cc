#include "support/thread_pool.hh"

#include <cstdlib>
#include <string>

namespace ccr
{

namespace
{

thread_local Rng *tlWorkerRng = nullptr;
thread_local int tlWorkerId = -1;

/** splitmix64 finalizer: decorrelates worker seeds derived from a
 *  common base. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace

ThreadPool::ThreadPool(int threads, std::uint64_t seed) : seed_(seed)
{
    if (threads < 1)
        threads = 1;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    // jthread joins on destruction.
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        auto err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerMain(int index)
{
    Rng rng(mixSeed(seed_, static_cast<std::uint64_t>(index)));
    tlWorkerRng = &rng;
    tlWorkerId = index;

    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        cv_.wait(lock,
                 [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                break;
            continue;
        }
        auto task = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        try {
            task();
        } catch (...) {
            lock.lock();
            if (!firstError_)
                firstError_ = std::current_exception();
            lock.unlock();
        }
        lock.lock();
        if (--inFlight_ == 0)
            idleCv_.notify_all();
    }

    tlWorkerRng = nullptr;
    tlWorkerId = -1;
}

Rng *
ThreadPool::currentWorkerRng()
{
    return tlWorkerRng;
}

int
ThreadPool::currentWorkerId()
{
    return tlWorkerId;
}

int
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("CCR_JOBS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

} // namespace ccr
