/**
 * @file
 * A fixed-size worker pool used by the parallel experiment driver.
 *
 * Workers are std::jthread; tasks are queued FIFO and executed on the
 * first free worker. Each worker owns a deterministic Rng seeded from
 * (pool seed, worker index), reachable from inside a task via
 * ThreadPool::currentWorkerRng() — any randomness drawn there is
 * reproducible for a fixed seed and worker count, which keeps
 * stochastic scheduling decisions out of the result path.
 *
 * Exceptions thrown by a task propagate out of wait() (first one
 * wins); the pool keeps draining the remaining tasks so destruction
 * is always clean.
 */

#ifndef CCR_SUPPORT_THREAD_POOL_HH
#define CCR_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/random.hh"

namespace ccr
{

/** Fixed-size jthread pool with per-worker deterministic RNGs. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; clamped to at least 1.
     * @param seed    Base seed; worker w gets Rng(mix(seed, w)).
     */
    explicit ThreadPool(int threads, std::uint64_t seed = 0x5EED'0001ULL);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Safe from any thread, including workers. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. Rethrows the
     *  first task exception, if any. */
    void wait();

    int size() const { return static_cast<int>(workers_.size()); }

    /** The calling worker's deterministic Rng; nullptr when the caller
     *  is not a pool worker. */
    static Rng *currentWorkerRng();

    /** The calling worker's index in its pool; -1 outside a pool. */
    static int currentWorkerId();

    /** Threads to use when the caller asked for "all of them": the
     *  CCR_JOBS environment variable when set, otherwise
     *  std::thread::hardware_concurrency(). Always >= 1. */
    static int defaultThreads();

  private:
    void workerMain(int index);

    std::mutex mu_;
    std::condition_variable cv_;      ///< wakes idle workers
    std::condition_variable idleCv_;  ///< wakes wait()
    std::deque<std::function<void()>> queue_;
    std::size_t inFlight_ = 0;  ///< queued + currently running
    bool stopping_ = false;
    std::exception_ptr firstError_;
    std::uint64_t seed_;
    std::vector<std::jthread> workers_;
};

} // namespace ccr

#endif // CCR_SUPPORT_THREAD_POOL_HH
