/**
 * @file
 * Wall-clock timers for the experiment driver and benches.
 *
 * Timing output goes to stderr (or a caller-supplied stream) so that a
 * bench's stdout stays byte-identical across machines and job counts —
 * the determinism tests compare stdout only.
 */

#ifndef CCR_SUPPORT_TIMING_HH
#define CCR_SUPPORT_TIMING_HH

#include <chrono>
#include <iostream>
#include <string>

namespace ccr
{

/** Monotonic stopwatch, running from construction. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction (or the last restart). */
    double
    seconds() const
    {
        const auto d = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

    void restart() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Prints "<label>: <seconds>s" to @p os when the scope closes. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(std::string label, std::ostream &os = std::cerr)
        : label_(std::move(label)), os_(os)
    {}

    ~ScopedTimer()
    {
        os_ << label_ << ": " << timer_.seconds() << "s\n";
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    double seconds() const { return timer_.seconds(); }

  private:
    std::string label_;
    std::ostream &os_;
    WallTimer timer_;
};

} // namespace ccr

#endif // CCR_SUPPORT_TIMING_HH
