#include "support/table.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace ccr
{

void
Table::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << row[i];
        }
        os << "\n";
    };
    emit(header_);
    std::string rule;
    for (const auto w : widths)
        rule += std::string(w + 2, '-');
    os << rule << "\n";
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::fmt(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
Table::pct(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, v * 100.0);
    return buf;
}

} // namespace ccr
