/**
 * @file
 * ASCII table and CSV output for benchmark harnesses. Each figure
 * reproduction prints one Table whose rows mirror the paper's series.
 */

#ifndef CCR_SUPPORT_TABLE_HH
#define CCR_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace ccr
{

/** A simple column-aligned text table with an optional title. */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row; cell count should match the header. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values (header first). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

    /** Format a double with @p digits fractional digits. */
    static std::string fmt(double v, int digits = 3);

    /** Format a ratio as a percentage string ("12.3%"). */
    static std::string pct(double v, int digits = 1);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ccr

#endif // CCR_SUPPORT_TABLE_HH
