/**
 * @file
 * Deterministic pseudo-random number generation for workload input
 * generators. All simulator randomness flows through Rng so that runs are
 * exactly reproducible from a seed.
 */

#ifndef CCR_SUPPORT_RANDOM_HH
#define CCR_SUPPORT_RANDOM_HH

#include <cstdint>
#include <vector>

namespace ccr
{

/**
 * xoshiro256** generator. Small, fast, and good enough for workload
 * synthesis; not for cryptography.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x1234abcdULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

  private:
    std::uint64_t state_[4];
};

/**
 * Zipf-distributed integer sampler over [0, n). Used to synthesize the
 * skewed value-locality distributions that make computation reuse
 * profitable (a few hot input sets dominate).
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Number of distinct items.
     * @param theta Skew parameter; 0 = uniform, ~0.99 = heavily skewed.
     */
    ZipfSampler(std::size_t n, double theta);

    /** Draw one item index in [0, n). Rank 0 is the most popular. */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace ccr

#endif // CCR_SUPPORT_RANDOM_HH
