/**
 * @file
 * Lightweight statistics package: named scalar counters, ratios, and
 * histograms, grouped per simulation component and dumpable as text.
 * Modeled loosely on gem5's Stats package but intentionally minimal.
 */

#ifndef CCR_SUPPORT_STATS_HH
#define CCR_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ccr
{

/** A monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A fixed-bucket histogram over a value range. */
class Histogram
{
  public:
    /** Buckets [lo, hi) split into @p nbuckets, plus an overflow bucket. */
    Histogram(std::int64_t lo, std::int64_t hi, std::size_t nbuckets);
    Histogram() : Histogram(0, 1, 1) {}

    void record(std::int64_t value, std::uint64_t weight = 1);

    std::uint64_t samples() const { return samples_; }
    double mean() const;
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t underflow() const { return underflow_; }

    void reset();

  private:
    std::int64_t lo_;
    std::int64_t hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t samples_ = 0;
    double weightedSum_ = 0.0;
};

/**
 * A named group of counters. Components register counters by name and the
 * harness dumps all groups at end of simulation.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Find-or-create the counter called @p name within the group. */
    Counter &counter(const std::string &name);

    /** Read a counter's value; zero when absent. */
    std::uint64_t get(const std::string &name) const;

    const std::string &name() const { return name_; }
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    void dump(std::ostream &os) const;
    void reset();

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
};

} // namespace ccr

#endif // CCR_SUPPORT_STATS_HH
