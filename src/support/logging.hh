/**
 * @file
 * Error reporting and status message helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (simulator bugs), fatal() for user-caused conditions the simulation
 * cannot continue from, warn()/inform() for status messages.
 */

#ifndef CCR_SUPPORT_LOGGING_HH
#define CCR_SUPPORT_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ccr
{

namespace detail
{

/** Stream a pack of arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Whether warn()/inform() output is emitted (tests silence it). */
void setVerbose(bool verbose);
bool verbose();

} // namespace ccr

/** Abort: an internal invariant was violated (a bug in this library). */
#define ccr_panic(...) \
    ::ccr::detail::panicImpl(__FILE__, __LINE__, \
                             ::ccr::detail::concat(__VA_ARGS__))

/** Exit(1): the simulation cannot continue due to a user-level condition. */
#define ccr_fatal(...) \
    ::ccr::detail::fatalImpl(__FILE__, __LINE__, \
                             ::ccr::detail::concat(__VA_ARGS__))

/** Non-fatal warning about questionable but survivable conditions. */
#define ccr_warn(...) \
    ::ccr::detail::warnImpl(::ccr::detail::concat(__VA_ARGS__))

/** Informative status message. */
#define ccr_inform(...) \
    ::ccr::detail::informImpl(::ccr::detail::concat(__VA_ARGS__))

/** Panic unless a condition holds. */
#define ccr_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ccr_panic("assertion '" #cond "' failed: ", \
                      ::ccr::detail::concat("" __VA_ARGS__)); \
        } \
    } while (0)

#endif // CCR_SUPPORT_LOGGING_HH
