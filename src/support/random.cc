#include "support/random.hh"

#include <algorithm>
#include <cmath>

#include "support/bits.hh"
#include "support/logging.hh"

namespace ccr
{

Rng::Rng(std::uint64_t seed)
{
    // Seed with splitmix64 so that nearby seeds give unrelated streams.
    std::uint64_t s = seed;
    for (auto &word : state_) {
        s += 0x9e3779b97f4a7c15ULL;
        word = mix64(s);
    }
}

static inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    ccr_assert(bound != 0, "nextBelow(0)");
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for the bounds workload generators use (<< 2^32).
    return next() % bound;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    ccr_assert(lo <= hi, "bad range");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

ZipfSampler::ZipfSampler(std::size_t n, double theta)
{
    ccr_assert(n > 0, "empty zipf domain");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
        cdf_[i] = sum;
    }
    for (auto &c : cdf_)
        c /= sum;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace ccr
