/**
 * @file
 * Small bit-manipulation helpers used across the simulator.
 */

#ifndef CCR_SUPPORT_BITS_HH
#define CCR_SUPPORT_BITS_HH

#include <bit>
#include <cstdint>

namespace ccr
{

/** Number of set bits in @p v. */
constexpr int
popCount(std::uint64_t v)
{
    return std::popcount(v);
}

/** True when @p v is a power of two (zero is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(@p v); @p v must be nonzero. */
constexpr int
floorLog2(std::uint64_t v)
{
    return 63 - std::countl_zero(v | 1);
}

/** Ceiling of log2(@p v); @p v must be nonzero. */
constexpr int
ceilLog2(std::uint64_t v)
{
    return floorLog2(v) + (isPowerOf2(v) ? 0 : 1);
}

/** Align @p addr down to a multiple of @p align (a power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** Align @p addr up to a multiple of @p align (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** Extract bits [lo, hi] (inclusive) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, int hi, int lo)
{
    const std::uint64_t mask =
        hi - lo >= 63 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << (hi - lo + 1)) - 1);
    return (v >> lo) & mask;
}

/** Sign-extend the low @p nbits of @p v to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t v, int nbits)
{
    const int shift = 64 - nbits;
    return static_cast<std::int64_t>(v << shift) >> shift;
}

/**
 * Mix a 64-bit value into a well-distributed hash (splitmix64 finalizer).
 * Used for CRB indexing and value-profile hashing.
 */
constexpr std::uint64_t
mix64(std::uint64_t v)
{
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebULL;
    v ^= v >> 31;
    return v;
}

/** Combine two hashes. */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

} // namespace ccr

#endif // CCR_SUPPORT_BITS_HH
