#include "gen/diff.hh"

#include <sstream>

#include "analysis/alias.hh"
#include "core/former.hh"
#include "emu/machine.hh"
#include "emu/reference.hh"
#include "ir/verifier.hh"
#include "lint/crosscheck.hh"
#include "lint/lint.hh"
#include "profile/value_profiler.hh"
#include "support/logging.hh"
#include "workloads/corpus.hh"
#include "workloads/harness.hh"

namespace ccr::gen
{

namespace
{

using workloads::InputSet;
using workloads::Workload;

/** An independent instance of @p w (the harness mutates modules in
 *  place, so every stage gets its own clone). */
Workload
cloneWorkload(const Workload &w)
{
    Workload copy = w;
    copy.module = std::shared_ptr<ir::Module>(w.module->clone());
    return copy;
}

/**
 * Stage 2: run the pre-decoded engine and the reference interpreter in
 * lockstep on the train input, comparing the full ExecInfo stream and
 * the final machine state. Returns false and fills @p why on the first
 * divergence.
 */
bool
runLockstep(const Workload &w, std::uint64_t budget, std::string &why)
{
    emu::Machine machine(*w.module);
    w.prepare(machine, InputSet::Train);
    emu::ReferenceMachine ref(*w.module);
    ref.memory() = machine.memory().clone();

    emu::ExecInfo a, b;
    for (std::uint64_t n = 0; n < budget; ++n) {
        const auto ka = machine.step(a);
        const auto kb = ref.step(b);
        const bool same =
            ka == kb && a.inst == b.inst && a.func == b.func
            && a.block == b.block && a.numSrcRegs == b.numSrcRegs
            && a.srcVals == b.srcVals && a.result == b.result
            && a.memAddr == b.memAddr && a.taken == b.taken
            && a.pc == b.pc && a.nextPc == b.nextPc;
        if (!same) {
            std::ostringstream os;
            os << "lockstep divergence at step " << n << " (pc 0x"
               << std::hex << a.pc << " vs 0x" << b.pc << ")";
            why = os.str();
            return false;
        }
        if (ka == emu::StepKind::Halted)
            break;
    }
    if (!machine.halted() || !ref.halted()) {
        why = "lockstep run did not halt within the budget";
        return false;
    }
    if (machine.instCount() != ref.instCount()) {
        why = "engines disagree on instruction count";
        return false;
    }
    if (machine.memory().contentHash() != ref.memory().contentHash()) {
        why = "engines disagree on final memory contents";
        return false;
    }
    return true;
}

std::string
firstError(const std::vector<ir::Diagnostic> &diags)
{
    for (const auto &d : diags)
        if (d.severity == ir::Severity::Error)
            return d.message;
    return "unknown";
}

} // namespace

DiffResult
diffTestSource(const std::string &lc_source, const std::string &display,
               const DiffConfig &config)
{
    DiffResult r;
    r.name = display;

    // -- Stage 1: load -------------------------------------------------
    std::vector<std::string> errors;
    const auto loaded =
        workloads::buildWorkloadFromText(lc_source, display, errors);
    if (!loaded) {
        r.failure = errors.empty() ? "load failed" : errors.front();
        return r;
    }
    const Workload &w = *loaded;
    // The emulator asserts on a missing or parameterised entry function;
    // shrunk candidates can legally produce either, so reject them here.
    const auto entry = w.module->entryFunction();
    if (entry == ir::kNoFunc) {
        r.failure = "module has no entry function";
        return r;
    }
    if (w.module->function(entry).numParams() != 0) {
        r.failure = "entry function takes parameters";
        return r;
    }
    r.loadOk = true;

    // -- Stage 2: decoded-vs-reference lockstep ------------------------
    if (!runLockstep(w, config.maxInsts, r.failure))
        return r;
    r.lockstepOk = true;

    // -- Stage 3: profile, form regions, lint + cross-check ------------
    const Workload ccr = cloneWorkload(w);
    const profile::ProfileData prof = workloads::profileWorkload(
        ccr, InputSet::Train, config.maxInsts);

    analysis::AliasAnalysis alias(*ccr.module);
    alias.annotateDeterminableLoads(*ccr.module);
    core::RegionFormer former(*ccr.module, prof, alias, config.policy);
    const core::RegionTable regions = former.formAll();
    r.regionsFormed = regions.size();

    {
        const auto verifyDiags = ir::verifyModule(*ccr.module);
        if (ir::hasErrors(verifyDiags)) {
            r.failure =
                "formed module fails verify: " + firstError(verifyDiags);
            return r;
        }
        const lint::LintResult lint = lint::lintModule(*ccr.module, regions);
        if (!lint.ok()) {
            r.failure = "region lint: " + firstError(lint.diagnostics);
            return r;
        }
    }
    r.lintOk = true;

    if (config.runCrossCheck) {
        emu::Machine machine(*ccr.module);
        w.prepare(machine, InputSet::Train);
        const lint::CrossCheckResult cross =
            lint::crossCheck(machine, regions, config.maxInsts);
        if (!cross.ok()) {
            r.failure = "cross-check: " + firstError(cross.diagnostics);
            return r;
        }
    }
    r.crossOk = true;

    // -- Stage 4: base-vs-CCR differential execution (ref input) -------
    std::vector<ir::Value> baseOutputs;
    std::uint64_t baseMemHash = 0;
    {
        emu::Machine base(*w.module);
        w.prepare(base, InputSet::Ref);
        base.run(config.maxInsts);
        if (!base.halted()) {
            r.failure = "base run did not halt within the budget";
            return r;
        }
        r.dynInsts = base.instCount();
        baseOutputs = workloads::readOutputs(base, w);
        baseMemHash = base.memory().contentHash();
    }

    const auto crb = uarch::makeCrbScheme(config.crb);
    {
        emu::Machine machine(*ccr.module);
        w.prepare(machine, InputSet::Ref);
        machine.setReuseHandler(crb.get());
        machine.run(config.maxInsts);
        if (!machine.halted()) {
            r.failure = "CCR run did not halt within the budget";
            return r;
        }
        if (workloads::readOutputs(machine, ccr) != baseOutputs) {
            r.failure = "base and CCR runs disagree on output globals";
            return r;
        }
        if (machine.memory().contentHash() != baseMemHash) {
            r.failure = "base and CCR runs disagree on final memory";
            return r;
        }
        r.baseVsCcrOk = true;

        // Counter-algebra invariants (the SimReport cross-registry
        // assertions, checked directly against the CRB and machine).
        const auto &m = crb->metrics();
        r.crbQueries = m.get("crb.queries");
        r.crbHits = m.get("crb.hits");
        r.crbInvalidates = m.get("crb.invalidates");
        const std::uint64_t misses = m.get("crb.misses");
        if (r.crbHits + misses != r.crbQueries) {
            r.failure = "CRB counter algebra: hits + misses != queries";
            return r;
        }
        if (machine.stats().get("reuseHits") != r.crbHits
            || machine.stats().get("reuseMisses") != misses) {
            r.failure = "machine and CRB disagree on reuse event counts";
            return r;
        }
        std::uint64_t hitSum = 0, querySum = 0;
        for (const auto &[id, n] : crb->hitsByRegion())
            hitSum += n;
        for (const auto &[id, n] : crb->queriesByRegion())
            querySum += n;
        if (hitSum != r.crbHits || querySum != r.crbQueries) {
            r.failure = "per-region attribution does not sum to totals";
            return r;
        }
    }
    r.countersOk = true;

    // -- Stage 5: cross-scheme execution (DTM on the same module) ------
    // A second, structurally different reuse scheme replaying the same
    // regions: any divergence from the base run in output globals or
    // the full memory hash flags a reuse soundness bug.
    if (config.runCrossScheme) {
        reuse::DynamicTraceMemo dtm(config.dtm);
        emu::Machine machine(*ccr.module);
        w.prepare(machine, InputSet::Ref);
        machine.setReuseHandler(&dtm);
        machine.run(config.maxInsts);
        if (!machine.halted()) {
            r.failure = "DTM run did not halt within the budget";
            return r;
        }
        if (workloads::readOutputs(machine, ccr) != baseOutputs) {
            r.failure = "base and DTM runs disagree on output globals";
            return r;
        }
        if (machine.memory().contentHash() != baseMemHash) {
            r.failure = "base and DTM runs disagree on final memory";
            return r;
        }
        const auto &dm = dtm.metrics();
        r.dtmQueries = dm.get("dtm.queries");
        r.dtmHits = dm.get("dtm.hits");
        if (r.dtmHits + dm.get("dtm.misses") != r.dtmQueries) {
            r.failure = "DTM counter algebra: hits + misses != queries";
            return r;
        }
    }
    r.crossSchemeOk = true;

    // -- Region samples for the predictor ------------------------------
    const auto &hitsBy = crb->hitsByRegion();
    const auto &queriesBy = crb->queriesByRegion();
    for (const auto &region : regions.regions()) {
        RegionSample s;
        s.regionId = region.id;
        s.staticInsts = region.staticInsts;
        s.cyclic = region.cyclic;
        s.functionLevel = region.functionLevel;
        s.liveIns = static_cast<int>(region.liveIns.size());
        s.memStructs = static_cast<int>(region.memStructs.size());

        s.loopDepth = region.loopDepth;

        if (const auto it = queriesBy.find(region.id);
            it != queriesBy.end())
            s.queries = it->second;
        if (const auto it = hitsBy.find(region.id); it != hitsBy.end())
            s.hits = it->second;
        r.regions.push_back(s);
    }
    return r;
}

DiffResult
diffTestKernel(const GeneratedKernel &kernel, const DiffConfig &config)
{
    return diffTestSource(kernel.text, kernel.name, config);
}

} // namespace ccr::gen
