/**
 * @file
 * Failure shrinking for `.lc` kernels: delta-debugging over source
 * lines. Given a failing kernel and a predicate that re-runs the
 * failure check, shrinkSource() searches for a minimal line subset
 * that still fails. The parser is total, so invalid candidates simply
 * fail the implicit "still parses and verifies" gate inside the
 * predicate wrapper — no candidate can crash the shrinker.
 */

#ifndef CCR_GEN_SHRINK_HH
#define CCR_GEN_SHRINK_HH

#include <functional>
#include <string>

namespace ccr::gen
{

/** Returns true when @p candidate still reproduces the failure under
 *  investigation. Candidates that fail to parse/verify/load must
 *  return false (not reproduce). */
using FailurePredicate = std::function<bool(const std::string &)>;

/**
 * ddmin-style minimization over source lines: repeatedly try removing
 * chunks of lines (halving chunk size down to single lines) while the
 * predicate keeps reproducing. Returns the smallest failing source
 * found; returns @p source unchanged when the predicate does not hold
 * on it. @p max_probes bounds total predicate invocations.
 */
std::string shrinkSource(const std::string &source,
                         const FailurePredicate &still_fails,
                         int max_probes = 2000);

} // namespace ccr::gen

#endif // CCR_GEN_SHRINK_HH
