/**
 * @file
 * Seeded generative `.lc` workload engine (ccr_gen).
 *
 * generateKernel() synthesizes one complete, always-legal workload
 * module by construction: code is built through the IRBuilder grammar
 * (every block ends in exactly one control transfer, every operand is
 * a defined register, all loops are bounded), rendered to canonical
 * `.lc` text by ir::Printer, and prefixed with `;!` workload
 * directives. The printer/parser fixpoint is the legality oracle —
 * generation asserts that the emitted text parses back, verifies, and
 * reprints byte-identically (see docs/GENERATOR.md).
 *
 * Knobs control the population properties the differential harness
 * and the static hit-rate predictor sweep over: value locality
 * (zipf/uniform operand streams), loop-nest depth, call-graph depth,
 * global-array aliasing density, and the region-size distribution of
 * the straight-line helper bodies.
 *
 * Determinism contract: the emitted text is a pure function of the
 * knobs (including knobs.seed). Population generation derives one
 * independent sub-seed per kernel index, so generating with any
 * worker count yields byte-identical files.
 */

#ifndef CCR_GEN_GEN_HH
#define CCR_GEN_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ccr::gen
{

/** Everything that shapes one generated kernel. */
struct GenKnobs
{
    /** Master seed; every structural and value decision flows from
     *  it. */
    std::uint64_t seed = 1;

    // -- Value locality (the reuse signal) ---------------------------

    /** Zipf skew of the train input stream; 0 emits a uniform fill
     *  directive instead. */
    double zipfTheta = 1.2;

    /** Distinct values in the train stream's pool. */
    std::uint64_t distinctValues = 16;

    /** Train stream length (driver-loop iterations). 0 produces a
     *  zero-iteration workload (the loop body never executes). */
    std::uint64_t streamLen = 400;

    /** Largest input value the fill directives may produce. */
    std::int64_t valueMax = 4095;

    // -- Structure ---------------------------------------------------

    /** Helper ("kernel") functions main folds over the stream. */
    int helpers = 2;

    /** Maximum call-chain depth below main (1 = main calls leaves). */
    int callDepth = 1;

    /** Loop-nest depth of the driver loop in main (1..3). */
    int loopDepth = 1;

    /** Straight-line helper-body length bounds — the region-size
     *  distribution. */
    int regionMin = 6;
    int regionMax = 28;

    /** Probability a helper stores into a shared global array (and
     *  main stores under a data-dependent branch) — the density of
     *  aliasing/invalidation sites. */
    double aliasDensity = 0.25;

    /** Probability a helper reads the const lookup table (memory-
     *  dependent region candidates). */
    double constTableProb = 0.5;

    /** Probability a helper body is a bounded inner loop (cyclic
     *  region candidates) instead of straight-line code. */
    double innerLoopProb = 0.25;

    /** Probability an ALU chain mixes in float ops (I2F/FADD/F2I). */
    double floatProb = 0.10;
};

/** One generated kernel: a complete `.lc` file (directives + module)
 *  plus the identity that produced it. */
struct GeneratedKernel
{
    /** Workload name carried by the `;! workload` directive
     *  ("gen_<seed>"). */
    std::string name;

    /** Full `.lc` text: `;!` directives then the canonical module
     *  form. Parse-verify-reprint clean by construction. */
    std::string text;

    GenKnobs knobs;
};

/** Generate one kernel. Panics (ccr_assert) if the emitted text ever
 *  fails the parse/verify/fixpoint oracle — that is a generator bug,
 *  never a caller error. */
GeneratedKernel generateKernel(const GenKnobs &knobs);

/**
 * Derive the knobs for kernel @p index of a population: sub-seed plus
 * a deterministic sweep over the knob space (locality, structure and
 * aliasing vary per index so a population covers the feature space
 * the predictor fits over). Pure function of (base, index).
 */
GenKnobs populationKnobs(const GenKnobs &base, std::size_t index);

/** Generate kernels [0, count) of the population seeded by @p base.
 *  @p jobs parallelizes generation; output is byte-identical for any
 *  worker count. */
std::vector<GeneratedKernel> generatePopulation(const GenKnobs &base,
                                                std::size_t count,
                                                int jobs = 1);

} // namespace ccr::gen

#endif // CCR_GEN_GEN_HH
