#include "gen/gen.hh"

#include <algorithm>
#include <cstdio>

#include "ir/builder.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "support/bits.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "support/thread_pool.hh"
#include "text/parser.hh"
#include "workloads/support.hh"

namespace ccr::gen
{

namespace
{

using namespace ccr::ir;

/** ALU opcodes whose semantics are total on arbitrary operands (the
 *  emulator's evalAlu handles /0 and shift-range deterministically). */
const Opcode kChainOps[] = {
    Opcode::Add, Opcode::Sub, Opcode::Mul,  Opcode::And,
    Opcode::Or,  Opcode::Xor, Opcode::Shl,  Opcode::Shr,
    Opcode::Sra, Opcode::Rem, Opcode::CmpLt, Opcode::CmpGe,
};

constexpr int kSharedWords = 64;
constexpr int kTabWords = 256;

/** Format a double for a `;!` directive: shortest stable form. */
std::string
fmtF(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

/** Sanitized copies of the knobs: every structural knob clamped into
 *  the range the generator's grammar supports, so any caller-supplied
 *  knob combination yields a legal kernel. */
GenKnobs
clampKnobs(const GenKnobs &in)
{
    GenKnobs k = in;
    k.helpers = std::clamp(k.helpers, 1, 6);
    k.callDepth = std::clamp(k.callDepth, 1, 4);
    k.loopDepth = std::clamp(k.loopDepth, 1, 3);
    k.regionMin = std::clamp(k.regionMin, 2, 96);
    k.regionMax = std::clamp(k.regionMax, k.regionMin, 128);
    k.streamLen = std::min<std::uint64_t>(k.streamLen, 1u << 16);
    k.distinctValues = std::clamp<std::uint64_t>(k.distinctValues, 1, 512);
    k.valueMax = std::clamp<std::int64_t>(k.valueMax, 1, 1u << 20);
    k.zipfTheta = std::clamp(k.zipfTheta, 0.0, 3.0);
    k.aliasDensity = std::clamp(k.aliasDensity, 0.0, 1.0);
    k.constTableProb = std::clamp(k.constTableProb, 0.0, 1.0);
    k.innerLoopProb = std::clamp(k.innerLoopProb, 0.0, 1.0);
    k.floatProb = std::clamp(k.floatProb, 0.0, 1.0);
    return k;
}

/**
 * Builds one kernel module. All structural randomness comes from the
 * single Rng, drawn in a fixed order — the module is a pure function
 * of the clamped knobs.
 */
class KernelBuilder
{
  public:
    KernelBuilder(const GenKnobs &knobs, Module &mod)
        : knobs_(knobs), rng_(hashCombine(knobs.seed, 0x67656eULL)),
          mod_(mod)
    {}

    /** Ids of the top-level helpers main folds over the stream. */
    std::vector<FuncId> topHelpers;

    void
    build()
    {
        // Hold ids, not Global&: addGlobal may reallocate the vector.
        tab_ = workloads::addConstTable64(mod_, "tab", tableValues()).id;
        data_ = mod_.addGlobal("data", 8 * maxStream()).id;
        nItems_ = mod_.addGlobal("n_items", 8).id;
        shared_ = mod_.addGlobal("shared", kSharedWords * 8).id;
        out_ = mod_.addGlobal("out", 16).id;

        for (int i = 0; i < knobs_.helpers; ++i)
            topHelpers.push_back(makeHelper(i, 1));
        buildMain();
    }

    /** Largest stream either input set runs (ref is train + 1/4). */
    std::uint64_t
    maxStream() const
    {
        return knobs_.streamLen + knobs_.streamLen / 4;
    }

  private:
    std::vector<std::int64_t>
    tableValues()
    {
        std::vector<std::int64_t> vals(kTabWords);
        for (auto &v : vals)
            v = rng_.nextRange(-(1 << 20), 1 << 20);
        return vals;
    }

    /** Append a pure ALU op over @p pool to the chain. */
    Reg
    chainStep(IRBuilder &b, std::vector<Reg> &pool)
    {
        const auto pick = [&] {
            return pool[rng_.nextBelow(pool.size())];
        };
        if (rng_.nextBool(knobs_.floatProb)) {
            // Float excursion: int -> float -> arithmetic -> int.
            const Reg fa = b.i2f(pick());
            const Reg fb = b.i2f(pick());
            const Reg fs = b.binOp(rng_.nextBool(0.5) ? Opcode::FAdd
                                                      : Opcode::FMul,
                                   fa, fb);
            return b.f2i(fs);
        }
        const Opcode op = kChainOps[rng_.nextBelow(
            sizeof(kChainOps) / sizeof(kChainOps[0]))];
        if (op == Opcode::Shl || op == Opcode::Shr || op == Opcode::Sra)
            return b.binOpI(op, pick(),
                            static_cast<std::int64_t>(rng_.nextBelow(24)));
        if (rng_.nextBool(0.35))
            return b.binOpI(op, pick(), rng_.nextRange(-4096, 4096));
        return b.binOp(op, pick(), pick());
    }

    /** A const-table load keyed on @p x (memory-dependent input). */
    Reg
    tableLoad(IRBuilder &b, Reg x)
    {
        const Reg idx = b.andI(x, kTabWords - 1);
        const Reg addr = b.add(b.movGA(tab_), b.shlI(idx, 3));
        return b.load(addr, 0);
    }

    /** A load from the mutable shared array (invalidation target). */
    Reg
    sharedLoad(IRBuilder &b, Reg x)
    {
        const Reg idx = b.andI(x, kSharedWords - 1);
        const Reg addr = b.add(b.movGA(shared_), b.shlI(idx, 3));
        return b.load(addr, 0);
    }

    void
    sharedStore(IRBuilder &b, Reg x, Reg val)
    {
        const Reg idx = b.andI(x, kSharedWords - 1);
        const Reg addr = b.add(b.movGA(shared_), b.shlI(idx, 3));
        b.store(addr, 0, val);
    }

    /**
     * One helper function at call-graph @p level. Bodies are either a
     * straight-line ALU chain (acyclic region material) or a bounded
     * counted loop (cyclic region material); attribute draws decide
     * const-table reads, shared-array reads/stores, and a tail call
     * one level deeper.
     */
    FuncId
    makeHelper(int index, int level)
    {
        const bool innerLoop = rng_.nextBool(knobs_.innerLoopProb);
        const bool usesTable = rng_.nextBool(knobs_.constTableProb);
        const bool readsShared = rng_.nextBool(knobs_.aliasDensity * 0.5);
        const bool storesShared = rng_.nextBool(knobs_.aliasDensity);
        const bool deeper =
            level < knobs_.callDepth && rng_.nextBool(0.6);

        // Create the callee first so the Call names an existing id.
        FuncId calleeId = kNoFunc;
        if (deeper)
            calleeId = makeHelper(index, level + 1);

        std::string name = "f" + std::to_string(index);
        for (int l = 1; l < level; ++l)
            name += "_d";
        Function &f = mod_.addFunction(name, 1);
        IRBuilder b(f);
        const Reg x = 0;

        const int chainLen =
            knobs_.regionMin
            + static_cast<int>(rng_.nextBelow(static_cast<std::uint64_t>(
                knobs_.regionMax - knobs_.regionMin + 1)));

        if (!innerLoop) {
            const BlockId entry = b.newBlock();
            f.setEntry(entry);
            b.setInsertPoint(entry);
            std::vector<Reg> pool{x};
            for (int i = 0; i < 2; ++i)
                pool.push_back(b.movI(rng_.nextRange(-512, 512)));
            if (usesTable)
                pool.push_back(tableLoad(b, x));
            if (readsShared)
                pool.push_back(sharedLoad(b, x));
            Reg last = x;
            for (int i = 0; i < chainLen; ++i) {
                last = chainStep(b, pool);
                pool.push_back(last);
                if (pool.size() > 12)
                    pool.erase(pool.begin() + 1);
            }
            if (deeper) {
                const BlockId cont = b.newBlock();
                const Reg sub = b.call(calleeId, {last}, cont);
                b.setInsertPoint(cont);
                last = b.xorR(last, sub);
            }
            if (storesShared) {
                // Rare mutation, same rationale as main's store site.
                const BlockId doStore = b.newBlock();
                const BlockId after = b.newBlock();
                const Reg t = b.xorI(b.andI(x, 15), 3);
                b.br(t, after, doStore);
                b.setInsertPoint(doStore);
                sharedStore(b, x, last);
                b.jump(after);
                b.setInsertPoint(after);
            }
            b.ret(last);
            return f.id();
        }

        // Counted inner loop: acc folds a short chain T times.
        const std::int64_t trips =
            3 + static_cast<std::int64_t>(rng_.nextBelow(10));
        const BlockId entry = b.newBlock();
        const BlockId header = b.newBlock();
        const BlockId body = b.newBlock();
        const BlockId exit = b.newBlock();
        f.setEntry(entry);

        const Reg acc = b.reg();
        const Reg t = b.reg();
        b.setInsertPoint(entry);
        b.movTo(acc, x);
        b.movITo(t, 0);
        b.jump(header);

        b.setInsertPoint(header);
        const Reg c = b.cmpLtI(t, trips);
        b.br(c, body, exit);

        b.setInsertPoint(body);
        std::vector<Reg> pool{x, acc};
        if (usesTable)
            pool.push_back(tableLoad(b, acc));
        const int bodyLen = std::max(2, chainLen / 4);
        Reg last = acc;
        for (int i = 0; i < bodyLen; ++i) {
            last = chainStep(b, pool);
            pool.push_back(last);
            if (pool.size() > 10)
                pool.erase(pool.begin() + 2);
        }
        b.binOpTo(acc, Opcode::Xor, acc, last);
        b.binOpITo(t, Opcode::Add, t, 1);
        b.jump(header);

        b.setInsertPoint(exit);
        Reg result = acc;
        if (deeper) {
            const BlockId cont = b.newBlock();
            const Reg sub = b.call(calleeId, {result}, cont);
            b.setInsertPoint(cont);
            result = b.add(result, sub);
        }
        if (storesShared) {
            // Rare mutation, same rationale as main's store site.
            const BlockId doStore = b.newBlock();
            const BlockId after = b.newBlock();
            const Reg cond = b.xorI(b.andI(x, 15), 3);
            b.br(cond, after, doStore);
            b.setInsertPoint(doStore);
            sharedStore(b, x, result);
            b.jump(after);
            b.setInsertPoint(after);
        }
        b.ret(result);
        return f.id();
    }

    /**
     * The driver: a loop nest of depth knobs_.loopDepth whose
     * innermost body draws data[i], perturbs it with the inner
     * indices, folds every top-level helper into an accumulator, and
     * (with aliasDensity) stores into the shared array under a
     * data-dependent branch. A digest of the accumulator and the
     * shared array lands in "out".
     */
    void
    buildMain()
    {
        Function &f = mod_.addFunction("main", 0);
        mod_.setEntryFunction(f.id());
        IRBuilder b(f);

        const BlockId entry = b.newBlock();
        f.setEntry(entry);
        b.setInsertPoint(entry);

        const Reg dataBase = b.movGA(data_);
        const Reg n = b.load(b.movGA(nItems_), 0);
        const Reg acc = b.reg();
        b.movITo(acc, static_cast<std::int64_t>(knobs_.seed & 0xffff));

        // Loop-nest counters, outermost first. Level 0 runs to n;
        // deeper levels have small constant trip counts.
        const int depth = knobs_.loopDepth;
        std::vector<Reg> ivs;
        std::vector<std::int64_t> bounds;
        for (int l = 0; l < depth; ++l) {
            ivs.push_back(b.reg());
            bounds.push_back(
                l == 0 ? 0
                       : 2 + static_cast<std::int64_t>(rng_.nextBelow(3)));
        }

        std::vector<BlockId> headers(static_cast<std::size_t>(depth));
        std::vector<BlockId> bodies(static_cast<std::size_t>(depth));
        std::vector<BlockId> latches(static_cast<std::size_t>(depth));
        for (int l = 0; l < depth; ++l) {
            headers[static_cast<std::size_t>(l)] = b.newBlock();
            bodies[static_cast<std::size_t>(l)] = b.newBlock();
            latches[static_cast<std::size_t>(l)] = b.newBlock();
        }
        const BlockId done = b.newBlock();

        b.movITo(ivs[0], 0);
        b.jump(headers[0]);

        for (int l = 0; l < depth; ++l) {
            const auto ul = static_cast<std::size_t>(l);
            // Header: bounds test.
            b.setInsertPoint(headers[ul]);
            const Reg c = l == 0
                              ? b.cmpLt(ivs[0], n)
                              : b.cmpLtI(ivs[ul], bounds[ul]);
            const BlockId onExit = l == 0 ? done : latches[ul - 1];
            b.br(c, bodies[ul], onExit);

            // Body prologue: init the next level counter, or fall
            // through to the innermost work (emitted below).
            b.setInsertPoint(bodies[ul]);
            if (l + 1 < depth) {
                b.movITo(ivs[ul + 1], 0);
                b.jump(headers[ul + 1]);
            }
        }

        // Innermost body work.
        {
            const auto inner = static_cast<std::size_t>(depth - 1);
            b.setInsertPoint(bodies[inner]);
            const Reg addr = b.add(dataBase, b.shlI(ivs[0], 3));
            Reg x = b.load(addr, 0);
            for (int l = 1; l < depth; ++l)
                x = b.add(x, ivs[static_cast<std::size_t>(l)]);

            for (const FuncId helper : topHelpers) {
                const BlockId cont = b.newBlock();
                const Reg r = b.call(helper, {x}, cont);
                b.setInsertPoint(cont);
                b.binOpTo(acc, rng_.nextBool(0.5) ? Opcode::Xor
                                                  : Opcode::Add,
                          acc, r);
                if (rng_.nextBool(0.3))
                    x = b.xorR(x, r);
            }

            if (rng_.nextBool(knobs_.aliasDensity)) {
                // Rare data-dependent store into the shared array
                // (~1/16 of iterations): frequent mutation would
                // destroy the profiled invariance of every shared-
                // reading candidate, leaving no MD regions to study —
                // the interesting regime is quasi-invariant memory
                // with occasional invalidations.
                const BlockId doStore = b.newBlock();
                const BlockId after = b.newBlock();
                const Reg t = b.xorI(b.andI(x, 15), 7);
                b.br(t, after, doStore);
                b.setInsertPoint(doStore);
                sharedStore(b, b.shrI(x, 1), acc);
                b.jump(after);
                b.setInsertPoint(after);
            }
            b.jump(latches[inner]);
        }

        // Latches, innermost outward.
        for (int l = depth - 1; l >= 0; --l) {
            const auto ul = static_cast<std::size_t>(l);
            b.setInsertPoint(latches[ul]);
            b.binOpITo(ivs[ul], Opcode::Add, ivs[ul], 1);
            b.jump(headers[ul]);
        }

        // Epilogue: digest = acc ^ a few shared words; out[0] = digest,
        // out[8] = acc.
        b.setInsertPoint(done);
        const Reg sharedBase = b.movGA(shared_);
        Reg digest = acc;
        for (const int w : {0, 17, 42}) {
            const Reg v = b.load(sharedBase, 8 * w);
            digest = b.xorR(digest, v);
        }
        const Reg outBase = b.movGA(out_);
        b.store(outBase, 0, digest);
        b.store(outBase, 8, acc);
        b.halt();
    }

    const GenKnobs &knobs_;
    Rng rng_;
    Module &mod_;
    GlobalId tab_ = kNoGlobal;
    GlobalId data_ = kNoGlobal;
    GlobalId nItems_ = kNoGlobal;
    GlobalId shared_ = kNoGlobal;
    GlobalId out_ = kNoGlobal;
};

/** The `;!` directive header for a kernel. */
std::string
directiveHeader(const std::string &name, const GenKnobs &k)
{
    const std::uint64_t trainN = k.streamLen;
    const std::uint64_t refN = k.streamLen + k.streamLen / 4;
    const std::uint64_t s1 = hashCombine(k.seed, 0x7261696eULL);
    const std::uint64_t s2 = hashCombine(k.seed, 0x726566ULL);

    std::string h;
    h += ";! workload " + name + "\n";
    h += ";! output out\n";
    h += ";! set train n_items " + std::to_string(trainN) + "\n";
    h += ";! set ref n_items " + std::to_string(refN) + "\n";

    const auto fill = [&](const char *set, std::uint64_t seed,
                          std::uint64_t n, std::uint64_t distinct,
                          double theta) {
        std::string line = ";! fill ";
        line += set;
        line += " data ";
        if (theta > 0.0) {
            line += "zipf seed=" + std::to_string(seed)
                    + " n=" + std::to_string(n)
                    + " distinct=" + std::to_string(std::max<std::uint64_t>(
                          1, std::min(distinct, std::max<std::uint64_t>(
                                                    n, 1))))
                    + " theta=" + fmtF(theta);
        } else {
            line += "uniform seed=" + std::to_string(seed)
                    + " n=" + std::to_string(n);
        }
        line += " max=" + std::to_string(k.valueMax) + "\n";
        return line;
    };

    // Ref inputs differ in seed, pool size, and skew so profile-led
    // decisions generalize imperfectly (as with the hand corpus).
    h += fill("train", s1, trainN, k.distinctValues, k.zipfTheta);
    h += fill("ref", s2, refN, k.distinctValues + k.distinctValues / 3 + 1,
              k.zipfTheta > 0.0 ? k.zipfTheta * 0.8 : 0.0);
    return h;
}

} // namespace

GeneratedKernel
generateKernel(const GenKnobs &raw)
{
    const GenKnobs knobs = clampKnobs(raw);

    GeneratedKernel out;
    out.knobs = knobs;
    out.name = "gen_" + std::to_string(knobs.seed);

    Module mod(out.name);
    KernelBuilder builder(knobs, mod);
    builder.build();

    const std::string body = ir::moduleToString(mod);
    out.text = directiveHeader(out.name, knobs) + body;

    // The oracle: generated text must parse, verify, and reprint
    // byte-identically. A failure here is a generator bug.
    text::ParseResult parsed = text::parseModule(out.text);
    ccr_assert(parsed.ok(), "generated kernel '", out.name,
               "' does not parse: ",
               text::formatDiagnostics(parsed.errors, out.name));
    const auto diags = ir::verifyModule(*parsed.module);
    ccr_assert(!ir::hasErrors(diags), "generated kernel '", out.name,
               "' fails verification: ",
               ir::formatDiagnostics(diags, out.name));
    ccr_assert(ir::moduleToString(*parsed.module) == body,
               "generated kernel '", out.name,
               "' breaks the print/parse fixpoint");
    return out;
}

GenKnobs
populationKnobs(const GenKnobs &base, std::size_t index)
{
    GenKnobs k = base;
    k.seed = hashCombine(base.seed, static_cast<std::uint64_t>(index));
    Rng rng(hashCombine(k.seed, 0x706f70ULL));

    static const double kThetas[] = {0.0, 0.0, 0.6, 1.0, 1.3, 1.6};
    k.zipfTheta = kThetas[rng.nextBelow(6)];
    k.distinctValues = 4 + rng.nextBelow(61);
    k.valueMax = 255 + static_cast<std::int64_t>(rng.nextBelow(4096));
    k.helpers = 1 + static_cast<int>(rng.nextBelow(4));
    k.callDepth = 1 + static_cast<int>(rng.nextBelow(3));
    k.loopDepth = rng.nextBool(0.2) ? 2 : 1;
    k.regionMin = 4 + static_cast<int>(rng.nextBelow(12));
    k.regionMax =
        k.regionMin + 4 + static_cast<int>(rng.nextBelow(28));
    static const double kAlias[] = {0.0, 0.0, 0.15, 0.4, 0.7};
    k.aliasDensity = kAlias[rng.nextBelow(5)];
    k.constTableProb = 0.25 * static_cast<double>(rng.nextBelow(4));
    k.innerLoopProb = 0.2 + 0.2 * static_cast<double>(rng.nextBelow(3));
    k.floatProb = rng.nextBool(0.3) ? 0.12 : 0.0;

    // Stream length scales down with loop depth and helper count so
    // every kernel stays within a small dynamic-instruction budget.
    const std::uint64_t budget = 150 + rng.nextBelow(350);
    k.streamLen = budget / static_cast<std::uint64_t>(
                      k.loopDepth == 1 ? 1 : 3);
    // A thin, deterministic slice of the population exercises the
    // zero-iteration edge: the driver loop never runs.
    if (index % 43 == 41)
        k.streamLen = 0;
    return k;
}

std::vector<GeneratedKernel>
generatePopulation(const GenKnobs &base, std::size_t count, int jobs)
{
    std::vector<GeneratedKernel> out(count);
    if (jobs <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            out[i] = generateKernel(populationKnobs(base, i));
        return out;
    }
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < count; ++i) {
        pool.submit([&out, &base, i] {
            out[i] = generateKernel(populationKnobs(base, i));
        });
    }
    pool.wait();
    return out;
}

} // namespace ccr::gen
