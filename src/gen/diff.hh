/**
 * @file
 * Differential-testing driver for generated `.lc` kernels.
 *
 * diffTestKernel() pushes one kernel through every verification layer
 * the repo has and cross-checks them against each other:
 *
 *  1. load      — parse + verify + `;!` directive interpretation
 *                 (workloads::buildWorkloadFromText);
 *  2. lockstep  — the pre-decoded engine (emu::Machine) against the
 *                 reference interpreter (emu::ReferenceMachine),
 *                 comparing every ExecInfo field each step plus final
 *                 halt state, instruction counts, output globals, and
 *                 the full memory content hash;
 *  3. lint      — profile-led region formation followed by the static
 *                 region lint and the dynamic replay cross-check;
 *  4. base/CCR  — the untransformed module against the region-formed
 *                 module running with a live CRB, comparing output
 *                 globals and final memory hashes on the ref input
 *                 set, plus CRB counter-algebra invariants
 *                 (hits + misses == queries, machine and CRB event
 *                 counts in agreement);
 *  5. cross-scheme — the same formed module re-run under the dynamic
 *                 trace-memoization scheme (reuse::DynamicTraceMemo):
 *                 any output-global or final-memory-hash divergence
 *                 from the base run flags a reuse soundness bug in
 *                 whichever scheme replayed wrongly, and the DTM
 *                 counter algebra is checked like the CRB's.
 *
 * Each kernel also yields one RegionSample per formed region: the
 * static features the reuse-rate predictor (predict.hh) fits over and
 * the measured per-region query/hit counts it is validated against.
 */

#ifndef CCR_GEN_DIFF_HH
#define CCR_GEN_DIFF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.hh"
#include "gen/gen.hh"
#include "reuse/dtm.hh"
#include "uarch/crb.hh"

namespace ccr::gen
{

/** One formed region's static features + measured reuse behaviour. */
struct RegionSample
{
    std::uint64_t regionId = 0;

    // Static features (predictor inputs).
    int staticInsts = 0;
    bool cyclic = false;
    bool functionLevel = false;
    int liveIns = 0;
    int memStructs = 0;

    /** Natural-loop nesting depth of the region body's entry block
     *  (0 = not in any loop). */
    int loopDepth = 0;

    // Measured behaviour (predictor target).
    std::uint64_t queries = 0;
    std::uint64_t hits = 0;

    double
    hitRate() const
    {
        return queries == 0
                   ? 0.0
                   : static_cast<double>(hits)
                         / static_cast<double>(queries);
    }
};

/** Everything configurable about one differential run. */
struct DiffConfig
{
    core::ReusePolicy policy;
    uarch::CrbParams crb;
    reuse::DtmParams dtm;

    /** Per-run dynamic instruction budget. Generated kernels are
     *  budgeted to a few hundred thousand dynamic instructions; a
     *  kernel hitting this cap fails the stage that hit it. */
    std::uint64_t maxInsts = 20'000'000ULL;

    /** Run the dynamic replay cross-check (lint::crossCheck). */
    bool runCrossCheck = true;

    /** Re-run the formed module under the DTM scheme and compare it
     *  against the base run (stage 5). */
    bool runCrossScheme = true;
};

/** Outcome of one kernel's differential run. */
struct DiffResult
{
    std::string name;

    bool loadOk = false;
    bool lockstepOk = false;
    bool lintOk = false;
    bool crossOk = false;
    bool baseVsCcrOk = false;
    bool countersOk = false;
    bool crossSchemeOk = false;

    /** Human-readable description of the first failure, empty when
     *  ok(). */
    std::string failure;

    /** Dynamic instructions of the base ref-input run. */
    std::uint64_t dynInsts = 0;

    std::size_t regionsFormed = 0;
    std::uint64_t crbQueries = 0;
    std::uint64_t crbHits = 0;
    std::uint64_t crbInvalidates = 0;
    std::uint64_t dtmQueries = 0;
    std::uint64_t dtmHits = 0;

    /** One sample per formed region (measured on the ref input). */
    std::vector<RegionSample> regions;

    bool
    ok() const
    {
        return loadOk && lockstepOk && lintOk && crossOk && baseVsCcrOk
               && countersOk && crossSchemeOk;
    }
};

/** Run the full differential stack on one `.lc` source. @p display
 *  names the kernel in diagnostics. */
DiffResult diffTestSource(const std::string &lc_source,
                          const std::string &display,
                          const DiffConfig &config = {});

/** Convenience overload for generator output. */
DiffResult diffTestKernel(const GeneratedKernel &kernel,
                          const DiffConfig &config = {});

} // namespace ccr::gen

#endif // CCR_GEN_DIFF_HH
