#include "gen/shrink.hh"

#include <vector>

namespace ccr::gen
{

namespace
{

std::vector<std::string>
splitLines(const std::string &s)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < s.size()) {
        const auto nl = s.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(s.substr(start));
            break;
        }
        lines.push_back(s.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

std::string
joinKept(const std::vector<std::string> &lines,
         const std::vector<bool> &keep)
{
    std::string out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (!keep[i])
            continue;
        out += lines[i];
        out += '\n';
    }
    return out;
}

} // namespace

std::string
shrinkSource(const std::string &source,
             const FailurePredicate &still_fails, int max_probes)
{
    if (!still_fails(source))
        return source;

    const std::vector<std::string> lines = splitLines(source);
    std::vector<bool> keep(lines.size(), true);
    std::size_t kept = lines.size();
    int probes = 0;

    // ddmin: drop chunks of `chunk` consecutive kept lines at a time,
    // halving the chunk size whenever a full pass removes nothing.
    std::size_t chunk = kept / 2;
    if (chunk == 0)
        chunk = 1;
    while (probes < max_probes) {
        bool removedAny = false;
        std::size_t i = 0;
        while (i < lines.size() && probes < max_probes) {
            if (!keep[i]) {
                ++i;
                continue;
            }
            // Collect the next `chunk` kept indices starting at i.
            std::vector<std::size_t> idx;
            for (std::size_t j = i; j < lines.size() && idx.size() < chunk;
                 ++j)
                if (keep[j])
                    idx.push_back(j);
            if (idx.empty())
                break;
            for (const auto j : idx)
                keep[j] = false;
            ++probes;
            if (still_fails(joinKept(lines, keep))) {
                kept -= idx.size();
                removedAny = true;
            } else {
                for (const auto j : idx)
                    keep[j] = true;
            }
            i = idx.back() + 1;
        }
        if (!removedAny) {
            if (chunk == 1)
                break;
            chunk = chunk / 2;
        }
    }
    return joinKept(lines, keep);
}

} // namespace ccr::gen
