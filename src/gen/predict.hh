/**
 * @file
 * Static reuse-rate predictor: a least-squares linear model of
 * per-region CRB hit rate from compile-time features only (region
 * size, cyclic flag, live-in count, memory-claim breadth, loop
 * depth), fitted to measured per-region query/hit counts from the
 * generated population and validated on held-out kernels.
 *
 * This is the experiment behind the static reuse-estimation
 * hypothesis (ROADMAP; Razzak et al.): if region hit rates are
 * predictable from static features alone, a compiler could rank
 * candidate regions without a training run. The fit quality (R² and
 * Spearman rank correlation on the holdout) is the reported result —
 * a weak fit is a finding, not a failure.
 */

#ifndef CCR_GEN_PREDICT_HH
#define CCR_GEN_PREDICT_HH

#include <array>
#include <cstddef>
#include <vector>

#include "gen/diff.hh"

namespace ccr::gen
{

/** Feature vector of one region: [1, staticInsts, cyclic, liveIns,
 *  memStructs, loopDepth]. */
constexpr std::size_t kNumFeatures = 6;

/** Extract the predictor features from a region sample. */
std::array<double, kNumFeatures> regionFeatures(const RegionSample &s);

/** A fitted linear model. */
struct Predictor
{
    std::array<double, kNumFeatures> weights{};

    /** Predicted hit rate, clamped to [0, 1]. */
    double predict(const RegionSample &s) const;
};

/** Fit quality on one sample set. */
struct FitReport
{
    std::size_t samples = 0;

    /** Coefficient of determination (1 - SSE/SST; <= 1, can go
     *  negative on a holdout worse than predicting the mean). */
    double r2 = 0.0;

    /** Spearman rank correlation between predicted and measured hit
     *  rates (average-rank ties). */
    double spearman = 0.0;

    /** Mean absolute error in hit-rate units. */
    double meanAbsError = 0.0;
};

/**
 * Fit by ordinary least squares (normal equations with a small ridge
 * term for singular feature sets). Samples with zero queries carry no
 * measurement and are skipped. Requires at least kNumFeatures usable
 * samples; ccr_assert otherwise.
 */
Predictor fitPredictor(const std::vector<RegionSample> &samples);

/** Evaluate @p model on @p samples (zero-query samples skipped). */
FitReport evaluatePredictor(const Predictor &model,
                            const std::vector<RegionSample> &samples);

} // namespace ccr::gen

#endif // CCR_GEN_PREDICT_HH
