#include "gen/predict.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace ccr::gen
{

namespace
{

/** Usable samples: only queried regions carry a measured rate. */
std::vector<const RegionSample *>
usable(const std::vector<RegionSample> &samples)
{
    std::vector<const RegionSample *> out;
    for (const auto &s : samples)
        if (s.queries > 0)
            out.push_back(&s);
    return out;
}

/**
 * Solve the symmetric system A x = b by Gaussian elimination with
 * partial pivoting. A tiny ridge term keeps the system well-posed
 * when a feature is constant across the population (e.g. no cyclic
 * regions formed).
 */
std::array<double, kNumFeatures>
solveNormal(std::array<std::array<double, kNumFeatures>, kNumFeatures> a,
            std::array<double, kNumFeatures> b)
{
    constexpr double kRidge = 1e-6;
    for (std::size_t i = 0; i < kNumFeatures; ++i)
        a[i][i] += kRidge;

    for (std::size_t col = 0; col < kNumFeatures; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < kNumFeatures; ++row)
            if (std::fabs(a[row][col]) > std::fabs(a[pivot][col]))
                pivot = row;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        ccr_assert(std::fabs(a[col][col]) > 0.0,
                   "singular normal equations despite ridge");
        for (std::size_t row = col + 1; row < kNumFeatures; ++row) {
            const double f = a[row][col] / a[col][col];
            for (std::size_t k = col; k < kNumFeatures; ++k)
                a[row][k] -= f * a[col][k];
            b[row] -= f * b[col];
        }
    }
    std::array<double, kNumFeatures> x{};
    for (std::size_t i = kNumFeatures; i-- > 0;) {
        double v = b[i];
        for (std::size_t k = i + 1; k < kNumFeatures; ++k)
            v -= a[i][k] * x[k];
        x[i] = v / a[i][i];
    }
    return x;
}

/** Average ranks (ties share the mean rank). */
std::vector<double>
ranks(const std::vector<double> &values)
{
    const std::size_t n = values.size();
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return values[a] < values[b];
    });
    std::vector<double> rank(n);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && values[order[j + 1]] == values[order[i]])
            ++j;
        const double avg = 0.5 * (static_cast<double>(i)
                                  + static_cast<double>(j));
        for (std::size_t k = i; k <= j; ++k)
            rank[order[k]] = avg;
        i = j + 1;
    }
    return rank;
}

/** Pearson correlation of two equal-length vectors. */
double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    const auto n = static_cast<double>(x.size());
    double mx = 0, my = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= n;
    my /= n;
    double sxy = 0, sxx = 0, syy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace

std::array<double, kNumFeatures>
regionFeatures(const RegionSample &s)
{
    return {1.0,
            static_cast<double>(s.staticInsts),
            s.cyclic ? 1.0 : 0.0,
            static_cast<double>(s.liveIns),
            static_cast<double>(s.memStructs),
            static_cast<double>(s.loopDepth)};
}

double
Predictor::predict(const RegionSample &s) const
{
    const auto f = regionFeatures(s);
    double v = 0.0;
    for (std::size_t i = 0; i < kNumFeatures; ++i)
        v += weights[i] * f[i];
    return std::clamp(v, 0.0, 1.0);
}

Predictor
fitPredictor(const std::vector<RegionSample> &samples)
{
    const auto rows = usable(samples);
    ccr_assert(rows.size() >= kNumFeatures,
               "too few queried regions to fit the predictor: ",
               rows.size());

    std::array<std::array<double, kNumFeatures>, kNumFeatures> ata{};
    std::array<double, kNumFeatures> atb{};
    for (const auto *s : rows) {
        const auto f = regionFeatures(*s);
        const double y = s->hitRate();
        for (std::size_t i = 0; i < kNumFeatures; ++i) {
            atb[i] += f[i] * y;
            for (std::size_t j = 0; j < kNumFeatures; ++j)
                ata[i][j] += f[i] * f[j];
        }
    }
    Predictor p;
    p.weights = solveNormal(ata, atb);
    return p;
}

FitReport
evaluatePredictor(const Predictor &model,
                  const std::vector<RegionSample> &samples)
{
    const auto rows = usable(samples);
    FitReport rep;
    rep.samples = rows.size();
    if (rows.empty())
        return rep;

    std::vector<double> yTrue, yPred;
    yTrue.reserve(rows.size());
    yPred.reserve(rows.size());
    double mean = 0.0;
    for (const auto *s : rows) {
        yTrue.push_back(s->hitRate());
        yPred.push_back(model.predict(*s));
        mean += yTrue.back();
    }
    mean /= static_cast<double>(rows.size());

    double sse = 0.0, sst = 0.0, absErr = 0.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const double e = yTrue[i] - yPred[i];
        sse += e * e;
        absErr += std::fabs(e);
        const double d = yTrue[i] - mean;
        sst += d * d;
    }
    rep.meanAbsError = absErr / static_cast<double>(rows.size());
    rep.r2 = sst == 0.0 ? (sse == 0.0 ? 1.0 : 0.0) : 1.0 - sse / sst;
    rep.spearman = pearson(ranks(yTrue), ranks(yPred));
    return rep;
}

} // namespace ccr::gen
