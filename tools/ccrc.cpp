/**
 * @file
 * ccrc — the .lc workload compiler/runner.
 *
 * Parses a textual Lcode module (see docs/WORKLOADS.md for the
 * grammar), verifies it, and — unless asked to stop earlier — runs
 * the full CCR experiment on it: train-profile, region formation,
 * timed base vs CCR runs, output equivalence check, SimReport.
 *
 *     ccrc <file.lc>                  parse, verify, run, summarize
 *     ccrc <file.lc> --verify-only    parse + verify + directives only
 *     ccrc <file.lc> --print          echo the canonical .lc form
 *     ccrc <file.lc> --optimize       classic-optimized baseline
 *     ccrc <file.lc> --measure ref    measure on the Ref input set
 *     ccrc <file.lc> --report out.json   write the SimReport JSON
 *
 * Exit codes: 0 success, 1 load/verify error or output mismatch,
 * 2 usage error.
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "obs/report.hh"
#include "support/table.hh"
#include "text/parser.hh"
#include "workloads/corpus.hh"
#include "workloads/harness.hh"

namespace
{

using namespace ccr;

int
usage(std::ostream &os)
{
    os << "usage: ccrc <file.lc> [options]\n"
          "  --print            print the canonical form and exit\n"
          "  --verify-only      stop after parse/verify/directives\n"
          "  --optimize         classic-optimize the base and CCR "
          "modules\n"
          "  --profile <set>    profiling input set (train|ref)\n"
          "  --measure <set>    measured input set (train|ref)\n"
          "  --max-insts <n>    emulated instruction cap per run\n"
          "  --report <path>    write the SimReport JSON\n";
    return 2;
}

bool
parseInputSet(const std::string &arg, workloads::InputSet &out)
{
    if (arg == "train")
        out = workloads::InputSet::Train;
    else if (arg == "ref")
        out = workloads::InputSet::Ref;
    else
        return false;
    return true;
}

/** --print: parse and verify the file, then echo the canonical .lc
 *  text the printer emits (a parse/print fixpoint). */
int
printCanonical(const std::string &path)
{
    const text::ParseResult parsed = text::parseModuleFile(path);
    if (!parsed.ok()) {
        std::cerr << text::formatDiagnostics(parsed.errors, path);
        return 1;
    }
    const auto errors = ir::verify(*parsed.module);
    for (const auto &e : errors)
        std::cerr << path << ": verify: " << e << "\n";
    if (!errors.empty())
        return 1;
    std::cout << ir::moduleToString(*parsed.module);
    return 0;
}

int
runExperiment(const std::string &path, const std::string &name,
              const workloads::RunConfig &config,
              const std::string &report_path)
{
    const auto r = workloads::runCcrExperiment(name, config);

    std::cout << "workload '" << name << "' from " << path << "\n";
    std::cout << "base: " << r.base.cycles << " cycles, "
              << r.base.insts << " insts (ipc "
              << Table::fmt(r.base.ipc(), 3) << ")\n";
    std::cout << "ccr:  " << r.ccr.cycles << " cycles, " << r.ccr.insts
              << " insts (ipc " << Table::fmt(r.ccr.ipc(), 3) << ")\n";
    const std::uint64_t queries = r.report.metric("crb.queries");
    const std::uint64_t hits = r.report.metric("crb.hits");
    std::cout << "speedup " << Table::fmt(r.speedup(), 3)
              << "x, insts eliminated "
              << Table::pct(r.instsEliminated()) << ", crb hits "
              << hits << "/" << queries << "\n";
    std::cout << "regions formed: " << r.regions.size() << "\n";
    std::cout << "outputs match: " << (r.outputsMatch ? "yes" : "NO")
              << "\n";

    if (!report_path.empty()) {
        obs::SimReport report;
        report.generator = "ccrc";
        report.runs.push_back(r.report);
        std::string err;
        if (!report.writeJsonFile(report_path, &err)) {
            std::cerr << "ccrc: cannot write report: " << err << "\n";
            return 1;
        }
        std::cerr << "report: 1 run -> " << report_path << " (schema v"
                  << obs::kSchemaVersion << ")\n";
    }
    return r.outputsMatch ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string report_path;
    bool print_only = false;
    bool verify_only = false;
    workloads::RunConfig config;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--print") {
            print_only = true;
        } else if (arg == "--verify-only") {
            verify_only = true;
        } else if (arg == "--optimize") {
            config.optimizeBase = true;
        } else if (arg == "--profile" && i + 1 < argc) {
            if (!parseInputSet(argv[++i], config.profileInput))
                return usage(std::cerr);
        } else if (arg == "--measure" && i + 1 < argc) {
            if (!parseInputSet(argv[++i], config.measureInput))
                return usage(std::cerr);
        } else if (arg == "--max-insts" && i + 1 < argc) {
            config.maxInsts = std::strtoull(argv[++i], nullptr, 10);
            if (config.maxInsts == 0)
                return usage(std::cerr);
        } else if (arg == "--report" && i + 1 < argc) {
            report_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "ccrc: unknown option '" << arg << "'\n";
            return usage(std::cerr);
        } else if (path.empty()) {
            path = arg;
        } else {
            std::cerr << "ccrc: more than one input file\n";
            return usage(std::cerr);
        }
    }
    if (path.empty())
        return usage(std::cerr);

    if (print_only)
        return printCanonical(path);

    std::vector<std::string> errors;
    const auto name = workloads::tryRegisterWorkloadFile(path, errors);
    if (!name) {
        for (const auto &e : errors)
            std::cerr << e << "\n";
        return 1;
    }
    if (verify_only) {
        std::cout << path << ": ok (workload '" << *name << "')\n";
        return 0;
    }
    return runExperiment(path, *name, config, report_path);
}
