/**
 * @file
 * ccrc — the .lc workload compiler/runner.
 *
 * Parses a textual Lcode module (see docs/WORKLOADS.md for the
 * grammar), verifies it, and — unless asked to stop earlier — runs
 * the full CCR experiment on it: train-profile, region formation,
 * timed base vs CCR runs, output equivalence check, SimReport.
 *
 *     ccrc <file.lc>                  parse, verify, run, summarize
 *     ccrc <file.lc> --verify-only    parse + verify + directives only
 *     ccrc <file.lc> --print          echo the canonical .lc form
 *     ccrc <file.lc> --optimize       classic-optimized baseline
 *     ccrc <file.lc> --measure ref    measure on the Ref input set
 *     ccrc <file.lc> --report out.json   write the SimReport JSON
 *
 * Region lint mode (see docs/STATIC_ANALYSIS.md):
 *
 *     ccrc lint <target>...           audit region legality claims
 *     ccrc lint --json out.json ...   machine-readable findings
 *     ccrc lint --run-crosscheck ...  also replay-validate dynamically
 *
 * A lint target is a workload name (built-in or corpus), a corpus
 * `.lc` file (regions are then formed by the standard pipeline and
 * audited), or a `.lc` file containing pre-formed regions — `reuse`
 * instructions plus `;! region` claim directives — which are audited
 * as written.
 *
 * Exit codes: 0 success, 1 load/verify/lint error or output mismatch,
 * 2 usage error.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "lint/crosscheck.hh"
#include "lint/lint.hh"
#include "obs/report.hh"
#include "support/table.hh"
#include "text/parser.hh"
#include "workloads/corpus.hh"
#include "workloads/harness.hh"

namespace
{

using namespace ccr;

int
usage(std::ostream &os)
{
    os << "usage: ccrc <file.lc> [options]\n"
          "  --print            print the canonical form and exit\n"
          "  --verify-only      stop after parse/verify/directives\n"
          "  --optimize         classic-optimize the base and CCR "
          "modules\n"
          "  --profile <set>    profiling input set (train|ref)\n"
          "  --measure <set>    measured input set (train|ref)\n"
          "  --max-insts <n>    emulated instruction cap per run\n"
          "  --report <path>    write the SimReport JSON\n"
          "or: ccrc lint [options] <target>...\n"
          "  <target>           workload name or .lc file\n"
          "  --json <path>      write findings as JSON ('-' = stdout)\n"
          "  --run-crosscheck   replay the workload and validate every\n"
          "                     region execution against the claims\n"
          "  --max-insts <n>    emulated instruction cap per run\n";
    return 2;
}

bool
parseInputSet(const std::string &arg, workloads::InputSet &out)
{
    if (arg == "train")
        out = workloads::InputSet::Train;
    else if (arg == "ref")
        out = workloads::InputSet::Ref;
    else
        return false;
    return true;
}

/** --print: parse and verify the file, then echo the canonical .lc
 *  text the printer emits (a parse/print fixpoint). */
int
printCanonical(const std::string &path)
{
    const text::ParseResult parsed = text::parseModuleFile(path);
    if (!parsed.ok()) {
        std::cerr << text::formatDiagnostics(parsed.errors, path);
        return 1;
    }
    const auto diags = ir::verifyModule(*parsed.module);
    if (!diags.empty())
        std::cerr << ir::formatDiagnostics(diags, path);
    if (ir::hasErrors(diags))
        return 1;
    std::cout << ir::moduleToString(*parsed.module);
    return 0;
}

int
runExperiment(const std::string &path, const std::string &name,
              const workloads::RunConfig &config,
              const std::string &report_path)
{
    const auto r = workloads::runCcrExperiment(name, config);

    std::cout << "workload '" << name << "' from " << path << "\n";
    std::cout << "base: " << r.base.cycles << " cycles, "
              << r.base.insts << " insts (ipc "
              << Table::fmt(r.base.ipc(), 3) << ")\n";
    std::cout << "ccr:  " << r.ccr.cycles << " cycles, " << r.ccr.insts
              << " insts (ipc " << Table::fmt(r.ccr.ipc(), 3) << ")\n";
    const std::uint64_t queries = r.report.metric("crb.queries");
    const std::uint64_t hits = r.report.metric("crb.hits");
    std::cout << "speedup " << Table::fmt(r.speedup(), 3)
              << "x, insts eliminated "
              << Table::pct(r.instsEliminated()) << ", crb hits "
              << hits << "/" << queries << "\n";
    std::cout << "regions formed: " << r.regions.size() << "\n";
    std::cout << "outputs match: " << (r.outputsMatch ? "yes" : "NO")
              << "\n";

    if (!report_path.empty()) {
        obs::SimReport report;
        report.generator = "ccrc";
        report.runs.push_back(r.report);
        std::string err;
        if (!report.writeJsonFile(report_path, &err)) {
            std::cerr << "ccrc: cannot write report: " << err << "\n";
            return 1;
        }
        std::cerr << "report: 1 run -> " << report_path << " (schema v"
                  << obs::kSchemaVersion << ")\n";
    }
    return r.outputsMatch ? 0 : 1;
}

// ----- `ccrc lint` ---------------------------------------------------

/** One lint target's findings. */
struct LintTargetReport
{
    std::string target;
    std::vector<ir::Diagnostic> diagnostics;
    std::uint64_t regions = 0;
    bool crossRan = false;
    std::uint64_t crossInsts = 0;
    std::uint64_t crossEntries = 0;
};

bool
moduleHasReuse(const ir::Module &mod)
{
    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        for (const auto &bb : mod.function(f).blocks()) {
            for (const auto &inst : bb.insts()) {
                if (inst.op == ir::Opcode::Reuse)
                    return true;
            }
        }
    }
    return false;
}

bool
isWorkloadName(const std::string &target)
{
    for (const auto &name : workloads::allWorkloadNames()) {
        if (name == target)
            return true;
    }
    return false;
}

/** Lint a workload by running the standard formation pipeline on it
 *  (profile, form, audit), as the harness would. */
void
lintWorkloadTarget(const std::string &name, bool run_crosscheck,
                   std::uint64_t max_insts, LintTargetReport &out)
{
    const auto r = workloads::lintWorkload(name, core::ReusePolicy{},
                                           run_crosscheck, max_insts);
    out.regions = r.regions.size();
    out.diagnostics = r.lint.diagnostics;
    if (r.ranCrossCheck) {
        out.crossRan = true;
        out.crossInsts = r.cross.instsExecuted;
        out.crossEntries = r.cross.regionEntries;
        out.diagnostics.insert(out.diagnostics.end(),
                               r.cross.diagnostics.begin(),
                               r.cross.diagnostics.end());
    }
}

/** Lint a `.lc` file containing pre-formed regions: audit the module
 *  exactly as written against its `;! region` claim directives. */
void
lintSourceTarget(const std::string &path, text::ParseResult &parsed,
                 bool run_crosscheck, std::uint64_t max_insts,
                 LintTargetReport &out)
{
    const ir::Module &mod = *parsed.module;
    core::RegionTable table =
        lint::regionsFromSource(mod, parsed.pragmas, out.diagnostics);
    out.regions = table.size();

    const auto res = lint::lintModule(mod, table, &parsed.instLocs);
    out.diagnostics.insert(out.diagnostics.end(),
                           res.diagnostics.begin(),
                           res.diagnostics.end());

    if (run_crosscheck && !ir::hasErrors(out.diagnostics)
        && mod.entryFunction() != ir::kNoFunc) {
        emu::Machine machine(mod);
        const auto cross = lint::crossCheck(machine, table, max_insts);
        out.crossRan = true;
        out.crossInsts = cross.instsExecuted;
        out.crossEntries = cross.regionEntries;
        out.diagnostics.insert(out.diagnostics.end(),
                               cross.diagnostics.begin(),
                               cross.diagnostics.end());
    }
    (void)path;
}

LintTargetReport
lintOneTarget(const std::string &target, bool run_crosscheck,
              std::uint64_t max_insts)
{
    LintTargetReport out;
    out.target = target;

    if (isWorkloadName(target)) {
        lintWorkloadTarget(target, run_crosscheck, max_insts, out);
        return out;
    }

    if (!std::ifstream(target).good()) {
        out.diagnostics.push_back(ir::makeError(
            "lint.target",
            "'" + target + "' is neither a workload name nor a "
                           "readable .lc file"));
        return out;
    }

    text::ParseResult parsed = text::parseModuleFile(target);
    out.diagnostics.insert(out.diagnostics.end(),
                           parsed.errors.begin(), parsed.errors.end());
    if (!parsed.ok())
        return out;

    const auto verify_diags = ir::verifyModule(*parsed.module);
    out.diagnostics.insert(out.diagnostics.end(), verify_diags.begin(),
                           verify_diags.end());
    if (ir::hasErrors(verify_diags))
        return out;

    if (moduleHasReuse(*parsed.module)) {
        lintSourceTarget(target, parsed, run_crosscheck, max_insts,
                         out);
        return out;
    }

    // A region-free corpus file: register it as a workload and run
    // the standard formation pipeline on it.
    std::vector<std::string> errors;
    const auto name = workloads::tryRegisterWorkloadFile(target, errors);
    if (!name) {
        for (const auto &e : errors)
            out.diagnostics.push_back(ir::makeError("lint.target", e));
        return out;
    }
    lintWorkloadTarget(*name, run_crosscheck, max_insts, out);
    return out;
}

obs::Json
lintReportJson(const std::vector<LintTargetReport> &reports)
{
    obs::Json arr = obs::Json::array();
    for (const auto &r : reports) {
        obs::Json o = obs::Json::object();
        o["target"] = obs::Json(r.target);
        o["regions"] = obs::Json(r.regions);
        o["errors"] = obs::Json(static_cast<std::uint64_t>(
            ir::countErrors(r.diagnostics)));
        o["diagnostics"] = ir::diagnosticsToJson(r.diagnostics);
        if (r.crossRan) {
            obs::Json c = obs::Json::object();
            c["instsExecuted"] = obs::Json(r.crossInsts);
            c["regionEntries"] = obs::Json(r.crossEntries);
            o["crosscheck"] = std::move(c);
        }
        arr.push(std::move(o));
    }
    return arr;
}

int
runLint(const std::vector<std::string> &args)
{
    std::vector<std::string> targets;
    std::string json_path;
    bool run_crosscheck = false;
    std::uint64_t max_insts = 200'000'000ULL;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--json" && i + 1 < args.size()) {
            json_path = args[++i];
        } else if (arg == "--run-crosscheck") {
            run_crosscheck = true;
        } else if (arg == "--max-insts" && i + 1 < args.size()) {
            max_insts = std::strtoull(args[++i].c_str(), nullptr, 10);
            if (max_insts == 0)
                return usage(std::cerr);
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "ccrc: unknown lint option '" << arg << "'\n";
            return usage(std::cerr);
        } else {
            targets.push_back(arg);
        }
    }
    if (targets.empty())
        return usage(std::cerr);

    std::vector<LintTargetReport> reports;
    std::size_t total_errors = 0;
    for (const auto &target : targets) {
        reports.push_back(
            lintOneTarget(target, run_crosscheck, max_insts));
        const LintTargetReport &r = reports.back();

        std::cerr << ir::formatDiagnostics(r.diagnostics, r.target);
        const std::size_t errs = ir::countErrors(r.diagnostics);
        total_errors += errs;
        std::cout << r.target << ": " << r.regions << " region(s), "
                  << errs << " error(s), "
                  << (r.diagnostics.size() - errs)
                  << " other finding(s)";
        if (r.crossRan) {
            std::cout << "; crosscheck: " << r.crossEntries
                      << " region execution(s) over " << r.crossInsts
                      << " insts";
        }
        std::cout << "\n";
    }

    if (!json_path.empty()) {
        const obs::Json report = lintReportJson(reports);
        if (json_path == "-") {
            std::cout << report.dump(2) << "\n";
        } else {
            std::ofstream os(json_path);
            if (!os) {
                std::cerr << "ccrc: cannot write '" << json_path
                          << "'\n";
                return 1;
            }
            os << report.dump(2) << "\n";
        }
    }
    return total_errors == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::string(argv[1]) == "lint") {
        return runLint(
            std::vector<std::string>(argv + 2, argv + argc));
    }

    std::string path;
    std::string report_path;
    bool print_only = false;
    bool verify_only = false;
    workloads::RunConfig config;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--print") {
            print_only = true;
        } else if (arg == "--verify-only") {
            verify_only = true;
        } else if (arg == "--optimize") {
            config.optimizeBase = true;
        } else if (arg == "--profile" && i + 1 < argc) {
            if (!parseInputSet(argv[++i], config.profileInput))
                return usage(std::cerr);
        } else if (arg == "--measure" && i + 1 < argc) {
            if (!parseInputSet(argv[++i], config.measureInput))
                return usage(std::cerr);
        } else if (arg == "--max-insts" && i + 1 < argc) {
            config.maxInsts = std::strtoull(argv[++i], nullptr, 10);
            if (config.maxInsts == 0)
                return usage(std::cerr);
        } else if (arg == "--report" && i + 1 < argc) {
            report_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "ccrc: unknown option '" << arg << "'\n";
            return usage(std::cerr);
        } else if (path.empty()) {
            path = arg;
        } else {
            std::cerr << "ccrc: more than one input file\n";
            return usage(std::cerr);
        }
    }
    if (path.empty())
        return usage(std::cerr);

    if (print_only)
        return printCanonical(path);

    std::vector<std::string> errors;
    const auto name = workloads::tryRegisterWorkloadFile(path, errors);
    if (!name) {
        for (const auto &e : errors)
            std::cerr << e << "\n";
        return 1;
    }
    if (verify_only) {
        std::cout << path << ": ok (workload '" << *name << "')\n";
        return 0;
    }
    return runExperiment(path, *name, config, report_path);
}
