/**
 * @file
 * `ccrload` — closed-loop load-test bench for `ccrd`.
 *
 * Spawns N connection threads, each driving one TCP connection with
 * back-to-back single-run requests round-robined over
 * (corpus workload x scheme), and reports RPS plus p50/p95/p99
 * latency — overall, per scheme, and as a per-second trajectory —
 * into a BENCH_server.json artifact.
 *
 *   ccrload [--port N | --port-file PATH] [--connections N]
 *           [--duration SECONDS | --requests N]
 *           [--schemes crb,dtm,none] [--tenant NAME]
 *           [--max-insts N] [--inline-every N] [--out PATH]
 *           [--check-admission] [--check-quota N] [--shutdown]
 *
 * --check-admission runs the admission conformance probes (inline
 * accept, preformed-region/lint reject, parse reject, unknown-name
 * reject) and counts **bypasses** — cases where a request that must
 * be rejected produced a run report. The bench exits nonzero on any
 * bypass; CI holds this at zero.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hh"

namespace
{

using ccr::obs::Json;
using ccr::server::Client;

/** Minimal legal workload with high reuse (8 distinct mix() inputs):
 *  the inline-accept probe and the --inline-every mixed load. */
const char *kInlineKernel = R"(;! workload ccrload_inline
;! output out
;! set train n 48
;! set ref n 64

module "ccrload_inline"
entry @"main"
global @"n" [8 bytes]
global @"out" [8 bytes]

func @"mix"(1 params, 6 regs) entry=B0
  B0:
    mul r1, r0, 2654435761
    shr r2, r1, 15
    xor r3, r1, r2
    and r4, r3, 4095
    ret r4

func @"main"(0 params, 10 regs) entry=B0
  B0:
    movga r0, @"n"
    load8 r1, [r0 + 0]
    movi r2, 0
    movi r3, 0
    jump B1
  B1:
    cmplt r4, r2, r1
    br r4, B2, B4
  B2:
    and r5, r2, 7
    call r6, @"mix"(r5) -> B3
  B3:
    add r3, r3, r6
    add r2, r2, 1
    jump B1
  B4:
    movga r7, @"out"
    store8 [r7 + 0], r3
    halt
)";

/** Carries a preformed region whose live-in claim omits r2 — the
 *  admission gate must reject it (preformed + lint findings). */
const char *kPreformedKernel = R"(;! workload ccrload_preformed
;! region 1 livein=r1 liveout=r4

module "ccrload_preformed"
entry @"main"

func @"main"(0 params, 8 regs) entry=B0
  B0:
    movi r1, 5
    movi r2, 7
    jump B1
  B1:
    reuse #1, hit=B3, miss=B2
  B2:
    add r3, r1, r2
    add r4, r3, 1 <live-out>
    jump B3 <region-end>
  B3:
    add r5, r4, 0
    halt
)";

struct Sample
{
    double millis = 0.0;
    int schemeIdx = 0;
    int second = 0; ///< seconds since bench start
    bool ok = false;
};

struct Flags
{
    std::uint16_t port = 0;
    std::string portFile;
    int connections = 4;
    double durationSec = 10.0;
    std::uint64_t requests = 0; ///< 0 = duration-bounded
    std::vector<std::string> schemes = {"crb", "dtm", "none"};
    std::string tenant = "ccrload";
    std::uint64_t maxInsts = 5'000'000ULL;
    std::uint64_t inlineEvery = 0; ///< 0 = never
    std::string out = "BENCH_server.json";
    bool checkAdmission = false;
    std::uint64_t checkQuota = 0;
    bool shutdownAfter = false;
};

[[noreturn]] void
usage()
{
    std::cerr << "usage: ccrload [--port N | --port-file PATH] "
                 "[--connections N]\n"
                 "  [--duration SEC | --requests N] "
                 "[--schemes a,b] [--tenant NAME]\n"
                 "  [--max-insts N] [--inline-every N] "
                 "[--out PATH]\n"
                 "  [--check-admission] [--check-quota N] "
                 "[--shutdown]\n";
    std::exit(2);
}

double
nowSec()
{
    using namespace std::chrono;
    return duration<double>(
               steady_clock::now().time_since_epoch())
        .count();
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        if (comma > start)
            out.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = p * (sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - lo;
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Json
latencySummary(std::vector<double> millis)
{
    std::sort(millis.begin(), millis.end());
    double sum = 0.0;
    for (double m : millis)
        sum += m;
    Json out = Json::object();
    out["requests"] =
        static_cast<std::uint64_t>(millis.size());
    out["meanMs"] =
        millis.empty() ? 0.0 : sum / millis.size();
    out["p50Ms"] = percentile(millis, 0.50);
    out["p95Ms"] = percentile(millis, 0.95);
    out["p99Ms"] = percentile(millis, 0.99);
    return out;
}

Json
makeRunSpec(const Flags &flags, const std::string &workload,
            const std::string &scheme)
{
    Json spec = Json::object();
    spec["workload"] = workload;
    spec["scheme"] = scheme;
    if (flags.maxInsts > 0)
        spec["maxInsts"] = flags.maxInsts;
    return spec;
}

Json
makeRunRequest(const Flags &flags, Json spec)
{
    Json req = Client::makeRequest("run", flags.tenant);
    Json runs = Json::array();
    runs.push(std::move(spec));
    req["runs"] = std::move(runs);
    return req;
}

/** True when the terminal frames contain a successful run report. */
bool
sawRunReport(const std::vector<Json> &frames)
{
    for (const auto &f : frames)
        if (f.at("type").asString() == "run"
            && f.at("run").isObject())
            return true;
    return false;
}

bool
sawRunError(const std::vector<Json> &frames,
            const std::string &reason)
{
    for (const auto &f : frames) {
        const Json &err = f.at("error");
        if (f.at("type").asString() == "run" && err.isObject()
            && err.at("reason").asString() == reason)
            return true;
    }
    return false;
}

/** One admission conformance probe; prints a PASS/BYPASS line and
 *  returns the number of bypasses (0 or 1). */
int
probe(Client &client, const std::string &label,
      const Json &request, bool expect_ok,
      const std::string &expect_reason, Json &details)
{
    auto frames = client.call(request);
    bool ok;
    if (expect_ok)
        ok = sawRunReport(frames);
    else
        ok = !sawRunReport(frames)
             && (expect_reason.empty()
                 || sawRunError(frames, expect_reason));
    std::cout << "ccrload: admission probe " << label << ": "
              << (ok ? "pass" : "BYPASS/FAIL") << "\n";
    details[label] = ok ? "pass" : "bypass";
    return ok ? 0 : 1;
}

int
runAdmissionChecks(const Flags &flags, Json &details)
{
    Client client;
    if (!client.connectTo(flags.port)) {
        std::cerr << "ccrload: cannot connect for admission "
                     "checks\n";
        return 1;
    }
    int bypasses = 0;

    Json inline_spec = Json::object();
    inline_spec["source"] = std::string(kInlineKernel);
    inline_spec["display"] = "ccrload_inline.lc";
    inline_spec["scheme"] = "crb";
    inline_spec["maxInsts"] = flags.maxInsts;
    bypasses += probe(client, "inline-accept",
                      makeRunRequest(flags, inline_spec), true,
                      "", details);

    Json preformed_spec = Json::object();
    preformed_spec["source"] = std::string(kPreformedKernel);
    preformed_spec["display"] = "ccrload_preformed.lc";
    bypasses += probe(client, "lint-reject",
                      makeRunRequest(flags, preformed_spec),
                      false, "server.admission.preformed",
                      details);

    Json parse_spec = Json::object();
    parse_spec["source"] = "this is not an lc module";
    parse_spec["display"] = "garbage.lc";
    bypasses += probe(client, "parse-reject",
                      makeRunRequest(flags, parse_spec), false,
                      "server.admission.parse", details);

    // A name the admission gate never saw must not run, even though
    // the rejected submissions above mentioned names.
    Json unknown_spec = Json::object();
    unknown_spec["workload"] = "ccrload_preformed";
    bypasses += probe(client, "unknown-name-reject",
                      makeRunRequest(flags, unknown_spec), false,
                      "server.admission.workload", details);
    return bypasses;
}

std::uint64_t
runQuotaCheck(const Flags &flags, Json &details)
{
    Client client;
    if (!client.connectTo(flags.port))
        return 0;
    std::uint64_t rejects = 0;
    for (std::uint64_t i = 0; i < flags.checkQuota; ++i) {
        Json req = Client::makeRequest("run", "quota-probe");
        Json runs = Json::array();
        runs.push(makeRunSpec(flags, "crc32",
                              flags.schemes.front()));
        req["runs"] = std::move(runs);
        auto frames = client.call(req);
        for (const auto &f : frames)
            if (f.at("type").asString() == "error"
                && f.at("reason").asString()
                       == "server.quota.exceeded")
                ++rejects;
    }
    std::cout << "ccrload: quota probe: " << rejects << "/"
              << flags.checkQuota << " rejected\n";
    details["quota-rejects"] = rejects;
    return rejects;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--port")
            flags.port =
                static_cast<std::uint16_t>(std::stoi(value()));
        else if (arg == "--port-file")
            flags.portFile = value();
        else if (arg == "--connections")
            flags.connections = std::stoi(value());
        else if (arg == "--duration")
            flags.durationSec = std::stod(value());
        else if (arg == "--requests")
            flags.requests = std::stoull(value());
        else if (arg == "--schemes")
            flags.schemes = splitCommas(value());
        else if (arg == "--tenant")
            flags.tenant = value();
        else if (arg == "--max-insts")
            flags.maxInsts = std::stoull(value());
        else if (arg == "--inline-every")
            flags.inlineEvery = std::stoull(value());
        else if (arg == "--out")
            flags.out = value();
        else if (arg == "--check-admission")
            flags.checkAdmission = true;
        else if (arg == "--check-quota")
            flags.checkQuota = std::stoull(value());
        else if (arg == "--shutdown")
            flags.shutdownAfter = true;
        else if (arg == "--help" || arg == "-h")
            usage();
        else {
            std::cerr << "ccrload: unknown flag " << arg << "\n";
            usage();
        }
    }
    if (flags.port == 0 && !flags.portFile.empty()) {
        std::ifstream in(flags.portFile);
        int port = 0;
        in >> port;
        flags.port = static_cast<std::uint16_t>(port);
    }
    if (flags.port == 0) {
        std::cerr << "ccrload: need --port or --port-file\n";
        return 2;
    }
    if (flags.connections < 1)
        flags.connections = 1;
    if (flags.schemes.empty())
        flags.schemes = {"crb"};

    // Discover the corpus suite from the server.
    std::vector<std::string> workloads;
    {
        Client client;
        if (!client.connectTo(flags.port)) {
            std::cerr << "ccrload: cannot connect to 127.0.0.1:"
                      << flags.port << "\n";
            return 1;
        }
        auto frames = client.call(Client::makeRequest("list"));
        if (frames.empty()
            || frames[0].at("type").asString() != "list") {
            std::cerr << "ccrload: list request failed\n";
            return 1;
        }
        for (const auto &name :
             frames[0].at("workloads").items())
            workloads.push_back(name.asString());
    }
    if (workloads.empty()) {
        std::cerr << "ccrload: server reports no workloads\n";
        return 1;
    }

    std::cout << "ccrload: " << flags.connections
              << " connections, " << workloads.size()
              << " workloads x " << flags.schemes.size()
              << " schemes @ 127.0.0.1:" << flags.port << "\n";

    std::atomic<std::uint64_t> issued{0};
    std::mutex samplesMu;
    std::vector<Sample> samples;
    const double t0 = nowSec();

    auto worker = [&](int worker_id) {
        Client client;
        if (!client.connectTo(flags.port))
            return;
        std::vector<Sample> local;
        for (;;) {
            const std::uint64_t seq =
                issued.fetch_add(1, std::memory_order_relaxed);
            if (flags.requests > 0 && seq >= flags.requests)
                break;
            if (flags.requests == 0
                && nowSec() - t0 >= flags.durationSec)
                break;

            const int scheme_idx = static_cast<int>(
                seq % flags.schemes.size());
            Json spec;
            if (flags.inlineEvery > 0
                && seq % flags.inlineEvery == 0) {
                spec = Json::object();
                spec["source"] = std::string(kInlineKernel);
                spec["display"] = "ccrload_inline.lc";
                spec["scheme"] = flags.schemes[scheme_idx];
                spec["maxInsts"] = flags.maxInsts;
            } else {
                spec = makeRunSpec(
                    flags,
                    workloads[(seq / flags.schemes.size())
                              % workloads.size()],
                    flags.schemes[scheme_idx]);
            }

            const double start = nowSec();
            auto frames =
                client.call(makeRunRequest(flags, spec));
            const double end = nowSec();
            if (frames.empty()) {
                // Transport failure: reconnect and continue.
                if (!client.connectTo(flags.port))
                    break;
                continue;
            }
            Sample s;
            s.millis = (end - start) * 1e3;
            s.schemeIdx = scheme_idx;
            s.second = static_cast<int>(start - t0);
            s.ok = sawRunReport(frames);
            local.push_back(s);
        }
        (void)worker_id;
        std::lock_guard lock(samplesMu);
        samples.insert(samples.end(), local.begin(),
                       local.end());
    };

    std::vector<std::thread> threads;
    for (int c = 0; c < flags.connections; ++c)
        threads.emplace_back(worker, c);
    for (auto &t : threads)
        t.join();
    const double elapsed = nowSec() - t0;

    // -- aggregate ----------------------------------------------------
    std::vector<double> all;
    std::vector<double> okMillis;
    std::vector<std::vector<double>> perScheme(
        flags.schemes.size());
    std::map<int, std::vector<double>> perSecond;
    std::uint64_t okCount = 0;
    for (const auto &s : samples) {
        all.push_back(s.millis);
        perScheme[static_cast<std::size_t>(s.schemeIdx)]
            .push_back(s.millis);
        perSecond[s.second].push_back(s.millis);
        if (s.ok) {
            okMillis.push_back(s.millis);
            ++okCount;
        }
    }

    // -- degenerate-run guards ----------------------------------------
    // A run with zero ok responses, or a duration-bounded run whose
    // wall-clock window collapsed below a second, has empty or
    // near-empty latency buckets: every percentile would read as 0
    // and the RPS figures would be noise. Write the report anyway
    // (it is the debugging artifact) but refuse to bless it.
    std::string degenerate;
    if (samples.empty())
        degenerate = "no responses were collected";
    else if (okCount == 0)
        degenerate = "zero ok responses (all " +
                     std::to_string(samples.size()) +
                     " requests failed)";
    else if (flags.requests == 0 && elapsed < 1.0)
        degenerate = "duration-bounded run lasted only " +
                     std::to_string(elapsed) + "s (< 1s)";

    Json report = Json::object();
    Json schema = Json::object();
    schema["name"] = "ccr.benchserver";
    schema["version"] = 1;
    report["schema"] = std::move(schema);

    Json config = Json::object();
    config["connections"] =
        static_cast<std::uint64_t>(flags.connections);
    config["schemes"] = [&] {
        Json a = Json::array();
        for (const auto &s : flags.schemes)
            a.push(s);
        return a;
    }();
    config["workloads"] =
        static_cast<std::uint64_t>(workloads.size());
    config["maxInsts"] = flags.maxInsts;
    config["tenant"] = flags.tenant;
    report["config"] = std::move(config);

    Json overall = latencySummary(all);
    overall["ok"] = okCount;
    overall["errors"] =
        static_cast<std::uint64_t>(samples.size()) - okCount;
    overall["durationSec"] = elapsed;
    overall["rps"] =
        elapsed > 0.0 ? samples.size() / elapsed : 0.0;
    // Successful run reports only — the acceptance metric; rejects
    // (e.g. a throttling quota) are cheap and would flatter "rps".
    overall["okRps"] =
        elapsed > 0.0 ? okCount / elapsed : 0.0;
    const double rps = overall.at("rps").asDouble();
    const double ok_rps = overall.at("okRps").asDouble();
    report["overall"] = std::move(overall);
    report["okLatency"] = latencySummary(std::move(okMillis));

    Json per_scheme = Json::object();
    for (std::size_t i = 0; i < flags.schemes.size(); ++i)
        per_scheme[flags.schemes[i]] =
            latencySummary(perScheme[i]);
    report["perScheme"] = std::move(per_scheme);

    Json trajectory = Json::array();
    for (auto &[second, millis] : perSecond) {
        Json bucket = latencySummary(std::move(millis));
        bucket["sec"] = static_cast<std::uint64_t>(
            static_cast<unsigned>(second));
        trajectory.push(std::move(bucket));
    }
    report["trajectory"] = std::move(trajectory);

    // -- conformance probes -------------------------------------------
    int bypasses = 0;
    Json admission = Json::object();
    if (flags.checkAdmission)
        bypasses = runAdmissionChecks(flags, admission);
    admission["bypasses"] =
        static_cast<std::uint64_t>(static_cast<unsigned>(
            bypasses < 0 ? 0 : bypasses));
    std::uint64_t quotaRejects = 0;
    if (flags.checkQuota > 0)
        quotaRejects = runQuotaCheck(flags, admission);
    report["admission"] = std::move(admission);

    // -- server-side metrics snapshot ---------------------------------
    {
        Client client;
        if (client.connectTo(flags.port)) {
            auto frames =
                client.call(Client::makeRequest("metrics"));
            if (!frames.empty()
                && frames[0].at("type").asString() == "metrics")
                report["server"] = frames[0].at("metrics");
            if (flags.shutdownAfter)
                client.call(Client::makeRequest("shutdown"));
        }
    }

    if (!degenerate.empty())
        report["degenerate"] = degenerate;
    std::ofstream out(flags.out);
    out << report.dump(2) << "\n";
    if (!degenerate.empty()) {
        std::cerr << "ccrload: degenerate run: " << degenerate
                  << "; the latency and RPS figures in " << flags.out
                  << " are not meaningful\n";
        return 2;
    }
    std::cout << "ccrload: " << samples.size() << " requests in "
              << elapsed << "s (" << rps << " RPS, " << ok_rps
              << " ok-RPS), " << bypasses
              << " admission bypasses, " << quotaRejects
              << " quota rejects -> " << flags.out << "\n";
    return bypasses == 0 ? 0 : 1;
}
