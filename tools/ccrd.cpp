/**
 * @file
 * `ccrd` — the CCR simulation daemon. Binds a loopback TCP port,
 * serves the length-prefixed JSON protocol of server/protocol.hh,
 * and runs until SIGINT/SIGTERM or a client "shutdown" request.
 *
 *   ccrd [--port N] [--port-file PATH] [--shards N] [--jobs N]
 *        [--max-insts-cap N] [--quota-rate R] [--quota-burst B]
 *        [--max-frame-bytes N] [--no-result-cache]
 *        [--no-remote-shutdown] [--seed N]
 *
 * With --port 0 (the default) an ephemeral port is chosen and
 * printed; --port-file additionally writes it to a file so scripts
 * can rendezvous without parsing stdout.
 */

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "server/server.hh"

namespace
{

volatile std::sig_atomic_t g_signaled = 0;

void
onSignal(int)
{
    g_signaled = 1;
}

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--port N] [--port-file PATH] [--shards N] [--jobs N]\n"
           "       [--max-insts-cap N] [--quota-rate R] "
           "[--quota-burst B]\n"
           "       [--max-frame-bytes N] [--no-result-cache]\n"
           "       [--no-remote-shutdown] [--seed N]\n";
    std::exit(2);
}

const char *
argValue(int argc, char **argv, int &i, const char *argv0)
{
    if (i + 1 >= argc)
        usage(argv0);
    return argv[++i];
}

} // namespace

int
main(int argc, char **argv)
{
    ccr::server::ServerOptions options;
    std::string port_file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port")
            options.port = static_cast<std::uint16_t>(
                std::stoi(argValue(argc, argv, i, argv[0])));
        else if (arg == "--port-file")
            port_file = argValue(argc, argv, i, argv[0]);
        else if (arg == "--shards")
            options.shards =
                std::stoi(argValue(argc, argv, i, argv[0]));
        else if (arg == "--jobs")
            options.jobsPerShard =
                std::stoi(argValue(argc, argv, i, argv[0]));
        else if (arg == "--max-insts-cap")
            options.limits.maxInstsCap =
                std::stoull(argValue(argc, argv, i, argv[0]));
        else if (arg == "--quota-rate")
            options.limits.quotaRatePerSec =
                std::stod(argValue(argc, argv, i, argv[0]));
        else if (arg == "--quota-burst")
            options.limits.quotaBurst =
                std::stod(argValue(argc, argv, i, argv[0]));
        else if (arg == "--max-frame-bytes")
            options.maxFrameBytes =
                std::stoull(argValue(argc, argv, i, argv[0]));
        else if (arg == "--no-result-cache")
            options.resultCache = false;
        else if (arg == "--no-remote-shutdown")
            options.allowRemoteShutdown = false;
        else if (arg == "--seed")
            options.seed =
                std::stoull(argValue(argc, argv, i, argv[0]));
        else if (arg == "--help" || arg == "-h")
            usage(argv[0]);
        else {
            std::cerr << "ccrd: unknown flag " << arg << "\n";
            usage(argv[0]);
        }
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    ccr::server::Server server(options);
    const std::uint16_t port = server.start();
    std::cout << "ccrd: listening on 127.0.0.1:" << port
              << std::endl;
    if (!port_file.empty()) {
        std::ofstream out(port_file);
        out << port << "\n";
    }

    while (!g_signaled && !server.shutdownRequested())
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));

    std::cout << "ccrd: shutting down" << std::endl;
    server.stop();
    return 0;
}
