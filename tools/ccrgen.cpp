/**
 * @file
 * ccrgen — generative workload engine driver.
 *
 * Subcommands:
 *
 *     ccrgen gen [options]            emit generated kernels as .lc
 *       --seed <u64>                  population master seed (1)
 *       --count <n>                   kernels to generate (1)
 *       --index <i>                   emit only population member i
 *       --out <dir>                   write <name>.lc files ('-' =
 *                                     print to stdout, default)
 *
 *     ccrgen sweep [options]          differential-test a population
 *       --seed <u64>                  population master seed (1)
 *       --count <n>                   population size (200)
 *       --jobs <n>                    worker threads (1)
 *       --bench <path>                write the BENCH_gen.json
 *                                     artifact (fit report included)
 *       --repro-dir <dir>             write shrunken .lc repros for
 *                                     any failing kernel
 *       --max-insts <n>               per-run instruction cap
 *
 *     ccrgen shrink <file.lc>         minimize a failing kernel
 *       --out <path>                  where to write the repro
 *
 * The sweep runs every kernel through decoded-vs-reference lockstep,
 * region lint + dynamic cross-check, and base-vs-CCR differential
 * execution, then fits the static reuse-rate predictor on the
 * even-indexed kernels' regions and validates it on the odd-indexed
 * holdout (see docs/GENERATOR.md).
 *
 * Exit codes: 0 success, 1 any kernel failed (sweep) / the input does
 * not fail (shrink), 2 usage error.
 */

#include <charconv>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/diff.hh"
#include "gen/gen.hh"
#include "gen/predict.hh"
#include "gen/shrink.hh"
#include "obs/json.hh"
#include "support/thread_pool.hh"

namespace
{

using namespace ccr;

int
usage(std::ostream &os)
{
    os << "usage: ccrgen gen [--seed S] [--count N] [--index I] "
          "[--out DIR|-]\n"
          "   or: ccrgen sweep [--seed S] [--count N] [--jobs J]\n"
          "              [--bench PATH] [--repro-dir DIR] "
          "[--max-insts N]\n"
          "   or: ccrgen shrink <file.lc> [--out PATH]\n";
    return 2;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    const auto *first = s.data();
    const auto *last = s.data() + s.size();
    const auto r = std::from_chars(first, last, out);
    return r.ec == std::errc{} && r.ptr == last;
}

/** Pull the value of --flag; false on missing value. */
bool
takeValue(const std::vector<std::string> &args, std::size_t &i,
          std::string &out)
{
    if (i + 1 >= args.size())
        return false;
    out = args[++i];
    return true;
}

bool
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    os << contents;
    return static_cast<bool>(os);
}

int
cmdGen(const std::vector<std::string> &args)
{
    gen::GenKnobs base;
    std::uint64_t count = 1;
    std::int64_t index = -1;
    std::string out = "-";
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string v;
        if (args[i] == "--seed" && takeValue(args, i, v)) {
            if (!parseU64(v, base.seed))
                return usage(std::cerr);
        } else if (args[i] == "--count" && takeValue(args, i, v)) {
            if (!parseU64(v, count))
                return usage(std::cerr);
        } else if (args[i] == "--index" && takeValue(args, i, v)) {
            std::uint64_t u = 0;
            if (!parseU64(v, u))
                return usage(std::cerr);
            index = static_cast<std::int64_t>(u);
        } else if (args[i] == "--out" && takeValue(args, i, v)) {
            out = v;
        } else {
            return usage(std::cerr);
        }
    }

    std::vector<gen::GeneratedKernel> kernels;
    if (index >= 0) {
        kernels.push_back(gen::generateKernel(gen::populationKnobs(
            base, static_cast<std::size_t>(index))));
    } else {
        kernels = gen::generatePopulation(
            base, static_cast<std::size_t>(count));
    }

    if (out == "-") {
        for (const auto &k : kernels)
            std::cout << k.text;
        return 0;
    }
    std::filesystem::create_directories(out);
    for (const auto &k : kernels) {
        const auto path =
            (std::filesystem::path(out) / (k.name + ".lc")).string();
        if (!writeFile(path, k.text)) {
            std::cerr << "ccrgen: cannot write " << path << "\n";
            return 1;
        }
    }
    std::cout << "wrote " << kernels.size() << " kernel(s) to " << out
              << "\n";
    return 0;
}

/** The stage a differential run failed at ("" when it passed). A
 *  shrink candidate must fail at the SAME stage as the original —
 *  otherwise ddmin degenerates to "any unparseable fragment". */
std::string
failureStage(const gen::DiffResult &r)
{
    if (r.ok())
        return "";
    if (!r.loadOk)
        return "load";
    if (!r.lockstepOk)
        return "lockstep";
    if (!r.lintOk)
        return "lint";
    if (!r.crossOk)
        return "crosscheck";
    if (!r.baseVsCcrOk)
        return "base-vs-ccr";
    if (!r.countersOk)
        return "counters";
    return "cross-scheme";
}

/** Failure message with digits removed, so diagnostics that embed
 *  line/col positions still compare equal after lines are deleted. */
std::string
normalizedFailure(const gen::DiffResult &r)
{
    std::string s;
    for (const char c : r.failure)
        if (c < '0' || c > '9')
            s += c;
    return s;
}

/** The message to pin when shrinking a load-stage failure: the
 *  original source's diagnostic re-derived under the display name
 *  every shrink candidate runs with ("" for other stages). Deriving
 *  it from the user-facing run would pin the file path the parser
 *  embeds in its diagnostics, which no candidate can ever match. */
std::string
pinnedLoadFailure(const std::string &source, const std::string &stage,
                  const gen::DiffConfig &config)
{
    if (stage != "load")
        return {};
    return normalizedFailure(
        gen::diffTestSource(source, "shrink-candidate", config));
}

/** True when @p source reproduces the original failure. Every stage
 *  is pinned; load failures additionally pin the diagnostic text —
 *  otherwise ANY unloadable fragment (including the empty file)
 *  "reproduces" a load failure and ddmin shrinks to nothing. Deeper
 *  stages can't pin the message: it embeds counts and hashes that
 *  legitimately change as the kernel shrinks. */
bool
reproducesFailure(const std::string &source, const std::string &stage,
                  const std::string &load_failure,
                  const gen::DiffConfig &config)
{
    const auto r = gen::diffTestSource(source, "shrink-candidate", config);
    if (failureStage(r) != stage)
        return false;
    return stage != "load" || normalizedFailure(r) == load_failure;
}

int
cmdSweep(const std::vector<std::string> &args)
{
    gen::GenKnobs base;
    std::uint64_t count = 200;
    std::uint64_t jobs = 1;
    std::string benchPath, reproDir;
    gen::DiffConfig config;
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string v;
        if (args[i] == "--seed" && takeValue(args, i, v)) {
            if (!parseU64(v, base.seed))
                return usage(std::cerr);
        } else if (args[i] == "--count" && takeValue(args, i, v)) {
            if (!parseU64(v, count))
                return usage(std::cerr);
        } else if (args[i] == "--jobs" && takeValue(args, i, v)) {
            if (!parseU64(v, jobs) || jobs == 0)
                return usage(std::cerr);
        } else if (args[i] == "--bench" && takeValue(args, i, v)) {
            benchPath = v;
        } else if (args[i] == "--repro-dir" && takeValue(args, i, v)) {
            reproDir = v;
        } else if (args[i] == "--max-insts" && takeValue(args, i, v)) {
            if (!parseU64(v, config.maxInsts))
                return usage(std::cerr);
        } else {
            return usage(std::cerr);
        }
    }

    const auto kernels = gen::generatePopulation(
        base, static_cast<std::size_t>(count), static_cast<int>(jobs));

    // Differential-test the population. Results commit by index, so
    // the sweep is deterministic for any worker count.
    std::vector<gen::DiffResult> results(kernels.size());
    {
        ThreadPool pool(static_cast<int>(jobs));
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            pool.submit([&kernels, &results, &config, i] {
                results[i] = gen::diffTestKernel(kernels[i], config);
            });
        }
        pool.wait();
    }

    // Tally + collect predictor samples (train/holdout split by kernel
    // index parity).
    std::size_t failures = 0;
    std::uint64_t totalInsts = 0, totalQueries = 0, totalHits = 0;
    std::uint64_t totalDtmQueries = 0, totalDtmHits = 0;
    std::size_t totalRegions = 0, kernelsWithRegions = 0;
    std::vector<gen::RegionSample> trainSamples, holdoutSamples;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        if (!r.ok()) {
            ++failures;
            std::cerr << "FAIL " << r.name << ": " << r.failure << "\n";
            if (!reproDir.empty()) {
                std::filesystem::create_directories(reproDir);
                const std::string stage = failureStage(r);
                const std::string loadMsg = pinnedLoadFailure(
                    kernels[i].text, stage, config);
                const std::string shrunk = gen::shrinkSource(
                    kernels[i].text,
                    [&config, &stage, &loadMsg](const std::string &s) {
                        return reproducesFailure(s, stage, loadMsg,
                                                 config);
                    });
                const auto path = (std::filesystem::path(reproDir)
                                   / (r.name + "_repro.lc"))
                                      .string();
                writeFile(path, shrunk);
                std::cerr << "  repro: " << path << "\n";
            }
            continue;
        }
        totalInsts += r.dynInsts;
        totalQueries += r.crbQueries;
        totalHits += r.crbHits;
        totalDtmQueries += r.dtmQueries;
        totalDtmHits += r.dtmHits;
        totalRegions += r.regionsFormed;
        if (r.regionsFormed > 0)
            ++kernelsWithRegions;
        auto &bucket = i % 2 == 0 ? trainSamples : holdoutSamples;
        bucket.insert(bucket.end(), r.regions.begin(), r.regions.end());
    }

    std::cout << "sweep: " << results.size() - failures << "/"
              << results.size() << " kernels passed, " << totalRegions
              << " regions formed across " << kernelsWithRegions
              << " kernels, " << totalHits << "/" << totalQueries
              << " CRB hits/queries, " << totalDtmHits << "/"
              << totalDtmQueries << " DTM hits/queries\n";

    // Fit + validate the static reuse-rate predictor.
    obs::Json bench = obs::Json::object();
    bench["seed"] = obs::Json(base.seed);
    bench["kernels"] = obs::Json(
        static_cast<std::uint64_t>(results.size()));
    bench["failures"] = obs::Json(static_cast<std::uint64_t>(failures));
    bench["regions"] = obs::Json(
        static_cast<std::uint64_t>(totalRegions));
    bench["dynInsts"] = obs::Json(totalInsts);
    bench["crbQueries"] = obs::Json(totalQueries);
    bench["crbHits"] = obs::Json(totalHits);
    bench["dtmQueries"] = obs::Json(totalDtmQueries);
    bench["dtmHits"] = obs::Json(totalDtmHits);

    const auto queried = [](const std::vector<gen::RegionSample> &v) {
        std::size_t n = 0;
        for (const auto &s : v)
            if (s.queries > 0)
                ++n;
        return n;
    };
    const std::size_t trainable = queried(trainSamples);
    bench["predictor"] = obs::Json::object();
    obs::Json &pj = bench["predictor"];
    pj["trainSamples"] = obs::Json(
        static_cast<std::uint64_t>(trainable));
    pj["holdoutSamples"] = obs::Json(
        static_cast<std::uint64_t>(queried(holdoutSamples)));
    if (trainable >= gen::kNumFeatures) {
        const gen::Predictor model = gen::fitPredictor(trainSamples);
        const gen::FitReport fitTrain =
            gen::evaluatePredictor(model, trainSamples);
        const gen::FitReport fitHoldout =
            gen::evaluatePredictor(model, holdoutSamples);
        obs::Json weights = obs::Json::array();
        for (const double w : model.weights)
            weights.push(obs::Json(w));
        pj["weights"] = std::move(weights);
        pj["features"] = obs::Json(
            "intercept,staticInsts,cyclic,liveIns,memStructs,loopDepth");
        pj["trainR2"] = obs::Json(fitTrain.r2);
        pj["trainSpearman"] = obs::Json(fitTrain.spearman);
        pj["holdoutR2"] = obs::Json(fitHoldout.r2);
        pj["holdoutSpearman"] = obs::Json(fitHoldout.spearman);
        pj["holdoutMeanAbsError"] = obs::Json(fitHoldout.meanAbsError);
        std::cout << "predictor: train R2 " << fitTrain.r2
                  << ", holdout R2 " << fitHoldout.r2
                  << ", holdout Spearman " << fitHoldout.spearman
                  << " (" << trainable << " train / "
                  << queried(holdoutSamples) << " holdout regions)\n";
    } else {
        pj["skipped"] = obs::Json(
            "too few queried regions to fit the predictor");
    }

    if (!benchPath.empty()) {
        std::ofstream os(benchPath, std::ios::binary);
        if (!os) {
            std::cerr << "ccrgen: cannot write " << benchPath << "\n";
            return 1;
        }
        bench.dump(os, 2);
        os << "\n";
    }
    return failures == 0 ? 0 : 1;
}

int
cmdShrink(const std::vector<std::string> &args)
{
    std::string file, out;
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string v;
        if (args[i] == "--out" && takeValue(args, i, v))
            out = v;
        else if (!args[i].empty() && args[i][0] != '-' && file.empty())
            file = args[i];
        else
            return usage(std::cerr);
    }
    if (file.empty())
        return usage(std::cerr);

    std::ifstream is(file, std::ios::binary);
    if (!is) {
        std::cerr << "ccrgen: cannot read " << file << "\n";
        return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string source = buf.str();

    const gen::DiffConfig config;
    const auto original = gen::diffTestSource(source, file, config);
    const std::string stage = failureStage(original);
    if (stage.empty()) {
        std::cerr << "ccrgen: " << file
                  << " passes the differential stack; nothing to "
                     "shrink\n";
        return 1;
    }
    std::cerr << "shrinking " << file << " (stage: " << stage << ")\n";
    const std::string loadMsg = pinnedLoadFailure(source, stage, config);
    const std::string shrunk = gen::shrinkSource(
        source, [&config, &stage, &loadMsg](const std::string &s) {
            return reproducesFailure(s, stage, loadMsg, config);
        });
    if (out.empty()) {
        std::cout << shrunk;
        return 0;
    }
    if (!writeFile(out, shrunk)) {
        std::cerr << "ccrgen: cannot write " << out << "\n";
        return 1;
    }
    const auto lines = [](const std::string &s) {
        return std::count(s.begin(), s.end(), '\n');
    };
    std::cout << "shrunk " << lines(source) << " -> " << lines(shrunk)
              << " lines: " << out << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage(std::cerr);
    const std::string cmd = args.front();
    args.erase(args.begin());
    if (cmd == "gen")
        return cmdGen(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "shrink")
        return cmdShrink(args);
    return usage(std::cerr);
}
