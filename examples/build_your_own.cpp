/**
 * @file
 * Library walkthrough: build a program with the IRBuilder, run every
 * stage of the CCR toolchain by hand, and inspect what each produced.
 *
 * The program models the paper's Figure 1: a function summing a
 * rarely-changing array inside a loop, invoked repeatedly — the
 * classic computation the CCR approach memoizes as a cyclic
 * memory-dependent region.
 */

#include <iostream>

#include "analysis/alias.hh"
#include "core/former.hh"
#include "emu/machine.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "profile/value_profiler.hh"
#include "uarch/crb.hh"
#include "uarch/pipeline.hh"

using namespace ccr;
using namespace ccr::ir;

namespace
{

constexpr int kArrayLen = 24;
constexpr int kInvocations = 400;

/** sum_array(): for (i = 0; i < N; i++) sum += A[i]; return sum. */
void
buildSumArray(Module &mod, GlobalId array)
{
    Function &f = mod.addFunction("sum_array", 0);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId done = b.newBlock();
    const Reg i = b.reg();
    const Reg sum = b.reg();

    b.setInsertPoint(entry);
    const Reg base = b.movGA(array);
    b.movITo(i, 0);
    b.movITo(sum, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLtI(i, kArrayLen);
    b.br(more, body, done);

    b.setInsertPoint(body);
    const Reg v = b.load(b.add(base, b.shlI(i, 3)), 0);
    b.binOpTo(sum, Opcode::Add, sum, v);
    b.binOpITo(i, Opcode::Add, i, 1);
    b.jump(header);

    b.setInsertPoint(done);
    b.ret(sum);
}

void
buildMain(Module &mod, GlobalId array, GlobalId out)
{
    Function &f = mod.addFunction("main", 0);
    IRBuilder b(f);
    const BlockId entry = b.newBlock();
    const BlockId header = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId cont = b.newBlock();
    const BlockId rare = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId exit = b.newBlock();
    const Reg t = b.reg();
    const Reg acc = b.reg();

    b.setInsertPoint(entry);
    b.movITo(t, 0);
    b.movITo(acc, 0);
    b.jump(header);

    b.setInsertPoint(header);
    const Reg more = b.cmpLtI(t, kInvocations);
    b.br(more, body, exit);

    b.setInsertPoint(body);
    const Reg sum = b.call(mod.findFunction("sum_array")->id(), {},
                           cont);

    b.setInsertPoint(cont);
    b.binOpTo(acc, Opcode::Add, acc, sum);
    // Every 64th invocation mutates one element (invalidation point).
    const Reg mut = b.cmpEqI(b.andI(t, 63), 63);
    b.br(mut, rare, latch);

    b.setInsertPoint(rare);
    const Reg base = b.movGA(array);
    const Reg idx = b.shlI(b.andI(t, kArrayLen - 1), 3);
    b.store(b.add(base, idx), 0, t);
    b.jump(latch);

    b.setInsertPoint(latch);
    b.binOpITo(t, Opcode::Add, t, 1);
    b.jump(header);

    b.setInsertPoint(exit);
    b.store(b.movGA(out), 0, acc);
    b.halt();
}

} // namespace

int
main()
{
    // -- 1. Build the module through the public IR API -----------------
    Module mod("figure1");
    const GlobalId array = mod.addGlobal("A", kArrayLen * 8).id;
    const GlobalId out = mod.addGlobal("out", 8).id;
    buildSumArray(mod, array);
    buildMain(mod, array, out);
    mod.setEntryFunction(mod.findFunction("main")->id());
    verifyOrDie(mod);

    std::cout << "== module before CCR ==\n"
              << moduleToString(mod) << "\n";

    auto prepare = [&](emu::Machine &machine) {
        for (int k = 0; k < kArrayLen; ++k) {
            machine.memory().write(machine.globalAddr(array) + 8 * k,
                                   MemSize::Dword, 100 + k);
        }
    };

    // -- 2. Baseline timing --------------------------------------------
    uarch::TimingResult base;
    ir::Value base_out = 0;
    {
        emu::Machine machine(mod);
        prepare(machine);
        uarch::Pipeline pipe;
        base = pipe.run(machine);
        base_out = machine.memory().read(machine.globalAddr(out),
                                         MemSize::Dword, false);
    }

    // -- 3. Value profiling (RPS) ---------------------------------------
    profile::ProfileData prof;
    {
        emu::Machine machine(mod);
        prepare(machine);
        profile::ValueProfiler profiler(machine);
        machine.addObserver(&profiler);
        machine.run();
        prof = profiler.takeProfile();
    }
    const auto *lp = prof.loopProfile(
        mod.findFunction("sum_array")->id(), 1);
    if (lp) {
        std::cout << "sum_array loop profile: " << lp->invocations
                  << " invocations, reuse fraction "
                  << lp->reuseFraction() << "\n";
    }

    // -- 4. Region formation --------------------------------------------
    analysis::AliasAnalysis alias(mod);
    alias.annotateDeterminableLoads(mod);
    core::RegionFormer former(mod, prof, alias, {});
    const auto regions = former.formAll();

    std::cout << "\nformed " << regions.size() << " region(s):\n";
    for (const auto &r : regions.regions()) {
        std::cout << "  region #" << r.id << " "
                  << (r.cyclic ? "cyclic" : "acyclic") << " group "
                  << r.group() << ", " << r.staticInsts
                  << " static insts, " << r.liveIns.size()
                  << " live-in, " << r.liveOuts.size() << " live-out\n";
    }
    std::cout << "invalidations placed: "
              << former.stats().invalidationsPlaced << "\n";

    std::cout << "\n== module after CCR ==\n"
              << moduleToString(mod) << "\n";

    // -- 5. Timed run with the CRB (behind the scheme interface) ---------
    emu::Machine machine(mod);
    prepare(machine);
    const auto crb = uarch::makeCrbScheme(uarch::CrbParams{});
    uarch::Pipeline pipe;
    pipe.setScheme(crb.get());
    const auto ccr = pipe.run(machine);
    const auto ccr_out = machine.memory().read(
        machine.globalAddr(out), MemSize::Dword, false);

    std::cout << "base: " << base.cycles << " cycles, ccr: "
              << ccr.cycles << " cycles, speedup "
              << static_cast<double>(base.cycles)
                     / static_cast<double>(ccr.cycles)
              << "x\n";
    std::cout << "reuse hits " << crb->metrics().get("crb.hits")
              << ", misses " << crb->metrics().get("crb.misses")
              << ", invalidates "
              << crb->metrics().get("crb.invalidates") << "\n";
    std::cout << "outputs match: "
              << (base_out == ccr_out ? "yes" : "NO") << "\n";
    return base_out == ccr_out ? 0 : 1;
}
