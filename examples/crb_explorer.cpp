/**
 * @file
 * CRB design-space explorer: sweep entries x instances for one
 * workload and print the speedup grid plus hit rates — the quickest
 * way to see how a workload's input working set interacts with the
 * buffer geometry. The 15-point grid runs on the parallel experiment
 * driver, so the module build, training profile, and base timed run
 * are shared across all points.
 *
 * Usage: crb_explorer [workload-name] [--jobs N] [--report out.json]
 */

#include <cstdlib>
#include <iostream>

#include "obs/report.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "workloads/driver.hh"

int
main(int argc, char **argv)
{
    using namespace ccr;

    setVerbose(false);
    std::string name = "pgpencode";
    workloads::DriverOptions opts;
    if (const char *env = std::getenv("CCR_REPORT"); env && *env)
        opts.reportPath = env;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
            opts.jobs = std::atoi(argv[++i]);
            if (opts.jobs < 1)
                ccr_fatal("bad --jobs value '", argv[i], "'");
        } else if (arg == "--report" && i + 1 < argc) {
            opts.reportPath = argv[++i];
        } else {
            name = arg;
        }
    }

    const std::vector<int> entries{8, 32, 128};
    const std::vector<int> instances{1, 2, 4, 8, 16};

    std::cout << "== CRB design space for " << name << " ==\n\n";

    workloads::RunPlan plan;
    for (const auto e : entries) {
        for (const auto ci : instances) {
            workloads::RunConfig config;
            config.crb.entries = e;
            config.crb.instances = ci;
            plan.add(name, config);
        }
    }
    if (opts.scheme)
        plan.setScheme(*opts.scheme);
    const auto results = workloads::runPlan(plan, opts);

    Table speedups("speedup (rows: entries, cols: instances)");
    Table hits("CRB hit rate");
    std::vector<std::string> header{"entries\\CIs"};
    for (const auto ci : instances)
        header.push_back(std::to_string(ci));
    speedups.setHeader(header);
    hits.setHeader(header);

    std::size_t next = 0;
    for (const auto e : entries) {
        std::vector<std::string> srow{std::to_string(e)};
        std::vector<std::string> hrow{std::to_string(e)};
        for (std::size_t i = 0; i < instances.size(); ++i) {
            const auto &r = results[next++];
            srow.push_back(Table::fmt(r.speedup(), 3));
            hrow.push_back(Table::pct(
                r.report.derived.at("crbHitRate").asDouble(), 0));
        }
        speedups.addRow(srow);
        hits.addRow(hrow);
    }

    if (!opts.reportPath.empty()) {
        std::string err;
        const auto report = workloads::buildSimReport(plan, results);
        if (!report.writeJsonFile(opts.reportPath, &err))
            ccr_fatal("cannot write SimReport: ", err);
        std::cerr << "report: " << report.runs.size() << " runs -> "
                  << opts.reportPath << "\n";
    }

    speedups.print(std::cout);
    std::cout << "\n";
    hits.print(std::cout);
    std::cout << "\nReading the grid: a working set wider than the CI "
                 "count caps the hit rate\n(the Figure 8(a) effect); "
                 "entry-count limits only bite when the program\nhas "
                 "more hot regions than entries (the Figure 8(b) "
                 "effect).\n";
    return 0;
}
