/**
 * @file
 * Quickstart: the complete CCR flow on one benchmark.
 *
 *   1. Build the `espresso` workload (an IR program).
 *   2. Profile a training run with the Reuse Profiling System.
 *   3. Run compiler region formation (cyclic + acyclic RCRs).
 *   4. Simulate the base machine and the CCR machine (with a 128-entry
 *      8-CI Computation Reuse Buffer) and compare.
 *
 * Usage: quickstart [workload-name]
 */

#include <iostream>

#include "support/table.hh"
#include "workloads/harness.hh"

int
main(int argc, char **argv)
{
    using namespace ccr;

    const std::string name = argc > 1 ? argv[1] : "espresso";

    workloads::RunConfig config;
    config.crb.entries = 128;
    config.crb.instances = 8;

    std::cout << "== CCR quickstart: " << name << " ==\n";
    const auto result = workloads::runCcrExperiment(name, config);

    std::cout << "\nFormed regions (" << result.regions.size()
              << " total):\n";
    Table regions("regions");
    regions.setHeader({"id", "kind", "group", "insts", "live-in",
                       "live-out", "mem structs", "weight"});
    for (const auto &r : result.regions.regions()) {
        regions.addRow({std::to_string(r.id),
                        r.cyclic ? "cyclic" : "acyclic", r.group(),
                        std::to_string(r.staticInsts),
                        std::to_string(r.liveIns.size()),
                        std::to_string(r.liveOuts.size()),
                        std::to_string(r.memStructs.size()),
                        std::to_string(r.profileWeight)});
    }
    regions.print(std::cout);

    std::cout << "\nTiming:\n";
    Table t("results");
    t.setHeader({"run", "cycles", "insts", "IPC", "reuse hits",
                 "reuse misses"});
    t.addRow({"base", std::to_string(result.base.cycles),
              std::to_string(result.base.insts),
              Table::fmt(result.base.ipc(), 3), "-", "-"});
    t.addRow({"ccr", std::to_string(result.ccr.cycles),
              std::to_string(result.ccr.insts),
              Table::fmt(result.ccr.ipc(), 3),
              std::to_string(result.report.metric("ccr.reuse.hits")),
              std::to_string(result.report.metric("ccr.reuse.misses"))});
    t.print(std::cout);

    std::cout << "\nspeedup:             "
              << Table::fmt(result.speedup(), 3) << "x\n";
    std::cout << "insts eliminated:    "
              << Table::pct(result.instsEliminated()) << "\n";
    std::cout << "outputs match:       "
              << (result.outputsMatch ? "yes" : "NO — BUG") << "\n";

    return result.outputsMatch ? 0 : 1;
}
