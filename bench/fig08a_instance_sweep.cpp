/**
 * @file
 * Figure 8(a) reproduction: speedup of the CCR machine over the base
 * machine for a 128-entry CRB with 4, 8, and 16 computation instances
 * per entry. The paper reports average speedups of 1.20 / 1.25 / 1.30
 * and calls out pgpencode as the benchmark most sensitive to the CI
 * count. Also prints the §5.2 scalar: the average fraction of dynamic
 * instructions eliminated.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace ccr;
    using namespace ccr::bench;

    setVerbose(false);
    const auto opts = parseDriverOptions(argc, argv);
    figureHeader("Figure 8(a)",
                 "speedup vs computation instances per entry "
                 "(128-entry CRB)");

    const std::vector<int> instance_counts{4, 8, 16};

    workloads::RunPlan plan;
    for (const auto &name : benchmarks()) {
        for (const auto ci : instance_counts) {
            workloads::RunConfig config;
            config.crb.entries = 128;
            config.crb.instances = ci;
            plan.add(name, config);
        }
    }
    const auto results = runPlanTimed(plan, opts);

    Table t("performance speedup");
    t.setHeader({"benchmark", "128e/4ci", "128e/8ci", "128e/16ci"});

    std::map<int, std::vector<double>> speedups;
    std::vector<double> eliminated;

    std::size_t next = 0;
    for (const auto &name : benchmarks()) {
        std::vector<std::string> row{name};
        for (const auto ci : instance_counts) {
            const auto &r = results[next++];
            speedups[ci].push_back(r.speedup());
            row.push_back(Table::fmt(r.speedup(), 3));
            if (ci == 8)
                eliminated.push_back(r.instsEliminated());
        }
        t.addRow(row);
    }

    std::vector<std::string> avg{"average"};
    for (const auto ci : instance_counts)
        avg.push_back(Table::fmt(mean(speedups[ci]), 3));
    t.addRow(avg);
    t.print(std::cout);

    std::cout << "\npaper: averages 1.20 / 1.25 / 1.30; pgpencode most "
                 "CI-sensitive\n";
    std::cout << "average dynamic instructions eliminated (8 CI): "
              << Table::pct(mean(eliminated))
              << "\n(paper: ~40% of dynamic *repetitions*; with "
                 "repetitions ~45% of all\ninstructions — Figure 4 — "
                 "that corresponds to ~18% of all instructions)\n";
    return 0;
}
