/**
 * @file
 * Shared helpers for the figure-reproduction harnesses. Each bench
 * binary regenerates one figure of the paper: same benchmarks on the
 * rows, same series in the columns, with our measured values.
 */

#ifndef CCR_BENCH_COMMON_HH
#define CCR_BENCH_COMMON_HH

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "support/table.hh"
#include "workloads/harness.hh"

namespace ccr::bench
{

/** The benchmark list in the paper's presentation order. */
inline std::vector<std::string>
benchmarks()
{
    return workloads::workloadNames();
}

/** Dynamic reuse execution attributed to one region: CRB hits times
 *  the static size of the skipped computation. */
inline std::uint64_t
reuseExecution(const core::ReuseRegion &region, std::uint64_t hits)
{
    return hits * static_cast<std::uint64_t>(region.staticInsts);
}

/** Print a standard header line for a figure harness. */
inline void
figureHeader(const std::string &id, const std::string &description)
{
    std::cout << "\n=== " << id << ": " << description << " ===\n"
              << "(shape reproduction on the synthetic suite; see "
                 "EXPERIMENTS.md)\n\n";
}

/** Geometric mean helper (the paper reports arithmetic-mean speedups;
 *  both are printed where relevant). */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

} // namespace ccr::bench

#endif // CCR_BENCH_COMMON_HH
